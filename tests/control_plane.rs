//! Control-plane integration suite: same-kernel batching and rate-driven
//! replication, end to end through the public `Runtime` / `Cluster` APIs.
//!
//! The equivalence proptests (`tests/runtime_equivalence.rs`) pin the
//! *disabled* control plane to bitwise-identical baseline behavior; this
//! suite exercises the *enabled* behavior: batching groups interleaved
//! kernels and cuts context switches (honoring the run cap, the staleness
//! bound and deadline feasibility), and replication pushes hot kernel
//! images ahead of demand and demotes cold replicas under store pressure.

use tm_overlay::dfg::evaluate_stream;
use tm_overlay::frontend::LowerOptions;
use tm_overlay::{
    BatchConfig, Benchmark, Cluster, FuVariant, KernelSpec, ReplicationConfig, Request,
    RoutePolicy, Runtime, ServeReport, TransferModel, Workload,
};

fn spec(benchmark: Benchmark) -> (KernelSpec, usize) {
    let spec = KernelSpec::from_benchmark(benchmark).unwrap();
    let inputs = benchmark.dfg().unwrap().num_inputs();
    (spec, inputs)
}

/// `count` requests alternating between two kernels, all arriving at t = 0
/// (they pile onto the queue and drain under the dispatch policy).
fn interleaved_burst(count: usize, blocks: usize) -> Vec<Request> {
    let (a, a_inputs) = spec(Benchmark::Gradient);
    let (b, b_inputs) = spec(Benchmark::Chebyshev);
    (0..count)
        .map(|i| {
            let (kernel, inputs) = if i % 2 == 0 {
                (a.clone(), a_inputs)
            } else {
                (b.clone(), b_inputs)
            };
            Request::new(i as u64, kernel, Workload::random(inputs, blocks, i as u64)).at(0.0)
        })
        .collect()
}

fn serve(runtime: &mut Runtime, requests: &[Request]) -> ServeReport {
    runtime.serve(requests.to_vec()).unwrap()
}

#[test]
fn batching_groups_an_interleaved_burst_and_cuts_switches() {
    let requests = interleaved_burst(24, 4);
    let mut plain = Runtime::new(FuVariant::V4, 1).unwrap();
    let mut batched = Runtime::new(FuVariant::V4, 1)
        .unwrap()
        .with_batching(BatchConfig::with_max_batch(32));
    assert_eq!(batched.batching().max_batch, 32);
    let baseline = serve(&mut plain, &requests);
    let report = serve(&mut batched, &requests);

    // The alternating burst drains FIFO on one tile: the baseline swaps on
    // nearly every dispatch, the batcher runs each kernel as one block.
    assert!(
        baseline.metrics().switch_count >= 20,
        "alternating FIFO drain must thrash, got {} switches",
        baseline.metrics().switch_count
    );
    assert!(
        report.metrics().switch_count <= 4,
        "batching must collapse the thrash, got {} switches",
        report.metrics().switch_count
    );
    let batch = report.metrics().batch;
    assert!(batch.switches_avoided > 0);
    assert_eq!(batch.switches_avoided, batch.batched_requests);
    assert!(batch.batches_formed >= 1);
    assert!(batch.batches_formed <= batch.batched_requests);
    assert_eq!(baseline.metrics().batch.switches_avoided, 0);
    // Less switch time on the same work: the batched makespan cannot be
    // worse on a single tile.
    assert!(report.metrics().makespan_us <= baseline.metrics().makespan_us);

    // Reordering never changes functional results: every request computes
    // exactly what the reference evaluator says, in both serves.
    let options = LowerOptions::default();
    for report in [&baseline, &report] {
        for outcome in report.outcomes() {
            let request = &requests[outcome.request_id as usize];
            let dfg = request.kernel.dfg(&options).unwrap();
            let expected = evaluate_stream(&dfg, request.workload.records()).unwrap();
            assert_eq!(outcome.outputs(), expected);
        }
    }
}

#[test]
fn the_run_cap_bounds_consecutive_batched_dispatches() {
    let requests = interleaved_burst(32, 4);
    let switches = |max_batch: usize| {
        let mut runtime = Runtime::new(FuVariant::V4, 1)
            .unwrap()
            .with_batching(BatchConfig::with_max_batch(max_batch));
        serve(&mut runtime, &requests).metrics().switch_count
    };
    let tight = switches(2);
    let loose = switches(16);
    let unbatched = switches(1);
    // A tighter cap lets the deferred kernel through more often.
    assert!(
        tight > loose,
        "cap 2 must switch more than cap 16 ({tight} vs {loose})"
    );
    assert!(tight < unbatched, "even cap 2 beats no batching");
}

#[test]
fn a_zero_staleness_bound_disables_diversion_entirely() {
    let requests = interleaved_burst(20, 4);
    let mut plain = Runtime::new(FuVariant::V4, 1).unwrap();
    let mut held = Runtime::new(FuVariant::V4, 1)
        .unwrap()
        .with_batching(BatchConfig::with_max_batch(8).with_max_hold_us(0.0));
    let baseline = serve(&mut plain, &requests);
    let report = serve(&mut held, &requests);
    // Every queued choice has waited > 0 by the time its tile frees, so the
    // staleness bound vetoes every diversion — the serve is the baseline.
    assert_eq!(report.metrics().batch.switches_avoided, 0);
    assert_eq!(
        report.metrics().switch_count,
        baseline.metrics().switch_count
    );
    assert_eq!(report.metrics().makespan_us, baseline.metrics().makespan_us);
}

/// A still-feasible deadline vetoes the batch that would break it; a loose
/// one lets the batch through.
#[test]
fn feasible_deadlines_win_over_batching() {
    let (hot, hot_inputs) = spec(Benchmark::Gradient);
    let (urgent, urgent_inputs) = spec(Benchmark::Chebyshev);
    // Probe the urgent kernel's standalone service time to scale deadlines.
    let mut probe = Runtime::new(FuVariant::V4, 1).unwrap();
    let urgent_svc = probe
        .serve(vec![Request::new(
            0,
            urgent.clone(),
            Workload::random(urgent_inputs, 2, 9),
        )])
        .unwrap()
        .outcomes()[0]
        .completion_us;
    let blocker_done = probe
        .serve(vec![Request::new(
            0,
            hot.clone(),
            Workload::random(hot_inputs, 48, 1),
        )])
        .unwrap()
        .outcomes()[0]
        .completion_us;

    let trace = |deadline_us: f64| {
        vec![
            // The blocker occupies the tile while the rest queue.
            Request::new(0, hot.clone(), Workload::random(hot_inputs, 48, 1)).at(0.0),
            // The urgent different-kernel request is at the queue head...
            Request::new(1, urgent.clone(), Workload::random(urgent_inputs, 2, 9))
                .at(0.0)
                .with_deadline(deadline_us),
            // ...and a long same-kernel waiter tempts the batcher.
            Request::new(2, hot.clone(), Workload::random(hot_inputs, 48, 2)).at(0.0),
        ]
    };
    let run = |deadline_us: f64| {
        let mut runtime = Runtime::new(FuVariant::V4, 1)
            .unwrap()
            .with_batching(BatchConfig::with_max_batch(8));
        serve(&mut runtime, &trace(deadline_us))
    };

    // Tight-but-feasible: met if run at the drain, broken by another 48-block
    // batched run first. The batcher must stand down.
    let tight = run(blocker_done + 4.0 * urgent_svc);
    assert_eq!(tight.metrics().batch.switches_avoided, 0);
    assert_eq!(tight.metrics().deadline_misses, 0, "the deadline was kept");
    // Loose: feasible even after the batched run, so the batch proceeds and
    // the deadline is still met.
    let loose = run(blocker_done + 4.0 * urgent_svc + 2.0 * blocker_done);
    assert!(loose.metrics().batch.switches_avoided >= 1);
    assert_eq!(loose.metrics().deadline_misses, 0);
    let urgent_outcome = |report: &ServeReport| {
        report
            .outcomes()
            .iter()
            .find(|o| o.request_id == 1)
            .unwrap()
            .start_us
    };
    assert!(
        urgent_outcome(&loose) > urgent_outcome(&tight),
        "the loose deadline let the batch run first"
    );
}

#[test]
fn cluster_batching_mirrors_the_runtime_layer() {
    // 3 devices against the 2-kernel alternation: the periods are coprime,
    // so least-loaded routing hands every device an interleaved queue.
    let requests = interleaved_burst(24, 4);
    let mut plain = Cluster::new(FuVariant::V4, 3, 1)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded);
    let mut batched = Cluster::new(FuVariant::V4, 3, 1)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_batching(BatchConfig::with_max_batch(16));
    let baseline = plain.serve(requests.clone()).unwrap();
    let report = batched.serve(requests).unwrap();
    assert!(report.metrics().batch.switches_avoided > 0);
    assert!(report.metrics().switch_count < baseline.metrics().switch_count);
    assert_eq!(report.outcomes().len(), baseline.outcomes().len());
}

/// A hot kernel's image is pushed ahead of demand: the pushes land before
/// routing spreads the kernel, so the demand path charges fewer transfers
/// and the serve finishes no later.
#[test]
fn replication_pushes_hot_images_ahead_of_demand() {
    let (hot, inputs) = spec(Benchmark::Gradient);
    let requests: Vec<Request> = (0..32)
        .map(|i| {
            Request::new(i, hot.clone(), Workload::random(inputs, 16, i % 4)).at(i as f64 * 0.5)
        })
        .collect();
    let build = || {
        Cluster::new(FuVariant::V4, 4, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded)
    };
    let baseline = build().serve(requests.clone()).unwrap();
    let mut replicated_cluster = build().with_replication(ReplicationConfig::new(3, 2.0, 1000.0));
    let report = replicated_cluster.serve(requests).unwrap();

    let stats = report.replication();
    assert!(stats.replicas_pushed >= 1, "the hot kernel replicates");
    assert!(stats.bytes_prefetched > 0);
    assert!(stats.prefetch_us > 0.0);
    assert_eq!(stats.hot_kernels, 1);
    assert_eq!(baseline.replication().replicas_pushed, 0);
    // Demand acquisitions (charged to requests) drop: warm replicas were
    // already there when routing spread the load.
    assert!(
        report.transfers() + report.host_loads() < baseline.transfers() + baseline.host_loads(),
        "prefetch must absorb demand acquisitions ({}+{} vs {}+{})",
        report.transfers(),
        report.host_loads(),
        baseline.transfers(),
        baseline.host_loads()
    );
    // With one kernel the routing decisions are load-only, so cheaper
    // acquisition can only help the makespan.
    assert!(report.metrics().makespan_us <= baseline.metrics().makespan_us);
}

#[test]
fn cold_replicas_are_demoted_under_store_pressure() {
    let (first, first_inputs) = spec(Benchmark::Gradient);
    let (second, second_inputs) = spec(Benchmark::Chebyshev);
    // Phase 1: kernel A is hot and replicates everywhere. Phase 2 (after a
    // long quiet gap that cools A): kernel B becomes hot; with capacity-1
    // stores every B push lands on a full store whose only entry may be the
    // stale A replica — the replicator demotes it instead of trusting LRU.
    let mut requests: Vec<Request> = (0..12)
        .map(|i| {
            Request::new(i, first.clone(), Workload::random(first_inputs, 4, i % 2))
                .at(i as f64 * 2.0)
        })
        .collect();
    requests.extend((0..12).map(|i| {
        Request::new(
            100 + i,
            second.clone(),
            Workload::random(second_inputs, 4, i % 2),
        )
        .at(1.0e6 + i as f64 * 2.0)
    }));
    // 5 devices with fanout 4 and capacity-1 stores: wherever the two
    // kernels' home shards land, at least one phase-2 push targets a store
    // whose only entry is a stale *pushed* phase-1 replica.
    let mut cluster = Cluster::new(FuVariant::V4, 5, 1)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_cache_capacity(1)
        .unwrap()
        .with_replication(ReplicationConfig::new(4, 2.0, 100.0));
    let report = cluster.serve(requests).unwrap();
    let stats = report.replication();
    assert_eq!(stats.hot_kernels, 2, "both phases cross the threshold");
    assert!(stats.replicas_pushed >= 2);
    assert!(
        stats.replicas_demoted >= 1,
        "phase 2 pushes must demote phase 1's cold replicas, got {stats:?}"
    );
    assert_eq!(report.outcomes().len(), 24);
}

#[test]
fn replication_with_an_unreachable_threshold_never_pushes() {
    let (hot, inputs) = spec(Benchmark::Gradient);
    let requests: Vec<Request> = (0..16)
        .map(|i| Request::new(i, hot.clone(), Workload::random(inputs, 4, i % 4)).at(i as f64))
        .collect();
    let mut cluster = Cluster::new(FuVariant::V4, 4, 1)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_transfer_model(TransferModel::new())
        .with_replication(ReplicationConfig::new(3, 1.0e9, 100.0));
    assert_eq!(cluster.replication_config().fanout, 3);
    let report = cluster.serve(requests).unwrap();
    assert_eq!(report.replication().replicas_pushed, 0);
    assert_eq!(report.replication().hot_kernels, 0);
    // Demand still spreads the kernel the old way.
    assert!(report.transfers() + report.host_loads() > 0);
}
