//! Tier-1 integration suite for the online serving runtime: end-to-end
//! streaming submission → dispatch → simulated execution → completion,
//! checked against the DFG reference evaluator (mirroring `end_to_end.rs`
//! for the batch compiler flow).
//!
//! Covers every FU variant, all four dispatch policies, the
//! admission-control reject path, ingest backpressure and deadline-miss
//! accounting.

use std::sync::mpsc;
use std::sync::Arc;

use tm_overlay::dfg::evaluate_stream;
use tm_overlay::frontend::LowerOptions;
use tm_overlay::runtime::RuntimeError;
use tm_overlay::{
    Benchmark, DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, ServeReport, SubmitError,
    Workload,
};

/// A mixed-kernel trace over the paper's benchmark suite: `count` requests,
/// one every 2 µs, cycling through four kernels.
fn benchmark_trace(count: usize, blocks: usize) -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Qspline,
        Benchmark::Poly5,
    ];
    (0..count)
        .map(|i| {
            let benchmark = suite[i % suite.len()];
            let spec = KernelSpec::from_benchmark(benchmark).unwrap();
            let inputs = benchmark.dfg().unwrap().num_inputs();
            let workload = Workload::random(inputs, blocks, 0xD15C ^ i as u64);
            Request::new(i as u64, spec, workload).at(i as f64 * 2.0)
        })
        .collect()
}

/// Checks every outcome against the DFG reference evaluator and the basic
/// timeline invariants the event loop guarantees.
fn verify_report(requests: &[Request], report: &ServeReport) {
    let options = LowerOptions::default();
    assert_eq!(report.outcomes().len(), requests.len());
    for (request, outcome) in requests.iter().zip(report.outcomes()) {
        assert_eq!(outcome.request_id, request.id, "submission order kept");
        let dfg = request.kernel.dfg(&options).unwrap();
        let expected = evaluate_stream(&dfg, request.workload.records()).unwrap();
        assert_eq!(
            outcome.outputs(),
            expected,
            "request {} diverged from the reference evaluator",
            request.id
        );
        assert!(outcome.start_us >= request.arrival_us);
        assert!(outcome.completion_us > outcome.start_us);
        assert!((outcome.queued_us - (outcome.start_us - request.arrival_us)).abs() < 1e-9);
    }
}

#[test]
fn streaming_serves_correctly_on_every_variant() {
    // The online path must work on the write-back tiles (V3–V5, instruction
    // reload) and the feed-forward ones ([14]/V1/V2, PCAP) alike.
    let requests = benchmark_trace(8, 4);
    for variant in FuVariant::ALL {
        let mut runtime = Runtime::new(variant, 2).unwrap();
        let report = runtime
            .serve_stream(|submitter| {
                for request in &requests {
                    submitter.submit(request.clone()).unwrap();
                }
            })
            .unwrap_or_else(|e| panic!("serve_stream failed on {variant}: {e}"));
        verify_report(&requests, &report);
        assert!(
            report.metrics().switch_count >= 1,
            "{variant}: cold tiles must pay at least one switch"
        );
    }
}

#[test]
fn every_policy_serves_the_same_functional_results() {
    let requests = benchmark_trace(24, 4);
    let mut reference: Option<ServeReport> = None;
    for policy in DispatchPolicy::ALL {
        let mut runtime = Runtime::new(FuVariant::V4, 3).unwrap().with_policy(policy);
        let report = runtime.serve(requests.clone()).unwrap();
        assert_eq!(report.policy(), policy);
        verify_report(&requests, &report);
        assert_eq!(report.metrics().requests, 24);
        assert_eq!(report.metrics().tile_requests.iter().sum::<usize>(), 24);
        if let Some(reference) = &reference {
            for (lhs, rhs) in reference.outcomes().iter().zip(report.outcomes()) {
                assert_eq!(
                    lhs.outputs(),
                    rhs.outputs(),
                    "{policy} changed functional results"
                );
            }
        } else {
            reference = Some(report);
        }
    }
}

#[test]
fn a_live_producer_thread_streams_through_backpressure() {
    // A 4-slot ingest buffer in front of a 40-request burst: the producer
    // thread must block on submit and the loop must drain everything in
    // order, with results identical to the batch shim.
    let requests = benchmark_trace(40, 3);
    let mut runtime = Runtime::new(FuVariant::V4, 4)
        .unwrap()
        .with_ingest_capacity(4);
    let streamed = runtime
        .serve_stream(|submitter| {
            for request in &requests {
                submitter.submit(request.clone()).unwrap();
            }
        })
        .unwrap();
    let batch = runtime.serve(requests.clone()).unwrap();
    assert_eq!(streamed.outcomes().len(), 40);
    for (lhs, rhs) in streamed.outcomes().iter().zip(batch.outcomes()) {
        assert_eq!(lhs.request_id, rhs.request_id);
        assert_eq!(lhs.tile, rhs.tile);
        assert_eq!(lhs.completion_us, rhs.completion_us);
    }
}

#[test]
fn try_submit_surfaces_backpressure_to_the_producer() {
    // A rendezvous ingest channel (capacity 0) with a slow consumer: the
    // first try_submit finds no waiting receiver only after the loop has
    // picked up the first request, so eventually some try_submit must see
    // Backpressure; blocking submit still gets everything through.
    let requests = benchmark_trace(6, 2);
    let mut runtime = Runtime::new(FuVariant::V4, 1)
        .unwrap()
        .with_ingest_capacity(0);
    let (saw_backpressure_tx, saw_backpressure_rx) = mpsc::channel();
    let report = runtime
        .serve_stream(|submitter| {
            let mut saw = false;
            for request in &requests {
                let mut pending = Arc::new(request.clone());
                loop {
                    match submitter.try_submit(pending) {
                        Ok(()) => break,
                        Err(SubmitError::Backpressure(back)) => {
                            saw = true;
                            pending = back;
                            std::thread::yield_now();
                        }
                        Err(SubmitError::Closed(_)) => panic!("loop died"),
                    }
                }
            }
            saw_backpressure_tx.send(saw).unwrap();
        })
        .unwrap();
    assert_eq!(report.outcomes().len(), 6);
    // With a rendezvous channel, at least one non-blocking submit races the
    // loop; don't assert it (timing-dependent), just that the signal works.
    let _ = saw_backpressure_rx.recv().unwrap();
}

#[test]
fn admission_control_rejects_queue_overflow_per_policy() {
    // 16 requests land at t=0 on a 1-tile pool that admits 3 waiters: every
    // policy must serve exactly 4 (1 running + 3 queued) and reject 12,
    // without losing or duplicating a single id.
    let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
    let requests: Vec<Request> = (0..16)
        .map(|i| Request::new(i, spec.clone(), Workload::random(5, 4, i)).at(0.0))
        .collect();
    for policy in DispatchPolicy::ALL {
        let mut runtime = Runtime::new(FuVariant::V4, 1)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(3);
        let report = runtime.serve(requests.clone()).unwrap();
        assert_eq!(report.outcomes().len(), 4, "{policy}");
        assert_eq!(report.rejected().len(), 12, "{policy}");
        assert_eq!(report.metrics().rejects, 12);
        assert_eq!(report.metrics().peak_queue_depth, 3);
        assert_eq!(report.metrics().tile_peak_queue, vec![3]);
        let mut ids: Vec<u64> = report
            .outcomes()
            .iter()
            .map(|o| o.request_id)
            .chain(report.rejected().iter().map(|r| r.id))
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..16).collect::<Vec<u64>>(), "{policy}");
        for rejected in report.rejected() {
            assert_eq!(rejected.kernel.as_ref(), "gradient");
            assert_eq!(rejected.arrival_us, 0.0);
        }
    }
}

/// Modeled completion time of one cold request (switch + service), used to
/// scale deadlines so tests are robust to timing-model changes.
fn probe_service_us(spec: &KernelSpec, workload: &Workload) -> f64 {
    let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap();
    let report = runtime
        .serve(vec![Request::new(0, spec.clone(), workload.clone()).at(0.0)])
        .unwrap();
    report.outcomes()[0].completion_us
}

#[test]
fn deadline_misses_are_counted_per_policy_under_overload() {
    // A single tile with an 8-request backlog whose deadlines tighten toward
    // the back of the FIFO queue (the worst case for arrival order): some
    // deadlines are met and some missed under every policy, and the metrics
    // must account for every deadline carried.
    let spec = KernelSpec::from_benchmark(Benchmark::Chebyshev).unwrap();
    let workload = Workload::random(1, 32, 5);
    let service_us = probe_service_us(&spec, &workload);
    let requests: Vec<Request> = (0..8)
        .map(|i| {
            Request::new(i, spec.clone(), workload.clone())
                .at(0.0)
                .with_deadline((8 - i) as f64 * 1.05 * service_us)
        })
        .collect();
    for policy in DispatchPolicy::ALL {
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap().with_policy(policy);
        let report = runtime.serve(requests.clone()).unwrap();
        let metrics = report.metrics();
        assert_eq!(metrics.deadline_requests, 8, "{policy}");
        let misses = report
            .outcomes()
            .iter()
            .filter(|o| o.missed_deadline)
            .count();
        assert_eq!(metrics.deadline_misses, misses, "{policy}");
        assert!(
            (metrics.deadline_miss_rate() - misses as f64 / 8.0).abs() < 1e-12,
            "{policy}"
        );
        for outcome in report.outcomes() {
            assert_eq!(
                outcome.missed_deadline,
                outcome.completion_us > outcome.deadline_us.unwrap(),
                "{policy}: miss flag must reflect the modeled timeline"
            );
        }
    }
}

#[test]
fn deadline_aware_policies_beat_fifo_on_an_overloaded_queue() {
    // Eight loose-deadline requests arrive ahead of two tight-deadline ones
    // (a latency-sensitive tenant behind a batch tenant's burst). FIFO
    // strands the tight pair at the back of the queue; EDF and slack-aware
    // run them as soon as the tile frees and must miss strictly fewer
    // deadlines than kernel affinity.
    let spec = KernelSpec::from_benchmark(Benchmark::Chebyshev).unwrap();
    let workload = Workload::random(1, 24, 9);
    let service_us = probe_service_us(&spec, &workload);
    let mut requests: Vec<Request> = (0..8)
        .map(|i| {
            Request::new(i, spec.clone(), workload.clone())
                .at(i as f64 * 0.001)
                .with_deadline(30.0 * service_us)
        })
        .collect();
    for i in 8..10u64 {
        let arrival = i as f64 * 0.001;
        requests.push(
            Request::new(i, spec.clone(), workload.clone())
                .at(arrival)
                .with_deadline(arrival + 3.5 * service_us),
        );
    }
    let mut affinity = Runtime::new(FuVariant::V4, 1).unwrap();
    let fifo_misses = affinity
        .serve(requests.clone())
        .unwrap()
        .metrics()
        .deadline_misses;
    assert!(fifo_misses > 0, "the trace must overload FIFO");
    for policy in [
        DispatchPolicy::EarliestDeadlineFirst,
        DispatchPolicy::SlackAware,
    ] {
        let mut runtime = Runtime::new(FuVariant::V4, 1).unwrap().with_policy(policy);
        let misses = runtime
            .serve(requests.clone())
            .unwrap()
            .metrics()
            .deadline_misses;
        assert!(
            misses < fifo_misses,
            "{policy}: {misses} misses vs FIFO's {fifo_misses}"
        );
    }
}

#[test]
fn out_of_order_submissions_fail_the_serve_and_release_the_producer() {
    let benchmark = Benchmark::Poly5;
    let spec = KernelSpec::from_benchmark(benchmark).unwrap();
    let inputs = benchmark.dfg().unwrap().num_inputs();
    let mut runtime = Runtime::new(FuVariant::V4, 2).unwrap();
    let result = runtime.serve_stream(|submitter| {
        let first = Request::new(0, spec.clone(), Workload::ramp(inputs, 2)).at(50.0);
        submitter.submit(first).unwrap();
        let stale = Request::new(1, spec.clone(), Workload::ramp(inputs, 2)).at(10.0);
        submitter.submit(stale).unwrap();
        // The loop is now failing; further submissions must not hang — they
        // either enter the dead channel's buffer or see Closed.
        for i in 2..20 {
            let request = Request::new(i, spec.clone(), Workload::ramp(inputs, 2)).at(100.0);
            if submitter.submit(request).is_err() {
                break;
            }
        }
    });
    assert!(matches!(
        result,
        Err(RuntimeError::OutOfOrderArrival { request: 1, .. })
    ));
}

#[test]
fn an_empty_stream_reports_no_requests() {
    let mut runtime = Runtime::new(FuVariant::V4, 2).unwrap();
    let result = runtime.serve_stream(|_submitter| {});
    assert!(matches!(result, Err(RuntimeError::NoRequests)));
}
