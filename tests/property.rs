//! Property-based tests over randomly generated kernels: the tool flow must
//! schedule, compile and simulate *any* valid feed-forward DFG correctly.

use proptest::prelude::*;

use tm_overlay::dfg::{evaluate_stream, DfgGenerator, GeneratorConfig, Op};
use tm_overlay::scheduler::{
    asap_schedule, cluster_schedule, ii_baseline, ii_v1, ClusterOptions, ScheduleError,
};
use tm_overlay::{CompiledKernel, Compiler, Error, FuVariant, Overlay, Workload};

/// Compiles a random kernel, treating register-pressure overflow (a genuine
/// architectural limit of the 32-entry register file that very wide random
/// stages can hit) as "discard this case" rather than a failure.
fn try_compile(compiler: &Compiler, dfg: &tm_overlay::dfg::Dfg) -> Option<CompiledKernel> {
    match compiler.compile_dfg(dfg) {
        Ok(compiled) => Some(compiled),
        Err(Error::Schedule(ScheduleError::RegisterPressure { .. })) => None,
        Err(other) => panic!("unexpected compile failure: {other}"),
    }
}

/// Strategy describing a random synthetic kernel.
fn kernel_params() -> impl Strategy<Value = (u64, usize, usize, usize)> {
    (
        any::<u64>(),
        1usize..6,  // inputs
        4usize..40, // ops
        2usize..10, // target depth
    )
        .prop_filter("depth cannot exceed ops", |(_, _, ops, depth)| depth <= ops)
}

fn generate(seed: u64, inputs: usize, ops: usize, depth: usize) -> tm_overlay::dfg::Dfg {
    let config = GeneratorConfig {
        inputs,
        ops,
        target_depth: depth,
        const_probability: 0.15,
        op_pool: vec![Op::Add, Op::Sub, Op::Mul, Op::Square, Op::Min, Op::Max],
    };
    DfgGenerator::new(seed)
        .generate(&config)
        .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// ASAP schedules are always structurally consistent and the II formulas
    /// preserve their ordering (V1 never worse than the baseline, V2 exactly
    /// half of V1).
    #[test]
    fn asap_schedules_are_consistent_and_ii_is_ordered(
        (seed, inputs, ops, depth) in kernel_params()
    ) {
        let dfg = generate(seed, inputs, ops, depth);
        let schedule = asap_schedule(&dfg).unwrap();
        prop_assert!(schedule.is_consistent_with(&dfg));
        prop_assert_eq!(schedule.num_stages(), dfg.analysis().depth());
        let baseline = ii_baseline(&schedule);
        let v1 = ii_v1(&schedule);
        prop_assert!(v1 <= baseline);
        prop_assert!(v1 >= 3.0); // at least one op + flush
    }

    /// Fixed-depth clustering keeps every operation, respects the overlay
    /// depth and the IWP spacing inside each cluster.
    #[test]
    fn cluster_schedules_respect_depth_and_iwp(
        (seed, inputs, ops, depth) in kernel_params(),
        overlay_depth in 2usize..8,
        iwp in 3usize..6,
    ) {
        let dfg = generate(seed, inputs, ops, depth);
        let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: overlay_depth, iwp }).unwrap();
        prop_assert!(schedule.num_stages() <= overlay_depth.max(dfg.analysis().depth()));
        prop_assert_eq!(schedule.total_ops(), dfg.num_ops());
        prop_assert!(schedule.is_consistent_with(&dfg));
        for stage in schedule.stages() {
            let mut slot_of = std::collections::HashMap::new();
            for (slot, entry) in stage.slots.iter().enumerate() {
                if let Some(op) = entry.op() {
                    slot_of.insert(op, slot);
                }
            }
            for (&op, &slot) in &slot_of {
                for operand in dfg.node_unchecked(op).operands() {
                    if let Some(&producer) = slot_of.get(operand) {
                        prop_assert!(slot >= producer + iwp);
                    }
                }
            }
        }
    }

    /// The cycle-accurate simulator agrees with the reference evaluator for
    /// random kernels on the V1 overlay.
    #[test]
    fn simulator_matches_reference_on_random_kernels_v1(
        (seed, inputs, ops, depth) in kernel_params()
    ) {
        let dfg = generate(seed, inputs, ops, depth);
        let compiled = try_compile(&Compiler::new(FuVariant::V1), &dfg);
        prop_assume!(compiled.is_some());
        let compiled = compiled.unwrap();
        let overlay = Overlay::for_kernel(FuVariant::V1, &compiled).unwrap();
        let workload = Workload::random(dfg.num_inputs(), 6, seed ^ 0xABCD);
        let expected = evaluate_stream(&dfg, workload.records()).unwrap();
        let run = overlay.execute(&compiled, &workload).unwrap();
        prop_assert_eq!(run.outputs(), expected.as_slice());
    }

    /// The same property on the fixed-depth write-back overlay, which
    /// exercises clustering, NOP insertion and the write-back datapath.
    #[test]
    fn simulator_matches_reference_on_random_kernels_v3(
        (seed, inputs, ops, depth) in kernel_params(),
        overlay_depth in 2usize..8,
    ) {
        let dfg = generate(seed, inputs, ops, depth);
        let compiled = try_compile(
            &Compiler::new(FuVariant::V3).with_fixed_depth(overlay_depth),
            &dfg,
        );
        prop_assume!(compiled.is_some());
        let compiled = compiled.unwrap();
        let overlay = Overlay::for_kernel(FuVariant::V3, &compiled).unwrap();
        let workload = Workload::random(dfg.num_inputs(), 5, seed ^ 0x5555);
        let expected = evaluate_stream(&dfg, workload.records()).unwrap();
        let run = overlay.execute(&compiled, &workload).unwrap();
        prop_assert_eq!(run.outputs(), expected.as_slice());
    }

    /// Measured steady-state II never beats the analytical model by more than
    /// rounding, and never exceeds it by more than a couple of cycles.
    #[test]
    fn measured_ii_tracks_the_model((seed, inputs, ops, depth) in kernel_params()) {
        let dfg = generate(seed, inputs, ops, depth);
        let compiled = try_compile(&Compiler::new(FuVariant::V1), &dfg);
        prop_assume!(compiled.is_some());
        let compiled = compiled.unwrap();
        let overlay = Overlay::for_kernel(FuVariant::V1, &compiled).unwrap();
        let workload = Workload::random(dfg.num_inputs(), 32, seed ^ 0x1234);
        let run = overlay.execute(&compiled, &workload).unwrap();
        let measured = run.metrics().steady_state_ii;
        prop_assert!(measured >= compiled.ii - 1.0);
        prop_assert!(measured <= compiled.ii + 2.0);
    }
}
