//! Observability property suite: tracing and profiling must be *lenses*,
//! never *forces*.
//!
//! * With tracing disabled (the default), a runtime or cluster built with
//!   explicit observability knobs serves **bitwise identically** to one
//!   built without them — outcomes, modeled timestamps, rejects and the
//!   full metrics struct (including the new latency/queue-depth
//!   histograms), under both scan modes and on the 1-device cluster.
//! * With tracing *enabled*, the serve is still bitwise identical; the
//!   trace rides alongside. Per request, the recorded lifecycle spans
//!   (queue-wait → acquire → context-switch → run) tile the interval
//!   `[arrival, completion]` exactly, so their durations sum to the
//!   reported latency.
//! * The log-bucketed histograms track the exact selection-path
//!   percentiles to within one bucket width, and both exporters produce
//!   well-formed output (the Chrome trace validator accepts the Perfetto
//!   JSON; the Prometheus text carries the histogram series).
//! * The same lens discipline extends to the continuous-telemetry tier:
//!   windowed time-series and SLO burn-rate tracking change no outcome and
//!   no trace byte (beyond the burn/clear instants appended after the last
//!   serve event), the sharded loop reproduces the serial series bitwise,
//!   and [`explain`] decodes every served request's spans back into an
//!   additive latency breakdown that reconciles with its modeled latency —
//!   including through fault displacement and pipeline activations.

use proptest::prelude::*;
use rand::prelude::*;

use tm_overlay::runtime::obs::{
    perfetto_trace_json, perfetto_trace_json_with_telemetry, prometheus_text,
    prometheus_text_labeled, validate_chrome_trace,
};
use tm_overlay::runtime::SpanKind;
use tm_overlay::{
    explain, BatchConfig, Cluster, DispatchPolicy, FaultPlan, FuVariant, KernelSpec, LogHistogram,
    PipelineRequest, PipelineStage, ReplicationConfig, Request, RoutePolicy, Runtime, ScanMode,
    ServeReport, Session, SloClass, SloConfig, SloObjective, TelemetryConfig, Trace, TraceConfig,
    Workload,
};

const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";
const POLY: &str = "kernel poly(x) { out y = (x * x + 3) * x; }";
const GRAD: &str = "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }";

/// Same shape as the equivalence suite's generator: non-decreasing arrivals
/// with bursts, a small workload pool (memo + in-flight joins engage), and
/// coin-flip deadlines.
fn random_trace(seed: u64, count: usize, deadline_scale_us: f64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            if rng.gen_range(0..3u32) > 0 {
                clock_us += rng.gen_range(0..=20u64) as f64 * 0.1;
            }
            let (spec, inputs) = &specs[rng.gen_range(0..specs.len())];
            let blocks = rng.gen_range(1..=3usize);
            let workload = Workload::random(*inputs, blocks, seed ^ rng.gen_range(0..4u64));
            let mut request = Request::new(i as u64, spec.clone(), workload).at(clock_us);
            if rng.gen_bool(0.5) {
                let budget = rng.gen_range(1..=30u64) as f64 * 0.1 * deadline_scale_us;
                request = request.with_deadline(clock_us + budget);
            }
            request
        })
        .collect()
}

/// A Standard-class objective with a tight miss-rate target and a short
/// fast/slow burn pair — deadline-heavy traces can fire it, quiet ones
/// cannot.
fn slo_objectives() -> SloConfig {
    SloConfig::disabled()
        .with_objective(SloObjective::new(SloClass::Standard, 0.05).with_windows(1, 2))
}

/// Every observable of the two serves must match exactly — including the
/// histogram fields inside the metrics struct, compared bitwise through
/// `PartialEq`.
fn assert_reports_identical(
    observed: &ServeReport,
    baseline: &ServeReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(observed.outcomes().len(), baseline.outcomes().len());
    for (lhs, rhs) in observed.outcomes().iter().zip(baseline.outcomes()) {
        prop_assert_eq!(lhs.request_id, rhs.request_id);
        prop_assert_eq!(lhs.tile, rhs.tile);
        prop_assert_eq!(lhs.start_us, rhs.start_us);
        prop_assert_eq!(lhs.completion_us, rhs.completion_us);
        prop_assert_eq!(lhs.latency_us, rhs.latency_us);
        prop_assert_eq!(lhs.missed_deadline, rhs.missed_deadline);
        prop_assert_eq!(&lhs.outputs(), &rhs.outputs());
    }
    prop_assert_eq!(observed.rejected(), baseline.rejected());
    prop_assert_eq!(observed.metrics(), baseline.metrics());
    Ok(())
}

/// Sums the lifecycle span durations per request and checks they reconcile
/// with the modeled latency: the spans tile `[arrival, completion]`.
fn assert_spans_reconcile(
    trace: &Trace,
    request_id: u64,
    latency_us: f64,
) -> Result<(), TestCaseError> {
    let spans = trace.spans_for(request_id);
    let mut staged = 0.0;
    let mut runs = 0usize;
    for span in &spans {
        match span.kind {
            SpanKind::QueueWait
            | SpanKind::Acquire { .. }
            | SpanKind::Activation
            | SpanKind::ContextSwitch
            | SpanKind::Run => staged += span.dur_us,
            _ => continue,
        }
        if matches!(span.kind, SpanKind::Run) {
            runs += 1;
        }
    }
    prop_assert!(
        runs == 1,
        "request {} must have exactly one Run span",
        request_id
    );
    let tolerance = 1e-9 * latency_us.abs().max(1.0);
    prop_assert!(
        (staged - latency_us).abs() <= tolerance,
        "request {}: stage spans sum to {} but modeled latency is {}",
        request_id,
        staged,
        latency_us
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tracing and profiling — off *or on* — never change a serve: the
    /// default-built runtime, the explicitly-disabled one and the
    /// fully-instrumented one agree bitwise under both scan modes; the
    /// instrumented 1-device cluster reproduces the runtime's totals.
    #[test]
    fn observability_is_functionally_transparent(
        (seed, count, tiles) in (any::<u64>(), 4usize..20, 1usize..5),
        policy_pick in 0usize..4,
        scan_pick in 0usize..2,
        limit_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count, 3.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let scan = [ScanMode::Indexed, ScanMode::LinearReference][scan_pick];
        let limit = [usize::MAX, 4, 1][limit_pick];
        let build = || Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_scan_mode(scan)
            .with_admission_limit(limit);
        let baseline = build().serve(requests.clone()).unwrap();
        let disabled = build()
            .with_tracing(TraceConfig::disabled())
            .with_profiling(false)
            .serve(requests.clone())
            .unwrap();
        let instrumented = build()
            .with_tracing(TraceConfig::enabled())
            .with_profiling(true)
            .serve(requests.clone())
            .unwrap();
        prop_assert!(baseline.trace().is_none());
        prop_assert!(disabled.trace().is_none());
        prop_assert!(instrumented.trace().is_some());
        prop_assert!(instrumented.profile().is_some());
        assert_reports_identical(&disabled, &baseline)?;
        assert_reports_identical(&instrumented, &baseline)?;

        // A traced 1-device cluster still matches the untraced runtime's
        // aggregate metrics — including the merged histogram fields, which
        // must be bitwise equal to the runtime's single-device ones.
        let mut cluster = Cluster::new(FuVariant::V4, 1, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit)
            .with_tracing(TraceConfig::enabled())
            .with_profiling(true);
        let report = cluster.serve(requests).unwrap();
        prop_assert!(report.trace().is_some());
        prop_assert_eq!(report.metrics(), baseline.metrics());
    }

    /// Per-request span audit on the runtime: queue-wait, acquire,
    /// context-switch and run durations sum to the modeled latency for
    /// every served request, under every policy and both scan modes.
    #[test]
    fn runtime_spans_reconcile_with_modeled_latency(
        (seed, count, tiles) in (any::<u64>(), 4usize..20, 1usize..5),
        policy_pick in 0usize..4,
        scan_pick in 0usize..2,
    ) {
        let requests = random_trace(seed, count, 3.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let scan = [ScanMode::Indexed, ScanMode::LinearReference][scan_pick];
        let report = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_scan_mode(scan)
            .with_tracing(TraceConfig::enabled())
            .serve(requests)
            .unwrap();
        let trace = report.trace().expect("tracing was enabled");
        for outcome in report.outcomes() {
            assert_spans_reconcile(trace, outcome.request_id, outcome.latency_us)?;
        }
        prop_assert_eq!(trace.dropped(), 0);
    }

    /// The same audit on a multi-device cluster with the full control plane
    /// on — routing, image transfers, batching and replication all leave
    /// span timelines that still tile `[arrival, completion]` exactly.
    #[test]
    fn cluster_spans_reconcile_with_modeled_latency(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..24, 2usize..5, 1usize..3),
        policy_pick in 0usize..4,
        route_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let route = RoutePolicy::ALL[route_pick];
        let mut cluster = Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_policy(policy)
            .with_route_policy(route)
            .with_batching(BatchConfig::with_max_batch(4))
            .with_replication(ReplicationConfig::new(2, 3.0, 20.0))
            .with_tracing(TraceConfig::enabled());
        let report = cluster.serve(requests).unwrap();
        let trace = report.trace().expect("tracing was enabled");
        for outcome in report.outcomes() {
            assert_spans_reconcile(trace, outcome.request_id, outcome.latency_us)?;
        }
    }

    /// The sharded loop's commit stage merges per-lane trace rings back
    /// into one timeline; the result must be indistinguishable from the
    /// serial recorder — span-for-span equal — and the per-request
    /// reconciliation audit must still hold on the merged trace.
    #[test]
    fn sharded_traces_match_serial_span_for_span(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..24, 2usize..5, 1usize..3),
        policy_pick in 0usize..4,
        threads_pick in 0usize..2,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let threads = [2usize, 4][threads_pick];
        let build = || Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_policy(policy)
            .with_route_policy(RoutePolicy::KernelHash)
            .with_tracing(TraceConfig::enabled());
        let serial = build().serve(requests.clone()).unwrap();
        let sharded = build().with_threads(threads).serve(requests).unwrap();
        let serial_trace = serial.trace().expect("tracing was enabled");
        let sharded_trace = sharded.trace().expect("tracing was enabled");
        prop_assert_eq!(serial_trace, sharded_trace);
        prop_assert_eq!(sharded_trace.dropped(), 0);
        for outcome in sharded.outcomes() {
            assert_spans_reconcile(sharded_trace, outcome.request_id, outcome.latency_us)?;
        }
    }

    /// Histogram parity: the log-bucketed percentile lands within one
    /// bucket width of the exact selection-path percentile, and splitting
    /// the samples across shards then merging changes nothing.
    #[test]
    fn histogram_percentiles_track_exact_within_one_bucket(
        seed in any::<u64>(),
        count in 1usize..200,
        scale_pick in 0usize..3,
        shards in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = [1.0, 1e3, 1e6][scale_pick];
        let samples: Vec<f64> = (0..count)
            .map(|_| (rng.gen_range(0..=10_000u64) as f64 / 10_000.0).powi(3) * scale)
            .collect();
        let mut whole = LogHistogram::new();
        let mut parts = vec![LogHistogram::new(); shards];
        for (i, &sample) in samples.iter().enumerate() {
            whole.record(sample);
            parts[i % shards].record(sample);
        }
        let merged = LogHistogram::merged(&parts.iter().collect::<Vec<_>>());
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        for p in [0.5f64, 0.99] {
            let rank = p * (sorted.len() - 1) as f64;
            let (lo, hi) = (sorted[rank.floor() as usize], sorted[rank.ceil() as usize]);
            let exact = lo + (hi - lo) * rank.fract();
            let approx = whole.percentile(p);
            // One bucket width at the larger of the two values bounds both
            // representative-vs-sample errors.
            let slack = LogHistogram::bucket_width_at(exact.max(approx));
            prop_assert!(
                (approx - exact).abs() <= slack,
                "p{}: hist {} vs exact {} (slack {})",
                p * 100.0, approx, exact, slack
            );
            prop_assert_eq!(merged.percentile(p), approx);
            // Merging a single part is the 1-device cluster path — bitwise.
            prop_assert_eq!(LogHistogram::merged(&[&whole]).percentile(p), approx);
        }
        prop_assert_eq!(merged.count(), whole.count());
        prop_assert_eq!(LogHistogram::merged(&[&whole]).sum(), whole.sum());
        // Sharded sums accumulate in a different order; only bucket counts
        // (and so percentiles) are order-invariant, the sum is approximate.
        prop_assert!((merged.sum() - whole.sum()).abs() <= 1e-9 * whole.sum().abs().max(1.0));
    }

    /// The continuous-telemetry tier is a lens too: windowed time-series and
    /// SLO burn tracking change no outcome, metric or reject — and no trace
    /// byte beyond the burn/clear instants the tracker appends after the
    /// serve's own events.
    #[test]
    fn telemetry_and_slo_are_functionally_transparent(
        (seed, count, tiles) in (any::<u64>(), 4usize..20, 1usize..5),
        policy_pick in 0usize..4,
    ) {
        let requests = random_trace(seed, count, 3.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let build = || Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_tracing(TraceConfig::enabled());
        let baseline = build().serve(requests.clone()).unwrap();
        let telemetered = build()
            .with_telemetry(TelemetryConfig::windowed(2.0))
            .serve(requests.clone())
            .unwrap();
        let tracked = build()
            .with_telemetry(TelemetryConfig::windowed(2.0))
            .with_slo(slo_objectives())
            .serve(requests)
            .unwrap();
        prop_assert!(baseline.telemetry().is_none());
        prop_assert!(baseline.slo().is_none());
        prop_assert!(telemetered.telemetry().is_some());
        prop_assert!(telemetered.slo().is_none());
        prop_assert!(tracked.slo().is_some());
        assert_reports_identical(&telemetered, &baseline)?;
        assert_reports_identical(&tracked, &baseline)?;
        // Telemetry alone adds no trace event; the SLO tracker appends only
        // burn/clear instants, strictly after the serve's own events.
        prop_assert_eq!(telemetered.trace(), baseline.trace());
        let base_events = baseline.trace().unwrap().events();
        let slo_events = tracked.trace().unwrap().events();
        prop_assert!(slo_events.len() >= base_events.len());
        prop_assert_eq!(&slo_events[..base_events.len()], base_events);
        for event in &slo_events[base_events.len()..] {
            prop_assert!(matches!(
                event.kind,
                SpanKind::SloBurn { .. } | SpanKind::SloClear { .. }
            ));
        }
        // The series covers the whole serve: dense windows from 0 through
        // the makespan, and every served request commits into exactly one.
        let series = telemetered.telemetry().unwrap();
        prop_assert_eq!(series.total_served(), baseline.outcomes().len() as u64);
        prop_assert!(!series.windows.is_empty());
        prop_assert!(series.windows.last().unwrap().end_us >= series.makespan_us);
        for window in &series.windows {
            prop_assert!(window.utilization >= 0.0 && window.utilization <= 1.0 + 1e-12);
        }
    }

    /// The sharded loop's lane-partitioned accumulation plus the serial
    /// replay of the queue integral reproduce the serial loop's time-series,
    /// burn-rate report and burn events bitwise, at any thread count.
    #[test]
    fn sharded_telemetry_matches_serial_bitwise(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..24, 2usize..5, 1usize..3),
        threads_pick in 0usize..2,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let threads = [2usize, 4][threads_pick];
        let build = || Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_route_policy(RoutePolicy::KernelHash)
            .with_tracing(TraceConfig::enabled())
            .with_telemetry(TelemetryConfig::windowed(1.0))
            .with_slo(slo_objectives());
        let serial = build().serve(requests.clone()).unwrap();
        let sharded = build().with_threads(threads).serve(requests).unwrap();
        prop_assert!(serial.telemetry().is_some());
        prop_assert_eq!(serial.telemetry(), sharded.telemetry());
        prop_assert_eq!(serial.slo(), sharded.slo());
        prop_assert_eq!(serial.trace(), sharded.trace());
    }

    /// [`explain`] decodes the trace back into one additive row per served
    /// request, reconciling with the modeled latency under the full control
    /// plane (routing, image transfers, batching, replication).
    #[test]
    fn attribution_reconciles_for_every_request(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..24, 2usize..5, 1usize..3),
        route_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let route = RoutePolicy::ALL[route_pick];
        let mut cluster = Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_route_policy(route)
            .with_batching(BatchConfig::with_max_batch(4))
            .with_replication(ReplicationConfig::new(2, 3.0, 20.0))
            .with_tracing(TraceConfig::enabled());
        let report = cluster.serve(requests).unwrap();
        let attribution = explain(report.trace().expect("tracing was enabled"));
        prop_assert_eq!(attribution.rows().len(), report.outcomes().len());
        for outcome in report.outcomes() {
            let row = attribution
                .for_request(outcome.request_id)
                .expect("every served request has a row");
            prop_assert_eq!(row.device, outcome.device);
            prop_assert_eq!(row.completion_us, outcome.completion_us);
            prop_assert_eq!(row.requeues, 0);
            prop_assert!(
                (row.latency_us - outcome.latency_us).abs()
                    <= 1e-9 * outcome.latency_us.abs().max(1.0)
            );
            prop_assert!(
                row.reconciles(),
                "request {}: residual {}",
                outcome.request_id,
                row.residual_us()
            );
        }
    }
}

#[test]
fn histogram_edge_cases_match_the_exact_paths() {
    // Empty: every statistic is 0, matching the exact selection paths.
    let empty = LogHistogram::new();
    assert_eq!(empty.count(), 0);
    assert_eq!(empty.percentile(0.5), 0.0);
    assert_eq!(empty.percentile(0.99), 0.0);
    assert_eq!(empty.min(), 0.0);
    assert_eq!(empty.max(), 0.0);

    // Single sample: every percentile is that sample's bucket, within one
    // bucket width of the sample itself.
    let mut single = LogHistogram::new();
    single.record(7.25);
    for p in [0.0, 0.5, 0.99, 1.0] {
        assert!((single.percentile(p) - 7.25).abs() <= LogHistogram::bucket_width_at(7.25));
    }

    // All-equal samples: p50 and p99 agree exactly (same bucket).
    let mut equal = LogHistogram::new();
    for _ in 0..100 {
        equal.record(3.0);
    }
    assert_eq!(equal.percentile(0.5), equal.percentile(0.99));
    assert!((equal.percentile(0.5) - 3.0).abs() <= LogHistogram::bucket_width_at(3.0));

    // Zeros are first-class: a zero-only histogram reports 0 everywhere.
    let mut zeros = LogHistogram::new();
    zeros.record(0.0);
    zeros.record(0.0);
    assert_eq!(zeros.percentile(0.99), 0.0);
    assert_eq!(zeros.max(), 0.0);
}

#[test]
fn exporters_emit_wellformed_output() {
    let requests = random_trace(0x0b5e7ab1e, 24, 3.0);
    let mut cluster = Cluster::new(FuVariant::V4, 2, 2)
        .unwrap()
        .with_route_policy(RoutePolicy::PowerOfTwoChoices)
        .with_batching(BatchConfig::with_max_batch(4))
        .with_replication(ReplicationConfig::new(2, 3.0, 20.0))
        .with_tracing(TraceConfig::enabled())
        .with_profiling(true);
    let report = cluster.serve(requests).unwrap();
    let trace = report.trace().expect("tracing was enabled");

    // The Perfetto export passes the structural validator: parseable JSON,
    // spans non-negative and disjoint-or-nested per track, and it carries
    // one track per (device, tile) that did work plus the device lanes.
    let json = perfetto_trace_json(trace, report.profile(), "observability test");
    let validation = validate_chrome_trace(&json).expect("trace must validate");
    assert!(validation.events > 0);
    assert!(validation.complete_spans > 0);
    assert!(validation.tracks >= 2);

    // The Prometheus exposition carries the counters and both histogram
    // series with their sum/count pairs.
    let text = prometheus_text(report.metrics());
    for needle in [
        "# TYPE tm_requests_total counter",
        "# TYPE tm_request_latency_microseconds histogram",
        "tm_request_latency_microseconds_bucket{le=",
        "tm_request_latency_microseconds_count",
        "# TYPE tm_queue_depth_samples histogram",
        "tm_queue_depth_samples_sum",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
    assert!(text.contains(&format!("tm_requests_total {}", report.metrics().requests)));
}

/// Attribution through fault displacement: killed-then-relocated requests
/// report their discarded work in `displaced_us` and their displacements in
/// `requeues`, the surviving attempt still reconciles additively, the
/// windowed series keeps counting through the fault, and the fault-tier
/// spans survive the Perfetto export and its validator.
#[test]
fn fault_displacement_is_attributed_and_exports() {
    // Bursts of 8 on 6 tiles: queues form everywhere, so the kill always
    // has queued and in-flight work to displace (the fault-suite idiom).
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    let requests: Vec<Request> = (0..48)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, 1 + i % 3, 0xD15 ^ (i as u64 % 4));
            let arrival_us = (i / 8) as f64 * 0.4;
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival_us)
                .with_deadline(arrival_us + 2.0)
        })
        .collect();
    let build = || {
        Cluster::new(FuVariant::V4, 3, 2)
            .unwrap()
            .with_route_policy(RoutePolicy::LeastLoaded)
    };
    let baseline = build().serve(requests.clone()).unwrap();
    let makespan_us = baseline.metrics().makespan_us;
    let kill_at = makespan_us * 0.3;
    let mut faulty = build()
        .with_fault_plan(FaultPlan::new().kill(kill_at, 0).revive(kill_at * 2.0, 0))
        .with_tracing(TraceConfig::enabled())
        .with_telemetry(TelemetryConfig::windowed(makespan_us / 16.0))
        .with_slo(slo_objectives());
    let report = faulty.serve(requests).unwrap();
    assert!(report.requeues() > 0, "the kill must displace work");

    let attribution = explain(report.trace().expect("tracing was enabled"));
    let mut requeued = 0usize;
    for outcome in report.outcomes() {
        let row = attribution
            .for_request(outcome.request_id)
            .expect("every served request has a row");
        assert!(
            row.reconciles(),
            "request {}: residual {}",
            outcome.request_id,
            row.residual_us()
        );
        requeued += usize::from(row.requeues > 0);
    }
    assert!(requeued > 0, "displaced requests must carry requeue counts");
    assert!(
        attribution.rows().iter().any(|row| row.displaced_us > 0.0),
        "a started-then-killed request must report discarded work"
    );

    // The series keeps counting through the fault; superseded attempts of
    // displaced requests stay counted, exactly like the latency histogram
    // the metrics already expose.
    let series = report.telemetry().expect("telemetry was enabled");
    assert!(series.total_served() >= report.outcomes().len() as u64);
    assert!(report.slo().is_some());

    // The fault-tier spans render in Perfetto and survive the validator,
    // telemetry section included.
    let json = perfetto_trace_json_with_telemetry(
        report.trace().unwrap(),
        None,
        report.telemetry(),
        report.slo(),
        "fault observability",
    );
    let validation = validate_chrome_trace(&json).expect("trace must validate");
    assert!(validation.events > 0);
    assert!(json.contains("\"telemetry\""));
    for needle in ["device-down", "device-up", "requeue"] {
        assert!(json.contains(needle), "missing {needle:?} in the export");
    }
}

/// The session tier's spans — stage readiness, inter-device activation
/// transfers, SLO admission, and the per-stage activation charge — render
/// in the Perfetto export, survive the validator, and keep the additive
/// reconciliation intact (the activation span is part of the identity).
#[test]
fn pipeline_spans_export_and_reconcile() {
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    let pipelines: Vec<PipelineRequest> = (0..12u64)
        .map(|i| {
            let mut pipeline = PipelineRequest::new(i + 1, i % 3).at(i as f64 * 0.3);
            for stage in 0..3usize {
                let (spec, inputs) = &specs[(i as usize + stage) % specs.len()];
                let workload = Workload::random(*inputs, 2, 0xBEEF ^ i ^ stage as u64);
                let mut built = PipelineStage::new(spec.clone(), workload).emits(1 << 14);
                if stage > 0 {
                    built = built.after(&[stage - 1]);
                }
                pipeline = pipeline.stage(built);
            }
            pipeline
        })
        .collect();
    let sessions = [
        Session::new(0).with_slo(SloClass::Latency),
        Session::new(1),
        Session::new(2).with_slo(SloClass::BestEffort),
    ];
    // Affinity-blind kernel-hash routing pins each stage to its kernel's
    // home device, so consecutive stages hop devices and pay activations.
    let mut cluster = Cluster::new(FuVariant::V4, 2, 2)
        .unwrap()
        .with_route_policy(RoutePolicy::KernelHash)
        .with_stage_affinity(false)
        .with_tracing(TraceConfig::enabled())
        .with_telemetry(TelemetryConfig::windowed(1.0))
        .with_slo(slo_objectives());
    let report = cluster.serve_pipelines(pipelines, &sessions).unwrap();
    assert!(
        report.activation_transfers() > 0,
        "3-stage chains on 2 devices must pay inter-device activations"
    );
    let trace = report.cluster.trace().expect("tracing was enabled");
    for outcome in report.cluster.outcomes() {
        assert_spans_reconcile(trace, outcome.request_id, outcome.latency_us).unwrap();
    }
    // The attribution engine surfaces the activation column.
    let attribution = explain(trace);
    assert!(
        attribution.rows().iter().any(|row| row.activation_us > 0.0),
        "some stage must charge an activation transfer on its start path"
    );

    let json = perfetto_trace_json_with_telemetry(
        trace,
        None,
        report.cluster.telemetry(),
        report.cluster.slo(),
        "pipeline observability",
    );
    let validation = validate_chrome_trace(&json).expect("trace must validate");
    assert!(validation.events > 0);
    assert!(json.contains("\"telemetry\""));
    for needle in ["stage-ready", "stage-transfer", "slo-admit", "activation"] {
        assert!(json.contains(needle), "missing {needle:?} in the export");
    }
}

/// The labeled Prometheus exposition is the plain one plus per-device,
/// per-class and SLO burn series.
#[test]
fn labeled_prometheus_exposition_carries_device_and_class_series() {
    let requests = random_trace(0x1abe1ed, 24, 3.0);
    let mut cluster = Cluster::new(FuVariant::V4, 2, 2)
        .unwrap()
        .with_route_policy(RoutePolicy::PowerOfTwoChoices)
        .with_tracing(TraceConfig::enabled())
        .with_telemetry(TelemetryConfig::windowed(2.0))
        .with_slo(slo_objectives());
    let report = cluster.serve(requests).unwrap();
    let plain = prometheus_text(report.metrics());
    let labeled =
        prometheus_text_labeled(report.metrics(), report.device_metrics(), &[], report.slo());
    assert!(labeled.starts_with(&plain), "the plain text is a prefix");
    for needle in [
        "tm_device_requests_total{device=\"0\"}",
        "tm_device_requests_total{device=\"1\"}",
        "tm_device_utilization{device=\"0\"}",
        "tm_device_availability{device=\"1\"}",
        "tm_slo_budget_consumed{slo_class=\"standard\"}",
        "tm_slo_peak_fast_burn{slo_class=\"standard\"}",
    ] {
        assert!(
            labeled.contains(needle),
            "missing {needle:?} in:\n{labeled}"
        );
    }
    // With no classes passed, no class series appear.
    assert!(!labeled.contains("tm_class_pipelines_total"));
}
