//! Property-based tests for the online runtime's event loop (vendored
//! `proptest` shim): arbitrary arrival/deadline traces never lose or
//! duplicate a request id, the virtual timeline stays monotone and
//! physically consistent per tile, and EDF dominates FIFO on feasible
//! single-tenant traces.

use proptest::prelude::*;
use rand::prelude::*;

use tm_overlay::{DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, ServeReport, Workload};

const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";
const POLY: &str = "kernel poly(x) { out y = (x * x + 3) * x; }";

/// A random mixed-kernel trace: non-decreasing arrivals, random workload
/// sizes and a coin-flip deadline per request.
fn random_trace(seed: u64, count: usize, deadline_scale_us: f64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let saxpy = KernelSpec::from_source("saxpy", SAXPY);
    let poly = KernelSpec::from_source("poly", POLY);
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            clock_us += rng.gen_range(0..=20u64) as f64 * 0.1;
            let (spec, inputs) = if rng.gen_bool(0.5) {
                (saxpy.clone(), 3)
            } else {
                (poly.clone(), 1)
            };
            let blocks = rng.gen_range(1..=4usize);
            let workload = Workload::random(inputs, blocks, seed ^ i as u64);
            let mut request = Request::new(i as u64, spec, workload).at(clock_us);
            if rng.gen_bool(0.5) {
                let budget = rng.gen_range(1..=30u64) as f64 * 0.1 * deadline_scale_us;
                request = request.with_deadline(clock_us + budget);
            }
            request
        })
        .collect()
}

/// Submitted ids must be partitioned exactly between outcomes and rejects.
fn assert_conservation(requests: &[Request], report: &ServeReport) -> Result<(), TestCaseError> {
    let mut ids: Vec<u64> = report
        .outcomes()
        .iter()
        .map(|o| o.request_id)
        .chain(report.rejected().iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    let submitted: Vec<u64> = requests.iter().map(|r| r.id).collect();
    prop_assert_eq!(ids, submitted);
    // Outcomes keep submission order (ids are assigned in order here).
    let outcome_ids: Vec<u64> = report.outcomes().iter().map(|o| o.request_id).collect();
    let mut sorted = outcome_ids.clone();
    sorted.sort_unstable();
    prop_assert_eq!(outcome_ids, sorted);
    Ok(())
}

/// Per tile, served requests must form non-overlapping busy intervals in
/// non-decreasing virtual time, each starting no earlier than its arrival.
fn assert_timeline(
    requests: &[Request],
    report: &ServeReport,
    tiles: usize,
) -> Result<(), TestCaseError> {
    let arrival_of = |id: u64| requests.iter().find(|r| r.id == id).unwrap().arrival_us;
    for tile in 0..tiles {
        let mut spans: Vec<(f64, f64, u64)> = report
            .outcomes()
            .iter()
            .filter(|o| o.tile == tile)
            .map(|o| (o.start_us, o.completion_us, o.request_id))
            .collect();
        spans.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut previous_end = 0.0_f64;
        for (start, completion, id) in spans {
            prop_assert!(
                start >= arrival_of(id),
                "request {id} started at {start} before its arrival"
            );
            prop_assert!(completion > start, "request {id} has an empty busy span");
            prop_assert!(
                start >= previous_end - 1e-9,
                "tile {tile} ran two requests at once (start {start} < previous end {previous_end})"
            );
            previous_end = completion;
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No arrival/deadline trace — with or without admission pressure — may
    /// lose or duplicate a request id, under any policy.
    #[test]
    fn no_request_is_lost_or_duplicated(
        (seed, count, tiles) in (any::<u64>(), 2usize..10, 1usize..4),
        limit in 1usize..12,
        policy_pick in 0usize..4,
    ) {
        let requests = random_trace(seed, count, 1.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let mut runtime = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit);
        let report = runtime.serve(requests.clone()).unwrap();
        assert_conservation(&requests, &report)?;
        prop_assert_eq!(
            report.metrics().requests + report.metrics().rejects,
            count
        );
    }

    /// The virtual timeline is physically consistent: per-tile busy spans
    /// never overlap, never precede their arrival, and completions are
    /// monotone along each tile.
    #[test]
    fn completions_are_monotone_and_tiles_never_double_book(
        (seed, count, tiles) in (any::<u64>(), 2usize..10, 1usize..4),
        policy_pick in 0usize..4,
    ) {
        let requests = random_trace(seed, count, 5.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let mut runtime = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy);
        let report = runtime.serve(requests.clone()).unwrap();
        assert_conservation(&requests, &report)?;
        assert_timeline(&requests, &report, tiles)?;
        // Latency figures must be consistent with the spans.
        for outcome in report.outcomes() {
            prop_assert!((outcome.latency_us - (outcome.queued_us
                + (outcome.completion_us - outcome.start_us))).abs() < 1e-9);
        }
    }

    /// On a single-tenant trace (one kernel, uniform service), EDF never
    /// misses a deadline that kernel-affinity FIFO meets: whenever FIFO
    /// meets every deadline the trace is feasible for a work-conserving
    /// scheduler, and non-preemptive EDF must then meet them all too
    /// (Jeffay-style optimality on each tile; both policies place
    /// identically, so the comparison decomposes per tile).
    #[test]
    fn edf_never_misses_a_deadline_that_affinity_meets_single_tenant(
        (seed, count, tiles) in (any::<u64>(), 2usize..10, 1usize..3),
        budget_factor in 3u64..20,
    ) {
        let spec = KernelSpec::from_source("saxpy", SAXPY);
        let workload = Workload::random(3, 3, seed);
        // Probe the uniform service time so deadline budgets scale with the
        // timing model instead of hard-coding microseconds.
        let service_us = {
            let mut probe = Runtime::new(FuVariant::V4, 1).unwrap();
            probe
                .serve(vec![Request::new(0, spec.clone(), workload.clone()).at(0.0)])
                .unwrap()
                .outcomes()[0]
                .completion_us
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED);
        let mut clock_us = 0.0;
        let requests: Vec<Request> = (0..count)
            .map(|i| {
                clock_us += rng.gen_range(0..=10u64) as f64 * 0.1 * service_us;
                let budget = rng.gen_range(1..=budget_factor) as f64 * 0.5 * service_us;
                Request::new(i as u64, spec.clone(), workload.clone())
                    .at(clock_us)
                    .with_deadline(clock_us + budget)
            })
            .collect();

        let mut affinity = Runtime::new(FuVariant::V4, tiles).unwrap();
        let fifo = affinity.serve(requests.clone()).unwrap();
        let mut edf = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(DispatchPolicy::EarliestDeadlineFirst);
        let edf_report = edf.serve(requests.clone()).unwrap();

        assert_conservation(&requests, &edf_report)?;
        prop_assert_eq!(fifo.metrics().deadline_requests, count);
        prop_assert_eq!(edf_report.metrics().deadline_requests, count);
        if fifo.metrics().deadline_misses == 0 {
            prop_assert!(
                edf_report.metrics().deadline_misses == 0,
                "FIFO met every deadline (trace is feasible) but EDF missed {} of {}",
                edf_report.metrics().deadline_misses,
                count
            );
        } else {
            // Overloaded trace: EDF carries no feasibility guarantee, but
            // the serve must still be complete and consistent.
            prop_assert!(edf_report.metrics().deadline_misses <= count);
        }
    }
}
