//! Fault-tolerance suite: the cluster tier under injected device deaths,
//! graceful drains, elastic revival and link degradation.
//!
//! The anchor property is **zero loss**: under any [`FaultPlan`] that
//! leaves at least one device serviceable, every submitted request appears
//! exactly once in the serve's observables — as a completed outcome or as
//! an explicit reject — never dropped, never duplicated, across every
//! routing policy and any schedule of kills, drains, revives and link
//! events. The deterministic tests then pin the per-fault semantics: a
//! killed device's in-flight work relocates and its store goes cold, a
//! draining device finishes resident work but admits nothing new, a
//! revived device rejoins and serves again, and a fully dead fleet rejects
//! instead of losing work.

use proptest::prelude::*;
use rand::prelude::*;

use tm_overlay::{
    Cluster, ClusterReport, FaultPlan, FuVariant, KernelSpec, Request, RoutePolicy, Scenario,
    ScenarioConfig, Workload,
};

const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";
const POLY: &str = "kernel poly(x) { out y = (x * x + 3) * x; }";
const GRAD: &str = "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }";

/// A mixed-kernel trace arriving in bursts of 8 — more simultaneous work
/// than any test fleet has tiles, so queues form on every device and kills
/// and drains always have queued and in-flight work to displace.
fn pressure_trace(count: usize, burst_spacing_us: f64, seed: u64) -> Vec<Request> {
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    (0..count)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, 1 + i % 3, seed ^ (i as u64 % 4));
            Request::new(i as u64, spec.clone(), workload).at((i / 8) as f64 * burst_spacing_us)
        })
        .collect()
}

fn cluster(devices: usize, tiles: usize, route: RoutePolicy) -> Cluster {
    Cluster::new(FuVariant::V4, devices, tiles)
        .unwrap()
        .with_route_policy(route)
}

/// Every submitted request shows up exactly once across outcomes and
/// rejects — the zero-loss ledger check.
fn assert_zero_loss(report: &ClusterReport, submitted: usize) {
    let mut seen = std::collections::HashSet::new();
    for outcome in report.outcomes() {
        assert!(
            seen.insert(outcome.request_id),
            "request {} completed twice",
            outcome.request_id
        );
    }
    for reject in report.rejected() {
        assert!(
            seen.insert(reject.id),
            "request {} both completed and rejected (or rejected twice)",
            reject.id
        );
    }
    assert_eq!(
        seen.len(),
        submitted,
        "{} submitted, {} accounted for ({} outcomes + {} rejects)",
        submitted,
        seen.len(),
        report.outcomes().len(),
        report.rejected().len()
    );
}

#[test]
fn a_killed_device_stops_serving_and_its_work_relocates() {
    let requests = pressure_trace(48, 0.4, 11);
    let baseline = cluster(3, 2, RoutePolicy::LeastLoaded)
        .serve(requests.clone())
        .unwrap();
    assert_eq!(baseline.outcomes().len(), 48);
    let kill_at = baseline.metrics().makespan_us * 0.3;

    let mut faulty =
        cluster(3, 2, RoutePolicy::LeastLoaded).with_fault_plan(FaultPlan::new().kill(kill_at, 0));
    let report = faulty.serve(requests).unwrap();

    // Nothing lost: the survivors absorb everything.
    assert_zero_loss(&report, 48);
    assert!(report.rejected().is_empty(), "two devices survived");
    // The dead device commits nothing past the kill instant.
    for outcome in report.outcomes() {
        if outcome.device == 0 {
            assert!(
                outcome.completion_us <= kill_at,
                "request {} completed on the dead device at {} (killed at {kill_at})",
                outcome.request_id,
                outcome.completion_us
            );
        }
    }
    // The ledger shows the fault: displaced work, an availability dent on
    // device 0 only, and (with queues formed) lost in-flight microseconds.
    assert_eq!(report.faults(), 1);
    assert!(report.requeues() > 0, "queued/in-flight work was displaced");
    let availability = report.availability();
    assert!(availability[0] < 1.0, "device 0 was down");
    assert_eq!(availability[1], 1.0);
    assert_eq!(availability[2], 1.0);
    let device = &report.device_metrics()[0];
    assert!(device.availability < 1.0);
    assert_eq!(device.requeues_out, report.requeues());
    assert_eq!(device.faults, 1);
}

#[test]
fn a_draining_device_finishes_resident_work_but_admits_nothing_new() {
    let requests = pressure_trace(40, 0.4, 7);
    let baseline = cluster(2, 2, RoutePolicy::LeastLoaded)
        .serve(requests.clone())
        .unwrap();
    let drain_at = baseline.metrics().makespan_us * 0.3;

    let mut faulty = cluster(2, 2, RoutePolicy::LeastLoaded)
        .with_fault_plan(FaultPlan::new().drain(drain_at, 1));
    let report = faulty.serve(requests).unwrap();

    assert_zero_loss(&report, 40);
    assert!(report.rejected().is_empty(), "device 0 stayed serviceable");
    // Runs in flight at the drain instant complete (graceful, not a kill),
    // but nothing *starts* on the draining device afterwards.
    for outcome in report.outcomes() {
        if outcome.device == 1 {
            assert!(
                outcome.start_us <= drain_at,
                "request {} started on the draining device at {} (drained at {drain_at})",
                outcome.request_id,
                outcome.start_us
            );
        }
    }
    // Graceful means no destroyed work — only queued displacement.
    assert!(report.requeues() > 0, "its queue re-routed");
    assert_eq!(
        report.lost_work_us(),
        0.0,
        "no in-flight work was abandoned"
    );
    assert!(report.availability()[1] < 1.0);
}

#[test]
fn a_revived_device_rejoins_the_fleet_and_serves_again() {
    let requests = pressure_trace(60, 0.4, 3);
    let baseline = cluster(2, 1, RoutePolicy::LeastLoaded)
        .serve(requests.clone())
        .unwrap();
    let makespan = baseline.metrics().makespan_us;
    let (kill_at, revive_at) = (makespan * 0.2, makespan * 0.4);

    let mut faulty = cluster(2, 1, RoutePolicy::LeastLoaded)
        .with_fault_plan(FaultPlan::new().kill(kill_at, 0).revive(revive_at, 0));
    let report = faulty.serve(requests).unwrap();

    assert_zero_loss(&report, 60);
    assert!(report.rejected().is_empty());
    // The revived device picks work back up: with one tile per device and
    // sustained pressure, least-loaded routing must use it again.
    assert!(
        report
            .outcomes()
            .iter()
            .any(|o| o.device == 0 && o.start_us > revive_at),
        "device 0 never served after its revival"
    );
    // Its availability reflects the down window, not the whole serve.
    let availability = report.availability()[0];
    assert!(
        availability < 1.0 && availability > 0.0,
        "got {availability}"
    );
    // Revival is cold: the store was wiped, so the device re-acquires
    // kernel images it had already paid for before the kill.
    let baseline_loads = baseline.device_metrics()[0].host_loads + baseline.transfers();
    let faulty_loads = report.device_metrics()[0].host_loads + report.transfers();
    assert!(
        faulty_loads > baseline_loads,
        "cold rejoin must re-acquire images ({faulty_loads} vs {baseline_loads})"
    );
}

#[test]
fn a_fully_dead_fleet_rejects_instead_of_losing_requests() {
    let requests = pressure_trace(12, 1.0, 5);
    let mut faulty = cluster(2, 2, RoutePolicy::KernelHash)
        .with_fault_plan(FaultPlan::new().kill(0.0, 0).kill(0.0, 1));
    let report = faulty.serve(requests).unwrap();
    assert!(report.outcomes().is_empty(), "no device could serve");
    assert_eq!(report.rejected().len(), 12);
    assert_zero_loss(&report, 12);
    // Nothing completed, so the serve's makespan is zero — and availability
    // over a zero-length serve pins at 1.0 by convention.
    assert_eq!(report.availability(), vec![1.0, 1.0]);
    assert_eq!(report.faults(), 2);
}

#[test]
fn degraded_links_stretch_cross_device_acquisitions() {
    // Least-loaded routing bounces the shared kernels across both devices,
    // so images move over the interconnect; a 50x link multiplier makes
    // those transfers visibly longer without changing what completes.
    let requests = pressure_trace(36, 0.3, 9);
    let plain = cluster(2, 1, RoutePolicy::LeastLoaded)
        .serve(requests.clone())
        .unwrap();
    assert!(plain.transfers() > 0, "the trace must exercise transfers");
    let mut slowed = cluster(2, 1, RoutePolicy::LeastLoaded)
        .with_fault_plan(FaultPlan::new().degrade_links(0.0, 50.0));
    let report = slowed.serve(requests).unwrap();
    assert_zero_loss(&report, 36);
    assert!(
        report.metrics().makespan_us > plain.metrics().makespan_us,
        "slower links must stretch the serve ({} vs {})",
        report.metrics().makespan_us,
        plain.metrics().makespan_us
    );
    // Degradation is not a fault: nothing displaced, nobody unavailable.
    assert_eq!(report.faults(), 0);
    assert_eq!(report.availability(), vec![1.0, 1.0]);
}

#[test]
fn invalid_fault_plans_are_rejected_at_serve_time() {
    let requests = pressure_trace(4, 1.0, 1);
    let mut out_of_range =
        cluster(2, 1, RoutePolicy::KernelHash).with_fault_plan(FaultPlan::new().kill(10.0, 9));
    let err = out_of_range.serve(requests.clone()).unwrap_err();
    assert!(err.to_string().contains("device 9"), "{err}");
    let mut bad_multiplier = cluster(2, 1, RoutePolicy::KernelHash)
        .with_fault_plan(FaultPlan::new().degrade_links(10.0, -2.0));
    assert!(bad_multiplier.serve(requests).is_err());
}

#[test]
fn scenario_traffic_survives_a_rolling_upgrade() {
    // Diurnal load with a flash crowd and tenant churn, served through a
    // rolling drain/undrain sweep of the whole fleet — the end-to-end
    // composition the subsystem exists for.
    let scenario = Scenario::new(ScenarioConfig {
        base_rate_per_ms: 300.0,
        duration_us: 400.0,
        diurnal_amplitude: 0.5,
        diurnal_period_us: 200.0,
        tenants: 3,
        hot_tenant_weight: 6.0,
        churn_period_us: 150.0,
        pipeline_depth: 1,
        seed: 42,
    })
    .with_flash_crowd(tm_overlay::FlashCrowd {
        start_us: 100.0,
        duration_us: 80.0,
        multiplier: 3.0,
    });
    let specs = [
        KernelSpec::from_source("saxpy", SAXPY),
        KernelSpec::from_source("poly", POLY),
        KernelSpec::from_source("grad", GRAD),
    ];
    let inputs = [3usize, 1, 5];
    let requests: Vec<Request> = scenario
        .arrivals()
        .iter()
        .enumerate()
        .map(|(i, arrival)| {
            let workload = Workload::random(inputs[arrival.tenant], 1, i as u64 % 4);
            Request::new(i as u64, specs[arrival.tenant].clone(), workload).at(arrival.arrival_us)
        })
        .collect();
    assert!(requests.len() > 50, "got {}", requests.len());

    let plan = FaultPlan::rolling_upgrade(4, 40.0, 60.0, 100.0);
    let mut fleet = cluster(4, 2, RoutePolicy::PowerOfTwoChoices).with_fault_plan(plan);
    let report = fleet.serve(requests.clone()).unwrap();

    assert_zero_loss(&report, requests.len());
    assert!(report.rejected().is_empty(), "drains are staggered");
    assert_eq!(report.faults(), 4, "each device drained once");
    assert_eq!(report.lost_work_us(), 0.0, "drains abandon nothing");
    for (device, availability) in report.availability().iter().enumerate() {
        assert!(
            *availability < 1.0,
            "device {device} never went down in the rolling sweep"
        );
    }
}

/// A lean randomized trace for the property tests (mirrors the equivalence
/// suite's generator, scaled down).
fn random_trace(seed: u64, count: usize) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            if rng.gen_range(0..3u32) > 0 {
                clock_us += rng.gen_range(0..=20u64) as f64 * 0.1;
            }
            let (spec, inputs) = &specs[rng.gen_range(0..specs.len())];
            let workload = Workload::random(
                *inputs,
                rng.gen_range(1..=3usize),
                seed ^ rng.gen_range(0..4u64),
            );
            let mut request = Request::new(i as u64, spec.clone(), workload).at(clock_us);
            if rng.gen_bool(0.5) {
                request = request.with_deadline(clock_us + rng.gen_range(1..=30u64) as f64 * 0.3);
            }
            request
        })
        .collect()
}

/// A random fault schedule that never touches device 0, so at least one
/// device stays serviceable throughout.
fn random_plan(seed: u64, devices: usize, horizon_us: f64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    // The vendored rand stub only samples integer ranges; draw permille.
    let mut draw = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut frac = move || draw.gen_range(0..1_000u64) as f64 / 1_000.0;
    let mut plan = FaultPlan::new();
    for device in 1..devices {
        match rng.gen_range(0..4u32) {
            0 => {} // this device is spared
            1 => {
                // A kill, sometimes followed by a revival.
                let at = frac() * horizon_us;
                plan = plan.kill(at, device);
                if rng.gen_bool(0.6) {
                    plan = plan.revive(at + frac() * horizon_us, device);
                }
            }
            2 => {
                let at = frac() * horizon_us;
                plan = plan.drain(at, device);
                if rng.gen_bool(0.6) {
                    plan = plan.undrain(at + frac() * horizon_us, device);
                }
            }
            _ => {
                // A blip: kill then quick revival.
                plan = plan.merged(FaultPlan::blip(
                    device,
                    frac() * horizon_us,
                    0.1 + frac() * horizon_us / 2.0,
                ));
            }
        }
    }
    if rng.gen_bool(0.3) {
        plan = plan.degrade_links(frac() * horizon_us, 1.0 + frac() * 15.0);
        if rng.gen_bool(0.5) {
            plan = plan.degrade_links(frac() * horizon_us, 1.0);
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Zero loss under arbitrary fault schedules: with device 0 always
    /// serviceable, every request completes or is explicitly rejected —
    /// exactly once — under every routing policy.
    #[test]
    fn no_request_is_lost_under_any_fault_schedule(
        (seed, count, devices, tiles) in (any::<u64>(), 8usize..28, 2usize..5, 1usize..3),
        route_pick in 0usize..3,
        horizon_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count);
        let route = RoutePolicy::ALL[route_pick];
        // Horizons from "faults land mid-serve" to "faults mostly after".
        let horizon_us = [5.0, 25.0, 120.0][horizon_pick];
        let plan = random_plan(seed.wrapping_add(1), devices, horizon_us);
        let mut fleet = cluster(devices, tiles, route).with_fault_plan(plan);
        let report = fleet.serve(requests).unwrap();

        let mut seen = std::collections::HashSet::new();
        for outcome in report.outcomes() {
            prop_assert!(seen.insert(outcome.request_id),
                "request {} completed twice", outcome.request_id);
        }
        for reject in report.rejected() {
            prop_assert!(seen.insert(reject.id),
                "request {} double-counted", reject.id);
        }
        prop_assert_eq!(seen.len(), count);
        // The ledger's totals are consistent with the per-device breakdown.
        let device_requeues: usize = report
            .device_metrics()
            .iter()
            .map(|d| d.requeues_out)
            .sum();
        prop_assert_eq!(device_requeues, report.requeues());
        for availability in report.availability() {
            prop_assert!((0.0..=1.0).contains(&availability));
        }
    }

    /// Warm resubmission after a faulty serve: the fault state resets, so
    /// a follow-up serve with no plan behaves like a healthy fleet.
    #[test]
    fn fault_state_does_not_leak_across_serves(
        (seed, count) in (any::<u64>(), 6usize..16),
        route_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count);
        let route = RoutePolicy::ALL[route_pick];
        let plan = random_plan(seed.wrapping_add(9), 3, 10.0);
        let mut fleet = cluster(3, 2, route).with_fault_plan(plan);
        let first = fleet.serve(requests.clone()).unwrap();
        prop_assert_eq!(first.outcomes().len() + first.rejected().len(), count);
        // Re-serving re-runs the same plan: the ledger is rebuilt, not
        // accumulated.
        let again = fleet.serve(requests).unwrap();
        prop_assert_eq!(again.faults(), first.faults());
        prop_assert_eq!(again.outcomes().len() + again.rejected().len(), count);
    }
}
