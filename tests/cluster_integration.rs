//! Integration suite for the multi-device cluster tier: routing policies ×
//! dispatch policies over mixed benchmark traces, with every outcome checked
//! against the DFG reference evaluator, transfer accounting audited, and the
//! per-device metrics rolled up against the cluster totals.

use std::collections::HashSet;

use tm_overlay::dfg::evaluate_stream;
use tm_overlay::frontend::LowerOptions;
use tm_overlay::{
    Benchmark, Cluster, ClusterReport, DispatchPolicy, FuVariant, KernelSpec, Request, RoutePolicy,
    TransferModel, Workload,
};

/// A mixed-kernel trace over the paper's benchmark suite: `count` requests,
/// one every `spacing_us`, cycling through four kernels with per-request
/// deadlines at `budget_us`.
fn benchmark_trace(count: usize, blocks: usize, spacing_us: f64, budget_us: f64) -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Qspline,
        Benchmark::Poly5,
    ];
    (0..count)
        .map(|i| {
            let benchmark = suite[i % suite.len()];
            let spec = KernelSpec::from_benchmark(benchmark).unwrap();
            let inputs = benchmark.dfg().unwrap().num_inputs();
            let workload = Workload::random(inputs, blocks, 0xCAFE ^ i as u64);
            let arrival = i as f64 * spacing_us;
            Request::new(i as u64, spec, workload)
                .at(arrival)
                .with_deadline(arrival + budget_us)
        })
        .collect()
}

/// Checks every outcome against the DFG reference evaluator and audits the
/// cluster-level invariants every serve must uphold.
fn verify_report(requests: &[Request], report: &ClusterReport, devices: usize) {
    let options = LowerOptions::default();
    let find = |id: u64| requests.iter().find(|r| r.id == id).unwrap();
    for outcome in report.outcomes() {
        let request = find(outcome.request_id);
        let dfg = request.kernel.dfg(&options).unwrap();
        let expected = evaluate_stream(&dfg, request.workload.records()).unwrap();
        assert_eq!(
            outcome.outputs(),
            expected,
            "request {} diverged from the reference evaluator",
            request.id
        );
        assert!(outcome.device < devices, "device id out of range");
        assert!(outcome.start_us >= request.arrival_us);
        assert!(outcome.completion_us > outcome.start_us);
    }
    // Served and rejected ids partition the submitted ids.
    let mut ids: Vec<u64> = report
        .outcomes()
        .iter()
        .map(|o| o.request_id)
        .chain(report.rejected().iter().map(|r| r.id))
        .collect();
    ids.sort_unstable();
    let mut expected: Vec<u64> = requests.iter().map(|r| r.id).collect();
    expected.sort_unstable();
    assert_eq!(ids, expected, "ids are conserved");
    // Per-device metrics roll up to the cluster totals.
    let totals = report.metrics();
    let per_device = report.device_metrics();
    assert_eq!(per_device.len(), devices);
    assert_eq!(
        per_device.iter().map(|d| d.requests).sum::<usize>(),
        totals.requests
    );
    assert_eq!(
        per_device.iter().map(|d| d.rejects).sum::<usize>(),
        totals.rejects
    );
    assert_eq!(
        per_device.iter().map(|d| d.switch_count).sum::<usize>(),
        totals.switch_count
    );
    assert_eq!(
        per_device.iter().map(|d| d.deadline_misses).sum::<usize>(),
        totals.deadline_misses
    );
    let flattened_tiles: Vec<usize> = per_device
        .iter()
        .flat_map(|d| d.tile_requests.iter().copied())
        .collect();
    assert_eq!(flattened_tiles, totals.tile_requests);
    assert!(totals.p50_latency_us <= totals.p99_latency_us);
    assert!(totals.p99_latency_us <= totals.max_latency_us);
    for device in per_device {
        assert!(device.max_latency_us <= totals.max_latency_us);
    }
}

#[test]
fn every_routing_policy_serves_the_mixed_trace_correctly() {
    let requests = benchmark_trace(32, 6, 1.0, 5_000.0);
    for route in RoutePolicy::ALL {
        for policy in [
            DispatchPolicy::KernelAffinity,
            DispatchPolicy::EarliestDeadlineFirst,
        ] {
            let mut cluster = Cluster::new(FuVariant::V4, 4, 2)
                .unwrap()
                .with_policy(policy)
                .with_route_policy(route);
            let report = cluster.serve(requests.clone()).unwrap();
            assert_eq!(report.route_policy(), route);
            assert_eq!(report.policy(), policy);
            verify_report(&requests, &report, 4);
        }
    }
}

#[test]
fn feed_forward_clusters_serve_correctly_too() {
    // V1 tiles pay PCAP-scale switches; the cluster must still produce
    // reference-exact outputs and coherent accounting.
    let requests = benchmark_trace(16, 4, 100.0, 1e9);
    let mut cluster = Cluster::new(FuVariant::V1, 2, 2)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded);
    let report = cluster.serve(requests.clone()).unwrap();
    verify_report(&requests, &report, 2);
    assert!(
        report.metrics().total_switch_us > 1_000.0,
        "PCAP switches are on the millisecond scale"
    );
}

#[test]
fn kernel_hash_sharding_switches_less_than_least_loaded_balancing() {
    // 4 kernels over 4 devices: sharding gives each device (at most) its
    // own kernel subset, so it context-switches less than load balancing,
    // which keeps cycling all kernels through all devices.
    let requests = benchmark_trace(64, 6, 0.25, 5_000.0);
    let serve = |route: RoutePolicy| {
        Cluster::new(FuVariant::V4, 4, 1)
            .unwrap()
            .with_route_policy(route)
            .serve(requests.clone())
            .unwrap()
    };
    let sharded = serve(RoutePolicy::KernelHash);
    let balanced = serve(RoutePolicy::LeastLoaded);
    assert!(
        sharded.metrics().switch_count < balanced.metrics().switch_count,
        "sharding must switch less: {} vs {}",
        sharded.metrics().switch_count,
        balanced.metrics().switch_count
    );
    assert_eq!(sharded.transfers(), 0, "sharded kernels never move");
}

#[test]
fn transfer_accounting_matches_first_off_home_placements() {
    // Every (device, kernel) pair seen off the kernel's home shard acquires
    // the image exactly once (link transfer or host load) while the store
    // has room; transfers report their bytes.
    let requests = benchmark_trace(48, 4, 0.5, 1e9);
    let mut cluster = Cluster::new(FuVariant::V4, 3, 2)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded);
    let report = cluster.serve(requests.clone()).unwrap();
    verify_report(&requests, &report, 3);
    let served_pairs: HashSet<(usize, String)> = report
        .outcomes()
        .iter()
        .map(|o| (o.device, o.kernel.to_string()))
        .collect();
    let distinct_kernels: HashSet<String> = report
        .outcomes()
        .iter()
        .map(|o| o.kernel.to_string())
        .collect();
    // Each kernel's home shard holds its image for free (it compiled
    // there); every other (device, kernel) pair acquires exactly once while
    // the stores have room. The home may or may not have served requests,
    // hence the one-per-kernel slack in the lower bound.
    let acquisitions = report.transfers() + report.host_loads();
    assert!(
        acquisitions <= served_pairs.len()
            && acquisitions + distinct_kernels.len() >= served_pairs.len(),
        "acquisitions {} outside [{}, {}]",
        acquisitions,
        served_pairs.len() - distinct_kernels.len(),
        served_pairs.len()
    );
    assert!(
        acquisitions > 0,
        "balancing a 4-kernel trace over 3 devices must move images"
    );
    if report.transfers() > 0 {
        assert!(report.transfer_bytes() > 0);
    }
}

#[test]
fn more_devices_shed_an_overload() {
    // The same overload trace on 1 vs 4 devices (same per-device shape):
    // capacity quadruples, so deadline misses drop and makespan shrinks.
    let requests = benchmark_trace(64, 16, 0.2, 5.0);
    let serve = |devices: usize| {
        Cluster::new(FuVariant::V4, devices, 2)
            .unwrap()
            .with_policy(DispatchPolicy::EarliestDeadlineFirst)
            .with_route_policy(RoutePolicy::LeastLoaded)
            .serve(requests.clone())
            .unwrap()
    };
    let single = serve(1);
    let quad = serve(4);
    verify_report(&requests, &quad, 4);
    assert!(
        quad.metrics().deadline_misses < single.metrics().deadline_misses,
        "4 devices must miss fewer deadlines ({} vs {})",
        quad.metrics().deadline_misses,
        single.metrics().deadline_misses
    );
    assert!(quad.metrics().makespan_us < single.metrics().makespan_us);
}

#[test]
fn expensive_transfer_models_discourage_off_home_placement_under_power_of_two() {
    // With a prohibitive link+host model, power-of-two's completion
    // estimates see the acquisition cost and lean toward the device already
    // holding each kernel; with a free model the same trace spreads at
    // least as widely.
    let requests = benchmark_trace(40, 4, 0.5, 1e9);
    let serve = |transfer: TransferModel| {
        Cluster::new(FuVariant::V4, 4, 1)
            .unwrap()
            .with_route_policy(RoutePolicy::PowerOfTwoChoices)
            .with_transfer_model(transfer)
            .serve(requests.clone())
            .unwrap()
    };
    let expensive = serve(TransferModel {
        hop_latency_us: 10_000.0,
        link_us_per_byte: 1.0,
        host_latency_us: 50_000.0,
        host_us_per_byte: 1.0,
    });
    let free = serve(TransferModel::free());
    let spread = |report: &ClusterReport| {
        report
            .outcomes()
            .iter()
            .map(|o| (o.device, o.kernel.to_string()))
            .collect::<HashSet<_>>()
            .len()
    };
    assert!(
        spread(&expensive) <= spread(&free),
        "a prohibitive transfer model must not spread kernels wider \
         ({} vs {} (device, kernel) pairs)",
        spread(&expensive),
        spread(&free)
    );
    verify_report(&requests, &expensive, 4);
    verify_report(&requests, &free, 4);
}

#[test]
fn cluster_streaming_matches_batch_and_reports_backpressure_free_ingest() {
    let requests = benchmark_trace(20, 4, 1.0, 1e9);
    let build = || {
        Cluster::new(FuVariant::V4, 2, 2)
            .unwrap()
            .with_route_policy(RoutePolicy::KernelHash)
            .with_ingest_capacity(2)
    };
    let batch = build().serve(requests.clone()).unwrap();
    let streamed = build()
        .serve_stream(|submitter| {
            for request in &requests {
                submitter.submit(request.clone()).unwrap();
            }
        })
        .unwrap();
    assert_eq!(batch.outcomes().len(), streamed.outcomes().len());
    for (lhs, rhs) in batch.outcomes().iter().zip(streamed.outcomes()) {
        assert_eq!(lhs.request_id, rhs.request_id);
        assert_eq!(lhs.device, rhs.device);
        assert_eq!(lhs.tile, rhs.tile);
        assert_eq!(lhs.completion_us, rhs.completion_us);
        assert_eq!(lhs.outputs(), rhs.outputs());
    }
    assert_eq!(batch.metrics(), streamed.metrics());
}

#[test]
fn sharded_serves_pass_the_full_cluster_audit() {
    let requests = benchmark_trace(48, 6, 1.0, 5_000.0);
    for threads in [2, 4, 16] {
        let mut cluster = Cluster::new(FuVariant::V4, 4, 2)
            .unwrap()
            .with_policy(DispatchPolicy::KernelAffinity)
            .with_route_policy(RoutePolicy::KernelHash)
            .with_threads(threads);
        assert_eq!(cluster.threads(), threads);
        let report = cluster.serve(requests.clone()).unwrap();
        verify_report(&requests, &report, 4);
    }
}

#[test]
fn thread_budget_defaults_to_one_and_clamps_at_one() {
    assert_eq!(Cluster::new(FuVariant::V4, 2, 2).unwrap().threads(), 1);
    let clamped = Cluster::new(FuVariant::V4, 2, 2).unwrap().with_threads(0);
    assert_eq!(clamped.threads(), 1);
}

#[test]
fn ineligible_shapes_still_serve_under_a_thread_budget() {
    // Single device, dynamic routing, and bounded admission all fall back
    // to the serial loop; a thread budget must never change what they serve.
    let requests = benchmark_trace(24, 6, 1.0, 5_000.0);
    let mut single = Cluster::new(FuVariant::V4, 1, 3).unwrap().with_threads(4);
    let report = single.serve(requests.clone()).unwrap();
    verify_report(&requests, &report, 1);
    for route in [RoutePolicy::LeastLoaded, RoutePolicy::PowerOfTwoChoices] {
        let mut cluster = Cluster::new(FuVariant::V4, 3, 2)
            .unwrap()
            .with_route_policy(route)
            .with_threads(4);
        let report = cluster.serve(requests.clone()).unwrap();
        verify_report(&requests, &report, 3);
    }
    let mut limited = Cluster::new(FuVariant::V4, 3, 2)
        .unwrap()
        .with_route_policy(RoutePolicy::KernelHash)
        .with_admission_limit(2)
        .with_threads(4);
    let report = limited.serve(requests.clone()).unwrap();
    verify_report(&requests, &report, 3);
}

#[test]
fn sharded_and_serial_loops_reject_bad_arrivals_identically() {
    // The sharded pre-pass validates arrivals in submission order, so both
    // loops must surface the same error for the same malformed trace.
    let build = |threads: usize| {
        Cluster::new(FuVariant::V4, 3, 2)
            .unwrap()
            .with_route_policy(RoutePolicy::KernelHash)
            .with_threads(threads)
    };
    let mut invalid = benchmark_trace(8, 4, 1.0, 5_000.0);
    invalid[5] = invalid[5].clone().at(f64::NAN);
    let serial = build(1).serve(invalid.clone()).unwrap_err();
    let sharded = build(4).serve(invalid).unwrap_err();
    // Compare the rendered errors: the payload carries the NaN arrival, and
    // NaN != NaN under `PartialEq`.
    assert_eq!(format!("{serial:?}"), format!("{sharded:?}"));

    let mut regressing = benchmark_trace(8, 4, 1.0, 5_000.0);
    regressing[6] = regressing[6].clone().at(0.5);
    let serial = build(1).serve(regressing.clone()).unwrap_err();
    let sharded = build(4).serve(regressing).unwrap_err();
    assert_eq!(serial, sharded);
}
