//! Index/scan equivalence property suite: the indexed dispatcher (residency
//! index placement + per-tile ordered queues + O(1) waiting counters) must
//! produce **identical** decisions to the retained linear-scan reference
//! implementation on every trace — same tile choices, same outcomes (to the
//! bit, including modeled timestamps), same rejects, same metrics — across
//! all four `DispatchPolicy` variants, with and without admission pressure.
//!
//! This is the safety net under the hot-path work: any divergence between
//! `ScanMode::Indexed` and `ScanMode::LinearReference` is a bug in the
//! index, not a tolerable approximation.

//! The cluster tier rides on the same safety net: a **1-device
//! [`Cluster`]** must reproduce [`Runtime`]'s outcomes bitwise on the same
//! randomized traces (routing collapses, no image is ever acquired), and
//! `RoutePolicy::KernelHash` must assign every request of a kernel to the
//! same device on every resubmission.
//!
//! The sharded (parallel) cluster loop extends the net one more tier:
//! `Cluster::with_threads(n)` on an eligible configuration must reproduce
//! the serial loop **bitwise** — outcomes, modeled timestamps, the full
//! metrics struct, the per-device breakdown and the recorded trace — for
//! every thread budget, across repeated runs, and on warm resubmission;
//! ineligible configurations must fall back to the serial loop unchanged.

use proptest::prelude::*;
use rand::prelude::*;

use tm_overlay::{
    BatchConfig, Cluster, ClusterReport, DispatchPolicy, FaultPlan, FuVariant, KernelSpec,
    ReplicationConfig, Request, RoutePolicy, Runtime, ScanMode, ServeReport, TraceConfig, Workload,
};

const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";
const POLY: &str = "kernel poly(x) { out y = (x * x + 3) * x; }";
const GRAD: &str = "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }";

/// A random mixed-kernel trace: non-decreasing arrivals (with simultaneous
/// bursts), a small workload pool so the sim memo and in-flight dedup paths
/// both engage, and a coin-flip deadline per request.
fn random_trace(seed: u64, count: usize, deadline_scale_us: f64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            // ~1 in 3 requests arrives simultaneously with its predecessor,
            // exercising the same-timestamp event ordering.
            if rng.gen_range(0..3u32) > 0 {
                clock_us += rng.gen_range(0..=20u64) as f64 * 0.1;
            }
            let (spec, inputs) = &specs[rng.gen_range(0..specs.len())];
            let blocks = rng.gen_range(1..=3usize);
            // Draw workloads from a pool of 4 seeds per kernel so repeats
            // are common enough to hit the memo and the in-flight joins.
            let workload = Workload::random(*inputs, blocks, seed ^ rng.gen_range(0..4u64));
            let mut request = Request::new(i as u64, spec.clone(), workload).at(clock_us);
            if rng.gen_bool(0.5) {
                let budget = rng.gen_range(1..=30u64) as f64 * 0.1 * deadline_scale_us;
                request = request.with_deadline(clock_us + budget);
            }
            request
        })
        .collect()
}

/// Every observable of the two serves must match exactly.
fn assert_reports_identical(
    indexed: &ServeReport,
    linear: &ServeReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(indexed.outcomes().len(), linear.outcomes().len());
    for (lhs, rhs) in indexed.outcomes().iter().zip(linear.outcomes()) {
        prop_assert_eq!(lhs.request_id, rhs.request_id);
        prop_assert_eq!(lhs.tile, rhs.tile);
        prop_assert_eq!(lhs.start_us, rhs.start_us);
        prop_assert_eq!(lhs.completion_us, rhs.completion_us);
        prop_assert_eq!(lhs.queued_us, rhs.queued_us);
        prop_assert_eq!(lhs.latency_us, rhs.latency_us);
        prop_assert_eq!(lhs.switched, rhs.switched);
        prop_assert_eq!(lhs.missed_deadline, rhs.missed_deadline);
        prop_assert_eq!(&lhs.outputs(), &rhs.outputs());
    }
    prop_assert_eq!(indexed.rejected(), linear.rejected());
    // The full metrics struct — counters, rates, depths, per-tile vectors,
    // event counts and memo stats — must agree field for field.
    prop_assert_eq!(indexed.metrics(), linear.metrics());
    Ok(())
}

fn runtimes(
    tiles: usize,
    policy: DispatchPolicy,
    limit: usize,
    variant: FuVariant,
) -> (Runtime, Runtime) {
    let indexed = Runtime::new(variant, tiles)
        .unwrap()
        .with_policy(policy)
        .with_admission_limit(limit);
    let linear = Runtime::new(variant, tiles)
        .unwrap()
        .with_policy(policy)
        .with_admission_limit(limit)
        .with_scan_mode(ScanMode::LinearReference);
    (indexed, linear)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unconstrained admission: placements, timelines, metrics identical
    /// under every policy.
    #[test]
    fn indexed_and_linear_scans_serve_identically(
        (seed, count, tiles) in (any::<u64>(), 4usize..24, 1usize..6),
        policy_pick in 0usize..4,
        deadline_scale in 1u64..8,
    ) {
        let requests = random_trace(seed, count, deadline_scale as f64);
        let policy = DispatchPolicy::ALL[policy_pick];
        let (mut indexed, mut linear) = runtimes(tiles, policy, usize::MAX, FuVariant::V4);
        prop_assert_eq!(indexed.scan_mode(), ScanMode::Indexed);
        prop_assert_eq!(linear.scan_mode(), ScanMode::LinearReference);
        let a = indexed.serve(requests.clone()).unwrap();
        let b = linear.serve(requests).unwrap();
        assert_reports_identical(&a, &b)?;
    }

    /// Admission pressure: the reject decisions depend on the O(1) waiting
    /// counter vs the O(tiles) recomputation — they must agree request for
    /// request.
    #[test]
    fn admission_rejects_are_identical_under_pressure(
        (seed, count, tiles) in (any::<u64>(), 8usize..24, 1usize..4),
        policy_pick in 0usize..4,
        limit in 0usize..6,
    ) {
        let requests = random_trace(seed, count, 2.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let (mut indexed, mut linear) = runtimes(tiles, policy, limit, FuVariant::V4);
        let a = indexed.serve(requests.clone()).unwrap();
        let b = linear.serve(requests).unwrap();
        prop_assert!(a.metrics().rejects + a.outcomes().len() == count);
        assert_reports_identical(&a, &b)?;
    }

    /// The feed-forward variants flip the switch-cost scale to PCAP
    /// milliseconds, changing which placements tie — the index must track
    /// that too.
    #[test]
    fn equivalence_holds_on_pcap_pools(
        (seed, count, tiles) in (any::<u64>(), 4usize..16, 2usize..5),
        policy_pick in 0usize..4,
    ) {
        let requests = random_trace(seed, count, 50.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let (mut indexed, mut linear) = runtimes(tiles, policy, usize::MAX, FuVariant::V1);
        let a = indexed.serve(requests.clone()).unwrap();
        let b = linear.serve(requests).unwrap();
        assert_reports_identical(&a, &b)?;
    }

    /// A 1-device cluster is `Runtime` — bit for bit: same tiles, same
    /// modeled timestamps, same rejects, same metrics — under every
    /// (dispatch policy × routing policy) combination and admission limit,
    /// with device 0 stamped on every outcome and zero transfer traffic.
    #[test]
    fn a_one_device_cluster_reproduces_runtime_exactly(
        (seed, count, tiles) in (any::<u64>(), 4usize..20, 1usize..5),
        policy_pick in 0usize..4,
        route_pick in 0usize..3,
        limit_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count, 3.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let route = RoutePolicy::ALL[route_pick];
        let limit = [usize::MAX, 4, 1][limit_pick];
        let mut runtime = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit);
        let mut cluster = Cluster::new(FuVariant::V4, 1, tiles)
            .unwrap()
            .with_policy(policy)
            .with_route_policy(route)
            .with_admission_limit(limit);
        let reference = runtime.serve(requests.clone()).unwrap();
        let report = cluster.serve(requests).unwrap();
        assert_cluster_matches_runtime(&report, &reference)?;
    }

    /// The control plane at its disabled settings (`max_batch = 1`,
    /// replication off) is bitwise identical to the pre-control-plane
    /// runtime: explicitly configuring the disabled `BatchConfig` /
    /// `ReplicationConfig` must reproduce the default-built `Runtime` and
    /// the 1-device `Cluster` exactly — outcomes, timestamps, rejects and
    /// the full metrics struct (including all-zero batch counters) — under
    /// every policy, both scan modes and admission pressure.
    #[test]
    fn disabled_control_plane_is_bitwise_identical_to_the_baseline(
        (seed, count, tiles) in (any::<u64>(), 4usize..20, 1usize..5),
        policy_pick in 0usize..4,
        scan_pick in 0usize..2,
        limit_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count, 3.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let scan = [ScanMode::Indexed, ScanMode::LinearReference][scan_pick];
        let limit = [usize::MAX, 4, 1][limit_pick];
        let mut plain = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit)
            .with_scan_mode(scan);
        let mut pinned = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit)
            .with_scan_mode(scan)
            .with_batching(BatchConfig { max_batch: 1, max_hold_us: 0.0 });
        let baseline = plain.serve(requests.clone()).unwrap();
        let disabled = pinned.serve(requests.clone()).unwrap();
        assert_reports_identical(&disabled, &baseline)?;
        prop_assert_eq!(disabled.metrics().batch.batches_formed, 0);
        prop_assert_eq!(disabled.metrics().batch.switches_avoided, 0);

        // And the 1-device cluster with the disabled control plane pinned
        // explicitly still reproduces the runtime bit for bit.
        let mut cluster = Cluster::new(FuVariant::V4, 1, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit)
            .with_batching(BatchConfig { max_batch: 1, max_hold_us: 0.0 })
            .with_replication(ReplicationConfig::disabled());
        let mut reference = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_admission_limit(limit);
        let report = cluster.serve(requests.clone()).unwrap();
        let runtime_report = reference.serve(requests).unwrap();
        assert_cluster_matches_runtime(&report, &runtime_report)?;
        prop_assert_eq!(report.replication().replicas_pushed, 0);
        prop_assert_eq!(report.replication().bytes_prefetched, 0);
    }

    /// Batching composes with both scan modes: the indexed per-kernel FIFO
    /// deques and the linear queue scan must name the same same-kernel
    /// candidate at every diversion, so batched serves stay bitwise
    /// identical across `ScanMode`s under every dispatch policy.
    #[test]
    fn batched_serves_are_scan_mode_invariant(
        (seed, count, tiles) in (any::<u64>(), 8usize..24, 1usize..4),
        policy_pick in 0usize..4,
        max_batch in 2usize..6,
        hold_pick in 0usize..3,
    ) {
        let requests = random_trace(seed, count, 3.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let hold_us = [f64::INFINITY, 50.0, 2.0][hold_pick];
        let config = BatchConfig::with_max_batch(max_batch).with_max_hold_us(hold_us);
        let build = |scan| Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_scan_mode(scan)
            .with_batching(config);
        let a = build(ScanMode::Indexed).serve(requests.clone()).unwrap();
        let b = build(ScanMode::LinearReference).serve(requests.clone()).unwrap();
        assert_reports_identical(&a, &b)?;

        // A batched 1-device cluster mirrors the batched runtime too — the
        // cluster's drain path shares the same batching layer.
        let mut cluster = Cluster::new(FuVariant::V4, 1, tiles)
            .unwrap()
            .with_policy(policy)
            .with_batching(config);
        let report = cluster.serve(requests).unwrap();
        assert_cluster_matches_runtime(&report, &a)?;
    }

    /// Batching reorders *when* requests run, never *what* they compute:
    /// with unconstrained admission the batched serve completes the same
    /// request set with identical functional outputs per request.
    #[test]
    fn batching_preserves_functional_results(
        (seed, count, tiles) in (any::<u64>(), 8usize..24, 1usize..4),
        policy_pick in 0usize..4,
        max_batch in 2usize..8,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let mut plain = Runtime::new(FuVariant::V4, tiles).unwrap().with_policy(policy);
        let mut batched = Runtime::new(FuVariant::V4, tiles)
            .unwrap()
            .with_policy(policy)
            .with_batching(BatchConfig::with_max_batch(max_batch));
        let baseline = plain.serve(requests.clone()).unwrap();
        let report = batched.serve(requests).unwrap();
        prop_assert_eq!(report.outcomes().len(), baseline.outcomes().len());
        let by_id = |r: &ServeReport| -> std::collections::HashMap<u64, Vec<Vec<tm_overlay::dfg::Value>>> {
            r.outcomes()
                .iter()
                .map(|o| (o.request_id, o.outputs().to_vec()))
                .collect()
        };
        prop_assert_eq!(by_id(&report), by_id(&baseline));
    }

    /// Kernel-hash routing is a pure function of the kernel: resubmitting
    /// the same trace — to the same cluster or a fresh one — routes every
    /// request to the same device, and one kernel never spans two devices.
    #[test]
    fn kernel_hash_routing_is_deterministic_under_resubmission(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..20, 2usize..5, 1usize..3),
        policy_pick in 0usize..4,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let build = || Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_policy(policy)
            .with_route_policy(RoutePolicy::KernelHash);
        let mut cluster = build();
        let first = cluster.serve(requests.clone()).unwrap();
        let resubmitted = cluster.serve(requests.clone()).unwrap();
        let fresh = build().serve(requests).unwrap();
        let routes = |report: &ClusterReport| -> Vec<(u64, usize)> {
            report.outcomes().iter().map(|o| (o.request_id, o.device)).collect()
        };
        prop_assert_eq!(routes(&first), routes(&resubmitted));
        prop_assert_eq!(routes(&resubmitted), routes(&fresh));
        // One kernel, one shard — so sharded kernels never transfer.
        for report in [&first, &resubmitted, &fresh] {
            let mut device_of: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            for outcome in report.outcomes() {
                let device = *device_of
                    .entry(outcome.kernel.to_string())
                    .or_insert(outcome.device);
                prop_assert_eq!(device, outcome.device);
            }
            prop_assert_eq!(report.transfers(), 0);
        }
    }
}

/// Every observable of a 1-device cluster serve must match the runtime's.
fn assert_cluster_matches_runtime(
    cluster: &ClusterReport,
    runtime: &ServeReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(cluster.outcomes().len(), runtime.outcomes().len());
    for (lhs, rhs) in cluster.outcomes().iter().zip(runtime.outcomes()) {
        prop_assert_eq!(lhs.request_id, rhs.request_id);
        prop_assert_eq!(lhs.device, 0);
        prop_assert_eq!(lhs.tile, rhs.tile);
        prop_assert_eq!(lhs.start_us, rhs.start_us);
        prop_assert_eq!(lhs.completion_us, rhs.completion_us);
        prop_assert_eq!(lhs.queued_us, rhs.queued_us);
        prop_assert_eq!(lhs.latency_us, rhs.latency_us);
        prop_assert_eq!(lhs.switched, rhs.switched);
        prop_assert_eq!(lhs.missed_deadline, rhs.missed_deadline);
        prop_assert_eq!(&lhs.outputs(), &rhs.outputs());
    }
    prop_assert_eq!(cluster.rejected(), runtime.rejected());
    // Cluster totals — including the merge-path latency percentiles — must
    // equal the runtime's selection-path metrics field for field.
    prop_assert_eq!(cluster.metrics(), runtime.metrics());
    // The single device's breakdown is the whole story: no transfers, no
    // host loads, every request.
    prop_assert_eq!(cluster.device_metrics().len(), 1);
    let device = &cluster.device_metrics()[0];
    prop_assert_eq!(device.requests, runtime.outcomes().len());
    prop_assert_eq!(device.transfers_in, 0);
    prop_assert_eq!(device.host_loads, 0);
    prop_assert_eq!(device.p99_latency_us, runtime.metrics().p99_latency_us);
    Ok(())
}

/// Every observable of two cluster serves must match exactly — including
/// the per-device breakdown and the recorded trace (the trace comparison
/// covers span order, side tables, counters and the ring's drop count).
fn assert_cluster_reports_identical(
    a: &ClusterReport,
    b: &ClusterReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.outcomes().len(), b.outcomes().len());
    for (lhs, rhs) in a.outcomes().iter().zip(b.outcomes()) {
        prop_assert_eq!(lhs.request_id, rhs.request_id);
        prop_assert_eq!(lhs.device, rhs.device);
        prop_assert_eq!(lhs.tile, rhs.tile);
        prop_assert_eq!(lhs.start_us, rhs.start_us);
        prop_assert_eq!(lhs.completion_us, rhs.completion_us);
        prop_assert_eq!(lhs.queued_us, rhs.queued_us);
        prop_assert_eq!(lhs.latency_us, rhs.latency_us);
        prop_assert_eq!(lhs.switched, rhs.switched);
        prop_assert_eq!(lhs.missed_deadline, rhs.missed_deadline);
        prop_assert_eq!(&lhs.outputs(), &rhs.outputs());
    }
    prop_assert_eq!(a.rejected(), b.rejected());
    prop_assert_eq!(a.metrics(), b.metrics());
    prop_assert_eq!(a.device_metrics(), b.device_metrics());
    prop_assert_eq!(a.replication(), b.replication());
    prop_assert_eq!(a.trace(), b.trace());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The sharded loop's contract, pinned three ways on every random
    /// trace: `with_threads(1)` (the default) is the serial loop;
    /// `with_threads(n > 1)` on an eligible configuration reproduces it
    /// bitwise (outcomes, metrics, device breakdown, trace); and the
    /// parallel bytes are identical across repeated runs, across thread
    /// budgets, and on warm resubmission (stores and memo carried over).
    #[test]
    fn sharded_serves_match_the_serial_loop_bitwise(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..24, 2usize..5, 1usize..3),
        policy_pick in 0usize..4,
        threads_pick in 0usize..3,
        batch_pick in 0usize..2,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let threads = [2usize, 4, 7][threads_pick];
        let batching = [
            BatchConfig::disabled(),
            BatchConfig::with_max_batch(3),
        ][batch_pick];
        let build = || Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_policy(policy)
            .with_batching(batching)
            .with_tracing(TraceConfig::enabled());
        let mut serial = build();
        let mut sharded = build().with_threads(threads);
        prop_assert_eq!(serial.threads(), 1);
        prop_assert_eq!(sharded.threads(), threads);
        let a = serial.serve(requests.clone()).unwrap();
        let b = sharded.serve(requests.clone()).unwrap();
        assert_cluster_reports_identical(&a, &b)?;
        // Determinism: same bytes on a fresh run and at another budget.
        let again = build().with_threads(threads).serve(requests.clone()).unwrap();
        assert_cluster_reports_identical(&b, &again)?;
        let other = build().with_threads(threads + 1).serve(requests.clone()).unwrap();
        assert_cluster_reports_identical(&b, &other)?;
        // Warm resubmission: both loops carry stores and memo forward.
        let a2 = serial.serve(requests.clone()).unwrap();
        let b2 = sharded.serve(requests).unwrap();
        assert_cluster_reports_identical(&a2, &b2)?;
    }

    /// An installed-but-empty [`FaultPlan`] must be bitwise identical to no
    /// plan at all: the fault machinery (eligibility-aware routing,
    /// per-tile run bookkeeping, completion staleness guards) engages on
    /// the empty-plan serve, yet with every device permanently eligible it
    /// must reduce exactly to the legacy path — outcomes, timestamps,
    /// rejects, metrics, the per-device breakdown (availability pinned at
    /// 1.0) and the recorded trace.
    #[test]
    fn an_empty_fault_plan_is_bitwise_identical_to_no_plan(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..20, 1usize..5, 1usize..3),
        policy_pick in 0usize..4,
        route_pick in 0usize..3,
        limit_pick in 0usize..3,
        batch_pick in 0usize..2,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let route = RoutePolicy::ALL[route_pick];
        let limit = [usize::MAX, 4, 1][limit_pick];
        let batching = [BatchConfig::disabled(), BatchConfig::with_max_batch(3)][batch_pick];
        let build = || Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_policy(policy)
            .with_route_policy(route)
            .with_admission_limit(limit)
            .with_batching(batching)
            .with_tracing(TraceConfig::enabled());
        let mut plain = build();
        let mut pinned = build().with_fault_plan(FaultPlan::new());
        prop_assert!(pinned.fault_plan().is_some_and(FaultPlan::is_empty));
        let a = plain.serve(requests.clone()).unwrap();
        let b = pinned.serve(requests.clone()).unwrap();
        assert_cluster_reports_identical(&a, &b)?;
        prop_assert_eq!(b.requeues(), 0);
        prop_assert_eq!(b.faults(), 0);
        prop_assert_eq!(b.lost_work_us(), 0.0);
        prop_assert_eq!(b.availability(), vec![1.0; devices]);
        // Warm resubmission stays pinned too.
        let a2 = plain.serve(requests.clone()).unwrap();
        let b2 = pinned.serve(requests).unwrap();
        assert_cluster_reports_identical(&a2, &b2)?;
    }

    /// A thread budget on an *ineligible* configuration — one device, a
    /// dynamic route policy, or an admission limit — must fall back to the
    /// serial loop and serve identically.
    #[test]
    fn ineligible_configs_fall_back_to_the_serial_loop(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..16, 1usize..4, 1usize..3),
        route_pick in 0usize..3,
        limit_pick in 0usize..2,
    ) {
        let requests = random_trace(seed, count, 4.0);
        let route = RoutePolicy::ALL[route_pick];
        let limit = [usize::MAX, 3][limit_pick];
        let build = || Cluster::new(FuVariant::V4, devices, tiles)
            .unwrap()
            .with_route_policy(route)
            .with_admission_limit(limit)
            .with_tracing(TraceConfig::enabled());
        let a = build().serve(requests.clone()).unwrap();
        let b = build().with_threads(4).serve(requests).unwrap();
        assert_cluster_reports_identical(&a, &b)?;
    }
}
