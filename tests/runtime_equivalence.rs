//! Index/scan equivalence property suite: the indexed dispatcher (residency
//! index placement + per-tile ordered queues + O(1) waiting counters) must
//! produce **identical** decisions to the retained linear-scan reference
//! implementation on every trace — same tile choices, same outcomes (to the
//! bit, including modeled timestamps), same rejects, same metrics — across
//! all four `DispatchPolicy` variants, with and without admission pressure.
//!
//! This is the safety net under the hot-path work: any divergence between
//! `ScanMode::Indexed` and `ScanMode::LinearReference` is a bug in the
//! index, not a tolerable approximation.

use proptest::prelude::*;
use rand::prelude::*;

use tm_overlay::{
    DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, ScanMode, ServeReport, Workload,
};

const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";
const POLY: &str = "kernel poly(x) { out y = (x * x + 3) * x; }";
const GRAD: &str = "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }";

/// A random mixed-kernel trace: non-decreasing arrivals (with simultaneous
/// bursts), a small workload pool so the sim memo and in-flight dedup paths
/// both engage, and a coin-flip deadline per request.
fn random_trace(seed: u64, count: usize, deadline_scale_us: f64) -> Vec<Request> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = [
        (KernelSpec::from_source("saxpy", SAXPY), 3usize),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
    ];
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            // ~1 in 3 requests arrives simultaneously with its predecessor,
            // exercising the same-timestamp event ordering.
            if rng.gen_range(0..3u32) > 0 {
                clock_us += rng.gen_range(0..=20u64) as f64 * 0.1;
            }
            let (spec, inputs) = &specs[rng.gen_range(0..specs.len())];
            let blocks = rng.gen_range(1..=3usize);
            // Draw workloads from a pool of 4 seeds per kernel so repeats
            // are common enough to hit the memo and the in-flight joins.
            let workload = Workload::random(*inputs, blocks, seed ^ rng.gen_range(0..4u64));
            let mut request = Request::new(i as u64, spec.clone(), workload).at(clock_us);
            if rng.gen_bool(0.5) {
                let budget = rng.gen_range(1..=30u64) as f64 * 0.1 * deadline_scale_us;
                request = request.with_deadline(clock_us + budget);
            }
            request
        })
        .collect()
}

/// Every observable of the two serves must match exactly.
fn assert_reports_identical(
    indexed: &ServeReport,
    linear: &ServeReport,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(indexed.outcomes().len(), linear.outcomes().len());
    for (lhs, rhs) in indexed.outcomes().iter().zip(linear.outcomes()) {
        prop_assert_eq!(lhs.request_id, rhs.request_id);
        prop_assert_eq!(lhs.tile, rhs.tile);
        prop_assert_eq!(lhs.start_us, rhs.start_us);
        prop_assert_eq!(lhs.completion_us, rhs.completion_us);
        prop_assert_eq!(lhs.queued_us, rhs.queued_us);
        prop_assert_eq!(lhs.latency_us, rhs.latency_us);
        prop_assert_eq!(lhs.switched, rhs.switched);
        prop_assert_eq!(lhs.missed_deadline, rhs.missed_deadline);
        prop_assert_eq!(&lhs.outputs(), &rhs.outputs());
    }
    prop_assert_eq!(indexed.rejected(), linear.rejected());
    // The full metrics struct — counters, rates, depths, per-tile vectors,
    // event counts and memo stats — must agree field for field.
    prop_assert_eq!(indexed.metrics(), linear.metrics());
    Ok(())
}

fn runtimes(
    tiles: usize,
    policy: DispatchPolicy,
    limit: usize,
    variant: FuVariant,
) -> (Runtime, Runtime) {
    let indexed = Runtime::new(variant, tiles)
        .unwrap()
        .with_policy(policy)
        .with_admission_limit(limit);
    let linear = Runtime::new(variant, tiles)
        .unwrap()
        .with_policy(policy)
        .with_admission_limit(limit)
        .with_scan_mode(ScanMode::LinearReference);
    (indexed, linear)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Unconstrained admission: placements, timelines, metrics identical
    /// under every policy.
    #[test]
    fn indexed_and_linear_scans_serve_identically(
        (seed, count, tiles) in (any::<u64>(), 4usize..24, 1usize..6),
        policy_pick in 0usize..4,
        deadline_scale in 1u64..8,
    ) {
        let requests = random_trace(seed, count, deadline_scale as f64);
        let policy = DispatchPolicy::ALL[policy_pick];
        let (mut indexed, mut linear) = runtimes(tiles, policy, usize::MAX, FuVariant::V4);
        prop_assert_eq!(indexed.scan_mode(), ScanMode::Indexed);
        prop_assert_eq!(linear.scan_mode(), ScanMode::LinearReference);
        let a = indexed.serve(requests.clone()).unwrap();
        let b = linear.serve(requests).unwrap();
        assert_reports_identical(&a, &b)?;
    }

    /// Admission pressure: the reject decisions depend on the O(1) waiting
    /// counter vs the O(tiles) recomputation — they must agree request for
    /// request.
    #[test]
    fn admission_rejects_are_identical_under_pressure(
        (seed, count, tiles) in (any::<u64>(), 8usize..24, 1usize..4),
        policy_pick in 0usize..4,
        limit in 0usize..6,
    ) {
        let requests = random_trace(seed, count, 2.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let (mut indexed, mut linear) = runtimes(tiles, policy, limit, FuVariant::V4);
        let a = indexed.serve(requests.clone()).unwrap();
        let b = linear.serve(requests).unwrap();
        prop_assert!(a.metrics().rejects + a.outcomes().len() == count);
        assert_reports_identical(&a, &b)?;
    }

    /// The feed-forward variants flip the switch-cost scale to PCAP
    /// milliseconds, changing which placements tie — the index must track
    /// that too.
    #[test]
    fn equivalence_holds_on_pcap_pools(
        (seed, count, tiles) in (any::<u64>(), 4usize..16, 2usize..5),
        policy_pick in 0usize..4,
    ) {
        let requests = random_trace(seed, count, 50.0);
        let policy = DispatchPolicy::ALL[policy_pick];
        let (mut indexed, mut linear) = runtimes(tiles, policy, usize::MAX, FuVariant::V1);
        let a = indexed.serve(requests.clone()).unwrap();
        let b = linear.serve(requests).unwrap();
        assert_reports_identical(&a, &b)?;
    }
}
