//! Checks of the headline claims and published numbers of the paper, as far
//! as the reproduction supports them. EXPERIMENTS.md records the full
//! paper-vs-measured comparison; these tests pin the values that must not
//! drift.

use tm_overlay::arch::{FpgaDevice, OverlayConfig, ReconfigModel};
use tm_overlay::scheduler::{asap_schedule, ii_baseline, ii_v1, ii_v2};
use tm_overlay::{Benchmark, Compiler, FuVariant, Overlay};

#[test]
#[allow(clippy::type_complexity)] // one tuple row per Table I column
fn table1_fu_characteristics_match_the_paper() {
    let expected: &[(FuVariant, usize, usize, usize, f64, Option<usize>)] = &[
        (FuVariant::Baseline, 1, 160, 293, 325.0, None),
        (FuVariant::V1, 1, 196, 237, 334.0, None),
        (FuVariant::V2, 2, 292, 333, 335.0, None),
        (FuVariant::V3, 1, 212, 228, 323.0, Some(5)),
        (FuVariant::V4, 1, 207, 163, 254.0, Some(4)),
        (FuVariant::V5, 1, 248, 126, 182.0, Some(3)),
    ];
    for &(variant, dsps, luts, ffs, fmax, iwp) in expected {
        let resources = variant.fu_resources();
        assert_eq!(resources.dsps, dsps, "{variant} DSPs");
        assert_eq!(resources.luts, luts, "{variant} LUTs");
        assert_eq!(resources.ffs, ffs, "{variant} FFs");
        assert_eq!(variant.fu_fmax_mhz(), fmax, "{variant} fmax");
        assert_eq!(variant.iwp(), iwp, "{variant} IWP");
    }
}

#[test]
fn gradient_worked_example_ii_values() {
    // Sec. IV: the 'gradient' II drops from 11 ([14]) to 6 (V1) and 3 (V2).
    let dfg = Benchmark::Gradient.dfg().unwrap();
    let schedule = asap_schedule(&dfg).unwrap();
    assert_eq!(ii_baseline(&schedule), 11.0);
    assert_eq!(ii_v1(&schedule), 6.0);
    assert_eq!(ii_v2(&schedule), 3.0);
}

#[test]
fn table3_dfg_characteristics_match_exactly() {
    for benchmark in Benchmark::TABLE3 {
        let record = benchmark.paper_record();
        let dfg = benchmark.dfg().unwrap();
        assert_eq!(dfg.num_inputs(), record.inputs, "{benchmark} inputs");
        assert_eq!(dfg.num_outputs(), record.outputs, "{benchmark} outputs");
        assert_eq!(dfg.num_ops(), record.ops, "{benchmark} ops");
        assert_eq!(dfg.analysis().depth(), record.depth, "{benchmark} depth");
    }
}

#[test]
fn table3_ii_shape_holds_across_the_suite() {
    // The paper's central quantitative claims over Table III: V1 reduces the
    // II by ~42% on average vs [14], V2 by ~71%, and the fixed-depth V3/V4
    // stay between V1 and the baseline.
    let mut v1_reductions = Vec::new();
    let mut v2_reductions = Vec::new();
    for benchmark in Benchmark::TABLE3 {
        let dfg = benchmark.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let baseline = ii_baseline(&schedule);
        let v1 = ii_v1(&schedule);
        let v2 = ii_v2(&schedule);
        assert!(v1 < baseline, "{benchmark}: V1 must improve on [14]");
        assert_eq!(v2, v1 / 2.0, "{benchmark}: V2 halves the V1 II");
        v1_reductions.push(1.0 - v1 / baseline);
        v2_reductions.push(1.0 - v2 / baseline);

        // Fixed-depth variants: at most a modest II increase over V1 and
        // never worse than the baseline.
        for variant in [FuVariant::V3, FuVariant::V4] {
            let compiled = Compiler::new(variant).compile_benchmark(benchmark).unwrap();
            assert!(
                compiled.ii <= baseline,
                "{benchmark} {variant}: fixed-depth II must not exceed the baseline"
            );
            assert!(
                compiled.ii >= v1 - 1e-9,
                "{benchmark} {variant}: compressing depth cannot beat the depth-matched V1"
            );
        }
    }
    let avg_v1 = v1_reductions.iter().sum::<f64>() / v1_reductions.len() as f64;
    let avg_v2 = v2_reductions.iter().sum::<f64>() / v2_reductions.len() as f64;
    assert!(
        (0.30..=0.55).contains(&avg_v1),
        "average V1 reduction {avg_v1:.2} should be near the paper's 42%"
    );
    assert!(
        (0.60..=0.80).contains(&avg_v2),
        "average V2 reduction {avg_v2:.2} should be near the paper's 71%"
    );
}

#[test]
fn depth8_overlay_footprints_match_section_v() {
    // "A depth 8 V1 overlay consumes 654 logic slices and 8 DSP slices …
    // less than 5% of the logic and DSP resources on Zynq. The depth 8 V2
    // overlay consumes 893 logic slices and 16 DSP blocks or less than 8%."
    let zynq = FpgaDevice::zynq_7020();
    let v1 = OverlayConfig::new(FuVariant::V1, 8).unwrap();
    assert_eq!(v1.resource_estimate().slices, 654);
    assert_eq!(v1.resource_estimate().dsps, 8);
    assert!(v1.utilization_on(&zynq).max_fraction() < 0.05);
    let v2 = OverlayConfig::new(FuVariant::V2, 8).unwrap();
    assert_eq!(v2.resource_estimate().slices, 893);
    assert_eq!(v2.resource_estimate().dsps, 16);
    assert!(v2.utilization_on(&zynq).max_fraction() < 0.08);
    // Fixed depth-8 V3/V4: 814 / 817 slices at 286 / 233 MHz.
    let v3 = OverlayConfig::new(FuVariant::V3, 8).unwrap();
    assert_eq!(v3.resource_estimate().slices, 814);
    assert!((v3.fmax_mhz() - 286.0).abs() < 1e-9);
    let v4 = OverlayConfig::new(FuVariant::V4, 8).unwrap();
    assert_eq!(v4.resource_estimate().slices, 817);
    assert!((v4.fmax_mhz() - 233.0).abs() < 1e-9);
}

#[test]
fn pcap_reconfiguration_times_match_section_v() {
    // 0.73 ms for the V1 region (7 CLB + 1 DSP tiles), 1.02 ms for V2.
    let model = ReconfigModel::new();
    let v1_region = model.region_for(&OverlayConfig::new(FuVariant::V1, 8).unwrap());
    assert_eq!((v1_region.clb_tiles, v1_region.dsp_tiles), (7, 1));
    let v1_us = model.partial_reconfig_us(v1_region);
    assert!((v1_us - 730.0).abs() < 30.0, "got {v1_us} µs");
    let v2_region = model.region_for(&OverlayConfig::new(FuVariant::V2, 8).unwrap());
    assert_eq!((v2_region.clb_tiles, v2_region.dsp_tiles), (9, 2));
    let v2_us = model.partial_reconfig_us(v2_region);
    assert!((v2_us - 1020.0).abs() < 40.0, "got {v2_us} µs");
}

#[test]
fn context_switch_speedup_is_three_orders_of_magnitude() {
    // The paper reports a ~2900x reduction in hardware context-switch time
    // for the fixed-depth V3 overlay vs reconfiguring the V1 overlay.
    let mut worst_speedup = f64::INFINITY;
    for benchmark in Benchmark::TABLE3 {
        let v1 = Compiler::new(FuVariant::V1)
            .compile_benchmark(benchmark)
            .unwrap();
        let v3 = Compiler::new(FuVariant::V3)
            .compile_benchmark(benchmark)
            .unwrap();
        let overlay_v1 = Overlay::for_kernel(FuVariant::V1, &v1).unwrap();
        let overlay_v3 = Overlay::for_kernel(FuVariant::V3, &v3).unwrap();
        let speedup = overlay_v3
            .context_switch(&v3)
            .speedup_over(&overlay_v1.context_switch(&v1));
        worst_speedup = worst_speedup.min(speedup);
    }
    assert!(
        worst_speedup > 1_000.0 && worst_speedup < 10_000.0,
        "expected ~2900x, worst observed {worst_speedup:.0}x"
    );
}

#[test]
fn config_load_times_are_sub_microsecond() {
    // "the overlays require a further 0.29 µs to load the configuration data
    // for the largest benchmark" / "a hardware context switch on the V3
    // overlay requires just 0.25 µs for the largest benchmark".
    let model = ReconfigModel::new();
    for benchmark in Benchmark::TABLE3 {
        let compiled = Compiler::new(FuVariant::V3)
            .compile_benchmark(benchmark)
            .unwrap();
        let us = model.config_load_us(compiled.program.config_bits());
        assert!(
            us < 1.0,
            "{benchmark}: config load {us} µs should be sub-µs"
        );
    }
}
