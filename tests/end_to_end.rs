//! End-to-end integration tests across all workspace crates: kernel source →
//! DFG → schedule → instructions → cycle-accurate simulation, checked against
//! the reference evaluator.

use tm_overlay::dfg::{evaluate_stream, Value};
use tm_overlay::frontend::LowerOptions;
use tm_overlay::{Benchmark, Compiler, FuVariant, Overlay, Workload};

/// Custom kernels covering every DSL construct, compiled and simulated on
/// every evaluated variant.
const CUSTOM_KERNELS: &[&str] = &[
    "kernel fma(a, b, c) { out y = a * b + c; }",
    "kernel horner(x) { out y = ((x * 3 - 5) * x + 7) * x - 11; }",
    "kernel blend(a, b, w) { out y = a * w + b * (16 - w); }",
    "kernel magnitude(x, y) { out m = sqr(x) + sqr(y); }",
    "kernel clamp_diff(a, b) { out y = min(max(a - b, 0 - 100), 100); }",
    "kernel bits(a, b) { out y = ((a & b) | (a ^ b)) + (a << 2) - (b >> 1); }",
    "kernel two_out(a, b) { out s = a + b; out d = a - b; }",
    "kernel deep(x) { let a = sqr(x); let b = sqr(a); let c = sqr(b); out y = c + a; }",
];

#[test]
fn custom_kernels_simulate_correctly_on_every_variant() {
    for source in CUSTOM_KERNELS {
        for variant in FuVariant::EVALUATED {
            let compiler = Compiler::new(variant);
            let compiled = compiler
                .compile_source(source)
                .unwrap_or_else(|e| panic!("compile failed for {source}: {e}"));
            // Reference results come from the DFG evaluator.
            let dfg = tm_overlay::frontend::compile_kernel(source).unwrap();
            let workload = Workload::random(dfg.num_inputs(), 20, 0xFEED);
            let expected = evaluate_stream(&dfg, workload.records()).unwrap();

            let overlay = Overlay::for_kernel(variant, &compiled).unwrap();
            let run = overlay.execute(&compiled, &workload).unwrap();
            assert_eq!(
                run.outputs(),
                expected.as_slice(),
                "mismatch for {source} on {variant}"
            );
        }
    }
}

#[test]
fn benchmark_suite_simulates_correctly_with_optimized_lowering() {
    // Re-lower the DSL benchmarks with CSE enabled and make sure the whole
    // flow still produces correct results (fewer ops, same semantics).
    for benchmark in [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Sgfilter,
    ] {
        let source = benchmark.source().unwrap();
        let plain = tm_overlay::frontend::compile_kernel(source).unwrap();
        let optimized =
            tm_overlay::frontend::compile_kernel_with(source, &LowerOptions::optimized()).unwrap();
        assert!(optimized.num_ops() <= plain.num_ops());

        let compiler = Compiler::new(FuVariant::V1).with_lower_options(LowerOptions::optimized());
        let compiled = compiler.compile_source(source).unwrap();
        let workload = Workload::random(plain.num_inputs(), 16, 0xBEEF);
        let expected = evaluate_stream(&plain, workload.records()).unwrap();
        let overlay = Overlay::for_kernel(FuVariant::V1, &compiled).unwrap();
        let run = overlay.execute(&compiled, &workload).unwrap();
        assert_eq!(run.outputs(), expected.as_slice(), "{benchmark}");
    }
}

#[test]
fn assembler_round_trips_generated_programs() {
    // The textual assembler must be able to re-assemble every program the
    // code generator emits.
    for benchmark in Benchmark::ALL {
        for variant in [FuVariant::V1, FuVariant::V3] {
            let compiled = Compiler::new(variant).compile_benchmark(benchmark).unwrap();
            for program in compiled.program.fu_programs() {
                let text = tm_overlay::isa::disassemble(program);
                let reassembled = tm_overlay::isa::assemble(&text).unwrap();
                assert_eq!(&reassembled, program, "{benchmark} {variant}");
            }
        }
    }
}

#[test]
fn encoded_programs_decode_to_the_same_instructions() {
    for benchmark in Benchmark::TABLE3 {
        let compiled = Compiler::new(FuVariant::V4)
            .compile_benchmark(benchmark)
            .unwrap();
        for program in compiled.program.fu_programs() {
            for (word, instr) in program.encode().iter().zip(program.instructions()) {
                let decoded = tm_overlay::isa::Instruction::decode(*word).unwrap();
                assert_eq!(&decoded, instr);
            }
        }
    }
}

#[test]
fn deterministic_workloads_produce_deterministic_runs() {
    let compiled = Compiler::new(FuVariant::V2)
        .compile_benchmark(Benchmark::Mibench)
        .unwrap();
    let overlay = Overlay::for_kernel(FuVariant::V2, &compiled).unwrap();
    let workload = Workload::random(3, 50, 31);
    let a = overlay.execute(&compiled, &workload).unwrap();
    let b = overlay.execute(&compiled, &workload).unwrap();
    assert_eq!(a.outputs(), b.outputs());
    assert_eq!(a.metrics(), b.metrics());
}

#[test]
fn single_invocation_latency_equals_total_cycles() {
    let compiled = Compiler::new(FuVariant::V1)
        .compile_benchmark(Benchmark::Chebyshev)
        .unwrap();
    let overlay = Overlay::for_kernel(FuVariant::V1, &compiled).unwrap();
    let run = overlay
        .execute(
            &compiled,
            &Workload::from_records(vec![vec![Value::new(3)]]),
        )
        .unwrap();
    assert_eq!(
        run.metrics().latency_cycles,
        run.metrics().total_cycles,
        "a single invocation finishes exactly at its latency"
    );
}
