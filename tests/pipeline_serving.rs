//! Session-tier integration suite: multi-kernel pipeline DAGs, SLO
//! classes, stage-affinity routing and in-order commit, served end-to-end
//! through [`Cluster::serve_pipelines`].
//!
//! The property half pins the tier's two contracts:
//!
//! * **equivalence** — a batch of single-stage pipelines is bitwise
//!   identical to the plain [`Cluster::serve`] of the lowered requests,
//!   across dispatch policy × route policy × batching × fault schedules
//!   (the all-standard batch takes the lowering fast path and must match
//!   *every* observable including the trace; a mixed-class batch runs the
//!   live session driver and must still reproduce outcomes and rejects to
//!   the bit);
//! * **zero loss** — under random fault schedules, every submitted stage of
//!   every pipeline is accounted for exactly once across outcomes and
//!   rejects, and every pipeline gets exactly one outcome.
//!
//! [`Cluster::serve`]: tm_overlay::Cluster::serve
//! [`Cluster::serve_pipelines`]: tm_overlay::Cluster::serve_pipelines

use proptest::prelude::*;
use rand::prelude::*;

use tm_overlay::{
    BatchConfig, Cluster, ClusterReport, DispatchPolicy, FaultPlan, FuVariant, KernelSpec,
    PipelineReport, PipelineRequest, PipelineStage, RoutePolicy, Session, SloClass, TraceConfig,
    Workload,
};

const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";
const POLY: &str = "kernel poly(x) { out y = (x * x + 3) * x; }";
const GRAD: &str = "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }";
const CHEB: &str = "kernel cheb(x) { out t = 2 * x * x - 1; }";

fn specs() -> Vec<(KernelSpec, usize)> {
    vec![
        (KernelSpec::from_source("saxpy", SAXPY), 3),
        (KernelSpec::from_source("poly", POLY), 1),
        (KernelSpec::from_source("grad", GRAD), 5),
        (KernelSpec::from_source("cheb", CHEB), 1),
    ]
}

fn cluster(devices: usize, tiles: usize, route: RoutePolicy) -> Cluster {
    Cluster::new(FuVariant::V4, devices, tiles)
        .unwrap()
        .with_route_policy(route)
}

/// A random batch of *single-stage* pipelines: the same trace shape as the
/// plain-serve equivalence suite (bursty non-decreasing arrivals, a small
/// workload pool, coin-flip deadlines), expressed as pipelines.
fn random_single_stage(seed: u64, count: usize) -> Vec<PipelineRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let specs = specs();
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            if rng.gen_range(0..3u32) > 0 {
                clock_us += rng.gen_range(0..=20u64) as f64 * 0.1;
            }
            let (spec, inputs) = &specs[rng.gen_range(0..specs.len())];
            let blocks = rng.gen_range(1..=3usize);
            let workload = Workload::random(*inputs, blocks, seed ^ rng.gen_range(0..4u64));
            let session = rng.gen_range(0..3u64);
            let mut pipeline = PipelineRequest::new(i as u64, session)
                .at(clock_us)
                .stage(PipelineStage::new(spec.clone(), workload));
            if rng.gen_bool(0.5) {
                let budget = rng.gen_range(1..=30u64) as f64 * 0.1 * 4.0;
                pipeline = pipeline.with_deadline(clock_us + budget);
            }
            pipeline
        })
        .collect()
}

/// Random multi-stage chains (depth 1..=4) with inter-stage activations,
/// spread over `sessions` tenants.
fn random_chains(seed: u64, count: usize, sessions: u64) -> Vec<PipelineRequest> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A1);
    let specs = specs();
    let mut clock_us = 0.0;
    (0..count)
        .map(|i| {
            clock_us += rng.gen_range(0..=30u64) as f64 * 0.1;
            let depth = rng.gen_range(1..=4usize);
            let session = rng.gen_range(0..sessions);
            // Ids start at 1: pipeline 0's packed stage ids (0 << 16 | s)
            // would collide with the single-stage pipelines' plain ids.
            let mut pipeline = PipelineRequest::new(i as u64 + 1, session).at(clock_us);
            for stage in 0..depth {
                let (spec, inputs) = &specs[(i + stage) % specs.len()];
                let workload = Workload::random(*inputs, 2, seed ^ (i as u64) ^ stage as u64);
                let mut built =
                    PipelineStage::new(spec.clone(), workload).emits(1 << rng.gen_range(10..18u32));
                if stage > 0 {
                    built = built.after(&[stage - 1]);
                }
                pipeline = pipeline.stage(built);
            }
            pipeline
        })
        .collect()
}

/// A random fault schedule that never touches device 0, so at least one
/// device stays serviceable throughout (mirrors the fault-tolerance suite).
fn random_plan(seed: u64, devices: usize, horizon_us: f64) -> FaultPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut draw = StdRng::seed_from_u64(seed ^ 0xF00D);
    let mut frac = move || draw.gen_range(0..1_000u64) as f64 / 1_000.0;
    let mut plan = FaultPlan::new();
    for device in 1..devices {
        match rng.gen_range(0..3u32) {
            0 => {} // spared
            1 => {
                let at = frac() * horizon_us;
                plan = plan.kill(at, device);
                if rng.gen_bool(0.6) {
                    plan = plan.revive(at + frac() * horizon_us, device);
                }
            }
            _ => {
                let at = frac() * horizon_us;
                plan = plan.drain(at, device);
                if rng.gen_bool(0.6) {
                    plan = plan.undrain(at + frac() * horizon_us, device);
                }
            }
        }
    }
    plan
}

/// Every observable of two cluster serves must match exactly — including
/// the per-device breakdown and the recorded trace.
fn assert_cluster_reports_identical(a: &ClusterReport, b: &ClusterReport) {
    assert_eq!(a.outcomes().len(), b.outcomes().len());
    for (lhs, rhs) in a.outcomes().iter().zip(b.outcomes()) {
        assert_eq!(lhs.request_id, rhs.request_id);
        assert_eq!(lhs.device, rhs.device);
        assert_eq!(lhs.tile, rhs.tile);
        assert_eq!(lhs.start_us.to_bits(), rhs.start_us.to_bits());
        assert_eq!(lhs.completion_us.to_bits(), rhs.completion_us.to_bits());
        assert_eq!(lhs.queued_us.to_bits(), rhs.queued_us.to_bits());
        assert_eq!(lhs.latency_us.to_bits(), rhs.latency_us.to_bits());
        assert_eq!(lhs.switched, rhs.switched);
        assert_eq!(lhs.missed_deadline, rhs.missed_deadline);
    }
    assert_eq!(a.rejected(), b.rejected());
    assert_eq!(a.metrics(), b.metrics());
    assert_eq!(a.device_metrics(), b.device_metrics());
    assert_eq!(a.trace(), b.trace());
}

/// Every submitted stage of every pipeline shows up exactly once across
/// the underlying cluster outcomes and rejects, and every pipeline gets
/// exactly one pipeline-level outcome.
fn assert_stage_zero_loss(report: &PipelineReport, pipelines: &[PipelineRequest]) {
    let total_stages: usize = pipelines.iter().map(|p| p.stages.len()).sum();
    let mut seen = std::collections::HashSet::new();
    for outcome in report.cluster.outcomes() {
        assert!(
            seen.insert(outcome.request_id),
            "stage {} completed twice",
            outcome.request_id
        );
    }
    for reject in report.cluster.rejected() {
        assert!(
            seen.insert(reject.id),
            "stage {} both completed and rejected",
            reject.id
        );
    }
    assert_eq!(
        seen.len(),
        total_stages,
        "{total_stages} stages submitted, {} accounted for",
        seen.len()
    );
    assert_eq!(report.pipelines.len(), pipelines.len());
    for (pipeline, outcome) in pipelines.iter().zip(&report.pipelines) {
        assert_eq!(pipeline.id, outcome.id);
        assert_eq!(pipeline.stages.len(), outcome.stages);
        if !outcome.rejected {
            assert_eq!(
                outcome.completed_stages, outcome.stages,
                "pipeline {} claims completion with missing stages",
                outcome.id
            );
            for stage in 0..pipeline.stages.len() {
                let id = pipeline.stage_request_id(stage);
                assert!(
                    report.cluster.outcomes().iter().any(|o| o.request_id == id),
                    "completed pipeline {} lost stage {stage}",
                    outcome.id
                );
            }
        }
        assert!(
            outcome.commit_us >= outcome.finish_us,
            "commit before finish on pipeline {}",
            outcome.id
        );
    }
    let class_total: usize = report.classes.iter().map(|c| c.pipelines).sum();
    assert_eq!(
        class_total,
        pipelines.len(),
        "class breakdown drops pipelines"
    );
}

#[test]
fn a_diamond_dag_respects_dependencies_and_commits_in_order() {
    let specs = specs();
    let pipeline = PipelineRequest::new(7, 1)
        .stage(PipelineStage::new(specs[0].0.clone(), Workload::random(3, 2, 1)).emits(4096))
        .stage(
            PipelineStage::new(specs[1].0.clone(), Workload::random(1, 2, 2))
                .after(&[0])
                .emits(4096),
        )
        .stage(
            PipelineStage::new(specs[3].0.clone(), Workload::random(1, 2, 3))
                .after(&[0])
                .emits(4096),
        )
        .stage(PipelineStage::new(specs[2].0.clone(), Workload::random(5, 2, 4)).after(&[1, 2]));
    let mut cluster = cluster(2, 2, RoutePolicy::PowerOfTwoChoices);
    let report = cluster
        .serve_pipelines(vec![pipeline.clone()], &[Session::new(1)])
        .unwrap();
    assert_eq!(report.completed(), 1);
    let outcome = &report.pipelines[0];
    assert_eq!(outcome.completed_stages, 4);
    assert!(outcome.commit_us >= outcome.finish_us);
    let finish = |stage: usize| {
        let id = pipeline.stage_request_id(stage);
        let o = report
            .cluster
            .outcomes()
            .iter()
            .find(|o| o.request_id == id)
            .expect("stage served");
        (o.start_us, o.completion_us)
    };
    // Source before the two arms, both arms before the join.
    for arm in [1, 2] {
        assert!(finish(arm).0 >= finish(0).1, "arm {arm} started early");
        assert!(finish(3).0 >= finish(arm).1, "join outran arm {arm}");
    }
    // Four depth buckets is wrong for a diamond: 0, 1, 1, 2.
    assert_eq!(report.stages.len(), 3);
    assert_eq!(report.stages[1].served, 2, "both arms sit at depth 1");
}

#[test]
fn commits_within_a_session_follow_submission_order() {
    let specs = specs();
    // Pipeline 0 is a deep chain; pipeline 1 is a trivial single stage that
    // finishes long before it. In-order commit must hold 1 back.
    let deep = PipelineRequest::chain(
        0,
        9,
        (0..4).map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            (spec.clone(), Workload::random(*inputs, 3, i as u64))
        }),
    );
    let quick = PipelineRequest::new(1, 9).stage(PipelineStage::new(
        specs[1].0.clone(),
        Workload::random(1, 1, 99),
    ));
    let mut cluster = cluster(2, 1, RoutePolicy::LeastLoaded);
    let report = cluster
        .serve_pipelines(vec![deep, quick], &[Session::new(9)])
        .unwrap();
    assert_eq!(report.completed(), 2);
    let [first, second] = &report.pipelines[..] else {
        panic!("two pipeline outcomes");
    };
    assert!(
        second.finish_us < first.finish_us,
        "the single stage should finish first ({} vs {})",
        second.finish_us,
        first.finish_us
    );
    assert!(
        second.commit_us >= first.commit_us,
        "commit order must follow submission order"
    );
    assert!(
        second.commit_us > second.finish_us,
        "the quick pipeline waited"
    );
}

#[test]
fn stage_affinity_reduces_activation_transfers_under_kernel_hash() {
    // Under KernelHash each stage's kernel homes on a different device, so
    // affinity-blind routing pays a transfer on almost every edge.
    let pipelines: Vec<PipelineRequest> = (0..8)
        .map(|i| {
            let specs = specs();
            PipelineRequest::chain(
                i,
                i % 2,
                (0..3).map(|s| {
                    let (spec, inputs) = &specs[s % specs.len()];
                    (spec.clone(), Workload::random(*inputs, 2, i ^ s as u64))
                }),
            )
            .at(i as f64 * 3.0)
        })
        .collect();
    let sessions = [Session::new(0), Session::new(1)];
    let serve = |affinity: bool| {
        cluster(4, 1, RoutePolicy::KernelHash)
            .with_stage_affinity(affinity)
            .serve_pipelines(pipelines.clone(), &sessions)
            .unwrap()
    };
    let affine = serve(true);
    let blind = serve(false);
    assert_eq!(affine.completed(), 8);
    assert_eq!(blind.completed(), 8);
    assert!(
        affine.activation_transfers() < blind.activation_transfers(),
        "affinity {} should beat blind {}",
        affine.activation_transfers(),
        blind.activation_transfers()
    );
}

#[test]
fn the_latency_tier_is_shielded_under_admission_pressure() {
    let specs = specs();
    let mut pipelines = Vec::new();
    // A flood of best-effort work at t=0, then a latency-tier burst.
    for i in 0..12u64 {
        pipelines.push(
            PipelineRequest::new(i, 100)
                .stage(PipelineStage::new(
                    specs[0].0.clone(),
                    Workload::random(3, 3, i),
                ))
                .at(0.0),
        );
    }
    for i in 0..4u64 {
        pipelines.push(
            PipelineRequest::new(100 + i, 200)
                .stage(PipelineStage::new(
                    specs[1].0.clone(),
                    Workload::random(1, 1, i),
                ))
                .at(1.0),
        );
    }
    let sessions = [
        Session::new(100).with_slo(SloClass::BestEffort),
        Session::new(200).with_slo(SloClass::Latency),
    ];
    let report = Cluster::new(FuVariant::V4, 1, 1)
        .unwrap()
        .with_admission_limit(6)
        .serve_pipelines(pipelines, &sessions)
        .unwrap();
    let latency = report.class(SloClass::Latency).expect("latency class");
    let best_effort = report.class(SloClass::BestEffort).expect("best effort");
    assert_eq!(latency.pipelines, 4);
    assert_eq!(latency.rejected, 0, "the latency tier is shielded");
    assert!(
        best_effort.rejected > 0,
        "best effort absorbs the shed load"
    );
}

#[test]
fn a_mid_serve_kill_loses_no_finished_stage_work() {
    let pipelines = random_chains(0xDEAD, 6, 2);
    let sessions = [Session::new(0), Session::new(1)];
    let report = cluster(3, 1, RoutePolicy::LeastLoaded)
        .with_fault_plan(FaultPlan::new().kill(40.0, 1))
        .serve_pipelines(pipelines.clone(), &sessions)
        .unwrap();
    assert_stage_zero_loss(&report, &pipelines);
    assert_eq!(
        report.completed(),
        pipelines.len(),
        "device 1's work re-ran"
    );
    for outcome in report.cluster.outcomes() {
        assert!(
            outcome.device != 1 || outcome.start_us < 40.0,
            "stage {} started on the dead device after the kill",
            outcome.request_id
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All-standard single-stage batches take the lowering fast path and
    /// must reproduce the plain serve **bitwise** — outcomes, rejects,
    /// metrics, device breakdown and the recorded trace — across dispatch
    /// policy × route policy × batching × admission × fault schedules.
    #[test]
    fn single_stage_standard_batches_lower_bitwise_onto_the_plain_serve(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..20, 2usize..5, 1usize..3),
        policy_pick in 0usize..4,
        route_pick in 0usize..3,
        batch_pick in 0usize..2,
        limit_pick in 0usize..2,
        fault_pick in 0usize..2,
    ) {
        let pipelines = random_single_stage(seed, count);
        let sessions: Vec<Session> = (0..3).map(Session::new).collect();
        let policy = DispatchPolicy::ALL[policy_pick];
        let route = RoutePolicy::ALL[route_pick];
        let batching = [BatchConfig::disabled(), BatchConfig::with_max_batch(3)][batch_pick];
        let limit = [usize::MAX, count / 2 + 1][limit_pick];
        let build = || {
            let mut built = cluster(devices, tiles, route)
                .with_policy(policy)
                .with_batching(batching)
                .with_admission_limit(limit)
                .with_tracing(TraceConfig::enabled());
            if fault_pick == 1 {
                built = built.with_fault_plan(random_plan(seed, devices, 60.0));
            }
            built
        };
        let plain_requests: Vec<_> = pipelines.iter().map(|p| p.lower_to_request()).collect();
        let plain = build().serve(plain_requests).unwrap();
        let piped = build().serve_pipelines(pipelines, &sessions).unwrap();
        assert_cluster_reports_identical(&piped.cluster, &plain);
        prop_assert_eq!(piped.pipelines.len(), count);
    }

    /// A mixed-class single-stage batch forces the live session driver, and
    /// the inert stage machinery (no deps, no activations, unlimited
    /// admission) must still reproduce the plain serve's outcomes and
    /// rejects to the bit.
    #[test]
    fn driver_active_single_stage_serves_match_plain_outcomes(
        (seed, count, devices, tiles) in (any::<u64>(), 6usize..20, 2usize..5, 1usize..3),
        policy_pick in 0usize..4,
        route_pick in 0usize..3,
        fault_pick in 0usize..2,
    ) {
        let pipelines = random_single_stage(seed, count);
        // Session 0 is latency-tier: the batch no longer lowers, the driver
        // runs live. BestEffort is deliberately absent — it would drop its
        // pipelines' deadlines and change the comparison.
        let sessions = vec![
            Session::new(0).with_slo(SloClass::Latency),
            Session::new(1),
            Session::new(2),
        ];
        let policy = DispatchPolicy::ALL[policy_pick];
        let route = RoutePolicy::ALL[route_pick];
        let build = || {
            let mut built = cluster(devices, tiles, route).with_policy(policy);
            if fault_pick == 1 {
                built = built.with_fault_plan(random_plan(seed, devices, 60.0));
            }
            built
        };
        let plain_requests: Vec<_> = pipelines.iter().map(|p| p.lower_to_request()).collect();
        let plain = build().serve(plain_requests).unwrap();
        let piped = build().serve_pipelines(pipelines, &sessions).unwrap();
        prop_assert_eq!(piped.cluster.outcomes().len(), plain.outcomes().len());
        for (lhs, rhs) in piped.cluster.outcomes().iter().zip(plain.outcomes()) {
            prop_assert_eq!(lhs.request_id, rhs.request_id);
            prop_assert_eq!(lhs.device, rhs.device);
            prop_assert_eq!(lhs.tile, rhs.tile);
            prop_assert_eq!(lhs.start_us.to_bits(), rhs.start_us.to_bits());
            prop_assert_eq!(lhs.completion_us.to_bits(), rhs.completion_us.to_bits());
        }
        prop_assert_eq!(piped.cluster.rejected(), plain.rejected());
    }

    /// Zero loss under random fault schedules: every stage of every
    /// multi-stage pipeline is accounted for exactly once, however the
    /// fleet fails, and completed pipelines kept every stage.
    #[test]
    fn random_fault_schedules_lose_no_pipeline_stages(
        (seed, count, devices) in (any::<u64>(), 4usize..14, 2usize..5),
        route_pick in 0usize..3,
        affinity in any::<bool>(),
    ) {
        let pipelines = random_chains(seed, count, 3);
        let sessions: Vec<Session> = (0..3)
            .map(|i| Session::new(i).with_slo(SloClass::ALL[i as usize % 3]))
            .collect();
        let report = cluster(devices, 1, RoutePolicy::ALL[route_pick])
            .with_stage_affinity(affinity)
            .with_fault_plan(random_plan(seed, devices, 80.0))
            .serve_pipelines(pipelines.clone(), &sessions)
            .unwrap();
        assert_stage_zero_loss(&report, &pipelines);
    }
}
