#!/usr/bin/env python3
"""Bench regression guard: compare a freshly generated BENCH_runtime.json
against the committed baseline and fail on >20% regression of any headline
metric.

Usage:
    python3 scripts/bench_guard.py <baseline.json> <candidate.json> [tolerance]

Design notes:
* Only *headline* metrics are guarded — the modeled (virtual-time) ratios
  each bench's acceptance block is built around, plus a couple of stable
  host-side ratios. Raw ns/event host timings are deliberately excluded:
  on shared CI hosts they swing far more than 20% run to run and would
  make the guard flap without catching anything the ratios don't.
* Direction-aware: a "higher" metric fails when the candidate drops more
  than `tolerance` below baseline; a "lower" metric fails when it rises
  more than `tolerance` above. "ceiling" metrics are not compared to the
  baseline at all — they fail when the candidate exceeds its own recorded
  `target_pct` (overhead percentages hover in low single digits, where a
  relative-to-baseline check on a noisy figure is meaningless).
* Schema evolution is tolerated: a metric (or whole section) absent from
  the *baseline* is reported and skipped, so a PR that adds a new bench
  section passes. A metric present in the baseline but missing from the
  candidate fails — headline coverage must not silently disappear.
* A ~zero baseline is skipped for relative comparison (division blows up;
  e.g. recovery_us can legitimately be 0.0 in some configurations).
"""

import json
import sys

# (section, dotted path within section, direction)
HEADLINES = [
    ("runtime_scalability", "acceptance.min_end_to_end_speedup", "higher"),
    ("runtime_scalability", "acceptance.dispatcher_speedup", "higher"),
    ("cluster_scalability", "acceptance.end_to_end_ratio", "higher"),
    ("parallel_cluster", "acceptance.opt_in_overhead_ratio", "lower"),
    ("batching_replication", "acceptance.events_ratio", "higher"),
    ("batching_replication", "acceptance.switch_ratio", "higher"),
    ("fault_recovery", "steady_miss_rate", "lower"),
    ("fault_recovery", "acceptance.recovery_us", "lower"),
    ("dag_pipeline", "acceptance.throughput_ratio", "higher"),
    ("profile", "tracing_overhead.overhead_pct", "ceiling"),
    ("profile", "telemetry_overhead.overhead_pct", "ceiling"),
]


def lookup(doc, section, path):
    node = doc.get(section)
    if node is None:
        return None
    for key in path.split("."):
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node


def main():
    if len(sys.argv) < 3:
        sys.stderr.write(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        candidate = json.load(f)
    tolerance = float(sys.argv[3]) if len(sys.argv) > 3 else 0.20

    failures = []
    for section, path, direction in HEADLINES:
        name = f"{section}.{path}"
        new = lookup(candidate, section, path)
        if direction == "ceiling":
            if new is None:
                # Ceiling metrics live in the candidate's own profile
                # section; absence means the bench didn't run its overhead
                # sweep, which the bench-step failure already covers.
                print(f"skip  {name}: absent from candidate")
                continue
            target = lookup(candidate, section, path.rsplit(".", 1)[0] + ".target_pct")
            if target is None:
                print(f"skip  {name}: no target_pct recorded")
                continue
            verdict = "FAIL" if new > target else "ok"
            print(f"{verdict:5} {name}: {new:.2f} (ceiling {target:.2f})")
            if new > target:
                failures.append(name)
            continue

        base = lookup(baseline, section, path)
        if base is None:
            print(f"skip  {name}: absent from baseline (new metric)")
            continue
        if new is None:
            print(f"FAIL  {name}: present in baseline ({base}) but missing from candidate")
            failures.append(name)
            continue
        if abs(base) < 1e-12:
            print(f"skip  {name}: baseline ~0 ({base}), relative check undefined")
            continue
        change = new / base - 1.0
        regressed = change < -tolerance if direction == "higher" else change > tolerance
        verdict = "FAIL" if regressed else "ok"
        print(
            f"{verdict:5} {name}: {base} -> {new} "
            f"({change:+.1%}, {direction} is better, tolerance {tolerance:.0%})"
        )
        if regressed:
            failures.append(name)

    if failures:
        print(f"\nbench guard: {len(failures)} headline regression(s): {', '.join(failures)}")
        return 1
    print("\nbench guard: all headline metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
