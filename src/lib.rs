//! Workspace-level convenience crate.
//!
//! The actual library lives in the `tm-overlay` crate (and the sub-crates it
//! re-exports); this root package exists so the repository-level `examples/`
//! and `tests/` directories have a home. It simply re-exports `tm-overlay`.

#![forbid(unsafe_code)]

pub use tm_overlay::*;
