//! Determinism gate for the sharded cluster event loop.
//!
//! ```text
//! cargo run --release --example cluster_determinism > determinism_run1.txt
//! cargo run --release --example cluster_determinism > determinism_run2.txt
//! diff determinism_run1.txt determinism_run2.txt
//! ```
//!
//! Serves one fixed, seeded multi-kernel trace on an 8-device cluster at
//! host-thread budgets 1, 2, and 4, with tracing enabled. Two checks:
//!
//! 1. **In-process:** the three reports must be identical — outcomes
//!    (including exact f64 bit patterns), metrics, per-device breakdowns,
//!    and the merged trace. `threads = 1` takes the serial loop, so this
//!    pins the sharded path bitwise to the serial baseline.
//! 2. **Across runs:** stdout is a canonical byte dump of the `threads = 1`
//!    report (f64s rendered as raw bit patterns, traces digested with a
//!    stable FNV-1a hash). CI runs the example twice and `diff`s the
//!    dumps, so any run-to-run nondeterminism — thread scheduling leaking
//!    into outcomes, map iteration order, address-dependent hashing —
//!    breaks the build.
//!
//! Exits nonzero (panics) if any pair of reports diverges.

use std::fmt::Write as _;

use tm_overlay::{
    Benchmark, Cluster, ClusterReport, DispatchPolicy, FuVariant, KernelSpec, Request, RoutePolicy,
    TraceConfig, Workload,
};

/// Thread budgets under test; 1 is the serial baseline.
const THREADS: [usize; 3] = [1, 2, 4];
const DEVICES: usize = 8;
const TILES_PER_DEVICE: usize = 2;

/// One kernel per tenant so `RoutePolicy::KernelHash` spreads the trace
/// across the device shards.
const TENANTS: [(Benchmark, usize); 6] = [
    (Benchmark::Gradient, 12),
    (Benchmark::Chebyshev, 8),
    (Benchmark::Mibench, 6),
    (Benchmark::Qspline, 10),
    (Benchmark::Poly5, 4),
    (Benchmark::Sgfilter, 8),
];

/// Fixed seeded trace: 10 rounds, every tenant fires each round with
/// staggered arrivals; every third request carries a (sometimes tight)
/// deadline so the miss-accounting path is exercised too.
fn build_trace() -> Result<Vec<Request>, Box<dyn std::error::Error>> {
    let mut requests = Vec::new();
    let mut id = 0u64;
    for round in 0..10 {
        for (tenant, &(benchmark, blocks)) in TENANTS.iter().enumerate() {
            let spec = KernelSpec::from_benchmark(benchmark)?;
            let inputs = benchmark.dfg()?.num_inputs();
            let workload = Workload::random(inputs, blocks, id ^ 0xD1CE);
            let arrival = round as f64 * 40.0 + tenant as f64 * 3.5;
            let mut request = Request::new(id, spec, workload).at(arrival);
            if id.is_multiple_of(3) {
                request = request.with_deadline(arrival + 120.0);
            }
            requests.push(request);
            id += 1;
        }
    }
    Ok(requests)
}

fn serve(
    threads: usize,
    requests: &[Request],
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(FuVariant::V4, DEVICES, TILES_PER_DEVICE)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_route_policy(RoutePolicy::KernelHash)
        .with_tracing(TraceConfig::enabled())
        .with_threads(threads);
    Ok(cluster.serve(requests.to_vec())?)
}

/// Stable 64-bit FNV-1a, for digesting bulky sections (outputs, trace
/// events) without dumping megabytes to stdout.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a report as a canonical byte dump. Every f64 is printed as its
/// raw bit pattern so "identical" means bitwise, not display-rounded.
fn dump(report: &ClusterReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "outcomes={} rejected={}",
        report.outcomes().len(),
        report.rejected().len()
    );
    for outcome in report.outcomes() {
        let _ = writeln!(
            out,
            "req={} kernel={} device={} tile={} start={:016x} queued={:016x} \
             completion={:016x} latency={:016x} switched={} deadline={:?} missed={} \
             outputs_fnv={:016x}",
            outcome.request_id,
            outcome.kernel,
            outcome.device,
            outcome.tile,
            outcome.start_us.to_bits(),
            outcome.queued_us.to_bits(),
            outcome.completion_us.to_bits(),
            outcome.latency_us.to_bits(),
            outcome.switched,
            outcome.deadline_us.map(f64::to_bits),
            outcome.missed_deadline,
            fnv1a(format!("{:?}", outcome.outputs()).as_bytes()),
        );
    }
    let _ = writeln!(
        out,
        "metrics_fnv={:016x}",
        fnv1a(format!("{:?}", report.metrics()).as_bytes())
    );
    for device in report.device_metrics() {
        let _ = writeln!(
            out,
            "device={} fnv={:016x}",
            device.device,
            fnv1a(format!("{device:?}").as_bytes())
        );
    }
    match report.trace() {
        Some(trace) => {
            let events = trace.events();
            let _ = writeln!(
                out,
                "trace events={} dropped={} fnv={:016x}",
                events.len(),
                trace.dropped(),
                fnv1a(format!("{events:?}").as_bytes())
            );
        }
        None => {
            let _ = writeln!(out, "trace absent");
        }
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requests = build_trace()?;

    let mut dumps = Vec::new();
    for threads in THREADS {
        let report = serve(threads, &requests)?;
        dumps.push((threads, dump(&report)));
    }

    let (_, baseline) = &dumps[0];
    for (threads, candidate) in &dumps[1..] {
        assert_eq!(
            candidate, baseline,
            "threads={threads} report diverged from the serial (threads=1) baseline"
        );
    }

    // The canonical dump; CI diffs this output across two runs.
    println!(
        "cluster_determinism: {DEVICES} devices x {TILES_PER_DEVICE} tiles, \
         threads {THREADS:?} identical"
    );
    print!("{baseline}");
    Ok(())
}
