//! Design-space exploration: overlay scalability (Fig. 5), fixed-depth
//! selection and tile composition (Sec. III-A.3).
//!
//! ```text
//! cargo run --example design_space
//! ```

use tm_overlay::arch::{scalability_sweep, FpgaDevice, NocConfig, Tile, TileComposition};
use tm_overlay::{Benchmark, Compiler, FuVariant, Overlay, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 5: resource usage and fmax vs overlay size ------------------
    println!("overlay scalability on the Zynq XC7Z020 (Fig. 5):");
    println!(
        "{:>5} | {:>12} {:>6} {:>8} | {:>12} {:>6} {:>8} | {:>12} {:>6} {:>8}",
        "size",
        "[14] slices",
        "DSPs",
        "fmax",
        "V1 slices",
        "DSPs",
        "fmax",
        "V2 slices",
        "DSPs",
        "fmax"
    );
    let sizes: Vec<usize> = (1..=8).map(|i| i * 2).collect();
    let baseline = scalability_sweep(FuVariant::Baseline, &sizes)?;
    let v1 = scalability_sweep(FuVariant::V1, &sizes)?;
    let v2 = scalability_sweep(FuVariant::V2, &sizes)?;
    for i in 0..sizes.len() {
        println!(
            "{:>5} | {:>12} {:>6} {:>8.0} | {:>12} {:>6} {:>8.0} | {:>12} {:>6} {:>8.0}",
            sizes[i],
            baseline[i].slices,
            baseline[i].dsps,
            baseline[i].fmax_mhz,
            v1[i].slices,
            v1[i].dsps,
            v1[i].fmax_mhz,
            v2[i].slices,
            v2[i].dsps,
            v2[i].fmax_mhz,
        );
    }

    // --- Fixed-depth selection for the write-back overlay -----------------
    // How does the chosen overlay depth trade II against latency for a deep
    // kernel? (The paper fixes the depth at 8.)
    println!("\nfixed-depth trade-off for `poly7` (depth-13 kernel) on V3:");
    println!(
        "{:>6} | {:>8} {:>12} {:>12}",
        "depth", "II", "GOPS", "latency ns"
    );
    let dfg = Benchmark::Poly7.dfg()?;
    for depth in [2usize, 4, 6, 8, 10, 13] {
        let compiled = Compiler::new(FuVariant::V3)
            .with_fixed_depth(depth)
            .compile_benchmark(Benchmark::Poly7)?;
        let overlay = Overlay::new(FuVariant::V3, depth.max(compiled.num_fus()))?;
        let workload = Workload::random(dfg.num_inputs(), 48, 5);
        let run = overlay.execute(&compiled, &workload)?;
        let report = overlay.performance(&compiled, &run);
        println!(
            "{:>6} | {:>8.1} {:>12.2} {:>12.1}",
            depth, report.measured_ii, report.throughput_gops, report.latency_ns
        );
    }

    // --- Tile composition ---------------------------------------------------
    println!("\ntile composition (two depth-8 V3 overlays per tile, Hoplite-style NoC):");
    let zynq = FpgaDevice::zynq_7020();
    for composition in [TileComposition::Series, TileComposition::Parallel] {
        let tile = Tile::new(FuVariant::V3, composition);
        for (rows, cols) in [(1, 2), (2, 2), (2, 4)] {
            let noc = NocConfig::new(rows, cols, tile)?;
            let usage = noc.resource_estimate();
            let fits = if usage.fits_on(&zynq) {
                "fits"
            } else {
                "does NOT fit"
            };
            println!(
                "  {:<26} {}x{} tiles: {} ({} on XC7Z020), worst-case hop latency {} cycles",
                composition.to_string(),
                rows,
                cols,
                usage,
                fits,
                noc.max_route_latency()
            );
        }
    }
    Ok(())
}
