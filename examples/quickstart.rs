//! Quickstart: compile a kernel, run it on the V1 overlay, inspect results.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use tm_overlay::dfg::Value;
use tm_overlay::{Compiler, FuVariant, Overlay, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small image-processing style kernel written in the kernel DSL: the
    // squared gradient magnitude of a 5-pixel neighbourhood (Fig. 2 of the
    // paper).
    let source = "\
kernel gradient(i0, i1, i2, i3, i4) {
    let d0 = i0 - i2;
    let d1 = i1 - i2;
    let d2 = i2 - i3;
    let d3 = i2 - i4;
    out g = sqr(d0) + sqr(d1) + (sqr(d2) + sqr(d3));
}
";

    // 1. Compile for the V1 overlay (rotating register file, no write-back).
    let compiler = Compiler::new(FuVariant::V1);
    let compiled = compiler.compile_source(source)?;
    println!(
        "compiled `{}`: {} FUs, II = {} cycles, {} instructions",
        compiled.program.kernel(),
        compiled.num_fus(),
        compiled.ii,
        compiled.program.total_instructions()
    );
    println!("\nper-FU programs:\n{}", compiled.program);

    // 2. Build the overlay instance and stream 1000 pixel neighbourhoods
    //    through it.
    let overlay = Overlay::for_kernel(FuVariant::V1, &compiled)?;
    let workload = Workload::random(5, 1000, 2024);
    let run = overlay.execute(&compiled, &workload)?;

    // 3. Check one invocation against a hand computation and print the
    //    performance report.
    let first = overlay.execute(
        &compiled,
        &Workload::from_records(vec![[1, 2, 3, 4, 5].map(Value::new).to_vec()]),
    )?;
    println!("gradient(1,2,3,4,5) = {}", first.outputs()[0][0]);

    let report = overlay.performance(&compiled, &run);
    println!("\nperformance on {}:", overlay.config());
    println!("  {report}");
    println!(
        "  resources: {} ({}):",
        overlay.resource_estimate(),
        overlay.fmax_mhz()
    );
    println!("  context switch: {}", overlay.context_switch(&compiled));
    Ok(())
}
