//! Validates a Chrome/Perfetto trace file emitted by the serving runtime.
//!
//! ```text
//! cargo run --example trace_check -- target/serving_trace.json
//! ```
//!
//! Reads the trace JSON (defaults to `target/serving_trace.json` under the
//! workspace root, as written by `cargo run --example serving`), runs the
//! structural validator from `tm_overlay::runtime::obs`, and prints a
//! one-line summary. Exits nonzero if the file is missing, unparseable, or
//! structurally invalid (malformed events, negative durations, overlapping
//! non-nested spans on a track). CI uses this to gate the trace artifact.

use std::process::ExitCode;

use tm_overlay::runtime::obs::validate_chrome_trace;

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/target/serving_trace.json").to_string()
    });
    let json = match std::fs::read_to_string(&path) {
        Ok(json) => json,
        Err(err) => {
            eprintln!("trace_check: cannot read {path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&json) {
        Ok(validation) => {
            println!(
                "{path}: valid — {} events, {} complete spans, {} tracks",
                validation.events, validation.complete_spans, validation.tracks
            );
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("trace_check: {path} is not a valid Chrome trace: {err}");
            ExitCode::FAILURE
        }
    }
}
