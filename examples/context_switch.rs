//! Hardware context switching between kernels: the killer feature of the
//! fixed-depth write-back overlay (V3).
//!
//! A feed-forward overlay (V1) must be rebuilt — via partial reconfiguration
//! over the PCAP — whenever the kernel's depth changes, while the fixed-depth
//! V3 overlay only needs a new instruction configuration. This example runs
//! a sequence of different kernels back to back on both overlays and compares
//! the time spent switching.
//!
//! ```text
//! cargo run --example context_switch
//! ```

use tm_overlay::{Benchmark, Compiler, FuVariant, Overlay, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A realistic multi-kernel pipeline: pre-processing, filtering and
    // polynomial evaluation kernels run in rotation on the same overlay.
    let kernel_sequence = [
        Benchmark::Gradient,
        Benchmark::Sgfilter,
        Benchmark::Qspline,
        Benchmark::Chebyshev,
        Benchmark::Gradient,
        Benchmark::Poly6,
    ];
    let blocks_per_kernel = 256;

    for variant in [FuVariant::V1, FuVariant::V3] {
        println!("=== {variant} overlay ===");
        let mut total_switch_us = 0.0;
        let mut total_compute_us = 0.0;
        for benchmark in kernel_sequence {
            let dfg = benchmark.dfg()?;
            let compiled = Compiler::new(variant).compile_benchmark(benchmark)?;
            let overlay = Overlay::for_kernel(variant, &compiled)?;
            let switch = overlay.context_switch(&compiled);
            let workload = Workload::random(dfg.num_inputs(), blocks_per_kernel, 99);
            let run = overlay.execute(&compiled, &workload)?;
            let compute_us = run.metrics().runtime_us(overlay.fmax_mhz());
            total_switch_us += switch.total_us();
            total_compute_us += compute_us;
            println!(
                "  {:<10} switch {:>9.2} us, compute {:>8.2} us ({} invocations)",
                benchmark.name(),
                switch.total_us(),
                compute_us,
                blocks_per_kernel
            );
        }
        println!(
            "  total: {:.2} us switching + {:.2} us computing -> {:.1}% overhead\n",
            total_switch_us,
            total_compute_us,
            100.0 * total_switch_us / (total_switch_us + total_compute_us)
        );
    }

    // Headline number: the per-switch speedup of V3 over V1 for the largest
    // benchmark (the paper reports ~2900x).
    let largest = Benchmark::Poly6;
    let v1 = Compiler::new(FuVariant::V1).compile_benchmark(largest)?;
    let v3 = Compiler::new(FuVariant::V3).compile_benchmark(largest)?;
    let overlay_v1 = Overlay::for_kernel(FuVariant::V1, &v1)?;
    let overlay_v3 = Overlay::for_kernel(FuVariant::V3, &v3)?;
    let speedup = overlay_v3
        .context_switch(&v3)
        .speedup_over(&overlay_v1.context_switch(&v1));
    println!("context-switch speedup of V3 over V1 on `{largest}`: {speedup:.0}x (paper: ~2900x)");
    Ok(())
}
