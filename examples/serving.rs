//! Multi-tenant serving demo: a bursty mixed-kernel trace over the paper's
//! benchmark suite, served by a pool of write-back overlay tiles.
//!
//! Six tenants each stream a different benchmark kernel; requests arrive in
//! bursts (a tenant fires a volley, goes quiet, fires again). The same trace
//! is served twice — once with context-switch-aware kernel-affinity dispatch
//! and once with naive round-robin — to show the ~0.25 µs instruction-reload
//! context switch of the write-back tiles being spent well or badly.
//!
//! Run with: `cargo run --example serving`

use tm_overlay::dfg::evaluate_stream;
use tm_overlay::frontend::LowerOptions;
use tm_overlay::{
    Benchmark, DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, ServeReport, Workload,
};

/// The tenants and their kernels: one benchmark each, with different request
/// sizes so the tile queues stay uneven.
const TENANTS: [(Benchmark, usize); 6] = [
    (Benchmark::Gradient, 24),
    (Benchmark::Chebyshev, 16),
    (Benchmark::Mibench, 12),
    (Benchmark::Qspline, 20),
    (Benchmark::Poly5, 8),
    (Benchmark::Sgfilter, 16),
];

/// Builds the bursty trace: `bursts` rounds, in each of which every tenant
/// fires a volley of requests back to back, then the arrival clock jumps.
fn build_trace(bursts: usize, volley: usize) -> Result<Vec<Request>, Box<dyn std::error::Error>> {
    let specs: Vec<(KernelSpec, usize, usize)> = TENANTS
        .iter()
        .map(|&(benchmark, blocks)| {
            let spec = KernelSpec::from_benchmark(benchmark)?;
            let inputs = benchmark.dfg()?.num_inputs();
            Ok((spec, inputs, blocks))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;

    let mut requests = Vec::new();
    let mut id = 0u64;
    let mut clock_us = 0.0;
    for burst in 0..bursts {
        // Within a burst the active tenants fire interleaved rounds: one
        // request each, every 2 µs — sustained mixed traffic, not a single
        // tenant hogging the array.
        for round in 0..volley {
            for (tenant, (spec, inputs, blocks)) in specs.iter().enumerate() {
                // Tenants skip every third burst so the kernel mix shifts.
                if (burst + tenant) % 3 == 2 {
                    continue;
                }
                let workload = Workload::random(*inputs, *blocks, id ^ 0xBEEF);
                let arrival = clock_us + round as f64 * 2.0 + tenant as f64 * 0.1;
                requests.push(Request::new(id, spec.clone(), workload).at(arrival));
                id += 1;
            }
        }
        // Quiet gap between bursts.
        clock_us += volley as f64 * 2.0 + 4.0;
    }
    Ok(requests)
}

/// Checks every outcome against the DFG reference evaluator.
fn verify_outputs(
    requests: &[Request],
    report: &ServeReport,
) -> Result<(), Box<dyn std::error::Error>> {
    let options = LowerOptions::default();
    for (request, outcome) in requests.iter().zip(report.outcomes()) {
        let dfg = request.kernel.dfg(&options)?;
        let expected = evaluate_stream(&dfg, request.workload.records())?;
        assert_eq!(
            outcome.outputs, expected,
            "request {} ({}) diverged from the reference evaluator",
            request.id, outcome.kernel
        );
    }
    Ok(())
}

fn serve(
    policy: DispatchPolicy,
    requests: &[Request],
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let mut runtime = Runtime::new(FuVariant::V4, 6)?.with_policy(policy);
    let report = runtime.serve(requests)?;
    println!("--- {policy} dispatch ---");
    println!("{}", report.metrics());
    println!();
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let requests = build_trace(5, 6)?;
    println!(
        "serving {} requests from {} tenants on 6 V4 write-back tiles\n",
        requests.len(),
        TENANTS.len()
    );
    assert!(requests.len() >= 100, "trace is production-shaped");

    let affinity = serve(DispatchPolicy::KernelAffinity, &requests)?;
    let round_robin = serve(DispatchPolicy::RoundRobin, &requests)?;

    verify_outputs(&requests, &affinity)?;
    verify_outputs(&requests, &round_robin)?;
    println!("all outputs match the DFG reference evaluator");

    let a = affinity.metrics();
    let rr = round_robin.metrics();
    assert!(
        a.total_switch_us < rr.total_switch_us,
        "affinity dispatch must spend less context-switch time ({:.2} vs {:.2} us)",
        a.total_switch_us,
        rr.total_switch_us
    );
    println!(
        "affinity saves {:.2} us of context switching ({} vs {} switches), \
         {:.2}x round-robin's throughput",
        rr.total_switch_us - a.total_switch_us,
        a.switch_count,
        rr.switch_count,
        a.requests_per_sec / rr.requests_per_sec,
    );
    Ok(())
}
