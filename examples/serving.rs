//! Multi-tenant online serving demo: bursty mixed-kernel traffic over the
//! paper's benchmark suite, streamed into a pool of write-back overlay tiles.
//!
//! Nine acts:
//!
//! 1. **Context switches** — the same bursty 6-tenant trace is served with
//!    kernel-affinity and round-robin dispatch, showing the ~0.25 µs
//!    instruction-reload context switch of the write-back tiles being spent
//!    well or badly.
//! 2. **Deadlines under overload** — one tenant becomes latency-critical
//!    (tight per-request deadlines) while the others flood a smaller pool.
//!    FIFO affinity strands the urgent requests behind the batch backlog;
//!    EDF and slack-aware dispatch reorder the tile queues and miss strictly
//!    fewer deadlines on the *same* trace.
//! 3. **Admission control** — the same overload with a bounded waiting
//!    queue: excess requests are rejected at arrival instead of growing the
//!    queues without bound.
//! 4. **Multi-device sharding** — the act-2 overload trace on a 1-device
//!    cluster (identical to the act-2 runtime, by construction) vs a
//!    4-device cluster: capacity quadruples and the deadline misses drop,
//!    while kernel-hash vs least-loaded routing trades context switches
//!    against balance (and pays inter-device kernel transfers to spread).
//! 5. **The control plane** — the act-4 overloads rerun with same-kernel
//!    batching and rate-driven replication on: the batcher collapses the
//!    1-device cluster's queue-drain kernel thrash (switches avoided are
//!    printed next to the act-4 switch counts), and on the 4-device
//!    least-loaded cluster the replicator pushes hot kernel images ahead
//!    of demand.
//! 6. **Observability** — act 5's controlled cluster rerun with request-span
//!    tracing on: the serve is bit-identical (tracing is transparent), a
//!    Perfetto/Chrome-loadable trace lands in `target/serving_trace.json`,
//!    and the
//!    worst-p99 tenant's latency is broken down per lifecycle stage from its
//!    own spans.
//! 7. **Fault tolerance** — scenario-generated traffic (diurnal curve, a
//!    flash crowd, tenant churn) is served through a scripted fault plan:
//!    one device is killed mid-serve and later revived cold, another is
//!    drained gracefully and rejoins warm. Displaced work requeues onto the
//!    survivors, nothing is lost, and the revived device re-acquires its
//!    kernels over the link and serves again.
//! 8. **Sessions & pipelines** — tenants submit three-stage kernel *chains*
//!    under mixed SLO classes (latency / standard / best effort): stages
//!    release as their inputs complete, activations are priced when
//!    consecutive stages cross devices, pipelines commit in submission
//!    order per session, and a mid-serve kill requeues resident stages
//!    without re-running finished upstream work — with the latency tier
//!    holding its deadlines.
//! 9. **Continuous telemetry** — act 5's controlled cluster rerun with the
//!    windowed time-series, an SLO burn-rate objective, and per-request
//!    latency attribution on: the serve stays bit-identical, the burst
//!    pattern shows up window by window (throughput, miss rate, queue
//!    depth, utilization), the error-budget burn is tracked against the
//!    objective, the slowest requests are broken down additively
//!    (queue/acquire/switch/run, reconciling with their reported
//!    latencies), and the combined trace + telemetry counters land in a
//!    Perfetto-loadable artifact.
//!
//! Every outcome of every serve is checked against the DFG reference
//! evaluator.
//!
//! Run with: `cargo run --example serving`

use tm_overlay::dfg::evaluate_stream;
use tm_overlay::frontend::LowerOptions;
use tm_overlay::runtime::obs::{
    perfetto_trace_json, perfetto_trace_json_with_telemetry, validate_chrome_trace,
};
use tm_overlay::runtime::{RequestOutcome, SpanKind};
use tm_overlay::{
    explain, BatchConfig, Benchmark, Cluster, ClusterReport, DispatchPolicy, FaultPlan, FlashCrowd,
    FuVariant, KernelSpec, PipelineRequest, PipelineStage, ReplicationConfig, Request, RoutePolicy,
    Runtime, Scenario, ScenarioConfig, ServeReport, Session, SloClass, SloConfig, SloObjective,
    TelemetryConfig, TraceConfig, Workload,
};

/// The tenants and their kernels: one benchmark each, with different request
/// sizes so the tile queues stay uneven.
const TENANTS: [(Benchmark, usize); 6] = [
    (Benchmark::Gradient, 24),
    (Benchmark::Chebyshev, 16),
    (Benchmark::Mibench, 12),
    (Benchmark::Qspline, 20),
    (Benchmark::Poly5, 8),
    (Benchmark::Sgfilter, 16),
];

/// Index (into [`TENANTS`]) of the latency-critical tenant in act 2.
const URGENT_TENANT: usize = 1;

/// How the bursts are shaped.
struct TraceShape {
    bursts: usize,
    /// Interleaved rounds per burst (one request per active tenant each).
    volley: usize,
    /// Gap between rounds within a burst, microseconds.
    round_spacing_us: f64,
    /// Quiet gap between bursts, microseconds.
    burst_gap_us: f64,
    /// Per-request deadline budget for the urgent tenant, microseconds
    /// (`None` leaves every request deadline-free).
    urgent_budget_us: Option<f64>,
}

/// Builds a bursty trace: `bursts` rounds of volleys in which every active
/// tenant fires one request; tenants skip every third burst so the kernel
/// mix shifts.
fn build_trace(shape: &TraceShape) -> Result<Vec<Request>, Box<dyn std::error::Error>> {
    let specs: Vec<(KernelSpec, usize, usize)> = TENANTS
        .iter()
        .map(|&(benchmark, blocks)| {
            let spec = KernelSpec::from_benchmark(benchmark)?;
            let inputs = benchmark.dfg()?.num_inputs();
            Ok((spec, inputs, blocks))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;

    let mut requests = Vec::new();
    let mut id = 0u64;
    let mut clock_us = 0.0;
    for burst in 0..shape.bursts {
        for round in 0..shape.volley {
            for (tenant, (spec, inputs, blocks)) in specs.iter().enumerate() {
                if (burst + tenant) % 3 == 2 {
                    continue;
                }
                let workload = Workload::random(*inputs, *blocks, id ^ 0xBEEF);
                let arrival = clock_us
                    + round as f64 * shape.round_spacing_us
                    + tenant as f64 * 0.05 * shape.round_spacing_us;
                let mut request = Request::new(id, spec.clone(), workload).at(arrival);
                if tenant == URGENT_TENANT {
                    if let Some(budget) = shape.urgent_budget_us {
                        request = request.with_deadline(arrival + budget);
                    }
                }
                requests.push(request);
                id += 1;
            }
        }
        clock_us += shape.volley as f64 * shape.round_spacing_us + shape.burst_gap_us;
    }
    Ok(requests)
}

/// Checks every outcome against the DFG reference evaluator.
fn verify_outputs(
    requests: &[Request],
    outcomes: &[RequestOutcome],
) -> Result<(), Box<dyn std::error::Error>> {
    let options = LowerOptions::default();
    let find = |id: u64| {
        requests
            .iter()
            .find(|request| request.id == id)
            .expect("outcome ids come from the trace")
    };
    for outcome in outcomes {
        let request = find(outcome.request_id);
        let dfg = request.kernel.dfg(&options)?;
        let expected = evaluate_stream(&dfg, request.workload.records())?;
        assert_eq!(
            outcome.outputs(),
            expected,
            "request {} ({}) diverged from the reference evaluator",
            request.id,
            outcome.kernel
        );
    }
    Ok(())
}

fn serve(
    policy: DispatchPolicy,
    tiles: usize,
    requests: &[Request],
) -> Result<ServeReport, Box<dyn std::error::Error>> {
    let mut runtime = Runtime::new(FuVariant::V4, tiles)?.with_policy(policy);
    // The trace is streamed: the dispatcher sees each request only when it
    // arrives on the virtual timeline.
    let report = runtime.serve_stream(|submitter| {
        for request in requests {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    println!("--- {policy} dispatch ---");
    println!("{}", report.metrics());
    println!();
    verify_outputs(requests, report.outcomes())?;
    Ok(report)
}

/// Serves the trace on a cluster of `devices` × `tiles_per_device` V4
/// devices with FIFO kernel-affinity tile dispatch (act 2's baseline, so
/// the capacity effect on deadline misses stays visible) and the given
/// routing policy, printing the totals and the per-device breakdown.
fn serve_cluster(
    route: RoutePolicy,
    devices: usize,
    tiles_per_device: usize,
    requests: &[Request],
) -> Result<ClusterReport, Box<dyn std::error::Error>> {
    let mut cluster = Cluster::new(FuVariant::V4, devices, tiles_per_device)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_route_policy(route);
    let report = cluster.serve_stream(|submitter| {
        for request in requests {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    println!("--- {devices} device(s) x {tiles_per_device} tiles, {route} routing ---");
    println!("{}", report.metrics());
    for device in report.device_metrics() {
        println!("{device}");
    }
    println!();
    verify_outputs(requests, report.outcomes())?;
    Ok(report)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---------------------------------------------------------------- act 1
    let relaxed = build_trace(&TraceShape {
        bursts: 5,
        volley: 6,
        round_spacing_us: 2.0,
        burst_gap_us: 4.0,
        urgent_budget_us: None,
    })?;
    println!(
        "act 1: {} requests from {} tenants on 6 V4 write-back tiles\n",
        relaxed.len(),
        TENANTS.len()
    );
    assert!(relaxed.len() >= 100, "trace is production-shaped");

    let affinity = serve(DispatchPolicy::KernelAffinity, 6, &relaxed)?;
    let round_robin = serve(DispatchPolicy::RoundRobin, 6, &relaxed)?;

    let a = affinity.metrics();
    let rr = round_robin.metrics();
    assert!(
        a.total_switch_us < rr.total_switch_us,
        "affinity dispatch must spend less context-switch time ({:.2} vs {:.2} us)",
        a.total_switch_us,
        rr.total_switch_us
    );
    println!(
        "affinity saves {:.2} us of context switching ({} vs {} switches), \
         {:.2}x round-robin's throughput\n",
        rr.total_switch_us - a.total_switch_us,
        a.switch_count,
        rr.switch_count,
        a.requests_per_sec / rr.requests_per_sec,
    );

    // ---------------------------------------------------------------- act 2
    // The urgent tenant's deadline budget: a few times its standalone
    // service time, probed so the demo tracks the timing model.
    let (benchmark, blocks) = TENANTS[URGENT_TENANT];
    let spec = KernelSpec::from_benchmark(benchmark)?;
    let inputs = benchmark.dfg()?.num_inputs();
    let probe_request = Request::new(0, spec, Workload::random(inputs, blocks, 0xBEEF ^ 1)).at(0.0);
    let service_us = Runtime::new(FuVariant::V4, 1)?
        .serve(vec![probe_request])?
        .outcomes()[0]
        .completion_us;

    let overload = build_trace(&TraceShape {
        bursts: 4,
        volley: 8,
        round_spacing_us: 0.25,
        burst_gap_us: 1.0,
        urgent_budget_us: Some(4.0 * service_us),
    })?;
    println!(
        "act 2: {} requests squeezed onto 3 tiles; tenant '{}' now has a {:.2} us deadline budget\n",
        overload.len(),
        benchmark.name(),
        4.0 * service_us,
    );

    let fifo = serve(DispatchPolicy::KernelAffinity, 3, &overload)?;
    let edf = serve(DispatchPolicy::EarliestDeadlineFirst, 3, &overload)?;
    let slack = serve(DispatchPolicy::SlackAware, 3, &overload)?;

    let fifo_misses = fifo.metrics().deadline_misses;
    assert!(
        fifo_misses > 0,
        "the overload trace must strand FIFO's urgent requests"
    );
    for report in [&edf, &slack] {
        assert!(
            report.metrics().deadline_misses < fifo_misses,
            "{} must miss strictly fewer deadlines than affinity ({} vs {})",
            report.policy(),
            report.metrics().deadline_misses,
            fifo_misses
        );
    }
    println!(
        "deadline misses on the same overload trace: affinity {} vs edf {} vs slack-aware {} \
         (of {} deadlines)\n",
        fifo_misses,
        edf.metrics().deadline_misses,
        slack.metrics().deadline_misses,
        fifo.metrics().deadline_requests,
    );

    // ---------------------------------------------------------------- act 3
    let mut bounded = Runtime::new(FuVariant::V4, 3)?
        .with_policy(DispatchPolicy::EarliestDeadlineFirst)
        .with_admission_limit(12);
    let guarded = bounded.serve_stream(|submitter| {
        for request in &overload {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    verify_outputs(&overload, guarded.outcomes())?;
    println!("--- edf dispatch, admission limit 12 ---");
    println!("{}", guarded.metrics());
    assert!(
        guarded.metrics().rejects > 0,
        "the overload must trip admission control"
    );
    assert!(guarded.metrics().peak_queue_depth <= 12);
    println!(
        "\nadmission control shed {} of {} requests ({:.0}% reject rate) and capped the \
         queue at {} waiters",
        guarded.metrics().rejects,
        overload.len(),
        guarded.metrics().reject_rate() * 100.0,
        guarded.metrics().peak_queue_depth,
    );

    // ---------------------------------------------------------------- act 4
    println!(
        "\nact 4: the same overload trace on a cluster tier (1 vs 4 devices, \
         3 tiles each)\n"
    );
    let single = serve_cluster(RoutePolicy::KernelHash, 1, 3, &overload)?;
    assert_eq!(
        single.metrics().deadline_misses,
        fifo.metrics().deadline_misses,
        "a 1-device cluster is the act-2 affinity runtime, bit for bit"
    );
    assert_eq!(single.metrics().makespan_us, fifo.metrics().makespan_us);

    let sharded = serve_cluster(RoutePolicy::KernelHash, 4, 3, &overload)?;
    let balanced = serve_cluster(RoutePolicy::LeastLoaded, 4, 3, &overload)?;

    assert!(
        sharded.metrics().deadline_misses < single.metrics().deadline_misses,
        "4x the capacity must cut the deadline misses ({} vs {})",
        sharded.metrics().deadline_misses,
        single.metrics().deadline_misses
    );
    assert!(
        sharded.metrics().switch_count <= balanced.metrics().switch_count,
        "sharding keeps kernels home and must not switch more ({} vs {})",
        sharded.metrics().switch_count,
        balanced.metrics().switch_count
    );
    assert_eq!(sharded.transfers(), 0, "sharded kernels never leave home");
    println!(
        "1 -> 4 devices: deadline misses {} -> {} (kernel-hash) / {} (least-loaded); \
         switch counts: kernel-hash {} vs least-loaded {}; least-loaded moved {} kernel \
         image(s) ({} B) across the link",
        single.metrics().deadline_misses,
        sharded.metrics().deadline_misses,
        balanced.metrics().deadline_misses,
        sharded.metrics().switch_count,
        balanced.metrics().switch_count,
        balanced.transfers(),
        balanced.transfer_bytes(),
    );

    // ---------------------------------------------------------------- act 5
    println!(
        "\nact 5: the same overloads with the control plane on (same-kernel \
         batching + rate-driven replication)\n"
    );
    // The 1-device overload from act 4, with batching over the same FIFO
    // affinity dispatch: the deep mixed queues that thrashed kernels now
    // drain as same-kernel runs.
    let mut batched_single = Cluster::new(FuVariant::V4, 1, 3)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_batching(BatchConfig::with_max_batch(8));
    let batched = batched_single.serve_stream(|submitter| {
        for request in &overload {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    verify_outputs(&overload, batched.outcomes())?;
    println!("--- 1 device x 3 tiles, batching max_batch=8 ---");
    println!("{}", batched.metrics());
    assert!(
        batched.metrics().batch.switches_avoided > 0,
        "the overloaded queues must give the batcher diversions"
    );
    assert!(
        batched.metrics().switch_count < single.metrics().switch_count,
        "batching must cut the 1-device switch count ({} vs {})",
        batched.metrics().switch_count,
        single.metrics().switch_count
    );
    println!(
        "\n1-device overload, batching on: {} -> {} switches ({} avoided in {} batch(es)); \
         makespan {:.2} -> {:.2} us",
        single.metrics().switch_count,
        batched.metrics().switch_count,
        batched.metrics().batch.switches_avoided,
        batched.metrics().batch.batches_formed,
        single.metrics().makespan_us,
        batched.metrics().makespan_us,
    );

    // The 4-device least-loaded cluster with the full control plane: hot
    // kernels replicate ahead of demand while batching rides along.
    let mut controlled_cluster = Cluster::new(FuVariant::V4, 4, 3)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_batching(BatchConfig::with_max_batch(8))
        .with_replication(ReplicationConfig::new(3, 3.0, 20.0));
    let controlled = controlled_cluster.serve_stream(|submitter| {
        for request in &overload {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    verify_outputs(&overload, controlled.outcomes())?;
    println!("\n--- 4 devices x 3 tiles, least-loaded + batching + replication ---");
    println!("{}", controlled.metrics());
    println!("replication: {}", controlled.replication());
    assert!(
        controlled.replication().replicas_pushed > 0,
        "hot tenants must replicate ahead of demand on the overload"
    );
    println!(
        "\n4-device least-loaded, control plane on: {} switches ({} avoided) vs act-4's {}; \
         {} replica push(es) ({} B prefetched) vs act-4's {} demand transfer(s)",
        controlled.metrics().switch_count,
        controlled.metrics().batch.switches_avoided,
        balanced.metrics().switch_count,
        controlled.replication().replicas_pushed,
        controlled.replication().bytes_prefetched,
        balanced.transfers(),
    );

    // ---------------------------------------------------------------- act 6
    println!("\nact 6: act 5's controlled cluster rerun with request-span tracing on\n");
    let mut traced_cluster = Cluster::new(FuVariant::V4, 4, 3)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_batching(BatchConfig::with_max_batch(8))
        .with_replication(ReplicationConfig::new(3, 3.0, 20.0))
        .with_tracing(TraceConfig::enabled());
    let traced = traced_cluster.serve_stream(|submitter| {
        for request in &overload {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    verify_outputs(&overload, traced.outcomes())?;
    assert_eq!(
        traced.metrics(),
        controlled.metrics(),
        "tracing must be functionally transparent: same serve, same metrics"
    );
    let trace = traced.trace().expect("tracing was enabled");

    // Export the Perfetto/Chrome trace (virtual-time lanes per device ×
    // tile), validate it, and write it next to BENCH_runtime.json.
    let trace_json = perfetto_trace_json(trace, None, "serving act 6: controlled cluster");
    let validation = validate_chrome_trace(&trace_json).map_err(std::io::Error::other)?;
    // Write under target/ — generated artifacts never belong in the repo.
    let trace_path = concat!(env!("CARGO_MANIFEST_DIR"), "/target/serving_trace.json");
    std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/target"))?;
    std::fs::write(trace_path, &trace_json)?;
    println!(
        "wrote {trace_path}: {} events over {} track(s) ({} complete spans, {} dropped) — \
         load it at ui.perfetto.dev",
        validation.events,
        validation.tracks,
        validation.complete_spans,
        trace.dropped()
    );

    // The worst-p99 tenant, by kernel name (tenants map 1:1 onto kernels).
    let mut worst: Option<(&str, f64)> = None;
    for &(benchmark, _) in &TENANTS {
        let mut latencies: Vec<f64> = traced
            .outcomes()
            .iter()
            .filter(|outcome| outcome.kernel.as_ref() == benchmark.name())
            .map(|outcome| outcome.latency_us)
            .collect();
        if latencies.is_empty() {
            continue;
        }
        latencies.sort_by(f64::total_cmp);
        let p99 = latencies[((latencies.len() - 1) as f64 * 0.99) as usize];
        if worst.is_none_or(|(_, current)| p99 > current) {
            worst = Some((benchmark.name(), p99));
        }
    }
    let (worst_tenant, worst_p99) = worst.expect("every serve has outcomes");

    // Break that tenant's latency into lifecycle stages from its own spans.
    // Per request, the span durations sum to its reported latency exactly —
    // the reconciliation tests/observability.rs audits.
    let mut stage_totals: [(f64, &str); 4] = [
        (0.0, "queue-wait"),
        (0.0, "acquire"),
        (0.0, "context-switch"),
        (0.0, "run"),
    ];
    let mut tenant_requests = 0usize;
    for outcome in traced
        .outcomes()
        .iter()
        .filter(|outcome| outcome.kernel.as_ref() == worst_tenant)
    {
        tenant_requests += 1;
        for span in trace.spans_for(outcome.request_id) {
            let slot = match span.kind {
                SpanKind::QueueWait => 0,
                SpanKind::Acquire { .. } => 1,
                SpanKind::ContextSwitch => 2,
                SpanKind::Run => 3,
                _ => continue,
            };
            stage_totals[slot].0 += span.dur_us;
        }
    }
    let latency_total: f64 = stage_totals.iter().map(|(us, _)| us).sum();
    println!(
        "\nworst-p99 tenant: '{worst_tenant}' at p99 {worst_p99:.2} us — \
         per-stage latency over its {tenant_requests} request(s):"
    );
    println!(
        "{:>15} {:>12} {:>12} {:>7}",
        "stage", "total us", "mean us", "share"
    );
    for (total_us, label) in stage_totals {
        println!(
            "{label:>15} {total_us:>12.2} {:>12.2} {:>6.1}%",
            total_us / tenant_requests.max(1) as f64,
            total_us / latency_total.max(f64::MIN_POSITIVE) * 100.0
        );
    }

    // ---------------------------------------------------------------- act 7
    println!("\nact 7: scenario traffic through a scripted fault plan\n");
    // Generated traffic instead of the hand-built bursts: a diurnal rate
    // curve with a flash crowd and tenant churn, sized off the act-2 service
    // probe so the 4x3 fleet runs loaded-but-stable (rho ~ 0.5). Tenants map
    // 1:1 onto the same six kernels.
    let duration_us = 80.0 * service_us;
    let scenario = Scenario::new(ScenarioConfig {
        base_rate_per_ms: 12.0 * 0.5 / service_us * 1000.0,
        duration_us,
        diurnal_amplitude: 0.4,
        diurnal_period_us: duration_us / 2.0,
        tenants: TENANTS.len(),
        hot_tenant_weight: 4.0,
        churn_period_us: duration_us / 3.0,
        pipeline_depth: 1,
        seed: 0xBEEF,
    })
    .with_flash_crowd(FlashCrowd {
        start_us: duration_us * 0.3,
        duration_us: duration_us * 0.15,
        multiplier: 2.5,
    });
    let tenant_specs: Vec<(KernelSpec, usize, usize)> = TENANTS
        .iter()
        .map(|&(benchmark, blocks)| {
            let spec = KernelSpec::from_benchmark(benchmark)?;
            let inputs = benchmark.dfg()?.num_inputs();
            Ok((spec, inputs, blocks))
        })
        .collect::<Result<_, Box<dyn std::error::Error>>>()?;
    let scenario_trace: Vec<Request> = scenario
        .arrivals()
        .iter()
        .enumerate()
        .map(|(i, arrival)| {
            let (spec, inputs, blocks) = &tenant_specs[arrival.tenant];
            let workload = Workload::random(*inputs, *blocks, i as u64 ^ 0xFA57);
            Request::new(i as u64, spec.clone(), workload).at(arrival.arrival_us)
        })
        .collect();
    assert!(
        scenario_trace.len() >= 100,
        "the scenario must generate production-shaped traffic"
    );

    // The fault script: device 0 dies a fifth of the way in and is revived
    // cold at 55%; device 2 drains gracefully at 45% and rejoins warm at
    // 75%. At worst two of the four devices are serving.
    let plan = FaultPlan::new()
        .kill(duration_us * 0.2, 0)
        .revive(duration_us * 0.55, 0)
        .drain(duration_us * 0.45, 2)
        .undrain(duration_us * 0.75, 2);
    let mut faulted_cluster = Cluster::new(FuVariant::V4, 4, 3)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_fault_plan(plan);
    let faulted = faulted_cluster.serve_stream(|submitter| {
        for request in &scenario_trace {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    verify_outputs(&scenario_trace, faulted.outcomes())?;
    println!(
        "--- 4 devices x 3 tiles, least-loaded: {} scenario requests, kill+revive dev 0, \
         drain+undrain dev 2 ---",
        scenario_trace.len()
    );
    println!("{}", faulted.metrics());
    for device in faulted.device_metrics() {
        println!("{device}");
    }

    // Nothing is lost: every submitted request either completed or was
    // rejected at arrival (here the staggered script leaves capacity up the
    // whole time, so nothing is even rejected).
    assert_eq!(
        faulted.outcomes().len() + faulted.rejected().len(),
        scenario_trace.len(),
        "completions + rejects must account for every submission"
    );
    assert!(faulted.rejected().is_empty(), "the script is staggered");
    assert_eq!(faulted.faults(), 2, "one kill, one drain");
    assert!(
        faulted.requeues() > 0,
        "displaced work must requeue onto the survivors"
    );
    assert!(
        faulted.lost_work_us() > 0.0,
        "the kill abandons in-flight work (the drain abandons none)"
    );
    let revived_serves = faulted
        .outcomes()
        .iter()
        .filter(|outcome| outcome.device == 0 && outcome.start_us > duration_us * 0.55)
        .count();
    assert!(
        revived_serves > 0,
        "device 0 must serve again after its cold revival"
    );
    let availability = faulted.availability();
    assert!(availability[0] < 1.0 && availability[2] < 1.0);
    assert!(availability[1] == 1.0 && availability[3] == 1.0);
    println!(
        "\nkill+drain script: {} requeue(s), {:.2} us of in-flight work abandoned by the \
         kill, {} request(s) served by device 0 after cold revival ({} B re-acquired over \
         the link); availability per device: [{}]",
        faulted.requeues(),
        faulted.lost_work_us(),
        revived_serves,
        faulted.transfer_bytes(),
        availability
            .iter()
            .map(|a| format!("{a:.2}"))
            .collect::<Vec<_>>()
            .join(", "),
    );

    // ---------------------------------------------------------------- act 8
    println!("\nact 8: pipelined tenants with SLO classes through a mid-serve kill\n");
    // Tenants now submit *pipelines* — three-stage kernel chains with
    // activations flowing between stages — under mixed SLO classes. A
    // device dies mid-serve and is revived cold: resident stages requeue
    // onto the survivors, finished upstream stages are never re-run, and
    // the latency tier holds its deadlines while best effort absorbs the
    // disruption.
    let pipeline_horizon_us = 60.0 * service_us;
    let sessions = [
        Session::new(0).with_slo(SloClass::Latency),
        Session::new(1), // standard
        Session::new(2).with_slo(SloClass::BestEffort),
    ];
    let mut pipelines = Vec::new();
    for i in 0..24u64 {
        let session = i % 3;
        let arrival = i as f64 * pipeline_horizon_us / 24.0;
        // Ids start at 1 so the packed stage ids stay collision-free.
        let mut pipeline = PipelineRequest::new(i + 1, session).at(arrival);
        for stage in 0..3usize {
            let (spec, inputs, blocks) =
                &tenant_specs[(i as usize + 2 * stage) % tenant_specs.len()];
            let workload = Workload::random(*inputs, *blocks, i ^ ((stage as u64) << 8));
            let mut built = PipelineStage::new(spec.clone(), workload).emits(64 * 1024);
            if stage > 0 {
                built = built.after(&[stage - 1]);
            }
            pipeline = pipeline.stage(built);
        }
        if session == 0 {
            // The latency tier carries a pipeline deadline (attached to the
            // sink stage, so EDF/slack dispatch sees it).
            pipeline = pipeline.with_deadline(arrival + 40.0 * service_us);
        }
        pipelines.push(pipeline);
    }
    let stage_mirror: Vec<Request> = pipelines
        .iter()
        .flat_map(|pipeline| {
            pipeline.stages.iter().enumerate().map(|(index, stage)| {
                Request::new(
                    pipeline.stage_request_id(index),
                    stage.kernel.clone(),
                    stage.workload.clone(),
                )
            })
        })
        .collect();
    let mut pipeline_cluster = Cluster::new(FuVariant::V4, 4, 2)?
        .with_policy(DispatchPolicy::SlackAware)
        .with_route_policy(RoutePolicy::PowerOfTwoChoices)
        .with_fault_plan(
            FaultPlan::new()
                .kill(pipeline_horizon_us * 0.35, 3)
                .revive(pipeline_horizon_us * 0.7, 3),
        );
    let piped = pipeline_cluster.serve_pipelines(pipelines.clone(), &sessions)?;
    verify_outputs(&stage_mirror, piped.cluster.outcomes())?;

    let total_stages: usize = pipelines.iter().map(|p| p.stages.len()).sum();
    assert_eq!(
        piped.cluster.outcomes().len() + piped.cluster.rejected().len(),
        total_stages,
        "every stage must be accounted for"
    );
    assert_eq!(piped.completed(), pipelines.len(), "the kill loses nothing");
    for outcome in &piped.pipelines {
        assert!(outcome.commit_us >= outcome.finish_us);
    }
    let latency_class = piped.class(SloClass::Latency).expect("latency tier ran");
    assert_eq!(
        latency_class.deadline_misses, 0,
        "the latency tier must hold its (generous) deadlines through the kill"
    );
    println!(
        "--- 4 devices x 2 tiles, slack-aware + power-of-two, kill+revive dev 3: {} \
         pipelines x 3 stages ---",
        pipelines.len()
    );
    for class in &piped.classes {
        println!(
            "{:>12}: {} pipelines, p50 {:.2} us, p99 {:.2} us, {} deadline miss(es)",
            class.slo.to_string(),
            class.pipelines,
            class.p50_latency_us,
            class.p99_latency_us,
            class.deadline_misses,
        );
    }
    println!(
        "stage depths: {}; {} inter-device activation transfer(s), {:.2} us of \
         activation time",
        piped
            .stages
            .iter()
            .map(|s| format!("d{} x{} p99 {:.2} us", s.depth, s.served, s.p99_latency_us))
            .collect::<Vec<_>>()
            .join(", "),
        piped.activation_transfers(),
        piped.pipelines.iter().map(|p| p.transfer_us).sum::<f64>(),
    );

    // The same serve with stage-affinity routing off: successor stages go
    // wherever the route policy's hash sends their kernel, paying the
    // activation transfer on each cross-device edge.
    let blind = Cluster::new(FuVariant::V4, 4, 2)?
        .with_policy(DispatchPolicy::SlackAware)
        .with_route_policy(RoutePolicy::PowerOfTwoChoices)
        .with_stage_affinity(false)
        .with_fault_plan(
            FaultPlan::new()
                .kill(pipeline_horizon_us * 0.35, 3)
                .revive(pipeline_horizon_us * 0.7, 3),
        )
        .serve_pipelines(pipelines.clone(), &sessions)?;
    assert!(
        piped.activation_transfers() < blind.activation_transfers(),
        "stage affinity must cut activation transfers ({} vs {})",
        piped.activation_transfers(),
        blind.activation_transfers()
    );
    println!(
        "stage affinity keeps activations local: {} transfer(s) vs {} affinity-blind",
        piped.activation_transfers(),
        blind.activation_transfers(),
    );

    // ---------------------------------------------------------------- act 9
    println!("\nact 9: act 5's controlled cluster once more, continuous telemetry on\n");
    // Window width: a couple of service times, so each burst of the overload
    // trace spans a handful of windows and the arrival pattern is visible in
    // the series.
    let window_us = 2.0 * service_us;
    let mut telemetered_cluster = Cluster::new(FuVariant::V4, 4, 3)?
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_batching(BatchConfig::with_max_batch(8))
        .with_replication(ReplicationConfig::new(3, 3.0, 20.0))
        .with_tracing(TraceConfig::enabled())
        .with_telemetry(TelemetryConfig::windowed(window_us))
        .with_slo(SloConfig::disabled().with_objective(SloObjective::new(SloClass::Standard, 0.1)));
    let telemetered = telemetered_cluster.serve_stream(|submitter| {
        for request in &overload {
            if submitter.submit(request.clone()).is_err() {
                break;
            }
        }
    })?;
    verify_outputs(&overload, telemetered.outcomes())?;
    assert_eq!(
        telemetered.metrics(),
        controlled.metrics(),
        "telemetry must be functionally transparent: same serve, same metrics"
    );

    let series = telemetered.telemetry().expect("telemetry was enabled");
    assert_eq!(
        series.total_served(),
        telemetered.outcomes().len() as u64,
        "every completion lands in exactly one window"
    );
    println!(
        "windowed series: {} windows of {window_us:.2} us over a {:.2} us makespan",
        series.windows.len(),
        series.makespan_us
    );
    println!(
        "{:>6} {:>8} {:>10} {:>11} {:>11} {:>12}",
        "window", "served", "miss rate", "mean queue", "peak queue", "utilization"
    );
    for window in &series.windows {
        println!(
            "{:>6} {:>8} {:>10.3} {:>11.2} {:>11} {:>11.0}%",
            window.index,
            window.served,
            window.miss_rate(),
            window.mean_queue_depth,
            window.peak_queue_depth,
            window.utilization * 100.0
        );
    }

    // The burn-rate view of the same serve: miss rate over the error budget
    // per window, with multi-window alerts when both the fast and slow burn
    // cross the threshold.
    let slo = telemetered.slo().expect("an SLO objective was configured");
    let status = slo
        .class(SloClass::Standard)
        .expect("the standard class is tracked");
    println!(
        "\nslo: {:.0}% miss budget for the standard class -> {:.2}x of the serve's budget \
         consumed, {} burn alert(s)",
        status.objective.target_miss_rate * 100.0,
        status.budget_consumed,
        status.alerts.len(),
    );
    for alert in &status.alerts {
        match (alert.cleared_window, alert.cleared_us) {
            (Some(window), Some(us)) => println!(
                "  alert: fired window {} ({:.2} us), cleared window {window} ({us:.2} us), \
                 peak fast burn {:.2}x",
                alert.fired_window, alert.fired_us, alert.peak_fast_burn
            ),
            _ => println!(
                "  alert: fired window {} ({:.2} us), still burning at the makespan, \
                 peak fast burn {:.2}x",
                alert.fired_window, alert.fired_us, alert.peak_fast_burn
            ),
        }
    }

    // Per-request latency attribution from the same serve's spans: an
    // additive queue/acquire/activation/switch/run breakdown per request
    // that reconciles with the reported latency exactly.
    let attribution = explain(telemetered.trace().expect("tracing was enabled"));
    assert_eq!(attribution.rows().len(), telemetered.outcomes().len());
    assert!(
        attribution.rows().iter().all(|row| row.reconciles()),
        "every attribution must sum back to its request's latency"
    );
    println!("\nwhy were the slow ones slow? the 5 worst offenders:");
    print!("{}", attribution.worst_offenders_table(5));

    // The combined artifact: request spans plus per-window counter tracks
    // (throughput, miss rate, queue depth) and SLO burn instants, one file,
    // Perfetto-loadable.
    let telemetry_json = perfetto_trace_json_with_telemetry(
        telemetered.trace().expect("tracing was enabled"),
        None,
        telemetered.telemetry(),
        telemetered.slo(),
        "serving act 9: telemetered cluster",
    );
    let telemetry_validation =
        validate_chrome_trace(&telemetry_json).map_err(std::io::Error::other)?;
    let telemetry_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/target/serving_telemetry_trace.json"
    );
    std::fs::write(telemetry_path, &telemetry_json)?;
    println!(
        "wrote {telemetry_path}: {} events over {} track(s) with the windowed counters \
         riding along — load it at ui.perfetto.dev",
        telemetry_validation.events, telemetry_validation.tracks,
    );

    println!("\nall outputs match the DFG reference evaluator");
    Ok(())
}
