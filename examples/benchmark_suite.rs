//! Runs the paper's benchmark suite (Table III) across the evaluated overlay
//! variants and prints the achieved II, throughput and latency per variant —
//! the data behind Table III and Fig. 6.
//!
//! ```text
//! cargo run --example benchmark_suite
//! ```

use tm_overlay::{compare_variants, Benchmark, FuVariant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<10} {:>5} {:>5} {:>6} | {:>8} {:>8} {:>8} {:>8} {:>8}",
        "kernel", "I/O", "#ops", "depth", "[14]", "V1", "V2", "V3", "V4"
    );
    println!("{}", "-".repeat(88));

    for benchmark in Benchmark::TABLE3 {
        let dfg = benchmark.dfg()?;
        let stats = dfg.analysis().stats(&dfg);
        let results = compare_variants(&dfg, &FuVariant::EVALUATED, 64, 42)?;

        // Row 1: measured initiation interval per variant.
        let iis: Vec<String> = results
            .iter()
            .map(|r| format!("{:>8.1}", r.performance.measured_ii))
            .collect();
        println!(
            "{:<10} {:>2}/{:<2} {:>5} {:>6} | {}  (II, cycles)",
            benchmark,
            stats.inputs,
            stats.outputs,
            stats.ops,
            stats.depth,
            iis.join(" ")
        );

        // Row 2: throughput in GOPS.
        let gops: Vec<String> = results
            .iter()
            .map(|r| format!("{:>8.2}", r.performance.throughput_gops))
            .collect();
        println!("{:<31} | {}  (GOPS)", "", gops.join(" "));

        // Row 3: latency in nanoseconds.
        let latency: Vec<String> = results
            .iter()
            .map(|r| format!("{:>8.1}", r.performance.latency_ns))
            .collect();
        println!("{:<31} | {}  (latency, ns)", "", latency.join(" "));
        println!();
    }

    // Summary: average II reduction vs the [14] baseline, as reported in the
    // paper's Sec. V.
    let mut v1_reduction = Vec::new();
    let mut v2_reduction = Vec::new();
    for benchmark in Benchmark::TABLE3 {
        let dfg = benchmark.dfg()?;
        let results = compare_variants(&dfg, &FuVariant::EVALUATED, 48, 7)?;
        let ii = |v: FuVariant| {
            results
                .iter()
                .find(|r| r.variant == v)
                .map(|r| r.performance.measured_ii)
                .unwrap_or(f64::NAN)
        };
        v1_reduction.push(1.0 - ii(FuVariant::V1) / ii(FuVariant::Baseline));
        v2_reduction.push(1.0 - ii(FuVariant::V2) / ii(FuVariant::Baseline));
    }
    let avg = |v: &[f64]| 100.0 * v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average II reduction vs [14]: V1 {:.0}% (paper: 42%), V2 {:.0}% (paper: 71%)",
        avg(&v1_reduction),
        avg(&v2_reduction)
    );
    Ok(())
}
