//! Minimal offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access, so this shim implements the
//! small, stable subset of the `rand` 0.8 API the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! integer ranges, [`Rng::gen_bool`] and [`seq::SliceRandom::choose`]. The
//! generator is a SplitMix64-seeded xoshiro256++, so streams are
//! deterministic per seed (the only property the workspace relies on —
//! nothing here is cryptographic).

#![forbid(unsafe_code)]

/// Core random-number-generator interface: a source of `u64` words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draws one value from the range using `rng`.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128 + 1) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i32, i64, u32, u64, usize);

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniformly samples one value from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64 (not the cryptographic ChaCha generator
    /// the real crate uses — determinism per seed is all we need).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;
        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// The convenience prelude, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-8..=8);
            assert!((-8..=8).contains(&v));
            let u: usize = rng.gen_range(0..5usize);
            assert!(u < 5);
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let pool = [1, 2, 3];
        assert!(pool.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
