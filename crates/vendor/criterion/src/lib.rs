//! Minimal offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so this shim implements just
//! enough of the `criterion` 0.5 API for the workspace's `benches/` targets
//! to compile and run: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`black_box`],
//! [`Throughput`] and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Instead of criterion's statistical analysis it times a fixed number of
//! iterations with [`std::time::Instant`] and prints the mean per-iteration
//! wall time, which is enough for relative A/B comparisons in this repo.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation for a benchmark group (recorded, echoed in output).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Bytes processed per iteration, decimal multiple.
    BytesDecimal(u64),
}

/// Timing driver handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`: a short warm-up, then a measured batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const WARMUP: usize = 3;
        const MEASURED: usize = 15;
        for _ in 0..WARMUP {
            black_box(routine());
        }
        for _ in 0..MEASURED {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn mean(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        self.samples.iter().sum::<Duration>() / self.samples.len() as u32
    }
}

fn run_one(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mean = bencher.mean();
    match throughput {
        Some(Throughput::Elements(n)) if mean > Duration::ZERO => {
            let rate = n as f64 / mean.as_secs_f64();
            println!("{name:<60} {mean:>12.2?}/iter  ({rate:.0} elem/s)");
        }
        _ => println!("{name:<60} {mean:>12.2?}/iter"),
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a standalone benchmark and prints its mean iteration time.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into(), None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks, mirroring `criterion::BenchmarkGroup`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's sample count is fixed.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a function that runs each listed benchmark with a fresh
/// [`Criterion`], mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut ran = 0u32;
        Criterion::default().bench_function("smoke", |b| {
            b.iter(|| ran += 1);
        });
        assert!(ran > 0);
    }

    #[test]
    fn groups_compose_throughput_and_finish() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(8));
        group.bench_function("inner", |b| b.iter(|| black_box(2 + 2)));
        group.finish();
    }
}
