//! Minimal offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so this shim implements just
//! enough of the `proptest` 1.x API for the workspace's property tests to
//! compile and run: the [`proptest!`] macro (with `#![proptest_config]`),
//! [`Strategy`] with `prop_filter`, [`any`], integer-range strategies, tuple
//! strategies and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Unlike real proptest there is no shrinking: a failing case panics
//! with the sampled inputs so it can be reproduced by hand.

#![forbid(unsafe_code)]

use rand::prelude::*;

/// Why a test case did not complete.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — sample another one.
    Reject(String),
    /// An assertion failed — the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds the rejection variant.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

/// Execution parameters for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of accepted cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
///
/// `sample` returns `None` when a filter rejected the draw.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value, or `None` if a filter rejected it.
    fn sample(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Restricts the strategy to values satisfying `predicate`.
    fn prop_filter<F>(self, whence: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            predicate,
        }
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
#[derive(Debug)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)]
    whence: String,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner
            .sample(rng)
            .filter(|value| (self.predicate)(value))
    }
}

/// Types with a canonical full-range strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}

impl_range_strategy!(i32, i64, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Drives one property test: samples until `config.cases` cases are accepted
/// (assume/filter rejections are resampled, with an overall attempt cap) and
/// panics on the first failing case.
pub fn run_property<A, S, B>(name: &str, config: &ProptestConfig, strategy: &S, mut body: B)
where
    S: Strategy<Value = A>,
    A: std::fmt::Debug + Clone,
    B: FnMut(A) -> Result<(), TestCaseError>,
{
    let mut rng = StdRng::seed_from_u64(0x7E57_CA5E ^ name.len() as u64);
    let mut accepted = 0u32;
    let mut attempts = 0u32;
    let max_attempts = config.cases.saturating_mul(64).max(1024);
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "{name}: gave up after {attempts} attempts ({accepted}/{} cases accepted)",
            config.cases
        );
        let Some(case) = strategy.sample(&mut rng) else {
            continue;
        };
        match body(case.clone()) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(message)) => {
                panic!("{name}: case {case:?} failed: {message}")
            }
        }
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat in $strategy:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &($($strategy,)+),
                    |($($pat,)+)| { $body Ok(()) },
                );
            }
        )*
    };
}

/// Asserts within a property body, mirroring `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality within a property body, mirroring
/// `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {left:?}, right: {right:?})",
                stringify!($left),
                stringify!($right),
            )));
        }
    }};
}

/// Discards the current case unless `cond` holds, mirroring
/// `proptest::prop_assume!`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The convenience prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn tuples_filters_and_assumes_compose(
            (seed, size) in (any::<u64>(), 1usize..10)
                .prop_filter("size under 8", |(_, size)| *size < 8),
            extra in 2usize..5,
        ) {
            prop_assume!(seed != 0);
            prop_assert!(size < 8);
            prop_assert!((2..5).contains(&extra));
            prop_assert_eq!(size + extra, extra + size);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        super::run_property(
            "always_fails",
            &ProptestConfig::with_cases(1),
            &(0usize..4,),
            |(_value,)| Err(TestCaseError::fail("failed")),
        );
    }
}
