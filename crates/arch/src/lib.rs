//! Architecture, resource, timing and reconfiguration models for the linear
//! time-multiplexed FPGA overlay.
//!
//! The paper's evaluation is carried out on a Xilinx Zynq XC7Z020 using
//! Vivado place-and-route results. This crate captures those published
//! numbers as calibrated *models* so the rest of the workspace (scheduler,
//! simulator, benchmark harness) can derive the same quantities the paper
//! reports without an FPGA toolchain:
//!
//! * [`fu`] — the functional-unit variants of Table I ([14] baseline and
//!   V1–V5) with their resources, operating frequency and internal
//!   write-back path (IWP);
//! * [`device`] / [`resources`] — FPGA device capacities and resource
//!   arithmetic;
//! * [`overlay`] — overlay configurations (variant + depth + tiles) and their
//!   resource/frequency estimates, anchored to the depth-8 figures quoted in
//!   Sec. V;
//! * [`scaling`] — the Fig. 5 scalability sweeps;
//! * [`reconfig`] — the PCAP partial-reconfiguration and instruction-load
//!   model behind the hardware-context-switch comparison;
//! * [`noc`] — the tile/NoC composition proposed in Sec. III-A.3.
//!
//! # Example
//!
//! ```
//! use overlay_arch::{FuVariant, OverlayConfig};
//!
//! # fn main() -> Result<(), overlay_arch::ArchError> {
//! let overlay = OverlayConfig::new(FuVariant::V1, 8)?;
//! let usage = overlay.resource_estimate();
//! assert_eq!(usage.dsps, 8);
//! assert!(overlay.fmax_mhz() > 300.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod device;
pub mod error;
pub mod fu;
pub mod noc;
pub mod overlay;
pub mod reconfig;
pub mod resources;
pub mod scaling;

pub use device::FpgaDevice;
pub use error::ArchError;
pub use fu::FuVariant;
pub use noc::{NocConfig, Tile, TileComposition};
pub use overlay::OverlayConfig;
pub use reconfig::{ContextSwitch, ReconfigModel};
pub use resources::ResourceUsage;
pub use scaling::{scalability_sweep, ScalabilityPoint};
