//! FPGA resource accounting.

use std::fmt;
use std::ops::{Add, AddAssign, Mul};

use crate::device::FpgaDevice;

/// A bundle of FPGA resources (LUTs, flip-flops, logic slices, DSP blocks and
/// block RAMs).
///
/// Resource usages add component-wise and can be scaled by an integer factor,
/// which is how overlay-level usage is derived from per-FU usage.
///
/// # Example
///
/// ```
/// use overlay_arch::ResourceUsage;
///
/// let fu = ResourceUsage { luts: 196, ffs: 237, slices: 78, dsps: 1, brams: 0 };
/// let eight_fus = fu * 8;
/// assert_eq!(eight_fus.dsps, 8);
/// assert_eq!(eight_fus.luts, 1568);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub luts: usize,
    /// Flip-flops (registers).
    pub ffs: usize,
    /// Logic slices (4 LUTs + 8 FFs each on 7-series devices).
    pub slices: usize,
    /// DSP48E1 blocks.
    pub dsps: usize,
    /// 36 kb block RAMs.
    pub brams: usize,
}

impl ResourceUsage {
    /// The empty resource bundle.
    pub const ZERO: ResourceUsage = ResourceUsage {
        luts: 0,
        ffs: 0,
        slices: 0,
        dsps: 0,
        brams: 0,
    };

    /// Estimates the number of logic slices needed to hold the given LUT and
    /// FF counts on a 7-series device (4 LUTs and 8 flip-flops per slice),
    /// assuming the packer achieves ~80 % occupancy as typical for control
    /// heavy logic.
    pub fn slices_from_luts_ffs(luts: usize, ffs: usize) -> usize {
        let by_lut = luts.div_ceil(4);
        let by_ff = ffs.div_ceil(8);
        let packed = by_lut.max(by_ff);
        (packed as f64 / 0.8).ceil() as usize
    }

    /// Fraction of `device` consumed by each resource class, as
    /// `(luts, ffs, slices, dsps, brams)` fractions in `0.0..=1.0` (values
    /// above 1.0 mean the design does not fit).
    pub fn utilization_on(&self, device: &FpgaDevice) -> Utilization {
        fn frac(used: usize, available: usize) -> f64 {
            if available == 0 {
                0.0
            } else {
                used as f64 / available as f64
            }
        }
        Utilization {
            luts: frac(self.luts, device.luts),
            ffs: frac(self.ffs, device.ffs),
            slices: frac(self.slices, device.slices),
            dsps: frac(self.dsps, device.dsps),
            brams: frac(self.brams, device.brams),
        }
    }

    /// Whether the usage fits within `device`.
    pub fn fits_on(&self, device: &FpgaDevice) -> bool {
        let u = self.utilization_on(device);
        u.luts <= 1.0 && u.ffs <= 1.0 && u.slices <= 1.0 && u.dsps <= 1.0 && u.brams <= 1.0
    }
}

/// Per-class device utilization fractions.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Utilization {
    /// LUT utilization fraction.
    pub luts: f64,
    /// Flip-flop utilization fraction.
    pub ffs: f64,
    /// Slice utilization fraction.
    pub slices: f64,
    /// DSP utilization fraction.
    pub dsps: f64,
    /// Block-RAM utilization fraction.
    pub brams: f64,
}

impl Utilization {
    /// The largest utilization fraction across all resource classes — the
    /// binding constraint.
    pub fn max_fraction(&self) -> f64 {
        self.luts
            .max(self.ffs)
            .max(self.slices)
            .max(self.dsps)
            .max(self.brams)
    }
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;

    fn add(self, rhs: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts + rhs.luts,
            ffs: self.ffs + rhs.ffs,
            slices: self.slices + rhs.slices,
            dsps: self.dsps + rhs.dsps,
            brams: self.brams + rhs.brams,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, rhs: ResourceUsage) {
        *self = *self + rhs;
    }
}

impl Mul<usize> for ResourceUsage {
    type Output = ResourceUsage;

    fn mul(self, factor: usize) -> ResourceUsage {
        ResourceUsage {
            luts: self.luts * factor,
            ffs: self.ffs * factor,
            slices: self.slices * factor,
            dsps: self.dsps * factor,
            brams: self.brams * factor,
        }
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} LUTs, {} FFs, {} slices, {} DSPs, {} BRAMs",
            self.luts, self.ffs, self.slices, self.dsps, self.brams
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::FpgaDevice;

    #[test]
    fn addition_and_scaling_are_component_wise() {
        let a = ResourceUsage {
            luts: 10,
            ffs: 20,
            slices: 3,
            dsps: 1,
            brams: 0,
        };
        let b = ResourceUsage {
            luts: 5,
            ffs: 5,
            slices: 2,
            dsps: 0,
            brams: 1,
        };
        let sum = a + b;
        assert_eq!(sum.luts, 15);
        assert_eq!(sum.brams, 1);
        let scaled = a * 3;
        assert_eq!(scaled.ffs, 60);
        let mut acc = ResourceUsage::ZERO;
        acc += a;
        acc += b;
        assert_eq!(acc, sum);
    }

    #[test]
    fn slice_estimate_respects_lut_and_ff_pressure() {
        // 196 LUTs / 4 = 49, 237 FFs / 8 = 30 -> LUT bound, /0.8 ≈ 62
        let slices = ResourceUsage::slices_from_luts_ffs(196, 237);
        assert!(slices >= 49);
        assert!(slices <= 75);
        // FF bound case
        assert!(ResourceUsage::slices_from_luts_ffs(8, 800) >= 100);
    }

    #[test]
    fn utilization_reports_fractions_of_the_device() {
        let device = FpgaDevice::zynq_7020();
        let usage = ResourceUsage {
            luts: device.luts / 2,
            ffs: 0,
            slices: 0,
            dsps: device.dsps,
            brams: 0,
        };
        let utilization = usage.utilization_on(&device);
        assert!((utilization.luts - 0.5).abs() < 1e-9);
        assert!((utilization.dsps - 1.0).abs() < 1e-9);
        assert!((utilization.max_fraction() - 1.0).abs() < 1e-9);
        assert!(usage.fits_on(&device));
    }

    #[test]
    fn oversubscription_fails_the_fit_check() {
        let device = FpgaDevice::zynq_7020();
        let usage = ResourceUsage {
            dsps: device.dsps + 1,
            ..ResourceUsage::ZERO
        };
        assert!(!usage.fits_on(&device));
    }

    #[test]
    fn display_lists_all_classes() {
        let text = ResourceUsage {
            luts: 1,
            ffs: 2,
            slices: 3,
            dsps: 4,
            brams: 5,
        }
        .to_string();
        assert!(text.contains("1 LUTs"));
        assert!(text.contains("5 BRAMs"));
    }
}
