//! FPGA device capacity models.

use std::fmt;

/// Capacities of an FPGA device, in the resource classes the overlay uses.
///
/// Two devices appear in the paper: the Zynq XC7Z020 used for all evaluation
/// results, and the Virtex-7 VC707 (XC7VX485T) quoted for the V1 FU's peak
/// frequency.
///
/// # Example
///
/// ```
/// use overlay_arch::FpgaDevice;
///
/// let zynq = FpgaDevice::zynq_7020();
/// assert_eq!(zynq.dsps, 220);
/// assert!(zynq.luts > 50_000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FpgaDevice {
    /// Device / board name.
    pub name: String,
    /// Available 6-input LUTs.
    pub luts: usize,
    /// Available flip-flops.
    pub ffs: usize,
    /// Available logic slices.
    pub slices: usize,
    /// Available DSP48E1 blocks.
    pub dsps: usize,
    /// Available 36 kb block RAMs.
    pub brams: usize,
}

impl FpgaDevice {
    /// The Zynq XC7Z020 (ZedBoard / Zynq-7000) programmable logic, the device
    /// every result in the paper is reported on.
    pub fn zynq_7020() -> Self {
        FpgaDevice {
            name: "Zynq XC7Z020".to_owned(),
            luts: 53_200,
            ffs: 106_400,
            slices: 13_300,
            dsps: 220,
            brams: 140,
        }
    }

    /// The Virtex-7 VC707 evaluation board (XC7VX485T), quoted in the paper
    /// for the V1 FU's 610 MHz peak frequency.
    pub fn virtex7_vc707() -> Self {
        FpgaDevice {
            name: "Virtex-7 VC707 (XC7VX485T)".to_owned(),
            luts: 303_600,
            ffs: 607_200,
            slices: 75_900,
            dsps: 2_800,
            brams: 1_030,
        }
    }

    /// A custom device description.
    pub fn custom(
        name: impl Into<String>,
        luts: usize,
        ffs: usize,
        slices: usize,
        dsps: usize,
        brams: usize,
    ) -> Self {
        FpgaDevice {
            name: name.into(),
            luts,
            ffs,
            slices,
            dsps,
            brams,
        }
    }
}

impl fmt::Display for FpgaDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} LUTs, {} FFs, {} slices, {} DSPs, {} BRAMs",
            self.name, self.luts, self.ffs, self.slices, self.dsps, self.brams
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zynq_capacities_match_the_datasheet() {
        let zynq = FpgaDevice::zynq_7020();
        assert_eq!(zynq.luts, 53_200);
        assert_eq!(zynq.ffs, 106_400);
        assert_eq!(zynq.slices, 13_300);
        assert_eq!(zynq.dsps, 220);
        assert_eq!(zynq.brams, 140);
    }

    #[test]
    fn virtex7_is_much_larger_than_zynq() {
        let zynq = FpgaDevice::zynq_7020();
        let virtex = FpgaDevice::virtex7_vc707();
        assert!(virtex.luts > 5 * zynq.luts);
        assert!(virtex.dsps > 10 * zynq.dsps);
    }

    #[test]
    fn custom_devices_and_display() {
        let device = FpgaDevice::custom("toy", 100, 200, 25, 4, 2);
        assert_eq!(device.dsps, 4);
        assert!(device.to_string().contains("toy"));
    }
}
