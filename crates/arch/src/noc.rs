//! Tile composition and the lightweight NoC proposed in Sec. III-A.3.
//!
//! The paper proposes packaging two depth-8 write-back overlays into a
//! *tile*, with replicated tiles connected by an austere Hoplite-style
//! deflection-routed NoC. Within a tile the two overlays can be chained in
//! series (one logical depth-16 overlay) or run in parallel (a dual-datapath
//! depth-8 overlay, analogous to V2). This module models the resource cost
//! and communication latency of such arrays so the composition trade-off can
//! be explored quantitatively.

use std::fmt;

use crate::error::ArchError;
use crate::fu::FuVariant;
use crate::overlay::{OverlayConfig, FIXED_DEPTH};
use crate::resources::ResourceUsage;

/// How the two depth-8 overlays inside a tile are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TileComposition {
    /// Chained back to back, forming a single depth-16 overlay.
    Series,
    /// Operated side by side on independent data streams (dual datapath).
    Parallel,
}

impl fmt::Display for TileComposition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TileComposition::Series => f.write_str("series (depth 16)"),
            TileComposition::Parallel => f.write_str("parallel (dual depth 8)"),
        }
    }
}

/// A tile holding two fixed-depth overlays plus one NoC router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tile {
    /// The FU variant of both overlays in the tile (a write-back variant).
    pub variant: FuVariant,
    /// How the two overlays are combined.
    pub composition: TileComposition,
}

/// Approximate cost of one Hoplite-style deflection router (the paper cites
/// Kapre & Gray's austere FPGA NoC).
const ROUTER_COST: ResourceUsage = ResourceUsage {
    luts: 60,
    ffs: 80,
    slices: 20,
    dsps: 0,
    brams: 0,
};

impl Tile {
    /// Creates a tile of two depth-8 overlays of `variant`.
    pub fn new(variant: FuVariant, composition: TileComposition) -> Self {
        Tile {
            variant,
            composition,
        }
    }

    /// The logical overlay depth a kernel sees on this tile.
    pub fn logical_depth(&self) -> usize {
        match self.composition {
            TileComposition::Series => 2 * FIXED_DEPTH,
            TileComposition::Parallel => FIXED_DEPTH,
        }
    }

    /// Number of independent data streams the tile processes at once.
    pub fn parallel_streams(&self) -> usize {
        match self.composition {
            TileComposition::Series => 1,
            TileComposition::Parallel => 2,
        }
    }

    /// Estimated resource usage of the tile (two overlays plus a router).
    pub fn resource_estimate(&self) -> ResourceUsage {
        let overlay = OverlayConfig::fixed_depth(self.variant).resource_estimate();
        overlay * 2 + ROUTER_COST
    }
}

impl fmt::Display for Tile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} tile, {}", self.variant, self.composition)
    }
}

/// A 2-D array of tiles connected by a unidirectional-torus deflection NoC
/// (Hoplite topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Number of tile rows.
    pub rows: usize,
    /// Number of tile columns.
    pub cols: usize,
    /// The tile replicated across the array.
    pub tile: Tile,
}

impl NocConfig {
    /// Creates an array configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::UnsupportedTileCount`] if either dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize, tile: Tile) -> Result<Self, ArchError> {
        if rows == 0 || cols == 0 {
            return Err(ArchError::UnsupportedTileCount { tiles: rows * cols });
        }
        Ok(NocConfig { rows, cols, tile })
    }

    /// Total number of tiles.
    pub fn num_tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Total resource estimate for the array.
    pub fn resource_estimate(&self) -> ResourceUsage {
        self.tile.resource_estimate() * self.num_tiles()
    }

    /// Zero-load routing latency, in cycles, from tile `(r0, c0)` to tile
    /// `(r1, c1)` on the unidirectional torus: packets travel east along the
    /// row ring first, then south along the column ring, one hop per cycle,
    /// plus one cycle of router exit.
    pub fn route_latency(&self, from: (usize, usize), to: (usize, usize)) -> usize {
        let east = (to.1 + self.cols - from.1) % self.cols;
        let south = (to.0 + self.rows - from.0) % self.rows;
        east + south + 1
    }

    /// The worst-case zero-load routing latency across the array.
    pub fn max_route_latency(&self) -> usize {
        (self.cols - 1) + (self.rows - 1) + 1
    }
}

impl fmt::Display for NocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} torus of [{}]", self.rows, self.cols, self.tile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_tiles_double_the_depth() {
        let series = Tile::new(FuVariant::V3, TileComposition::Series);
        assert_eq!(series.logical_depth(), 16);
        assert_eq!(series.parallel_streams(), 1);
        let parallel = Tile::new(FuVariant::V3, TileComposition::Parallel);
        assert_eq!(parallel.logical_depth(), 8);
        assert_eq!(parallel.parallel_streams(), 2);
    }

    #[test]
    fn tile_resources_are_two_overlays_plus_a_router() {
        let tile = Tile::new(FuVariant::V3, TileComposition::Series);
        let overlay = OverlayConfig::fixed_depth(FuVariant::V3).resource_estimate();
        let usage = tile.resource_estimate();
        assert_eq!(usage.dsps, 2 * overlay.dsps);
        assert!(usage.slices > 2 * overlay.slices);
    }

    #[test]
    fn array_dimensions_are_validated() {
        let tile = Tile::new(FuVariant::V4, TileComposition::Parallel);
        assert!(NocConfig::new(0, 3, tile).is_err());
        let noc = NocConfig::new(2, 3, tile).unwrap();
        assert_eq!(noc.num_tiles(), 6);
        assert_eq!(noc.resource_estimate().dsps, 6 * 16);
    }

    #[test]
    fn torus_routing_latency_wraps_around() {
        let tile = Tile::new(FuVariant::V3, TileComposition::Series);
        let noc = NocConfig::new(3, 3, tile).unwrap();
        assert_eq!(noc.route_latency((0, 0), (0, 0)), 1);
        assert_eq!(noc.route_latency((0, 0), (0, 1)), 2);
        // Wrapping west-to-east: from column 2 back to column 0 is 1 hop.
        assert_eq!(noc.route_latency((0, 2), (0, 0)), 2);
        assert_eq!(noc.max_route_latency(), 5);
    }

    #[test]
    fn four_v3_tiles_fit_on_the_zynq() {
        use crate::device::FpgaDevice;
        let tile = Tile::new(FuVariant::V3, TileComposition::Series);
        let noc = NocConfig::new(2, 2, tile).unwrap();
        assert!(noc.resource_estimate().fits_on(&FpgaDevice::zynq_7020()));
    }

    #[test]
    fn displays_are_descriptive() {
        let tile = Tile::new(FuVariant::V5, TileComposition::Parallel);
        assert!(tile.to_string().contains("V5"));
        let noc = NocConfig::new(2, 4, tile).unwrap();
        assert!(noc.to_string().contains("2x4"));
    }
}
