//! Overlay scalability sweeps (Fig. 5 of the paper).
//!
//! Fig. 5 plots, for overlay sizes of 2–16 FUs, (a) the logic-slice and DSP
//! usage and (b) the maximum operating frequency, for the `[14]` baseline and
//! the V1/V2 overlays. [`scalability_sweep`] regenerates those series from
//! the calibrated models in [`crate::overlay`].

use crate::error::ArchError;
use crate::fu::FuVariant;
use crate::overlay::OverlayConfig;

/// One point of the Fig. 5 sweep: an overlay size and the modelled resource
/// usage / frequency at that size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalabilityPoint {
    /// The FU variant.
    pub variant: FuVariant,
    /// Overlay size (number of FUs).
    pub size: usize,
    /// Estimated logic-slice usage.
    pub slices: usize,
    /// DSP blocks used.
    pub dsps: usize,
    /// Estimated maximum frequency in MHz.
    pub fmax_mhz: f64,
}

/// Generates the Fig. 5 sweep for `variant` over overlay sizes
/// `sizes` (the paper uses 2, 4, …, 16).
///
/// # Errors
///
/// Returns [`ArchError::InvalidDepth`] if any requested size is out of range.
///
/// # Example
///
/// ```
/// use overlay_arch::{scalability_sweep, FuVariant};
///
/// # fn main() -> Result<(), overlay_arch::ArchError> {
/// let points = scalability_sweep(FuVariant::V1, &[2, 4, 8, 16])?;
/// assert_eq!(points.len(), 4);
/// assert!(points[3].slices > points[0].slices);
/// assert!(points[3].fmax_mhz < points[0].fmax_mhz);
/// # Ok(())
/// # }
/// ```
pub fn scalability_sweep(
    variant: FuVariant,
    sizes: &[usize],
) -> Result<Vec<ScalabilityPoint>, ArchError> {
    sizes
        .iter()
        .map(|&size| {
            let overlay = OverlayConfig::new(variant, size)?;
            let usage = overlay.resource_estimate();
            Ok(ScalabilityPoint {
                variant,
                size,
                slices: usage.slices,
                dsps: usage.dsps,
                fmax_mhz: overlay.fmax_mhz(),
            })
        })
        .collect()
}

/// The overlay sizes plotted in Fig. 5 (2 to 16 FUs in steps of 2).
pub fn figure5_sizes() -> Vec<usize> {
    (1..=8).map(|i| i * 2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_sizes_are_2_to_16() {
        assert_eq!(figure5_sizes(), vec![2, 4, 6, 8, 10, 12, 14, 16]);
    }

    #[test]
    fn slices_grow_monotonically_with_size() {
        for variant in [FuVariant::Baseline, FuVariant::V1, FuVariant::V2] {
            let points = scalability_sweep(variant, &figure5_sizes()).unwrap();
            for window in points.windows(2) {
                assert!(window[1].slices > window[0].slices, "{variant}");
                assert!(window[1].dsps >= window[0].dsps, "{variant}");
                assert!(window[1].fmax_mhz <= window[0].fmax_mhz, "{variant}");
            }
        }
    }

    #[test]
    fn v2_uses_twice_the_dsps_of_v1() {
        let v1 = scalability_sweep(FuVariant::V1, &figure5_sizes()).unwrap();
        let v2 = scalability_sweep(FuVariant::V2, &figure5_sizes()).unwrap();
        for (a, b) in v1.iter().zip(&v2) {
            assert_eq!(b.dsps, 2 * a.dsps);
            assert!(b.slices > a.slices);
        }
    }

    #[test]
    fn baseline_uses_fewer_slices_than_v1() {
        // The V1 FU consumes ~22% more LUTs than [14]; the overlay-level
        // slice model must preserve that ordering.
        let baseline = scalability_sweep(FuVariant::Baseline, &[8]).unwrap();
        let v1 = scalability_sweep(FuVariant::V1, &[8]).unwrap();
        assert!(baseline[0].slices < v1[0].slices);
    }

    #[test]
    fn depth16_v1_stays_within_figure5_axis_range() {
        // Fig. 5a's y-axis tops out at 2,000 slices and 40 DSP blocks.
        let points = scalability_sweep(FuVariant::V2, &[16]).unwrap();
        assert!(points[0].slices < 2_000);
        assert!(points[0].dsps <= 40);
    }

    #[test]
    fn invalid_sizes_are_rejected() {
        assert!(scalability_sweep(FuVariant::V1, &[0]).is_err());
        assert!(scalability_sweep(FuVariant::V1, &[65]).is_err());
    }
}
