//! Error type for architecture-model configuration.

use std::fmt;

/// Errors produced while configuring overlay architecture models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// The requested overlay depth is outside the supported range.
    InvalidDepth {
        /// The requested depth.
        depth: usize,
    },
    /// A fixed-depth (write-back) variant was configured with a depth other
    /// than the tile depth the paper proposes.
    UnsupportedTileCount {
        /// The requested number of tiles.
        tiles: usize,
    },
    /// The overlay does not fit on the selected device.
    DoesNotFit {
        /// Human-readable description of the resource that overflowed.
        resource: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidDepth { depth } => {
                write!(
                    f,
                    "overlay depth {depth} is outside the supported range (1–64)"
                )
            }
            ArchError::UnsupportedTileCount { tiles } => {
                write!(
                    f,
                    "tile count {tiles} is not supported (must be at least 1)"
                )
            }
            ArchError::DoesNotFit { resource } => {
                write!(f, "overlay does not fit on the device: {resource}")
            }
        }
    }
}

impl std::error::Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(ArchError::InvalidDepth { depth: 0 }
            .to_string()
            .contains('0'));
        assert!(ArchError::DoesNotFit {
            resource: "DSP blocks".into()
        }
        .to_string()
        .contains("DSP"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync>() {}
        assert_bounds::<ArchError>();
    }
}
