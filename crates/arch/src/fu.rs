//! Functional-unit variants and their published characteristics (Table I).

use std::fmt;
use std::str::FromStr;

use crate::error::ArchError;
use crate::resources::ResourceUsage;

/// The functional-unit design variants compared in the paper.
///
/// | variant | DSPs | LUTs | FFs | fmax (MHz) | IWP | write-back | lanes |
/// |---------|------|------|-----|------------|-----|------------|-------|
/// | `[14]`  | 1    | 160  | 293 | 325        | –   | no         | 1     |
/// | V1      | 1    | 196  | 237 | 334        | –   | no         | 1     |
/// | V2      | 2    | 292  | 333 | 335        | –   | no         | 2     |
/// | V3      | 1    | 212  | 228 | 323        | 5   | yes        | 1     |
/// | V4      | 1    | 207  | 163 | 254        | 4   | yes        | 1     |
/// | V5      | 1    | 248  | 126 | 182        | 3   | yes        | 1     |
///
/// `IWP` is the internal write-back path length in cycles: the number of
/// instructions that must separate two dependent instructions scheduled on
/// the same FU when the first one writes its result back to the register
/// file (V3–V5 only).
///
/// # Example
///
/// ```
/// use overlay_arch::FuVariant;
///
/// assert_eq!(FuVariant::V3.iwp(), Some(5));
/// assert!(FuVariant::V3.has_writeback());
/// assert_eq!(FuVariant::V2.datapath_lanes(), 2);
/// assert_eq!(FuVariant::Baseline.fu_resources().luts, 160);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FuVariant {
    /// The overlay of reference `[14]` (OLAF'16), used as the baseline.
    Baseline,
    /// V1: rotating register file overlapping data load with execution.
    V1,
    /// V2: V1 with a replicated stream datapath (two DSP lanes, 64-bit I/O).
    V2,
    /// V3: V1 plus result write-back, internal write-back path of 5 cycles.
    V3,
    /// V4: write-back with the RF-to-input-map registers removed (IWP = 4).
    V4,
    /// V5: write-back with a 2-deep DSP pipeline (IWP = 3).
    V5,
}

impl FuVariant {
    /// All variants, in Table I order.
    pub const ALL: [FuVariant; 6] = [
        FuVariant::Baseline,
        FuVariant::V1,
        FuVariant::V2,
        FuVariant::V3,
        FuVariant::V4,
        FuVariant::V5,
    ];

    /// The variants the paper evaluates across the benchmark set (Table III
    /// and Fig. 6): `[14]`, V1, V2, V3 and V4.
    pub const EVALUATED: [FuVariant; 5] = [
        FuVariant::Baseline,
        FuVariant::V1,
        FuVariant::V2,
        FuVariant::V3,
        FuVariant::V4,
    ];

    /// The short name used in the paper's tables.
    pub const fn name(self) -> &'static str {
        match self {
            FuVariant::Baseline => "[14]",
            FuVariant::V1 => "V1",
            FuVariant::V2 => "V2",
            FuVariant::V3 => "V3",
            FuVariant::V4 => "V4",
            FuVariant::V5 => "V5",
        }
    }

    /// Per-FU resource usage on the Zynq XC7Z020 (Table I). Slice counts are
    /// derived from the LUT/FF figures because the paper reports slices only
    /// at the overlay level.
    pub fn fu_resources(self) -> ResourceUsage {
        let (luts, ffs, dsps) = match self {
            FuVariant::Baseline => (160, 293, 1),
            FuVariant::V1 => (196, 237, 1),
            FuVariant::V2 => (292, 333, 2),
            FuVariant::V3 => (212, 228, 1),
            FuVariant::V4 => (207, 163, 1),
            FuVariant::V5 => (248, 126, 1),
        };
        ResourceUsage {
            luts,
            ffs,
            slices: ResourceUsage::slices_from_luts_ffs(luts, ffs),
            dsps,
            brams: 0,
        }
    }

    /// Stand-alone FU maximum frequency on the Zynq XC7Z020, in MHz
    /// (Table I).
    pub const fn fu_fmax_mhz(self) -> f64 {
        match self {
            FuVariant::Baseline => 325.0,
            FuVariant::V1 => 334.0,
            FuVariant::V2 => 335.0,
            FuVariant::V3 => 323.0,
            FuVariant::V4 => 254.0,
            FuVariant::V5 => 182.0,
        }
    }

    /// Stand-alone FU maximum frequency on the Virtex-7 VC707, where the
    /// paper quotes a figure (V1 only).
    pub const fn fu_fmax_mhz_vc707(self) -> Option<f64> {
        match self {
            FuVariant::V1 => Some(610.0),
            _ => None,
        }
    }

    /// Internal write-back path in cycles (Table I's `IWP` row); `None` for
    /// the variants without write-back.
    pub const fn iwp(self) -> Option<usize> {
        match self {
            FuVariant::V3 => Some(5),
            FuVariant::V4 => Some(4),
            FuVariant::V5 => Some(3),
            _ => None,
        }
    }

    /// Whether results can be written back into the local register file,
    /// allowing a fixed-depth overlay.
    pub const fn has_writeback(self) -> bool {
        self.iwp().is_some()
    }

    /// Number of parallel stream datapaths (2 for V2's replicated datapath,
    /// 1 otherwise). V2 doubles the stream width to 64 bits and halves the
    /// initiation interval at the cost of double the data bandwidth.
    pub const fn datapath_lanes(self) -> usize {
        match self {
            FuVariant::V2 => 2,
            _ => 1,
        }
    }

    /// Whether the overlay built from this FU must have a depth equal to the
    /// kernel's critical path (`true` for the feed-forward-only variants) or
    /// can use a fixed depth (`false`, the write-back variants).
    pub const fn requires_kernel_depth(self) -> bool {
        !self.has_writeback()
    }

    /// Depth of the DSP pipeline configured in this variant: 3 stages for all
    /// variants except V5, which trades one pipeline stage for a shorter
    /// write-back path.
    pub const fn dsp_pipeline_depth(self) -> usize {
        match self {
            FuVariant::V5 => 2,
            _ => 3,
        }
    }

    /// One-line description of the architectural feature the variant adds.
    pub const fn description(self) -> &'static str {
        match self {
            FuVariant::Baseline => "baseline TM functional unit of [14]",
            FuVariant::V1 => "rotating register file overlaps data load with execution",
            FuVariant::V2 => "replicated stream datapath (2 DSP lanes, 64-bit I/O)",
            FuVariant::V3 => "result write-back into the register file (IWP = 5)",
            FuVariant::V4 => "write-back with RF-to-map registers removed (IWP = 4)",
            FuVariant::V5 => "write-back with a 2-stage DSP pipeline (IWP = 3)",
        }
    }
}

impl fmt::Display for FuVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FuVariant {
    type Err = ArchError;

    /// Parses a variant name as used in the paper (`"[14]"`, `"baseline"`,
    /// `"v1"`–`"v5"`, case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "[14]" | "baseline" | "base" => Ok(FuVariant::Baseline),
            "v1" => Ok(FuVariant::V1),
            "v2" => Ok(FuVariant::V2),
            "v3" => Ok(FuVariant::V3),
            "v4" => Ok(FuVariant::V4),
            "v5" => Ok(FuVariant::V5),
            _ => Err(ArchError::InvalidDepth { depth: 0 }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_resource_numbers() {
        let baseline = FuVariant::Baseline.fu_resources();
        assert_eq!((baseline.luts, baseline.ffs, baseline.dsps), (160, 293, 1));
        let v1 = FuVariant::V1.fu_resources();
        assert_eq!((v1.luts, v1.ffs, v1.dsps), (196, 237, 1));
        let v2 = FuVariant::V2.fu_resources();
        assert_eq!((v2.luts, v2.ffs, v2.dsps), (292, 333, 2));
        let v3 = FuVariant::V3.fu_resources();
        assert_eq!((v3.luts, v3.ffs, v3.dsps), (212, 228, 1));
        let v4 = FuVariant::V4.fu_resources();
        assert_eq!((v4.luts, v4.ffs, v4.dsps), (207, 163, 1));
        let v5 = FuVariant::V5.fu_resources();
        assert_eq!((v5.luts, v5.ffs, v5.dsps), (248, 126, 1));
    }

    #[test]
    fn table1_fmax_and_iwp() {
        assert_eq!(FuVariant::Baseline.fu_fmax_mhz(), 325.0);
        assert_eq!(FuVariant::V1.fu_fmax_mhz(), 334.0);
        assert_eq!(FuVariant::V2.fu_fmax_mhz(), 335.0);
        assert_eq!(FuVariant::V3.fu_fmax_mhz(), 323.0);
        assert_eq!(FuVariant::V4.fu_fmax_mhz(), 254.0);
        assert_eq!(FuVariant::V5.fu_fmax_mhz(), 182.0);
        assert_eq!(FuVariant::V1.fu_fmax_mhz_vc707(), Some(610.0));
        assert_eq!(
            FuVariant::ALL.map(|v| v.iwp()),
            [None, None, None, Some(5), Some(4), Some(3)]
        );
    }

    #[test]
    fn v1_lut_increase_over_baseline_is_about_22_percent() {
        let baseline = FuVariant::Baseline.fu_resources().luts as f64;
        let v1 = FuVariant::V1.fu_resources().luts as f64;
        let increase = (v1 - baseline) / baseline;
        assert!((increase - 0.225).abs() < 0.01, "paper quotes ~22%");
    }

    #[test]
    fn v2_is_less_than_twice_v1() {
        let v1 = FuVariant::V1.fu_resources();
        let v2 = FuVariant::V2.fu_resources();
        assert!(v2.luts < 2 * v1.luts);
        assert!(v2.ffs < 2 * v1.ffs);
        assert_eq!(v2.dsps, 2 * v1.dsps);
    }

    #[test]
    fn writeback_classification() {
        assert!(FuVariant::V3.has_writeback());
        assert!(FuVariant::V4.has_writeback());
        assert!(FuVariant::V5.has_writeback());
        assert!(!FuVariant::V1.has_writeback());
        assert!(FuVariant::V1.requires_kernel_depth());
        assert!(!FuVariant::V4.requires_kernel_depth());
    }

    #[test]
    fn lanes_and_pipeline_depth() {
        assert_eq!(FuVariant::V2.datapath_lanes(), 2);
        assert_eq!(FuVariant::V1.datapath_lanes(), 1);
        assert_eq!(FuVariant::V5.dsp_pipeline_depth(), 2);
        assert_eq!(FuVariant::V3.dsp_pipeline_depth(), 3);
    }

    #[test]
    fn names_parse_back() {
        for variant in FuVariant::ALL {
            assert_eq!(variant.name().parse::<FuVariant>().unwrap(), variant);
        }
        assert_eq!(
            "baseline".parse::<FuVariant>().unwrap(),
            FuVariant::Baseline
        );
        assert!("v9".parse::<FuVariant>().is_err());
    }
}
