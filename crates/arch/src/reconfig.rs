//! Reconfiguration and hardware-context-switch timing model.
//!
//! The paper's Sec. V compares two ways of changing the application kernel:
//!
//! * the **non-write-back overlays** (`[14]`, V1, V2) must be rebuilt to the
//!   new kernel's depth, which means partially reconfiguring the FPGA region
//!   through the processor configuration access port (PCAP) — 0.73 ms for the
//!   depth-8 V1 region (7 CLB tiles + 1 DSP tile) and 1.02 ms for V2
//!   (9 CLB + 2 DSP tiles) — followed by loading the instruction
//!   configuration (0.29 µs for the largest benchmark);
//! * the **fixed-depth write-back overlays** (V3–V5) only need the new
//!   instruction configuration, ≈0.25 µs, a ~2900× faster hardware context
//!   switch.
//!
//! [`ReconfigModel`] reproduces those figures from first principles (region
//! size × PCAP bandwidth, configuration size × AXI bandwidth) so that the
//! same model extends to other overlay depths and kernels.

use std::fmt;

use crate::fu::FuVariant;
use crate::overlay::OverlayConfig;

/// A rectangular partial-reconfiguration region measured in 7-series tile
/// columns (one tile = one clock-region-high column of CLBs or DSPs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Region {
    /// CLB tile columns (≈100 slices each).
    pub clb_tiles: usize,
    /// DSP tile columns (≈10 DSP48E1 slices each).
    pub dsp_tiles: usize,
}

impl Region {
    /// Total number of tile columns.
    pub fn total_tiles(&self) -> usize {
        self.clb_tiles + self.dsp_tiles
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} CLB tile(s) + {} DSP tile(s)",
            self.clb_tiles, self.dsp_tiles
        )
    }
}

/// Calibrated timing model for PCAP partial reconfiguration and AXI
/// configuration loading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconfigModel {
    /// Partial bitstream size per tile column, in bytes.
    pub bytes_per_tile: f64,
    /// Sustained PCAP throughput, in bytes per second.
    pub pcap_bandwidth: f64,
    /// Sustained AXI throughput for instruction-configuration writes, in
    /// bytes per second.
    pub axi_bandwidth: f64,
    /// Fixed software/driver overhead added to every configuration load, in
    /// microseconds.
    pub load_overhead_us: f64,
}

impl Default for ReconfigModel {
    /// Calibration chosen so the depth-8 V1/V2 regions reproduce the paper's
    /// 0.73 ms / 1.02 ms PCAP times and a ~128-word kernel configuration
    /// loads in ≈0.25–0.29 µs.
    fn default() -> Self {
        ReconfigModel {
            bytes_per_tile: 11_850.0,
            pcap_bandwidth: 128.0e6,
            axi_bandwidth: 1.6e9,
            load_overhead_us: 0.05,
        }
    }
}

impl ReconfigModel {
    /// Creates the default calibrated model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The minimum reconfigurable region needed to host `overlay`, following
    /// the tile geometry of the Zynq XC7Z020 (≈100 slices per CLB tile
    /// column, 10 DSP slices per DSP tile column).
    pub fn region_for(&self, overlay: &OverlayConfig) -> Region {
        let usage = overlay.resource_estimate();
        Region {
            clb_tiles: usage.slices.div_ceil(100),
            dsp_tiles: usage.dsps.div_ceil(10),
        }
    }

    /// Time to partially reconfigure `region` through the PCAP, in
    /// microseconds.
    pub fn partial_reconfig_us(&self, region: Region) -> f64 {
        region.total_tiles() as f64 * self.bytes_per_tile / self.pcap_bandwidth * 1e6
    }

    /// Time to load `config_bits` of kernel configuration (instruction
    /// streams + constants) over AXI, in microseconds.
    pub fn config_load_us(&self, config_bits: usize) -> f64 {
        let bytes = (config_bits as f64 / 8.0).ceil();
        self.load_overhead_us + bytes / self.axi_bandwidth * 1e6
    }

    /// The full kernel-switch cost for a non-write-back overlay (`[14]`, V1,
    /// V2): partial reconfiguration of the overlay region plus the
    /// configuration load.
    pub fn full_switch(&self, overlay: &OverlayConfig, config_bits: usize) -> ContextSwitch {
        let region = self.region_for(overlay);
        ContextSwitch {
            variant: overlay.variant(),
            reconfig_us: self.partial_reconfig_us(region),
            config_load_us: self.config_load_us(config_bits),
        }
    }

    /// The kernel-switch cost for a fixed-depth write-back overlay (V3–V5):
    /// only the configuration load.
    pub fn program_only_switch(&self, variant: FuVariant, config_bits: usize) -> ContextSwitch {
        ContextSwitch {
            variant,
            reconfig_us: 0.0,
            config_load_us: self.config_load_us(config_bits),
        }
    }
}

/// The cost of one hardware context switch (changing the kernel running on
/// the overlay).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ContextSwitch {
    /// The overlay variant being switched.
    pub variant: FuVariant,
    /// Partial-reconfiguration time (zero for fixed-depth overlays), µs.
    pub reconfig_us: f64,
    /// Instruction/constant configuration load time, µs.
    pub config_load_us: f64,
}

impl ContextSwitch {
    /// Total context-switch time in microseconds.
    pub fn total_us(&self) -> f64 {
        self.reconfig_us + self.config_load_us
    }

    /// How many times faster `self` is than `other`.
    pub fn speedup_over(&self, other: &ContextSwitch) -> f64 {
        other.total_us() / self.total_us()
    }
}

impl fmt::Display for ContextSwitch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2} µs reconfig + {:.2} µs config load = {:.2} µs",
            self.variant,
            self.reconfig_us,
            self.config_load_us,
            self.total_us()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v1_depth8_region_matches_the_paper() {
        let model = ReconfigModel::new();
        let overlay = OverlayConfig::new(FuVariant::V1, 8).unwrap();
        let region = model.region_for(&overlay);
        assert_eq!(region.clb_tiles, 7);
        assert_eq!(region.dsp_tiles, 1);
    }

    #[test]
    fn v2_depth8_region_matches_the_paper() {
        let model = ReconfigModel::new();
        let overlay = OverlayConfig::new(FuVariant::V2, 8).unwrap();
        let region = model.region_for(&overlay);
        assert_eq!(region.clb_tiles, 9);
        assert_eq!(region.dsp_tiles, 2);
    }

    #[test]
    fn pcap_times_are_close_to_the_published_values() {
        let model = ReconfigModel::new();
        let v1 = model.partial_reconfig_us(Region {
            clb_tiles: 7,
            dsp_tiles: 1,
        });
        let v2 = model.partial_reconfig_us(Region {
            clb_tiles: 9,
            dsp_tiles: 2,
        });
        assert!((v1 - 730.0).abs() < 30.0, "V1 PCAP ≈ 0.73 ms, got {v1} µs");
        assert!((v2 - 1020.0).abs() < 40.0, "V2 PCAP ≈ 1.02 ms, got {v2} µs");
    }

    #[test]
    fn config_load_is_sub_microsecond_for_benchmark_sized_programs() {
        let model = ReconfigModel::new();
        // ~128 instructions of 32 bits.
        let us = model.config_load_us(128 * 32);
        assert!(us > 0.0 && us < 0.5, "got {us} µs");
    }

    #[test]
    fn fixed_depth_context_switch_is_orders_of_magnitude_faster() {
        let model = ReconfigModel::new();
        let v1_overlay = OverlayConfig::new(FuVariant::V1, 8).unwrap();
        let config_bits = 128 * 32;
        let full = model.full_switch(&v1_overlay, config_bits);
        let fixed = model.program_only_switch(FuVariant::V3, config_bits);
        let speedup = fixed.speedup_over(&full);
        assert!(
            speedup > 1_000.0 && speedup < 10_000.0,
            "paper reports ≈2900×, got {speedup:.0}×"
        );
    }

    #[test]
    fn display_summarises_the_breakdown() {
        let switch = ContextSwitch {
            variant: FuVariant::V3,
            reconfig_us: 0.0,
            config_load_us: 0.25,
        };
        let text = switch.to_string();
        assert!(text.contains("V3"));
        assert!(text.contains("0.25"));
    }

    #[test]
    fn region_total_and_display() {
        let region = Region {
            clb_tiles: 7,
            dsp_tiles: 1,
        };
        assert_eq!(region.total_tiles(), 8);
        assert!(region.to_string().contains("7 CLB"));
    }
}
