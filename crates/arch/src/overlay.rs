//! Overlay-level configuration and its resource/frequency model.

use std::fmt;

use crate::device::FpgaDevice;
use crate::error::ArchError;
use crate::fu::FuVariant;
use crate::resources::ResourceUsage;

/// Maximum overlay depth the model supports (the paper sweeps 2–16 FUs and
/// proposes depth-8 tiles; 64 leaves ample headroom for exploration).
pub const MAX_DEPTH: usize = 64;

/// The fixed overlay depth the paper proposes for the write-back variants
/// ("we propose implementing two depth 8 overlays in a single tile").
pub const FIXED_DEPTH: usize = 8;

/// A linear-overlay instance: an FU variant replicated `depth` times and
/// chained through FIFO channels.
///
/// The resource and frequency estimates are *models* calibrated to the
/// figures the paper reports: per-FU numbers from Table I, the depth-8
/// overlay figures from Sec. V (654/893/814/817 slices for V1/V2/V3/V4) and
/// the scalability trends of Fig. 5.
///
/// # Example
///
/// ```
/// use overlay_arch::{FuVariant, OverlayConfig};
///
/// # fn main() -> Result<(), overlay_arch::ArchError> {
/// let overlay = OverlayConfig::new(FuVariant::V2, 8)?;
/// assert_eq!(overlay.resource_estimate().dsps, 16);
/// let zynq = overlay_arch::FpgaDevice::zynq_7020();
/// assert!(overlay.utilization_on(&zynq).max_fraction() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OverlayConfig {
    variant: FuVariant,
    depth: usize,
}

impl OverlayConfig {
    /// Creates an overlay configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidDepth`] if `depth` is zero or larger than
    /// [`MAX_DEPTH`].
    pub fn new(variant: FuVariant, depth: usize) -> Result<Self, ArchError> {
        if depth == 0 || depth > MAX_DEPTH {
            return Err(ArchError::InvalidDepth { depth });
        }
        Ok(OverlayConfig { variant, depth })
    }

    /// The paper's fixed-depth configuration (depth 8) for a write-back
    /// variant; also valid for the non-write-back variants when a kernel of
    /// depth 8 is mapped.
    pub fn fixed_depth(variant: FuVariant) -> Self {
        OverlayConfig {
            variant,
            depth: FIXED_DEPTH,
        }
    }

    /// The FU variant.
    pub fn variant(&self) -> FuVariant {
        self.variant
    }

    /// The number of FUs in the chain.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Per-FU slice cost and overlay-level slice overhead (stream interface,
    /// FIFOs, control) used by the slice model, calibrated so that the
    /// depth-8 estimates match the figures quoted in Sec. V.
    fn slice_model(&self) -> (usize, usize) {
        match self.variant {
            // (slices per FU, fixed overhead)
            FuVariant::Baseline => (66, 36), // no published anchor; scaled from LUT count
            FuVariant::V1 => (77, 38),       // 8 * 77 + 38 = 654
            FuVariant::V2 => (105, 53),      // 8 * 105 + 53 = 893
            FuVariant::V3 => (97, 38),       // 8 * 97 + 38 = 814
            FuVariant::V4 => (97, 41),       // 8 * 97 + 41 = 817
            FuVariant::V5 => (100, 40),      // no published anchor; interpolated
        }
    }

    /// Overlay fmax at the paper's fixed depth of 8, in MHz. V3/V4 are stated
    /// in Sec. V (286 / 233 MHz); the others are taken from the Fig. 5b
    /// trend.
    fn fmax_anchor_depth8(&self) -> f64 {
        match self.variant {
            FuVariant::Baseline => 318.0,
            FuVariant::V1 => 325.0,
            FuVariant::V2 => 327.0,
            FuVariant::V3 => 286.0,
            FuVariant::V4 => 233.0,
            FuVariant::V5 => 167.0,
        }
    }

    /// Estimated resource usage of the full overlay (FUs plus the streaming
    /// interface and FIFO channels).
    pub fn resource_estimate(&self) -> ResourceUsage {
        let fu = self.variant.fu_resources();
        let (slices_per_fu, slice_overhead) = self.slice_model();
        // The stream interface contributes a small fixed LUT/FF cost
        // (distributed-RAM FIFOs at the input and output of the chain).
        let interface = ResourceUsage {
            luts: 120,
            ffs: 150,
            slices: slice_overhead,
            dsps: 0,
            brams: 0,
        };
        let mut total = fu * self.depth + interface;
        total.slices = slices_per_fu * self.depth + slice_overhead;
        total
    }

    /// Estimated maximum operating frequency of the overlay in MHz.
    ///
    /// The chain's frequency degrades slowly with depth because of fan-out on
    /// the valid/control signals and longer placement spans (Fig. 5b); the
    /// model interpolates between the stand-alone FU frequency and the
    /// depth-8 anchor, and extrapolates the same slope beyond depth 8.
    pub fn fmax_mhz(&self) -> f64 {
        let fu_fmax = self.variant.fu_fmax_mhz();
        let anchor = self.fmax_anchor_depth8();
        let slope = (fu_fmax - anchor) / 7.0; // MHz lost per additional FU
        let estimate = fu_fmax - slope * (self.depth.saturating_sub(1)) as f64;
        estimate.max(0.5 * fu_fmax)
    }

    /// The clock period in nanoseconds at the estimated fmax.
    pub fn clock_period_ns(&self) -> f64 {
        1_000.0 / self.fmax_mhz()
    }

    /// Device utilization of the overlay on `device`.
    pub fn utilization_on(&self, device: &FpgaDevice) -> crate::resources::Utilization {
        self.resource_estimate().utilization_on(device)
    }

    /// Checks the overlay fits on `device`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::DoesNotFit`] naming the binding resource.
    pub fn check_fits(&self, device: &FpgaDevice) -> Result<(), ArchError> {
        let usage = self.resource_estimate();
        let utilization = usage.utilization_on(device);
        if utilization.dsps > 1.0 {
            return Err(ArchError::DoesNotFit {
                resource: format!(
                    "{} DSP blocks needed, {} available",
                    usage.dsps, device.dsps
                ),
            });
        }
        if utilization.slices > 1.0 {
            return Err(ArchError::DoesNotFit {
                resource: format!(
                    "{} slices needed, {} available",
                    usage.slices, device.slices
                ),
            });
        }
        if utilization.luts > 1.0 || utilization.ffs > 1.0 || utilization.brams > 1.0 {
            return Err(ArchError::DoesNotFit {
                resource: "logic resources exhausted".to_owned(),
            });
        }
        Ok(())
    }

    /// The largest kernel depth this overlay can accept: unlimited (`None`)
    /// for write-back variants, the overlay depth itself otherwise.
    pub fn max_kernel_depth(&self) -> Option<usize> {
        if self.variant.has_writeback() {
            None
        } else {
            Some(self.depth)
        }
    }
}

impl fmt::Display for OverlayConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} overlay, depth {}", self.variant, self.depth)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_bounds_are_enforced() {
        assert!(OverlayConfig::new(FuVariant::V1, 0).is_err());
        assert!(OverlayConfig::new(FuVariant::V1, MAX_DEPTH + 1).is_err());
        assert!(OverlayConfig::new(FuVariant::V1, 1).is_ok());
        assert_eq!(OverlayConfig::fixed_depth(FuVariant::V3).depth(), 8);
    }

    #[test]
    fn depth8_slice_estimates_match_the_paper() {
        let cases = [
            (FuVariant::V1, 654),
            (FuVariant::V2, 893),
            (FuVariant::V3, 814),
            (FuVariant::V4, 817),
        ];
        for (variant, expected_slices) in cases {
            let overlay = OverlayConfig::new(variant, 8).unwrap();
            assert_eq!(
                overlay.resource_estimate().slices,
                expected_slices,
                "{variant} depth-8 slices"
            );
        }
    }

    #[test]
    fn depth8_dsp_counts_match_the_paper() {
        assert_eq!(
            OverlayConfig::new(FuVariant::V1, 8)
                .unwrap()
                .resource_estimate()
                .dsps,
            8
        );
        assert_eq!(
            OverlayConfig::new(FuVariant::V2, 8)
                .unwrap()
                .resource_estimate()
                .dsps,
            16
        );
    }

    #[test]
    fn depth8_overlays_use_under_8_percent_of_zynq() {
        // The paper: depth-8 V1 is < 5 % and depth-8 V2 < 8 % of the Zynq.
        let zynq = FpgaDevice::zynq_7020();
        let v1 = OverlayConfig::new(FuVariant::V1, 8)
            .unwrap()
            .utilization_on(&zynq);
        assert!(v1.max_fraction() < 0.05, "V1 should be below 5%");
        let v2 = OverlayConfig::new(FuVariant::V2, 8)
            .unwrap()
            .utilization_on(&zynq);
        assert!(v2.max_fraction() < 0.08, "V2 should be below 8%");
    }

    #[test]
    fn depth8_fmax_matches_stated_values() {
        assert!((OverlayConfig::new(FuVariant::V3, 8).unwrap().fmax_mhz() - 286.0).abs() < 1e-9);
        assert!((OverlayConfig::new(FuVariant::V4, 8).unwrap().fmax_mhz() - 233.0).abs() < 1e-9);
    }

    #[test]
    fn fmax_decreases_with_depth_but_is_bounded() {
        let shallow = OverlayConfig::new(FuVariant::V1, 2).unwrap().fmax_mhz();
        let deep = OverlayConfig::new(FuVariant::V1, 16).unwrap().fmax_mhz();
        assert!(shallow > deep);
        assert!(deep >= 0.5 * FuVariant::V1.fu_fmax_mhz());
        let single = OverlayConfig::new(FuVariant::V1, 1).unwrap().fmax_mhz();
        assert!((single - FuVariant::V1.fu_fmax_mhz()).abs() < 1e-9);
    }

    #[test]
    fn clock_period_is_inverse_of_fmax() {
        let overlay = OverlayConfig::new(FuVariant::V1, 8).unwrap();
        let period = overlay.clock_period_ns();
        assert!((period * overlay.fmax_mhz() - 1_000.0).abs() < 1e-6);
    }

    #[test]
    fn huge_overlays_do_not_fit_on_zynq() {
        // 64 V2 FUs need 128 DSPs (fits) but a Baseline... use DSP pressure:
        // 64-depth V2 would need 128 DSPs, still fits; check with a tiny
        // custom device instead.
        let tiny = FpgaDevice::custom("tiny", 2_000, 4_000, 500, 4, 2);
        let overlay = OverlayConfig::new(FuVariant::V2, 8).unwrap();
        assert!(overlay.check_fits(&tiny).is_err());
        let zynq = FpgaDevice::zynq_7020();
        assert!(overlay.check_fits(&zynq).is_ok());
    }

    #[test]
    fn kernel_depth_limits_follow_writeback() {
        assert_eq!(
            OverlayConfig::new(FuVariant::V1, 8)
                .unwrap()
                .max_kernel_depth(),
            Some(8)
        );
        assert_eq!(
            OverlayConfig::new(FuVariant::V3, 8)
                .unwrap()
                .max_kernel_depth(),
            None
        );
    }

    #[test]
    fn display_mentions_variant_and_depth() {
        let overlay = OverlayConfig::new(FuVariant::V4, 8).unwrap();
        assert_eq!(overlay.to_string(), "V4 overlay, depth 8");
    }
}
