//! Mapping tool flow: scheduling kernels onto the linear TM overlay and
//! generating FU instruction streams.
//!
//! The flow mirrors Sec. IV of the paper:
//!
//! 1. a kernel DFG (from `overlay-frontend` or built by hand) is scheduled
//!    onto FU *stages* — either [ASAP level scheduling](asap) for the
//!    depth-matched overlays (`[14]`, V1, V2) or the
//!    [fixed-depth iterative greedy clustering](cluster) for the write-back
//!    overlays (V3–V5);
//! 2. the [initiation-interval models](ii) (Eq. 1 and Eq. 2 of the paper)
//!    derive the II from the per-stage load and operation counts;
//! 3. [instruction generation](codegen) turns the stage schedule into one
//!    [`overlay_isa::FuProgram`] per FU plus stream metadata;
//! 4. [`table`] renders the steady-state execution pattern cycle by cycle in
//!    the style of the paper's Table II.
//!
//! # Example
//!
//! ```
//! use overlay_frontend::Benchmark;
//! use overlay_arch::FuVariant;
//! use overlay_scheduler::{schedule, ii_for_variant};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dfg = Benchmark::Gradient.dfg()?;
//! let stages = schedule(&dfg, FuVariant::V1, None)?;
//! let ii = ii_for_variant(&stages, FuVariant::V1);
//! assert_eq!(ii, 6.0); // the paper's Sec. IV figure for 'gradient' on V1
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asap;
pub mod cluster;
pub mod codegen;
pub mod error;
pub mod ii;
pub mod liveness;
pub mod stage;
pub mod table;

pub use asap::asap_schedule;
pub use cluster::{cluster_schedule, ClusterOptions};
pub use codegen::{generate_program, CompiledKernel};
pub use error::ScheduleError;
pub use ii::{ii_baseline, ii_for_variant, ii_v1, ii_v2, ii_writeback, IiBreakdown};
pub use liveness::StageLiveness;
pub use stage::{Slot, Stage, StageSchedule, Strategy};
pub use table::{schedule_table, ScheduleTable};

use overlay_arch::FuVariant;
use overlay_dfg::Dfg;

/// Schedules `dfg` for an overlay built from `variant`.
///
/// * For the feed-forward variants (`[14]`, V1, V2) this is ASAP level
///   scheduling; the overlay depth equals the kernel depth and
///   `fixed_depth` is ignored.
/// * For the write-back variants (V3–V5) the kernel is mapped onto a fixed
///   number of FUs (`fixed_depth`, defaulting to the paper's depth of 8):
///   ASAP when the kernel fits, the iterative greedy clustering otherwise.
///
/// # Errors
///
/// Returns a [`ScheduleError`] if the DFG is malformed or cannot be mapped
/// (e.g. a fixed depth of zero).
pub fn schedule(
    dfg: &Dfg,
    variant: FuVariant,
    fixed_depth: Option<usize>,
) -> Result<StageSchedule, ScheduleError> {
    if variant.has_writeback() {
        let depth = fixed_depth.unwrap_or(overlay_arch::overlay::FIXED_DEPTH);
        let options = ClusterOptions {
            depth,
            iwp: variant.iwp().unwrap_or(1),
        };
        cluster_schedule(dfg, &options)
    } else {
        asap_schedule(dfg)
    }
}
