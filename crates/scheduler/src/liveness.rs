//! Stream liveness analysis: which values cross each stage boundary.
//!
//! The linear overlay has no global interconnect, so every value a later
//! stage needs must physically travel through each intermediate FU: the FU
//! loads it into its register file and bypasses it to its output (the `fwd`
//! flag on `LOAD`). The number of values crossing into a stage is therefore
//! that stage's `#load` in the paper's II equations, and the *order* in which
//! the upstream stage forwards values defines the downstream arrival (and
//! register allocation) order.

use std::collections::HashMap;

use overlay_dfg::{Dfg, NodeId};

/// Per-stage load sets, forwarding decisions and the final output stream
/// order implied by a stage assignment of the operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLiveness {
    /// For each stage: the values arriving per invocation, in arrival order.
    loads: Vec<Vec<NodeId>>,
    /// For each stage: whether each arriving value (same indexing as
    /// `loads`) must be bypassed onwards to the next stage.
    load_forward: Vec<Vec<bool>>,
    /// For each stage: for each executed operation (in issue order), whether
    /// its result is forwarded downstream.
    result_forward: Vec<Vec<bool>>,
    /// The values emerging after the last stage, in arrival order at the
    /// output FIFO. Every entry feeds at least one kernel output.
    final_stream: Vec<NodeId>,
}

impl StageLiveness {
    /// Computes the liveness information for a stage assignment.
    ///
    /// `stage_ops[k]` lists the operation nodes executed by stage `k` in
    /// issue order; every operation of `dfg` must appear exactly once across
    /// all stages, and operands must never be produced at a *later* stage
    /// than their consumer (same stage is allowed — that is the write-back
    /// case).
    pub fn compute(dfg: &Dfg, stage_ops: &[Vec<NodeId>]) -> Self {
        let num_stages = stage_ops.len();
        let mut producer_stage: HashMap<NodeId, isize> = HashMap::new();
        for &input in dfg.inputs() {
            producer_stage.insert(input, -1);
        }
        for (stage, ops) in stage_ops.iter().enumerate() {
            for &op in ops {
                producer_stage.insert(op, stage as isize);
            }
        }

        // Last stage that consumes each value as an operand, and whether the
        // value drives a kernel output.
        let mut last_use: HashMap<NodeId, isize> = HashMap::new();
        for (stage, ops) in stage_ops.iter().enumerate() {
            for &op in ops {
                for &operand in dfg.node_unchecked(op).operands() {
                    if producer_stage.contains_key(&operand) {
                        let entry = last_use.entry(operand).or_insert(-1);
                        *entry = (*entry).max(stage as isize);
                    }
                }
            }
        }
        let feeds_output = |value: NodeId| dfg.feeds_output(value);
        // A value is needed at stage `k` or beyond if some consumer lives at
        // stage >= k, or it must reach the output FIFO after the last stage.
        let needed_at_or_after = |value: NodeId, k: isize| -> bool {
            feeds_output(value) || last_use.get(&value).copied().unwrap_or(-1) >= k
        };

        let mut loads: Vec<Vec<NodeId>> = Vec::with_capacity(num_stages);
        let mut load_forward: Vec<Vec<bool>> = Vec::with_capacity(num_stages);
        let mut result_forward: Vec<Vec<bool>> = Vec::with_capacity(num_stages);

        // Arrival order at stage 0 is the input stream order.
        let mut incoming: Vec<NodeId> = dfg
            .inputs()
            .iter()
            .copied()
            .filter(|&input| needed_at_or_after(input, 0))
            .collect();

        for (stage, ops) in stage_ops.iter().enumerate() {
            let k = stage as isize;
            let stage_loads = incoming.clone();
            // A loaded value is forwarded if it is still needed beyond this
            // stage.
            let forwards: Vec<bool> = stage_loads
                .iter()
                .map(|&value| needed_at_or_after(value, k + 1))
                .collect();
            let results: Vec<bool> = ops
                .iter()
                .map(|&op| needed_at_or_after(op, k + 1))
                .collect();

            // The next stage's arrival order: bypassed loads first (in load
            // order), then forwarded results (in issue order). This matches
            // the FU timeline, where incoming words are bypassed as they
            // arrive and computed results follow as they complete.
            let mut next: Vec<NodeId> = stage_loads
                .iter()
                .zip(&forwards)
                .filter(|(_, &fwd)| fwd)
                .map(|(&value, _)| value)
                .collect();
            next.extend(
                ops.iter()
                    .zip(&results)
                    .filter(|(_, &fwd)| fwd)
                    .map(|(&op, _)| op),
            );

            loads.push(stage_loads);
            load_forward.push(forwards);
            result_forward.push(results);
            incoming = next;
        }

        StageLiveness {
            loads,
            load_forward,
            result_forward,
            final_stream: incoming,
        }
    }

    /// The values arriving at stage `k`, in arrival order.
    pub fn loads(&self, stage: usize) -> &[NodeId] {
        &self.loads[stage]
    }

    /// Whether each arriving value of stage `k` is bypassed onwards.
    pub fn load_forward(&self, stage: usize) -> &[bool] {
        &self.load_forward[stage]
    }

    /// Whether each operation result of stage `k` (in issue order) is
    /// forwarded downstream.
    pub fn result_forward(&self, stage: usize) -> &[bool] {
        &self.result_forward[stage]
    }

    /// The stream emerging after the last stage, in arrival order at the
    /// output FIFO.
    pub fn final_stream(&self) -> &[NodeId] {
        &self.final_stream
    }

    /// Number of stages analysed.
    pub fn num_stages(&self) -> usize {
        self.loads.len()
    }

    /// The per-stage load counts (`#load` in the paper's II equations).
    pub fn load_counts(&self) -> Vec<usize> {
        self.loads.iter().map(Vec::len).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::{DfgBuilder, Op};

    /// x is consumed at stage 0 and again at stage 2, so it must be carried
    /// through stage 1.
    fn pass_through_graph() -> (Dfg, Vec<Vec<NodeId>>) {
        let mut b = DfgBuilder::new("pass");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(Op::Add, &[x, y]).unwrap(); // stage 0
        let s = b.op(Op::Square, &[a]).unwrap(); // stage 1
        let m = b.op(Op::Mul, &[s, x]).unwrap(); // stage 2, uses x again
        b.output("o", m);
        let dfg = b.build().unwrap();
        let stages = vec![vec![a], vec![s], vec![m]];
        (dfg, stages)
    }

    #[test]
    fn pass_through_values_are_loaded_at_every_intermediate_stage() {
        let (dfg, stages) = pass_through_graph();
        let x = dfg.inputs()[0];
        let liveness = StageLiveness::compute(&dfg, &stages);
        assert_eq!(liveness.load_counts(), vec![2, 2, 2]);
        // Stage 1 receives x (bypassed) and the ADD result.
        assert!(liveness.loads(1).contains(&x));
        // x is forwarded out of stage 0 and stage 1, but not out of stage 2.
        let x_pos0 = liveness.loads(0).iter().position(|&v| v == x).unwrap();
        assert!(liveness.load_forward(0)[x_pos0]);
        let x_pos1 = liveness.loads(1).iter().position(|&v| v == x).unwrap();
        assert!(liveness.load_forward(1)[x_pos1]);
        let x_pos2 = liveness.loads(2).iter().position(|&v| v == x).unwrap();
        assert!(!liveness.load_forward(2)[x_pos2]);
    }

    #[test]
    fn final_stream_contains_exactly_the_output_values() {
        let (dfg, stages) = pass_through_graph();
        let liveness = StageLiveness::compute(&dfg, &stages);
        let m = stages[2][0];
        assert_eq!(liveness.final_stream(), &[m]);
        // The MUL result is marked as forwarded out of the last stage.
        assert_eq!(liveness.result_forward(2), &[true]);
    }

    #[test]
    fn gradient_load_counts_match_the_paper_example() {
        // 5 inputs at stage 0, then 4, 4 and 2 values cross the boundaries —
        // exactly the counts behind the paper's II of 6 for V1.
        let mut b = DfgBuilder::new("gradient");
        let i: Vec<_> = (0..5).map(|k| b.input(format!("i{k}"))).collect();
        let s0 = b.op(Op::Sub, &[i[0], i[2]]).unwrap();
        let s1 = b.op(Op::Sub, &[i[1], i[2]]).unwrap();
        let s2 = b.op(Op::Sub, &[i[2], i[3]]).unwrap();
        let s3 = b.op(Op::Sub, &[i[2], i[4]]).unwrap();
        let q: Vec<_> = [s0, s1, s2, s3]
            .iter()
            .map(|&v| b.op(Op::Square, &[v]).unwrap())
            .collect();
        let a0 = b.op(Op::Add, &[q[0], q[1]]).unwrap();
        let a1 = b.op(Op::Add, &[q[2], q[3]]).unwrap();
        let a2 = b.op(Op::Add, &[a0, a1]).unwrap();
        b.output("o0", a2);
        let dfg = b.build().unwrap();
        let stages = vec![vec![s0, s1, s2, s3], q.clone(), vec![a0, a1], vec![a2]];
        let liveness = StageLiveness::compute(&dfg, &stages);
        assert_eq!(liveness.load_counts(), vec![5, 4, 4, 2]);
        assert_eq!(liveness.final_stream().len(), 1);
    }

    #[test]
    fn same_stage_dependencies_do_not_create_loads() {
        // Both ops in one stage (write-back case): the ADD result reaches the
        // SQR through the register file, not the stream.
        let mut b = DfgBuilder::new("wb");
        let x = b.input("x");
        let y = b.input("y");
        let a = b.op(Op::Add, &[x, y]).unwrap();
        let s = b.op(Op::Square, &[a]).unwrap();
        b.output("o", s);
        let dfg = b.build().unwrap();
        let liveness = StageLiveness::compute(&dfg, &[vec![a, s]]);
        assert_eq!(liveness.load_counts(), vec![2]);
        // The ADD result is not forwarded (consumed locally); SQR is.
        assert_eq!(liveness.result_forward(0), &[false, true]);
    }
}
