//! Instruction generation: turning a stage schedule into per-FU programs.

use std::collections::HashMap;

use overlay_arch::FuVariant;
use overlay_dfg::{Dfg, NodeId, NodeKind};
use overlay_isa::{FuProgram, Instruction, OverlayProgram, RegIndex, REGISTER_FILE_SIZE};

use crate::error::ScheduleError;
use crate::ii::ii_for_variant;
use crate::liveness::StageLiveness;
use crate::stage::{Slot, StageSchedule};

/// A kernel compiled for a specific overlay variant: the per-FU instruction
/// streams plus the stream metadata the runtime (or simulator) needs.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// The per-FU programs and stream configuration.
    pub program: OverlayProgram,
    /// The stage schedule the program was generated from.
    pub schedule: StageSchedule,
    /// The overlay variant the program targets.
    pub variant: FuVariant,
    /// The values emerging from the last FU, in arrival order at the output
    /// FIFO.
    pub final_stream: Vec<NodeId>,
    /// For each kernel output position, the index within `final_stream` of
    /// the word carrying that output.
    pub output_stream_index: Vec<usize>,
    /// The analytical initiation interval for this variant.
    pub ii: f64,
}

impl CompiledKernel {
    /// Number of FUs the kernel occupies.
    pub fn num_fus(&self) -> usize {
        self.program.num_fus()
    }
}

/// Generates the per-FU instruction streams for `schedule` targeting
/// `variant`.
///
/// Register allocation per FU is straightforward because programs are small:
/// arriving values take `r0, r1, …` in arrival order, operation results take
/// the following registers in issue order, and constants are preloaded from
/// `r31` downwards.
///
/// # Errors
///
/// * [`ScheduleError::RegisterPressure`] if a stage needs more than the
///   32-entry register file,
/// * [`ScheduleError::OperandUnavailable`] if the schedule is inconsistent
///   (an operand neither arrives, is constant, nor is produced earlier in the
///   same stage).
///
/// # Example
///
/// ```
/// use overlay_frontend::Benchmark;
/// use overlay_arch::FuVariant;
/// use overlay_scheduler::{asap_schedule, generate_program};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = Benchmark::Gradient.dfg()?;
/// let schedule = asap_schedule(&dfg)?;
/// let compiled = generate_program(&dfg, &schedule, FuVariant::V1)?;
/// assert_eq!(compiled.program.num_fus(), 4);
/// assert_eq!(compiled.ii, 6.0);
/// # Ok(())
/// # }
/// ```
pub fn generate_program(
    dfg: &Dfg,
    schedule: &StageSchedule,
    variant: FuVariant,
) -> Result<CompiledKernel, ScheduleError> {
    let stage_ops: Vec<Vec<NodeId>> = schedule.stages().iter().map(|s| s.ops()).collect();
    let liveness = StageLiveness::compute(dfg, &stage_ops);

    let mut fu_programs = Vec::with_capacity(schedule.num_stages());
    for (stage_index, stage) in schedule.stages().iter().enumerate() {
        let loads = liveness.loads(stage_index);
        let load_forward = liveness.load_forward(stage_index);
        let result_forward = liveness.result_forward(stage_index);

        // --- register allocation -----------------------------------------
        let ops = stage.ops();
        // Constants used by this stage (allocated from the top of the file
        // once the pressure check has passed).
        let mut constant_ids: Vec<NodeId> = Vec::new();
        for &op in &ops {
            for &operand in dfg.node(op)?.operands() {
                if dfg.node(operand)?.kind().is_const() && !constant_ids.contains(&operand) {
                    constant_ids.push(operand);
                }
            }
        }
        let registers_needed = loads.len() + ops.len() + constant_ids.len();
        if registers_needed > REGISTER_FILE_SIZE {
            return Err(ScheduleError::RegisterPressure {
                stage: stage_index,
                needed: registers_needed,
            });
        }
        let mut reg_of: HashMap<NodeId, RegIndex> = HashMap::new();
        for (slot, &value) in loads.iter().enumerate() {
            reg_of.insert(value, RegIndex::new(slot as u32)?);
        }
        let mut result_reg: HashMap<NodeId, RegIndex> = HashMap::new();
        for (offset, &op) in ops.iter().enumerate() {
            result_reg.insert(op, RegIndex::new((loads.len() + offset) as u32)?);
        }
        let constants: Vec<(NodeId, RegIndex)> = constant_ids
            .iter()
            .enumerate()
            .map(|(offset, &id)| {
                RegIndex::new((REGISTER_FILE_SIZE - 1 - offset) as u32).map(|reg| (id, reg))
            })
            .collect::<Result<_, _>>()?;

        // --- instruction emission -----------------------------------------
        let mut program = FuProgram::new();
        for (value, reg) in &constants {
            if let NodeKind::Const { value: constant } = dfg.node(*value)?.kind() {
                program.preload_constant(*reg, *constant);
            }
        }
        for (slot, &value) in loads.iter().enumerate() {
            let dst = reg_of[&value];
            program.push(if load_forward[slot] {
                Instruction::load_forward(dst)
            } else {
                Instruction::load(dst)
            });
        }

        let lookup = |value: NodeId,
                      issued: &HashMap<NodeId, RegIndex>|
         -> Result<RegIndex, ScheduleError> {
            if let Some(&reg) = reg_of.get(&value) {
                return Ok(reg);
            }
            if let Some(&(_, reg)) = constants.iter().find(|(id, _)| *id == value) {
                return Ok(reg);
            }
            if let Some(&reg) = issued.get(&value) {
                return Ok(reg);
            }
            Err(ScheduleError::OperandUnavailable {
                node: value,
                operand: value,
                stage: stage_index,
            })
        };

        let mut issued: HashMap<NodeId, RegIndex> = HashMap::new();
        let mut exec_index = 0usize;
        for slot in &stage.slots {
            match slot {
                Slot::Nop => program.push(Instruction::Nop),
                Slot::Op(op_id) => {
                    let node = dfg.node(*op_id)?;
                    let op = node.op().expect("slot ops are operation nodes");
                    let operands = node.operands();
                    let src1 = lookup(operands[0], &issued).map_err(|_| {
                        ScheduleError::OperandUnavailable {
                            node: *op_id,
                            operand: operands[0],
                            stage: stage_index,
                        }
                    })?;
                    let src2 = if operands.len() > 1 {
                        lookup(operands[1], &issued).map_err(|_| {
                            ScheduleError::OperandUnavailable {
                                node: *op_id,
                                operand: operands[1],
                                stage: stage_index,
                            }
                        })?
                    } else {
                        src1
                    };
                    let dst = result_reg[op_id];
                    // Write back when a later op in this stage consumes the
                    // result through the register file.
                    let consumed_locally = stage
                        .ops()
                        .iter()
                        .any(|&other| dfg.node_unchecked(other).operands().contains(op_id));
                    let forwarded = result_forward.get(exec_index).copied().unwrap_or(true);
                    debug_assert!(
                        !consumed_locally || variant.has_writeback(),
                        "same-stage dependencies require a write-back variant"
                    );
                    program.push(Instruction::exec_flags(
                        op,
                        dst,
                        src1,
                        src2,
                        consumed_locally,
                        !forwarded,
                    ));
                    issued.insert(*op_id, dst);
                    exec_index += 1;
                }
            }
        }
        fu_programs.push(program);
    }

    let ii = ii_for_variant(schedule, variant);
    let final_stream: Vec<NodeId> = liveness.final_stream().to_vec();
    let mut output_stream_index = Vec::with_capacity(dfg.num_outputs());
    for &output in dfg.outputs() {
        let source = dfg.node(output)?.operands()[0];
        let index = final_stream
            .iter()
            .position(|&value| value == source)
            .ok_or(ScheduleError::OperandUnavailable {
                node: output,
                operand: source,
                stage: schedule.num_stages().saturating_sub(1),
            })?;
        output_stream_index.push(index);
    }

    let program = OverlayProgram::new(
        dfg.name(),
        fu_programs,
        dfg.num_inputs(),
        dfg.num_outputs(),
        ii.ceil() as usize,
    );
    Ok(CompiledKernel {
        program,
        schedule: schedule.clone(),
        variant,
        final_stream,
        output_stream_index,
        ii,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap_schedule;
    use crate::cluster::{cluster_schedule, ClusterOptions};
    use overlay_frontend::Benchmark;

    #[test]
    fn every_benchmark_compiles_for_every_evaluated_variant() {
        for benchmark in Benchmark::ALL {
            let dfg = benchmark.dfg().unwrap();
            for variant in FuVariant::EVALUATED {
                let schedule = crate::schedule(&dfg, variant, Some(8)).unwrap();
                let compiled = generate_program(&dfg, &schedule, variant).unwrap();
                assert!(
                    compiled.program.total_instructions() > 0,
                    "{benchmark} {variant}"
                );
                assert_eq!(
                    compiled.output_stream_index.len(),
                    dfg.num_outputs(),
                    "{benchmark} {variant}"
                );
                compiled
                    .program
                    .check_capacity(overlay_isa::program::DEFAULT_IMEM_CAPACITY)
                    .unwrap();
            }
        }
    }

    #[test]
    fn exec_count_matches_op_count_and_load_count_matches_liveness() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let compiled = generate_program(&dfg, &schedule, FuVariant::V1).unwrap();
        let programs = compiled.program.fu_programs();
        assert_eq!(programs.len(), 4);
        let execs: Vec<usize> = programs.iter().map(|p| p.num_execs()).collect();
        assert_eq!(execs, vec![4, 4, 2, 1]);
        let loads: Vec<usize> = programs.iter().map(|p| p.num_loads()).collect();
        assert_eq!(loads, vec![5, 4, 4, 2]);
    }

    #[test]
    fn constants_are_preloaded_not_streamed() {
        let dfg = Benchmark::Chebyshev.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let compiled = generate_program(&dfg, &schedule, FuVariant::V1).unwrap();
        let total_consts: usize = compiled
            .program
            .fu_programs()
            .iter()
            .map(|p| p.constant_init().len())
            .sum();
        assert!(total_consts >= 4, "chebyshev uses 4 literal coefficients");
        // Only one stream input, so FU0 loads exactly one word per block.
        assert_eq!(compiled.program.fu_programs()[0].num_loads(), 1);
    }

    #[test]
    fn writeback_flags_appear_only_in_clustered_schedules() {
        let dfg = Benchmark::Poly7.dfg().unwrap();
        let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 }).unwrap();
        let compiled = generate_program(&dfg, &schedule, FuVariant::V3).unwrap();
        let any_wb = compiled
            .program
            .fu_programs()
            .iter()
            .flat_map(|p| p.instructions())
            .any(|i| matches!(i, Instruction::Exec { wb: true, .. }));
        assert!(any_wb, "deep kernels must use the write-back path");

        let asap = asap_schedule(&dfg).unwrap();
        let compiled_v1 = generate_program(&dfg, &asap, FuVariant::V1).unwrap();
        let any_wb_v1 = compiled_v1
            .program
            .fu_programs()
            .iter()
            .flat_map(|p| p.instructions())
            .any(|i| matches!(i, Instruction::Exec { wb: true, .. }));
        assert!(!any_wb_v1, "ASAP schedules never write back");
    }

    #[test]
    fn output_stream_index_points_at_the_output_value() {
        let dfg = Benchmark::Mibench.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let compiled = generate_program(&dfg, &schedule, FuVariant::V1).unwrap();
        assert_eq!(compiled.output_stream_index.len(), 1);
        let index = compiled.output_stream_index[0];
        let value = compiled.final_stream[index];
        assert!(dfg.feeds_output(value));
    }

    #[test]
    fn nops_become_nop_instructions() {
        let dfg = Benchmark::Poly7.dfg().unwrap();
        let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 }).unwrap();
        let compiled = generate_program(&dfg, &schedule, FuVariant::V3).unwrap();
        let total_nops: usize = compiled
            .program
            .fu_programs()
            .iter()
            .map(|p| p.num_nops())
            .sum();
        assert_eq!(total_nops, schedule.total_nops());
    }
}
