//! Fixed-depth iterative greedy clustering for the write-back overlays
//! (V3–V5).
//!
//! The write-back path lets several dependence levels of the DFG share one
//! FU, so a kernel whose critical path exceeds the overlay depth can still be
//! mapped. The scheduler groups the DFG's ASAP levels into `depth` clusters,
//! balances the per-cluster work (the iterative part), and orders the
//! operations inside each cluster so that dependent operations are separated
//! by at least the internal write-back path (IWP); where that is impossible,
//! NOPs are inserted — exactly the procedure illustrated on the 'qspline'
//! example in Sec. IV of the paper.

use std::collections::HashMap;

use overlay_dfg::{Dfg, NodeId};

use crate::asap::asap_schedule;
use crate::error::ScheduleError;
use crate::liveness::StageLiveness;
use crate::stage::{Slot, Stage, StageSchedule, Strategy};

/// Options for the fixed-depth cluster scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterOptions {
    /// Number of FUs (clusters) in the fixed overlay. The paper uses 8.
    pub depth: usize,
    /// Internal write-back path in cycles: dependent operations inside one
    /// cluster must be at least this many issue slots apart.
    pub iwp: usize,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            depth: overlay_arch::overlay::FIXED_DEPTH,
            iwp: 5,
        }
    }
}

/// Schedules `dfg` onto a fixed-depth write-back overlay.
///
/// Kernels whose depth already fits the overlay are scheduled ASAP, as the
/// paper does; deeper kernels go through level clustering, intra-cluster list
/// scheduling and NOP insertion.
///
/// # Errors
///
/// Returns [`ScheduleError::ZeroDepth`] for a zero overlay depth and
/// [`ScheduleError::EmptyKernel`] for graphs without operations.
///
/// # Example
///
/// ```
/// use overlay_frontend::Benchmark;
/// use overlay_scheduler::{cluster_schedule, ClusterOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = Benchmark::Poly6.dfg()?; // depth 11 > 8
/// let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 })?;
/// assert_eq!(schedule.num_stages(), 8);
/// # Ok(())
/// # }
/// ```
pub fn cluster_schedule(
    dfg: &Dfg,
    options: &ClusterOptions,
) -> Result<StageSchedule, ScheduleError> {
    if options.depth == 0 {
        return Err(ScheduleError::ZeroDepth);
    }
    let analysis = dfg.analysis();
    let kernel_depth = analysis.depth();
    if kernel_depth == 0 {
        return Err(ScheduleError::EmptyKernel);
    }

    // Shallow kernels: plain ASAP, as the paper does for depth <= 8.
    if kernel_depth <= options.depth {
        let mut schedule = asap_schedule(dfg)?;
        schedule.strategy = Strategy::FixedDepth {
            depth: options.depth,
            iwp: options.iwp,
        };
        return Ok(schedule);
    }

    // 1. Partition the level sequence into `depth` contiguous groups,
    //    balancing the operation count (linear-partition DP), then
    //    iteratively improve by shifting cluster boundaries while it lowers
    //    the worst per-cluster cost.
    let level_sizes: Vec<usize> = (1..=kernel_depth)
        .map(|level| analysis.level(level).len())
        .collect();
    let mut boundaries = balanced_partition(&level_sizes, options.depth);
    let mut best_cost = schedule_cost(dfg, &analysis, &boundaries, options);
    let mut improved = true;
    while improved {
        improved = false;
        for b in 0..boundaries.len() {
            for delta in [-1isize, 1] {
                let mut candidate = boundaries.clone();
                let moved = candidate[b] as isize + delta;
                if moved <= 0 || moved as usize >= kernel_depth {
                    continue;
                }
                candidate[b] = moved as usize;
                if !is_valid_partition(&candidate, kernel_depth) {
                    continue;
                }
                let cost = schedule_cost(dfg, &analysis, &candidate, options);
                if cost < best_cost {
                    best_cost = cost;
                    boundaries = candidate;
                    improved = true;
                }
            }
        }
    }

    build_schedule(dfg, &analysis, &boundaries, options)
}

/// Splits `sizes` into `groups` contiguous groups minimising the maximum
/// group sum (classic linear partition); returns the exclusive end index of
/// each group except the last.
fn balanced_partition(sizes: &[usize], groups: usize) -> Vec<usize> {
    let n = sizes.len();
    let groups = groups.min(n);
    // prefix[i] = sum of sizes[..i]
    let mut prefix = vec![0usize; n + 1];
    for (i, &s) in sizes.iter().enumerate() {
        prefix[i + 1] = prefix[i] + s;
    }
    let sum = |a: usize, b: usize| prefix[b] - prefix[a];

    // dp[g][i] = minimal possible maximum group sum splitting sizes[..i] into g groups
    let inf = usize::MAX / 2;
    let mut dp = vec![vec![inf; n + 1]; groups + 1];
    let mut split = vec![vec![0usize; n + 1]; groups + 1];
    dp[0][0] = 0;
    for g in 1..=groups {
        for i in g..=n {
            for j in (g - 1)..i {
                let candidate = dp[g - 1][j].max(sum(j, i));
                if candidate < dp[g][i] {
                    dp[g][i] = candidate;
                    split[g][i] = j;
                }
            }
        }
    }
    // Recover boundaries (exclusive end level index of each group but the last).
    let mut boundaries = Vec::with_capacity(groups.saturating_sub(1));
    let mut i = n;
    for g in (1..=groups).rev() {
        let j = split[g][i];
        if g > 1 {
            boundaries.push(j);
        }
        i = j;
    }
    boundaries.reverse();
    boundaries
}

fn is_valid_partition(boundaries: &[usize], levels: usize) -> bool {
    let mut previous = 0usize;
    for &b in boundaries {
        if b <= previous || b >= levels {
            return false;
        }
        previous = b;
    }
    true
}

/// Expands partition boundaries into the per-cluster level ranges.
fn cluster_ranges(boundaries: &[usize], levels: usize) -> Vec<(usize, usize)> {
    let mut ranges = Vec::with_capacity(boundaries.len() + 1);
    let mut start = 0usize;
    for &b in boundaries {
        ranges.push((start, b));
        start = b;
    }
    ranges.push((start, levels));
    ranges
}

/// Orders the operations of one cluster with greedy list scheduling under
/// the IWP spacing constraint, inserting NOPs when nothing is ready.
fn order_cluster(dfg: &Dfg, ops: &[NodeId], iwp: usize) -> Vec<Slot> {
    // In-cluster dependence edges.
    let in_cluster: std::collections::HashSet<NodeId> = ops.iter().copied().collect();
    let mut descendants: HashMap<NodeId, usize> = HashMap::new();
    for &op in ops {
        // Count in-cluster transitive consumers as a priority hint (direct
        // consumers are enough of a signal for these small clusters).
        let direct = dfg
            .consumers(op)
            .into_iter()
            .filter(|c| in_cluster.contains(c))
            .count();
        descendants.insert(op, direct);
    }

    let mut placed: HashMap<NodeId, usize> = HashMap::new();
    let mut slots: Vec<Slot> = Vec::new();
    let mut remaining: Vec<NodeId> = ops.to_vec();

    while !remaining.is_empty() {
        let t = slots.len();
        // An op is ready if all in-cluster predecessors are placed at least
        // `iwp` slots earlier (the write-back latency).
        let mut ready: Vec<NodeId> = remaining
            .iter()
            .copied()
            .filter(|&op| {
                dfg.node_unchecked(op).operands().iter().all(|&operand| {
                    if !in_cluster.contains(&operand) {
                        return true;
                    }
                    match placed.get(&operand) {
                        Some(&slot) => t >= slot + iwp,
                        None => false,
                    }
                })
            })
            .collect();
        if ready.is_empty() {
            slots.push(Slot::Nop);
            continue;
        }
        // Prefer ops with more in-cluster consumers (they unlock later work
        // sooner), then earlier creation order for determinism.
        ready.sort_by_key(|&op| (std::cmp::Reverse(descendants[&op]), op.index()));
        let chosen = ready[0];
        placed.insert(chosen, t);
        slots.push(Slot::Op(chosen));
        remaining.retain(|&op| op != chosen);
    }
    slots
}

/// Builds the full schedule for a given partition and returns it.
fn build_schedule(
    dfg: &Dfg,
    analysis: &overlay_dfg::DfgAnalysis,
    boundaries: &[usize],
    options: &ClusterOptions,
) -> Result<StageSchedule, ScheduleError> {
    let kernel_depth = analysis.depth();
    let ranges = cluster_ranges(boundaries, kernel_depth);

    let mut stage_slots: Vec<Vec<Slot>> = Vec::with_capacity(ranges.len());
    for &(start, end) in &ranges {
        let mut ops: Vec<NodeId> = Vec::new();
        for level in (start + 1)..=end {
            ops.extend_from_slice(analysis.level(level));
        }
        stage_slots.push(order_cluster(dfg, &ops, options.iwp));
    }

    let stage_ops: Vec<Vec<NodeId>> = stage_slots
        .iter()
        .map(|slots| slots.iter().filter_map(|slot| slot.op()).collect())
        .collect();
    let liveness = StageLiveness::compute(dfg, &stage_ops);

    let mut stages = Vec::with_capacity(stage_slots.len());
    let mut placement = Vec::with_capacity(dfg.num_ops());
    for (index, slots) in stage_slots.into_iter().enumerate() {
        for slot in &slots {
            if let Some(op) = slot.op() {
                placement.push((op, index));
            }
        }
        stages.push(Stage {
            index,
            loads: liveness.loads(index).to_vec(),
            slots,
        });
    }

    Ok(StageSchedule {
        kernel: dfg.name().to_owned(),
        strategy: Strategy::FixedDepth {
            depth: options.depth,
            iwp: options.iwp,
        },
        stages,
        placement,
    })
}

/// The cost used to balance cluster boundaries: the maximum per-cluster II
/// contribution `max(#load + 1, #slots + 2)`.
fn schedule_cost(
    dfg: &Dfg,
    analysis: &overlay_dfg::DfgAnalysis,
    boundaries: &[usize],
    options: &ClusterOptions,
) -> usize {
    match build_schedule(dfg, analysis, boundaries, options) {
        Ok(schedule) => schedule
            .stages()
            .iter()
            .map(|stage| (stage.num_loads() + 1).max(stage.num_slots() + 2))
            .max()
            .unwrap_or(usize::MAX),
        Err(_) => usize::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_frontend::Benchmark;

    #[test]
    fn shallow_kernels_fall_back_to_asap() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 }).unwrap();
        assert_eq!(schedule.num_stages(), 4);
        assert_eq!(schedule.total_nops(), 0);
        assert!(matches!(
            schedule.strategy(),
            Strategy::FixedDepth { depth: 8, iwp: 5 }
        ));
    }

    #[test]
    fn deep_kernels_are_compressed_to_the_overlay_depth() {
        for benchmark in [Benchmark::Poly6, Benchmark::Poly7, Benchmark::Poly8] {
            let dfg = benchmark.dfg().unwrap();
            assert!(dfg.analysis().depth() > 8, "{benchmark} must be deep");
            for iwp in [5, 4, 3] {
                let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp }).unwrap();
                assert_eq!(schedule.num_stages(), 8, "{benchmark}");
                assert_eq!(schedule.total_ops(), dfg.num_ops(), "{benchmark}");
                assert!(schedule.is_consistent_with(&dfg), "{benchmark} iwp={iwp}");
            }
        }
    }

    #[test]
    fn iwp_spacing_is_respected_inside_every_cluster() {
        let dfg = Benchmark::Poly7.dfg().unwrap();
        for iwp in [3, 4, 5] {
            let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp }).unwrap();
            for stage in schedule.stages() {
                let mut position: HashMap<NodeId, usize> = HashMap::new();
                for (slot_index, slot) in stage.slots.iter().enumerate() {
                    if let Some(op) = slot.op() {
                        position.insert(op, slot_index);
                    }
                }
                for (&op, &slot_index) in &position {
                    for &operand in dfg.node_unchecked(op).operands() {
                        if let Some(&producer_slot) = position.get(&operand) {
                            assert!(
                                slot_index >= producer_slot + iwp,
                                "dependent ops too close with iwp={iwp}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn smaller_iwp_never_needs_more_nops() {
        let dfg = Benchmark::Poly7.dfg().unwrap();
        let nops_iwp5 = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 })
            .unwrap()
            .total_nops();
        let nops_iwp3 = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 3 })
            .unwrap()
            .total_nops();
        assert!(nops_iwp3 <= nops_iwp5);
    }

    #[test]
    fn depth_four_qspline_matches_the_papers_worked_example_shape() {
        // Sec. IV maps the depth-8 qspline onto a depth-4 overlay: 25 ops in
        // 4 clusters.
        let dfg = Benchmark::Qspline.dfg().unwrap();
        let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 4, iwp: 5 }).unwrap();
        assert_eq!(schedule.num_stages(), 4);
        assert_eq!(schedule.total_ops(), 25);
        assert!(schedule.is_consistent_with(&dfg));
    }

    #[test]
    fn zero_depth_is_rejected() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        assert!(matches!(
            cluster_schedule(&dfg, &ClusterOptions { depth: 0, iwp: 5 }),
            Err(ScheduleError::ZeroDepth)
        ));
    }

    #[test]
    fn balanced_partition_minimises_the_maximum_group() {
        let sizes = vec![5, 4, 4, 3, 3, 3, 2, 2, 1];
        let boundaries = balanced_partition(&sizes, 3);
        assert_eq!(boundaries.len(), 2);
        let ranges = cluster_ranges(&boundaries, sizes.len());
        let max_group: usize = ranges
            .iter()
            .map(|&(a, b)| sizes[a..b].iter().sum())
            .max()
            .unwrap();
        // Total is 27 over 3 groups, so the best possible maximum is 9..=10.
        assert!(max_group <= 10, "got {max_group}");
    }
}
