//! Cycle-by-cycle rendering of the steady-state schedule, in the style of
//! the paper's Table II.
//!
//! The table shows, for each cycle and each FU, the data-transfer or
//! execution action taking place. Because the V1+ variants overlap loading
//! (performed by the input controller) with execution (performed by the
//! ALU), a single FU can have both a `Load` and an operation in the same
//! cycle; such cells are rendered as `Load R0 / SUB (R1 R2)`.

use overlay_dfg::{Dfg, NodeId};

use crate::liveness::StageLiveness;
use crate::stage::{Slot, StageSchedule};

/// A rendered steady-state schedule table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleTable {
    /// Kernel name.
    pub kernel: String,
    /// The initiation interval used to space consecutive blocks.
    pub ii: usize,
    /// Column headers (`FU0`, `FU1`, …).
    pub headers: Vec<String>,
    /// One row per cycle: `rows[c][k]` is the action of FU `k` at cycle
    /// `c + 1` (cycles are 1-based as in the paper), or `None` when idle.
    pub rows: Vec<Vec<Option<String>>>,
}

impl ScheduleTable {
    /// Renders the table as fixed-width text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (k, cell) in row.iter().enumerate() {
                if let Some(text) = cell {
                    widths[k] = widths[k].max(text.len());
                }
            }
        }
        let mut out = String::new();
        out.push_str("cyc | ");
        for (header, width) in self.headers.iter().zip(&widths) {
            out.push_str(&format!("{header:<width$} | "));
        }
        out.push('\n');
        for (cycle, row) in self.rows.iter().enumerate() {
            out.push_str(&format!("{:>3} | ", cycle + 1));
            for (cell, width) in row.iter().zip(&widths) {
                let text = cell.as_deref().unwrap_or("");
                out.push_str(&format!("{text:<width$} | "));
            }
            out.push('\n');
        }
        out
    }
}

/// Builds the steady-state schedule table for `schedule`, pipelining
/// `num_blocks` kernel invocations spaced `ii` cycles apart and truncating
/// the rendering at `max_cycles` rows.
///
/// # Example
///
/// ```
/// use overlay_frontend::Benchmark;
/// use overlay_scheduler::{asap_schedule, schedule_table};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = Benchmark::Gradient.dfg()?;
/// let schedule = asap_schedule(&dfg)?;
/// let table = schedule_table(&dfg, &schedule, 6, 6, 32);
/// assert_eq!(table.rows.len(), 32);
/// assert!(table.to_text().contains("SUB"));
/// # Ok(())
/// # }
/// ```
pub fn schedule_table(
    dfg: &Dfg,
    schedule: &StageSchedule,
    ii: usize,
    num_blocks: usize,
    max_cycles: usize,
) -> ScheduleTable {
    let stage_ops: Vec<Vec<NodeId>> = schedule.stages().iter().map(|s| s.ops()).collect();
    let liveness = StageLiveness::compute(dfg, &stage_ops);
    let num_stages = schedule.num_stages();

    // Cycle at which the first word of block 0 reaches each stage: each
    // upstream stage forwards its first word one cycle after loading it, and
    // has finished forwarding after `#load + 1` cycles.
    let mut offsets = vec![0usize; num_stages];
    for k in 1..num_stages {
        offsets[k] = offsets[k - 1] + liveness.loads(k - 1).len() + 1;
    }

    let mut rows: Vec<Vec<Option<String>>> = vec![vec![None; num_stages]; max_cycles];
    let mut put = |cycle: usize, stage: usize, text: String| {
        if cycle == 0 || cycle > max_cycles {
            return;
        }
        let cell = &mut rows[cycle - 1][stage];
        *cell = Some(match cell.take() {
            Some(existing) => format!("{existing} / {text}"),
            None => text,
        });
    };

    for block in 0..num_blocks {
        for (stage_index, stage) in schedule.stages().iter().enumerate() {
            let base = offsets[stage_index] + block * ii;
            // Data transfers performed by the input controller.
            for (j, _value) in liveness.loads(stage_index).iter().enumerate() {
                put(base + 1 + j, stage_index, format!("Load R{j}"));
            }
            // Execution slots start once the block's data is in the register
            // file.
            let exec_base = base + liveness.loads(stage_index).len() + 1;
            let mut result_reg = liveness.loads(stage_index).len();
            let mut issued: std::collections::HashMap<NodeId, usize> =
                std::collections::HashMap::new();
            for (s, slot) in stage.slots.iter().enumerate() {
                match slot {
                    Slot::Nop => put(exec_base + s, stage_index, "NOP".to_owned()),
                    Slot::Op(op_id) => {
                        let node = dfg.node_unchecked(*op_id);
                        let op = node.op().expect("operation node");
                        let operand_names: Vec<String> = node
                            .operands()
                            .iter()
                            .map(|operand| {
                                if let Some(position) = liveness
                                    .loads(stage_index)
                                    .iter()
                                    .position(|v| v == operand)
                                {
                                    format!("R{position}")
                                } else if let Some(&reg) = issued.get(operand) {
                                    format!("R{reg}")
                                } else {
                                    // Constant operand: show its value.
                                    match dfg.node_unchecked(*operand).kind() {
                                        overlay_dfg::NodeKind::Const { value } => {
                                            format!("#{value}")
                                        }
                                        _ => "R?".to_owned(),
                                    }
                                }
                            })
                            .collect();
                        put(
                            exec_base + s,
                            stage_index,
                            format!("{} ({})", op.mnemonic(), operand_names.join(" ")),
                        );
                        issued.insert(*op_id, result_reg);
                        result_reg += 1;
                    }
                }
            }
        }
    }

    ScheduleTable {
        kernel: schedule.kernel().to_owned(),
        ii,
        headers: (0..num_stages).map(|k| format!("FU{k}")).collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap_schedule;
    use overlay_frontend::Benchmark;

    #[test]
    fn gradient_table_covers_32_cycles_like_the_paper() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let table = schedule_table(&dfg, &schedule, 6, 6, 32);
        assert_eq!(table.rows.len(), 32);
        assert_eq!(table.headers.len(), 4);
        // Cycle 1: FU0 loads its first word, everything else idle.
        assert_eq!(table.rows[0][0].as_deref(), Some("Load R0"));
        assert!(table.rows[0][1].is_none());
        // Every FU eventually has work in the first 32 cycles.
        for stage in 0..4 {
            assert!(
                table.rows.iter().any(|row| row[stage].is_some()),
                "FU{stage} never active"
            );
        }
    }

    #[test]
    fn steady_state_repeats_with_period_ii() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let table = schedule_table(&dfg, &schedule, 6, 8, 48);
        // Once the pipeline is full (after ~3 blocks), rows repeat with
        // period II = 6 on FU0.
        for cycle in 12..36 {
            assert_eq!(
                table.rows[cycle][0],
                table.rows[cycle + 6][0],
                "FU0 not periodic at cycle {cycle}"
            );
        }
    }

    #[test]
    fn text_rendering_is_aligned_and_contains_all_headers() {
        let dfg = Benchmark::Chebyshev.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let table = schedule_table(&dfg, &schedule, 4, 4, 24);
        let text = table.to_text();
        for header in &table.headers {
            assert!(text.contains(header));
        }
        assert!(text.lines().count() >= 25);
    }

    #[test]
    fn constants_render_as_immediates() {
        let dfg = Benchmark::Chebyshev.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let table = schedule_table(&dfg, &schedule, 4, 2, 24);
        let text = table.to_text();
        assert!(text.contains('#'), "constant operands should be visible");
    }
}
