//! ASAP level scheduling for the depth-matched overlays (`[14]`, V1, V2).
//!
//! "Tasks are scheduled to the overlay using ASAP scheduling, with nodes at
//! the same (horizontal) level allocated to a single FU" (Sec. III). The
//! overlay depth therefore equals the kernel's critical-path length, and no
//! NOPs are needed because dependent operations always sit in different
//! stages.

use overlay_dfg::Dfg;

use crate::error::ScheduleError;
use crate::liveness::StageLiveness;
use crate::stage::{Slot, Stage, StageSchedule, Strategy};

/// Schedules `dfg` with one ASAP level per functional unit.
///
/// # Errors
///
/// Returns [`ScheduleError::EmptyKernel`] if the graph has no operations.
///
/// # Example
///
/// ```
/// use overlay_frontend::Benchmark;
/// use overlay_scheduler::asap_schedule;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = Benchmark::Gradient.dfg()?;
/// let schedule = asap_schedule(&dfg)?;
/// assert_eq!(schedule.num_stages(), 4); // gradient's depth
/// assert_eq!(schedule.stages()[0].num_ops(), 4); // the four SUBs
/// # Ok(())
/// # }
/// ```
pub fn asap_schedule(dfg: &Dfg) -> Result<StageSchedule, ScheduleError> {
    let analysis = dfg.analysis();
    let depth = analysis.depth();
    if depth == 0 {
        return Err(ScheduleError::EmptyKernel);
    }

    let stage_ops: Vec<Vec<_>> = (1..=depth)
        .map(|level| analysis.level(level).to_vec())
        .collect();
    let liveness = StageLiveness::compute(dfg, &stage_ops);

    let mut stages = Vec::with_capacity(depth);
    let mut placement = Vec::with_capacity(dfg.num_ops());
    for (index, ops) in stage_ops.iter().enumerate() {
        for &op in ops {
            placement.push((op, index));
        }
        stages.push(Stage {
            index,
            loads: liveness.loads(index).to_vec(),
            slots: ops.iter().map(|&op| Slot::Op(op)).collect(),
        });
    }

    Ok(StageSchedule {
        kernel: dfg.name().to_owned(),
        strategy: Strategy::Asap,
        stages,
        placement,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::{DfgBuilder, DfgGenerator, GeneratorConfig, Op};
    use overlay_frontend::Benchmark;

    #[test]
    fn number_of_stages_equals_kernel_depth_for_all_benchmarks() {
        for benchmark in Benchmark::ALL {
            let dfg = benchmark.dfg().unwrap();
            let schedule = asap_schedule(&dfg).unwrap();
            assert_eq!(schedule.num_stages(), dfg.analysis().depth(), "{benchmark}");
            assert_eq!(schedule.total_ops(), dfg.num_ops(), "{benchmark}");
            assert_eq!(schedule.total_nops(), 0, "{benchmark}");
            assert!(schedule.is_consistent_with(&dfg), "{benchmark}");
        }
    }

    #[test]
    fn gradient_stage_shapes_match_the_paper() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let shapes: Vec<(usize, usize)> = schedule
            .stages()
            .iter()
            .map(|stage| (stage.num_loads(), stage.num_ops()))
            .collect();
        assert_eq!(shapes, vec![(5, 4), (4, 4), (4, 2), (2, 1)]);
    }

    #[test]
    fn empty_kernel_is_rejected() {
        let mut b = DfgBuilder::new("passthrough");
        let x = b.input("x");
        let m = b.op(Op::Mov, &[x]).unwrap();
        b.output("o", m);
        let dfg = b.build().unwrap();
        // This kernel has one op, so it schedules fine; build a degenerate
        // one by hand instead.
        assert!(asap_schedule(&dfg).is_ok());
    }

    #[test]
    fn random_graphs_schedule_consistently() {
        let mut generator = DfgGenerator::new(11);
        for seed in 0..10 {
            let config = GeneratorConfig {
                inputs: 1 + seed % 5,
                ops: 10 + seed * 3,
                target_depth: 3 + seed % 6,
                ..Default::default()
            };
            let dfg = generator.generate(&config).unwrap();
            let schedule = asap_schedule(&dfg).unwrap();
            assert!(schedule.is_consistent_with(&dfg));
            assert_eq!(schedule.num_stages(), dfg.analysis().depth());
        }
    }

    #[test]
    fn strategy_is_reported_as_asap() {
        let dfg = Benchmark::Chebyshev.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        assert_eq!(schedule.strategy(), crate::Strategy::Asap);
    }
}
