//! Scheduler error type.

use std::fmt;

use overlay_dfg::{DfgError, NodeId};
use overlay_isa::IsaError;

/// Errors produced while scheduling a kernel or generating its instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The DFG failed validation.
    Dfg(DfgError),
    /// Instruction generation failed.
    Isa(IsaError),
    /// A fixed overlay depth of zero was requested.
    ZeroDepth,
    /// The kernel has no operations to schedule.
    EmptyKernel,
    /// A stage needs more registers than the 32-entry register file provides.
    RegisterPressure {
        /// The stage (FU index) that overflowed.
        stage: usize,
        /// Number of registers the stage would need.
        needed: usize,
    },
    /// An operation's operand was not available at its scheduled stage — an
    /// internal consistency violation.
    OperandUnavailable {
        /// The consuming operation.
        node: NodeId,
        /// The missing operand value.
        operand: NodeId,
        /// The stage where the consumer was scheduled.
        stage: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Dfg(err) => write!(f, "invalid kernel graph: {err}"),
            ScheduleError::Isa(err) => write!(f, "instruction generation failed: {err}"),
            ScheduleError::ZeroDepth => write!(f, "fixed overlay depth must be at least 1"),
            ScheduleError::EmptyKernel => write!(f, "kernel has no operations to schedule"),
            ScheduleError::RegisterPressure { stage, needed } => write!(
                f,
                "stage {stage} needs {needed} registers, more than the 32-entry register file"
            ),
            ScheduleError::OperandUnavailable {
                node,
                operand,
                stage,
            } => write!(
                f,
                "operand {operand} of {node} is not available at stage {stage}"
            ),
        }
    }
}

impl std::error::Error for ScheduleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScheduleError::Dfg(err) => Some(err),
            ScheduleError::Isa(err) => Some(err),
            _ => None,
        }
    }
}

impl From<DfgError> for ScheduleError {
    fn from(err: DfgError) -> Self {
        ScheduleError::Dfg(err)
    }
}

impl From<IsaError> for ScheduleError {
    fn from(err: IsaError) -> Self {
        ScheduleError::Isa(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_chain_their_sources() {
        use std::error::Error;
        let err = ScheduleError::from(DfgError::NoOutputs);
        assert!(err.source().is_some());
        let err = ScheduleError::ZeroDepth;
        assert!(err.source().is_none());
        assert!(err.to_string().contains("at least 1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<ScheduleError>();
    }
}
