//! Stage-level schedule representation.

use std::fmt;

use overlay_dfg::{Dfg, NodeId};

/// One issue slot of a stage's execution window: either a DFG operation or an
/// idle cycle inserted to respect the internal write-back path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Slot {
    /// Execute the given DFG operation node.
    Op(NodeId),
    /// Idle cycle.
    Nop,
}

impl Slot {
    /// The operation node, if this slot executes one.
    pub fn op(self) -> Option<NodeId> {
        match self {
            Slot::Op(id) => Some(id),
            Slot::Nop => None,
        }
    }
}

/// The work assigned to one functional unit for one kernel invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stage {
    /// 0-based FU index along the chain (FU0 receives the input stream).
    pub index: usize,
    /// Values arriving at this stage per invocation, in arrival order. Each
    /// entry is the id of the producing node (an input node or an operation
    /// node from an earlier stage).
    pub loads: Vec<NodeId>,
    /// Issue slots, in order: operations plus any inserted NOPs.
    pub slots: Vec<Slot>,
}

impl Stage {
    /// The operation nodes executed by this stage, in issue order.
    pub fn ops(&self) -> Vec<NodeId> {
        self.slots.iter().filter_map(|slot| slot.op()).collect()
    }

    /// Number of operations (excluding NOPs).
    pub fn num_ops(&self) -> usize {
        self.slots.iter().filter(|slot| slot.op().is_some()).count()
    }

    /// Number of inserted NOPs.
    pub fn num_nops(&self) -> usize {
        self.slots.len() - self.num_ops()
    }

    /// Number of values loaded per invocation.
    pub fn num_loads(&self) -> usize {
        self.loads.len()
    }

    /// Total issue slots (operations + NOPs).
    pub fn num_slots(&self) -> usize {
        self.slots.len()
    }
}

/// The scheduling strategy that produced a [`StageSchedule`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// ASAP level scheduling: one DFG level per FU; the overlay depth equals
    /// the kernel depth (used for `[14]`, V1 and V2).
    Asap,
    /// Fixed-depth iterative greedy clustering with write-back (V3–V5).
    FixedDepth {
        /// The fixed overlay depth (number of clusters).
        depth: usize,
        /// The internal write-back path the NOP insertion respected.
        iwp: usize,
    },
}

/// A complete stage-level schedule of one kernel.
///
/// Produced by [`crate::asap_schedule`] or [`crate::cluster_schedule`];
/// consumed by the II models, the instruction generator and the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSchedule {
    pub(crate) kernel: String,
    pub(crate) strategy: Strategy,
    pub(crate) stages: Vec<Stage>,
    /// For every operation node: the stage it is assigned to.
    pub(crate) placement: Vec<(NodeId, usize)>,
}

impl StageSchedule {
    /// The kernel name.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// The scheduling strategy used.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The stages in pipeline order.
    pub fn stages(&self) -> &[Stage] {
        &self.stages
    }

    /// Number of FUs the schedule occupies.
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// The stage index an operation node was assigned to, if it was placed.
    pub fn stage_of(&self, node: NodeId) -> Option<usize> {
        self.placement
            .iter()
            .find(|(id, _)| *id == node)
            .map(|(_, stage)| *stage)
    }

    /// Total number of operations across all stages.
    pub fn total_ops(&self) -> usize {
        self.stages.iter().map(Stage::num_ops).sum()
    }

    /// Total number of inserted NOPs across all stages.
    pub fn total_nops(&self) -> usize {
        self.stages.iter().map(Stage::num_nops).sum()
    }

    /// Checks internal consistency against the kernel graph: every operation
    /// is placed exactly once, and every operand of every operation is
    /// produced at an earlier stage, arrives as a load, is a constant, or is
    /// produced earlier within the same stage (write-back).
    ///
    /// This is used by tests and by the simulator as a precondition.
    pub fn is_consistent_with(&self, dfg: &Dfg) -> bool {
        let mut placed = std::collections::HashSet::new();
        for stage in &self.stages {
            for op in stage.ops() {
                if !placed.insert(op) {
                    return false;
                }
            }
        }
        if placed.len() != dfg.num_ops() {
            return false;
        }
        for stage in &self.stages {
            let mut seen_in_stage: Vec<NodeId> = Vec::new();
            for op in stage.ops() {
                let node = match dfg.node(op) {
                    Ok(node) => node,
                    Err(_) => return false,
                };
                for &operand in node.operands() {
                    let operand_node = match dfg.node(operand) {
                        Ok(node) => node,
                        Err(_) => return false,
                    };
                    let available = operand_node.kind().is_const()
                        || stage.loads.contains(&operand)
                        || seen_in_stage.contains(&operand);
                    if !available {
                        return false;
                    }
                }
                seen_in_stage.push(op);
            }
        }
        true
    }
}

impl fmt::Display for StageSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule for `{}` ({} stage(s), {:?})",
            self.kernel,
            self.num_stages(),
            self.strategy
        )?;
        for stage in &self.stages {
            writeln!(
                f,
                "  FU{}: {} load(s), {} op(s), {} nop(s)",
                stage.index,
                stage.num_loads(),
                stage.num_ops(),
                stage.num_nops()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::{DfgBuilder, Op};

    #[test]
    fn stage_counters() {
        let stage = Stage {
            index: 0,
            loads: vec![NodeId::from_raw(0), NodeId::from_raw(1)],
            slots: vec![
                Slot::Op(NodeId::from_raw(2)),
                Slot::Nop,
                Slot::Op(NodeId::from_raw(3)),
            ],
        };
        assert_eq!(stage.num_loads(), 2);
        assert_eq!(stage.num_ops(), 2);
        assert_eq!(stage.num_nops(), 1);
        assert_eq!(stage.num_slots(), 3);
        assert_eq!(stage.ops().len(), 2);
        assert_eq!(Slot::Nop.op(), None);
    }

    #[test]
    fn consistency_check_detects_missing_operand() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x");
        let y = b.input("y");
        let s = b.op(Op::Add, &[x, y]).unwrap();
        let q = b.op(Op::Square, &[s]).unwrap();
        b.output("o", q);
        let dfg = b.build().unwrap();

        let good = StageSchedule {
            kernel: "t".into(),
            strategy: Strategy::Asap,
            stages: vec![
                Stage {
                    index: 0,
                    loads: vec![x, y],
                    slots: vec![Slot::Op(s)],
                },
                Stage {
                    index: 1,
                    loads: vec![s],
                    slots: vec![Slot::Op(q)],
                },
            ],
            placement: vec![(s, 0), (q, 1)],
        };
        assert!(good.is_consistent_with(&dfg));
        assert_eq!(good.stage_of(q), Some(1));
        assert_eq!(good.total_ops(), 2);

        let mut bad = good.clone();
        bad.stages[1].loads.clear();
        assert!(!bad.is_consistent_with(&dfg));
    }
}
