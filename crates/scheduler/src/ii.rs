//! Initiation-interval (II) models — Eq. 1 and Eq. 2 of the paper.
//!
//! The II is the number of cycles between two consecutive kernel invocations
//! in the steady state, and therefore sets the throughput. For a stage with
//! `#load` incoming values and `#op` issue slots:
//!
//! * baseline `[14]` (single-port register file, loads serialise with
//!   execution): `II = max_FU(#load + #op + 2)` (Eq. 1);
//! * V1 (rotating register file, loads overlap execution):
//!   `II = max_FU(#load + 1, #op + 2)` (Eq. 2);
//! * V2 (dual datapath, 64-bit stream): half the V1 value;
//! * V3–V5 (write-back): Eq. 2 applied to the clustered schedule, counting
//!   the inserted NOPs as issue slots.

use overlay_arch::FuVariant;

use crate::stage::{Stage, StageSchedule};

/// Per-stage breakdown of the II computation, useful for reports and for
/// explaining which FU is the bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub struct IiBreakdown {
    /// The variant the breakdown was computed for.
    pub variant: FuVariant,
    /// Per-stage `(loads, ops, nops, stage II)` tuples.
    pub per_stage: Vec<(usize, usize, usize, f64)>,
    /// The overlay II: the maximum stage II (halved for V2).
    pub ii: f64,
}

fn stage_ii_baseline(stage: &Stage) -> f64 {
    (stage.num_loads() + stage.num_ops() + 2) as f64
}

fn stage_ii_overlapped(stage: &Stage) -> f64 {
    ((stage.num_loads() + 1).max(stage.num_slots() + 2)) as f64
}

/// II of the `[14]` baseline overlay (Eq. 1) for the given stage schedule.
pub fn ii_baseline(schedule: &StageSchedule) -> f64 {
    schedule
        .stages()
        .iter()
        .map(stage_ii_baseline)
        .fold(0.0, f64::max)
}

/// II of the V1 overlay (Eq. 2): data loading overlaps execution thanks to
/// the rotating register file.
pub fn ii_v1(schedule: &StageSchedule) -> f64 {
    schedule
        .stages()
        .iter()
        .map(stage_ii_overlapped)
        .fold(0.0, f64::max)
}

/// II of the V2 overlay: the replicated 64-bit datapath halves the V1 value
/// (possibly producing a fractional II, as in the paper's Table III).
pub fn ii_v2(schedule: &StageSchedule) -> f64 {
    ii_v1(schedule) / 2.0
}

/// II of a write-back overlay (V3–V5): Eq. 2 over the clustered schedule,
/// counting inserted NOPs as issue slots.
pub fn ii_writeback(schedule: &StageSchedule) -> f64 {
    ii_v1(schedule)
}

/// II of `schedule` when executed on an overlay built from `variant`.
///
/// The schedule must have been produced for a compatible variant (ASAP for
/// the feed-forward variants, fixed-depth clustering for the write-back
/// variants); this function only applies the corresponding formula.
///
/// # Example
///
/// ```
/// use overlay_frontend::Benchmark;
/// use overlay_arch::FuVariant;
/// use overlay_scheduler::{asap_schedule, ii_for_variant};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let dfg = Benchmark::Gradient.dfg()?;
/// let schedule = asap_schedule(&dfg)?;
/// assert_eq!(ii_for_variant(&schedule, FuVariant::Baseline), 11.0);
/// assert_eq!(ii_for_variant(&schedule, FuVariant::V1), 6.0);
/// assert_eq!(ii_for_variant(&schedule, FuVariant::V2), 3.0);
/// # Ok(())
/// # }
/// ```
pub fn ii_for_variant(schedule: &StageSchedule, variant: FuVariant) -> f64 {
    match variant {
        FuVariant::Baseline => ii_baseline(schedule),
        FuVariant::V1 => ii_v1(schedule),
        FuVariant::V2 => ii_v2(schedule),
        FuVariant::V3 | FuVariant::V4 | FuVariant::V5 => ii_writeback(schedule),
    }
}

/// Computes the per-stage II breakdown for `variant`.
pub fn breakdown(schedule: &StageSchedule, variant: FuVariant) -> IiBreakdown {
    let per_stage: Vec<(usize, usize, usize, f64)> = schedule
        .stages()
        .iter()
        .map(|stage| {
            let stage_ii = match variant {
                FuVariant::Baseline => stage_ii_baseline(stage),
                _ => stage_ii_overlapped(stage),
            };
            (
                stage.num_loads(),
                stage.num_ops(),
                stage.num_nops(),
                stage_ii,
            )
        })
        .collect();
    IiBreakdown {
        variant,
        per_stage,
        ii: ii_for_variant(schedule, variant),
    }
}

/// Throughput in giga-operations per second for a kernel with `ops`
/// operations executed every `ii` cycles at `fmax_mhz`.
pub fn throughput_gops(ops: usize, ii: f64, fmax_mhz: f64) -> f64 {
    if ii <= 0.0 {
        return 0.0;
    }
    ops as f64 * fmax_mhz / ii / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asap::asap_schedule;
    use crate::cluster::{cluster_schedule, ClusterOptions};
    use overlay_frontend::Benchmark;

    #[test]
    fn gradient_ii_matches_the_papers_worked_example() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        assert_eq!(ii_baseline(&schedule), 11.0);
        assert_eq!(ii_v1(&schedule), 6.0);
        assert_eq!(ii_v2(&schedule), 3.0);
    }

    #[test]
    fn v1_never_exceeds_baseline_and_v2_is_exactly_half() {
        for benchmark in Benchmark::ALL {
            let dfg = benchmark.dfg().unwrap();
            let schedule = asap_schedule(&dfg).unwrap();
            let baseline = ii_baseline(&schedule);
            let v1 = ii_v1(&schedule);
            assert!(v1 <= baseline, "{benchmark}");
            assert_eq!(ii_v2(&schedule), v1 / 2.0, "{benchmark}");
        }
    }

    #[test]
    fn average_v1_reduction_is_around_forty_percent() {
        // The paper reports an average 42% II reduction for V1 vs [14].
        let mut reductions = Vec::new();
        for benchmark in Benchmark::TABLE3 {
            let dfg = benchmark.dfg().unwrap();
            let schedule = asap_schedule(&dfg).unwrap();
            reductions.push(1.0 - ii_v1(&schedule) / ii_baseline(&schedule));
        }
        let average = reductions.iter().sum::<f64>() / reductions.len() as f64;
        assert!(
            average > 0.30 && average < 0.55,
            "expected roughly 42% average reduction, got {:.1}%",
            average * 100.0
        );
    }

    #[test]
    fn writeback_ii_counts_inserted_nops() {
        let dfg = Benchmark::Poly7.dfg().unwrap();
        let schedule = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 }).unwrap();
        let with_nops = ii_writeback(&schedule);
        let ignore_nops = schedule
            .stages()
            .iter()
            .map(|s| ((s.num_loads() + 1).max(s.num_ops() + 2)) as f64)
            .fold(0.0, f64::max);
        assert!(with_nops >= ignore_nops);
    }

    #[test]
    fn deep_kernels_have_higher_fixed_depth_ii_than_v1() {
        // Compressing a deep kernel onto 8 FUs increases the II relative to
        // the depth-matched V1 overlay (the latency is what improves).
        for benchmark in [Benchmark::Poly6, Benchmark::Poly7, Benchmark::Poly8] {
            let dfg = benchmark.dfg().unwrap();
            let asap = asap_schedule(&dfg).unwrap();
            let clustered = cluster_schedule(&dfg, &ClusterOptions { depth: 8, iwp: 5 }).unwrap();
            assert!(ii_writeback(&clustered) >= ii_v1(&asap), "{benchmark}");
        }
    }

    #[test]
    fn breakdown_reports_the_bottleneck_stage() {
        let dfg = Benchmark::Gradient.dfg().unwrap();
        let schedule = asap_schedule(&dfg).unwrap();
        let breakdown = breakdown(&schedule, FuVariant::V1);
        assert_eq!(breakdown.per_stage.len(), 4);
        assert_eq!(breakdown.ii, 6.0);
        let max_stage = breakdown
            .per_stage
            .iter()
            .map(|&(_, _, _, ii)| ii)
            .fold(0.0, f64::max);
        assert_eq!(max_stage, 6.0);
    }

    #[test]
    fn throughput_formula_matches_the_papers_gradient_numbers() {
        // 11 ops / 6 cycles at 334 MHz ≈ 0.61 GOPS (the paper rounds to 0.59).
        let gops = throughput_gops(11, 6.0, 334.0);
        assert!((gops - 0.61).abs() < 0.05);
        assert_eq!(throughput_gops(10, 0.0, 300.0), 0.0);
    }
}
