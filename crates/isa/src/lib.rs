//! Instruction set of the time-multiplexed functional unit (FU).
//!
//! Each FU in the linear overlay executes a small 32-bit instruction stream
//! held in a LUTRAM instruction memory (Fig. 3 of the paper). An instruction
//! either loads the next word from the incoming FIFO into the register file
//! (`LOAD`), executes one DSP-block operation (`EXEC`), or idles (`NOP`,
//! inserted by the scheduler to respect the internal write-back path of the
//! write-back overlay variants).
//!
//! The write-back (`WB`) and no-data-forward (`NDF`) flags introduced by the
//! paper's V3–V5 variants are carried in otherwise-unused DSP `INMODE` bit
//! positions, exactly as described in Sec. III-A.3; see
//! [`instruction::Instruction`] for the concrete bit layout used here.
//!
//! # Example
//!
//! ```
//! use overlay_isa::{Instruction, RegIndex};
//! use overlay_dfg::Op;
//!
//! # fn main() -> Result<(), overlay_isa::IsaError> {
//! let add = Instruction::exec(Op::Add, RegIndex::new(2)?, RegIndex::new(0)?, RegIndex::new(1)?);
//! let word = add.encode();
//! assert_eq!(Instruction::decode(word)?, add);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod dsp_control;
pub mod error;
pub mod instruction;
pub mod program;
pub mod reg;

pub use asm::{assemble, disassemble};
pub use dsp_control::DspControl;
pub use error::IsaError;
pub use instruction::Instruction;
pub use program::{FuProgram, OverlayProgram};
pub use reg::{RegIndex, REGISTER_FILE_SIZE};
