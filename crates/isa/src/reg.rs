//! Register file addressing.

use std::fmt;

use crate::error::IsaError;

/// Number of entries in the FU register file.
///
/// The paper's FU uses a Xilinx `RAM32M` LUTRAM primitive, which provides a
/// 32-entry multi-port memory; register addresses are therefore 5 bits wide.
pub const REGISTER_FILE_SIZE: usize = 32;

/// Index of a register in the FU's 32-entry register file.
///
/// # Example
///
/// ```
/// use overlay_isa::RegIndex;
///
/// # fn main() -> Result<(), overlay_isa::IsaError> {
/// let r3 = RegIndex::new(3)?;
/// assert_eq!(r3.to_string(), "r3");
/// assert!(RegIndex::new(32).is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct RegIndex(u8);

impl RegIndex {
    /// Register 0 — by convention the first stream operand of a block.
    pub const R0: RegIndex = RegIndex(0);

    /// Creates a register index.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::RegisterOutOfRange`] if `index` is not below
    /// [`REGISTER_FILE_SIZE`].
    pub fn new(index: u32) -> Result<Self, IsaError> {
        if (index as usize) < REGISTER_FILE_SIZE {
            Ok(RegIndex(index as u8))
        } else {
            Err(IsaError::RegisterOutOfRange { index })
        }
    }

    /// Creates a register index, wrapping modulo the register file size.
    ///
    /// Used by the rotating-register-file addressing mode where offsets wrap
    /// naturally.
    pub fn wrapping(index: usize) -> Self {
        RegIndex((index % REGISTER_FILE_SIZE) as u8)
    }

    /// The raw 5-bit index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The raw index as a `u32` (for encoding).
    pub const fn as_u32(self) -> u32 {
        self.0 as u32
    }
}

impl fmt::Display for RegIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl TryFrom<u32> for RegIndex {
    type Error = IsaError;

    fn try_from(index: u32) -> Result<Self, Self::Error> {
        RegIndex::new(index)
    }
}

impl From<RegIndex> for usize {
    fn from(reg: RegIndex) -> Self {
        reg.index()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_range_is_0_to_31() {
        assert!(RegIndex::new(0).is_ok());
        assert!(RegIndex::new(31).is_ok());
        assert!(matches!(
            RegIndex::new(32),
            Err(IsaError::RegisterOutOfRange { index: 32 })
        ));
    }

    #[test]
    fn wrapping_wraps_modulo_file_size() {
        assert_eq!(RegIndex::wrapping(33), RegIndex::new(1).unwrap());
        assert_eq!(RegIndex::wrapping(31), RegIndex::new(31).unwrap());
    }

    #[test]
    fn conversions_round_trip() {
        let r = RegIndex::try_from(7u32).unwrap();
        assert_eq!(usize::from(r), 7);
        assert_eq!(r.as_u32(), 7);
    }
}
