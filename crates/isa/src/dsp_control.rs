//! Mapping from overlay operations to DSP48E1 control fields.
//!
//! The iDEA-style FU drives the DSP48E1 primitive directly from the decoded
//! instruction: `INMODE` selects the multiplier/pre-adder inputs, `OPMODE`
//! selects the X/Y/Z multiplexers feeding the 48-bit ALU, and `ALUMODE`
//! selects the ALU function. The paper exploits the fact that only a subset
//! of `INMODE` is needed for two-/three-operand operations, freeing three
//! bits which V3–V5 reuse for the write-back (`WB`) and no-data-forward
//! (`NDF`) flags. This module captures that mapping so both the instruction
//! encoder and the cycle-accurate DSP model agree on it.

use overlay_dfg::Op;

/// DSP48E1 control fields for one operation.
///
/// Field widths match the hardware primitive: `INMODE` is 5 bits, `OPMODE`
/// is 7 bits and `ALUMODE` is 4 bits. The values chosen follow the DSP48E1
/// user guide conventions for the common configurations the overlay uses
/// (`M`-path multiply, `X|Y|Z` ALU selects); operations that the DSP cannot
/// perform in one pass (shifts, min/max, absolute value) are implemented in
/// the FU's input-map/ALU helper logic and are flagged by
/// [`DspControl::uses_helper_logic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DspControl {
    /// 5-bit `INMODE` value (multiplier input selection).
    pub inmode: u8,
    /// 7-bit `OPMODE` value (X/Y/Z multiplexer selection).
    pub opmode: u8,
    /// 4-bit `ALUMODE` value (ALU function).
    pub alumode: u8,
    /// Whether the operation needs the LUT-based helper datapath around the
    /// DSP (shifter / comparator), as in the iDEA processor.
    pub helper: bool,
}

impl DspControl {
    /// `OPMODE` selecting `X = M, Y = M, Z = 0` (pure multiply).
    const OPMODE_MULT: u8 = 0b000_0101;
    /// `OPMODE` selecting `X = A:B, Y = 0, Z = C` (ALU on A:B and C).
    const OPMODE_AB_C: u8 = 0b011_0011;
    /// `OPMODE` selecting `X = M, Y = M, Z = C` (multiply-add).
    const OPMODE_MULT_C: u8 = 0b011_0101;

    /// Returns the control fields used to execute `op` on the DSP block.
    pub fn for_op(op: Op) -> DspControl {
        match op {
            Op::Add => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b0000, // Z + X + Y + CIN
                helper: false,
            },
            Op::Sub => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b0011, // Z - (X + Y + CIN)
                helper: false,
            },
            Op::Mul => DspControl {
                inmode: 0b00001,
                opmode: Self::OPMODE_MULT,
                alumode: 0b0000,
                helper: false,
            },
            Op::Square => DspControl {
                inmode: 0b00011, // route the same operand to both multiplier ports
                opmode: Self::OPMODE_MULT,
                alumode: 0b0000,
                helper: false,
            },
            Op::MulAdd => DspControl {
                inmode: 0b00001,
                opmode: Self::OPMODE_MULT_C,
                alumode: 0b0000,
                helper: false,
            },
            Op::Neg => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b0011,
                helper: false,
            },
            Op::And => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b1100,
                helper: false,
            },
            Op::Or => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b1110, // logic unit OR via OPMODE[3:2]=10 convention
                helper: false,
            },
            Op::Xor => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b0100,
                helper: false,
            },
            Op::Mov => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b0000,
                helper: false,
            },
            // Shifts, min/max and abs use the LUT helper datapath.
            Op::Shl | Op::Shr | Op::Min | Op::Max | Op::Abs => DspControl {
                inmode: 0b00000,
                opmode: Self::OPMODE_AB_C,
                alumode: 0b0000,
                helper: true,
            },
        }
    }

    /// Whether the operation needs the LUT-based helper datapath.
    pub fn uses_helper_logic(self) -> bool {
        self.helper
    }

    /// The three `INMODE` bit positions left unused by the overlay's
    /// two-/three-operand configurations, reused by the paper for the `WB`
    /// and `NDF` flags (one position is reserved for future use).
    pub const SPARE_INMODE_BITS: [u8; 3] = [2, 3, 4];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_has_a_control_encoding() {
        for op in Op::ALL {
            let control = DspControl::for_op(op);
            assert!(control.inmode < 32);
            assert!(control.opmode < 128);
            assert!(control.alumode < 16);
        }
    }

    #[test]
    fn multiplier_ops_use_the_m_path() {
        for op in [Op::Mul, Op::Square, Op::MulAdd] {
            let control = DspControl::for_op(op);
            assert_eq!(control.opmode & 0b000_1111, 0b0101, "{op} must select X=M");
        }
    }

    #[test]
    fn square_ties_both_multiplier_ports() {
        assert_ne!(
            DspControl::for_op(Op::Square).inmode,
            DspControl::for_op(Op::Mul).inmode
        );
    }

    #[test]
    fn helper_classification_matches_op_kind() {
        assert!(DspControl::for_op(Op::Shl).uses_helper_logic());
        assert!(DspControl::for_op(Op::Min).uses_helper_logic());
        assert!(!DspControl::for_op(Op::Add).uses_helper_logic());
        assert!(!DspControl::for_op(Op::Mul).uses_helper_logic());
    }

    #[test]
    fn spare_inmode_bits_are_three_distinct_positions() {
        let bits = DspControl::SPARE_INMODE_BITS;
        assert_eq!(bits.len(), 3);
        assert!(bits.iter().all(|&b| b < 5));
        let mut sorted = bits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
    }
}
