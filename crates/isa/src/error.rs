//! Error type for instruction encoding, decoding and assembly.

use std::fmt;

/// Errors produced while constructing, encoding, decoding or assembling FU
/// instructions and programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register index outside the 32-entry RAM32M register file.
    RegisterOutOfRange {
        /// The offending index.
        index: u32,
    },
    /// An encoded instruction word used a reserved or unknown kind field.
    InvalidKind {
        /// The raw kind bits.
        kind: u32,
    },
    /// An encoded instruction word used an unknown ALU opcode.
    InvalidOpcode {
        /// The raw opcode bits.
        opcode: u32,
    },
    /// An operation that needs the unused third operand port (e.g. `MAC`)
    /// which the 2-operand instruction format cannot express.
    UnsupportedOperation {
        /// The operation mnemonic.
        mnemonic: String,
    },
    /// Textual assembly could not be parsed.
    ParseAsm {
        /// 1-based line number of the offending line.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// The program exceeds the FU instruction memory capacity.
    ProgramTooLong {
        /// Number of instructions in the program.
        len: usize,
        /// Instruction memory capacity.
        capacity: usize,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::RegisterOutOfRange { index } => {
                write!(
                    f,
                    "register index {index} exceeds the 32-entry register file"
                )
            }
            IsaError::InvalidKind { kind } => {
                write!(f, "invalid instruction kind bits {kind:#04b}")
            }
            IsaError::InvalidOpcode { opcode } => write!(f, "invalid ALU opcode {opcode:#06b}"),
            IsaError::UnsupportedOperation { mnemonic } => {
                write!(
                    f,
                    "operation {mnemonic} cannot be encoded in the FU instruction format"
                )
            }
            IsaError::ParseAsm { line, message } => {
                write!(f, "assembly parse error on line {line}: {message}")
            }
            IsaError::ProgramTooLong { len, capacity } => write!(
                f,
                "program has {len} instructions but the instruction memory holds only {capacity}"
            ),
        }
    }
}

impl std::error::Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_quantities() {
        let err = IsaError::RegisterOutOfRange { index: 40 };
        assert!(err.to_string().contains("40"));
        let err = IsaError::ProgramTooLong {
            len: 300,
            capacity: 256,
        };
        assert!(err.to_string().contains("300"));
        assert!(err.to_string().contains("256"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<IsaError>();
    }
}
