//! A tiny textual assembler/disassembler for FU programs.
//!
//! The format is the one produced by [`FuProgram`]'s `Display`
//! implementation, so `assemble(&program.to_string())` round-trips:
//!
//! ```text
//! .const r31 = -48
//! LOAD r0
//! LOAD r1
//! SUB r2, r0, r31
//! SQR r3, r2 [wb]
//! NOP
//! ```

use overlay_dfg::{Op, Value};

use crate::error::IsaError;
use crate::instruction::Instruction;
use crate::program::FuProgram;
use crate::reg::RegIndex;

/// Assembles textual FU assembly into a [`FuProgram`].
///
/// Blank lines and lines starting with `;` are ignored.
///
/// # Errors
///
/// Returns [`IsaError::ParseAsm`] with the offending line number for any
/// syntax problem.
///
/// # Example
///
/// ```
/// use overlay_isa::assemble;
///
/// # fn main() -> Result<(), overlay_isa::IsaError> {
/// let program = assemble("LOAD r0\nLOAD r1\nADD r2, r0, r1\n")?;
/// assert_eq!(program.len(), 3);
/// assert_eq!(program.num_execs(), 1);
/// # Ok(())
/// # }
/// ```
pub fn assemble(text: &str) -> Result<FuProgram, IsaError> {
    let mut program = FuProgram::new();
    for (index, raw_line) in text.lines().enumerate() {
        let line_no = index + 1;
        let line = raw_line.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".const") {
            let (reg, value) = parse_const(rest, line_no)?;
            program.preload_constant(reg, value);
            continue;
        }
        program.push(parse_instruction(line, line_no)?);
    }
    Ok(program)
}

/// Renders a program back to its textual form (identical to the program's
/// `Display` output).
pub fn disassemble(program: &FuProgram) -> String {
    program.to_string()
}

fn parse_error(line: usize, message: impl Into<String>) -> IsaError {
    IsaError::ParseAsm {
        line,
        message: message.into(),
    }
}

fn parse_reg(token: &str, line: usize) -> Result<RegIndex, IsaError> {
    let token = token.trim().trim_end_matches(',');
    let digits = token
        .strip_prefix('r')
        .ok_or_else(|| parse_error(line, format!("expected a register, found `{token}`")))?;
    let index: u32 = digits
        .parse()
        .map_err(|_| parse_error(line, format!("invalid register `{token}`")))?;
    RegIndex::new(index).map_err(|_| parse_error(line, format!("register `{token}` out of range")))
}

fn parse_const(rest: &str, line: usize) -> Result<(RegIndex, Value), IsaError> {
    let mut parts = rest.splitn(2, '=');
    let reg = parse_reg(
        parts
            .next()
            .ok_or_else(|| parse_error(line, "missing register in .const"))?,
        line,
    )?;
    let value_text = parts
        .next()
        .ok_or_else(|| parse_error(line, "missing value in .const"))?
        .trim();
    let value: i32 = value_text
        .parse()
        .map_err(|_| parse_error(line, format!("invalid constant value `{value_text}`")))?;
    Ok((reg, Value::new(value)))
}

fn parse_instruction(line: &str, line_no: usize) -> Result<Instruction, IsaError> {
    // Split off the flag annotations first.
    let wb = line.contains("[wb]");
    let ndf = line.contains("[ndf]");
    let fwd = line.contains("[fwd]");
    let body = line
        .replace("[wb]", "")
        .replace("[ndf]", "")
        .replace("[fwd]", "");
    let mut tokens = body.split_whitespace();
    let mnemonic = tokens
        .next()
        .ok_or_else(|| parse_error(line_no, "empty instruction"))?
        .to_ascii_uppercase();
    match mnemonic.as_str() {
        "NOP" => Ok(Instruction::Nop),
        "LOAD" => {
            let dst = parse_reg(
                tokens
                    .next()
                    .ok_or_else(|| parse_error(line_no, "LOAD needs a destination register"))?,
                line_no,
            )?;
            Ok(Instruction::Load { dst, fwd })
        }
        _ => {
            let op: Op = mnemonic
                .parse()
                .map_err(|_| parse_error(line_no, format!("unknown mnemonic `{mnemonic}`")))?;
            let dst = parse_reg(
                tokens
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing destination register"))?,
                line_no,
            )?;
            let src1 = parse_reg(
                tokens
                    .next()
                    .ok_or_else(|| parse_error(line_no, "missing first source register"))?,
                line_no,
            )?;
            let src2 = match tokens.next() {
                Some(token) => parse_reg(token, line_no)?,
                None if op.arity() == 1 => src1,
                None => {
                    return Err(parse_error(
                        line_no,
                        format!("{op} needs a second source register"),
                    ))
                }
            };
            Ok(Instruction::Exec {
                op,
                dst,
                src1,
                src2,
                wb,
                ndf,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_text() {
        let source = "\
; gradient FU0
.const r31 = -48
LOAD r0 [fwd]
LOAD r1
SUB r2, r0, r31
SQR r3, r2 [wb]
MOV r4, r3 [ndf]
NOP
";
        let program = assemble(source).unwrap();
        assert_eq!(program.len(), 6);
        assert_eq!(program.constant_init().len(), 1);
        let rendered = disassemble(&program);
        let reassembled = assemble(&rendered).unwrap();
        assert_eq!(reassembled, program);
    }

    #[test]
    fn flags_are_parsed() {
        let program = assemble("ADD r2, r0, r1 [wb] [ndf]\n").unwrap();
        match program.instructions()[0] {
            Instruction::Exec { wb, ndf, .. } => {
                assert!(wb);
                assert!(ndf);
            }
            _ => panic!("expected EXEC"),
        }
    }

    #[test]
    fn unary_ops_accept_two_or_three_operands() {
        let program = assemble("SQR r3, r2\nABS r4, r3, r3\n").unwrap();
        assert_eq!(program.num_execs(), 2);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = assemble("LOAD r0\nFROB r1, r2, r3\n").unwrap_err();
        match err {
            IsaError::ParseAsm { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn bad_register_is_reported() {
        assert!(assemble("LOAD r99\n").is_err());
        assert!(assemble("LOAD x3\n").is_err());
        assert!(assemble("ADD r1, r2\n").is_err());
    }

    #[test]
    fn const_lines_require_register_and_value() {
        assert!(assemble(".const r5 = 123\n").is_ok());
        assert!(assemble(".const r5\n").is_err());
        assert!(assemble(".const r5 = abc\n").is_err());
    }
}
