//! The 32-bit FU instruction word.

use std::fmt;

use overlay_dfg::Op;

use crate::dsp_control::DspControl;
use crate::error::IsaError;
use crate::reg::RegIndex;

/// One instruction of a time-multiplexed functional unit.
///
/// The FU executes exactly one instruction per cycle. The three kinds mirror
/// the execution pattern shown in the paper's Table II:
///
/// * [`Instruction::Load`] — pop the next word from the incoming FIFO (or the
///   upstream FU) and store it in the register file;
/// * [`Instruction::Exec`] — read one or two registers, run them through the
///   DSP datapath and forward the result to the next stage (and, for the
///   write-back variants, optionally back into the local register file);
/// * [`Instruction::Nop`] — idle cycle, inserted to respect the internal
///   write-back path (IWP) latency between dependent instructions.
///
/// # Encoding
///
/// The 32-bit word is laid out as follows (bit 0 is the least significant):
///
/// | bits   | field                                           |
/// |--------|-------------------------------------------------|
/// | 1:0    | kind (0 = NOP, 1 = LOAD, 2 = EXEC)              |
/// | 6:2    | destination register                            |
/// | 11:7   | source register 1                               |
/// | 16:12  | source register 2                               |
/// | 20:17  | ALU opcode (index into the operation table)     |
/// | 21     | WB — write result back into the register file   |
/// | 22     | NDF — do not forward the result downstream      |
/// | 31:23  | reserved (zero)                                 |
///
/// The WB and NDF bits occupy the spare `INMODE` positions identified in the
/// paper (see [`DspControl::SPARE_INMODE_BITS`]), so the instruction stays
/// within 32 bits without widening the instruction memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Instruction {
    /// Idle for one cycle.
    Nop,
    /// Load the next incoming word into register `dst`.
    ///
    /// On the V1–V5 variants loads are carried out by the input controller
    /// (the rotating register file's write port) concurrently with
    /// instruction execution; on the `[14]` baseline they occupy an issue
    /// slot. The `fwd` flag marks incoming words that must also be bypassed
    /// to the downstream FU (pass-through values that later stages consume).
    Load {
        /// Destination register.
        dst: RegIndex,
        /// Forward (bypass) the incoming word to the next stage as well.
        fwd: bool,
    },
    /// Execute an ALU/DSP operation.
    Exec {
        /// The operation.
        op: Op,
        /// Destination register (meaningful when `wb` is set; also identifies
        /// the value for tracing).
        dst: RegIndex,
        /// First source register.
        src1: RegIndex,
        /// Second source register (ignored by unary operations).
        src2: RegIndex,
        /// Write the result back into the local register file (V3–V5 only).
        wb: bool,
        /// Suppress forwarding the result to the next stage.
        ndf: bool,
    },
}

const KIND_NOP: u32 = 0;
const KIND_LOAD: u32 = 1;
const KIND_EXEC: u32 = 2;

impl Instruction {
    /// Convenience constructor for a plain forward-only `EXEC` instruction.
    pub fn exec(op: Op, dst: RegIndex, src1: RegIndex, src2: RegIndex) -> Self {
        Instruction::Exec {
            op,
            dst,
            src1,
            src2,
            wb: false,
            ndf: false,
        }
    }

    /// Convenience constructor for an `EXEC` instruction with explicit WB/NDF
    /// flags (used by the write-back overlay variants).
    pub fn exec_flags(
        op: Op,
        dst: RegIndex,
        src1: RegIndex,
        src2: RegIndex,
        wb: bool,
        ndf: bool,
    ) -> Self {
        Instruction::Exec {
            op,
            dst,
            src1,
            src2,
            wb,
            ndf,
        }
    }

    /// Convenience constructor for a `LOAD` that does not forward.
    pub fn load(dst: RegIndex) -> Self {
        Instruction::Load { dst, fwd: false }
    }

    /// Convenience constructor for a `LOAD` that also forwards (bypasses) the
    /// incoming word to the next stage.
    pub fn load_forward(dst: RegIndex) -> Self {
        Instruction::Load { dst, fwd: true }
    }

    /// Whether this is a `NOP`.
    pub fn is_nop(&self) -> bool {
        matches!(self, Instruction::Nop)
    }

    /// Whether this is a `LOAD`.
    pub fn is_load(&self) -> bool {
        matches!(self, Instruction::Load { .. })
    }

    /// Whether this is an `EXEC`.
    pub fn is_exec(&self) -> bool {
        matches!(self, Instruction::Exec { .. })
    }

    /// The DSP control fields this instruction drives, if it is an `EXEC`.
    pub fn dsp_control(&self) -> Option<DspControl> {
        match self {
            Instruction::Exec { op, .. } => Some(DspControl::for_op(*op)),
            _ => None,
        }
    }

    fn opcode_of(op: Op) -> u32 {
        Op::ALL
            .iter()
            .position(|&candidate| candidate == op)
            .expect("every Op is listed in Op::ALL") as u32
    }

    fn op_from_opcode(opcode: u32) -> Result<Op, IsaError> {
        Op::ALL
            .get(opcode as usize)
            .copied()
            .ok_or(IsaError::InvalidOpcode { opcode })
    }

    /// Encodes the instruction as a 32-bit word.
    pub fn encode(&self) -> u32 {
        match *self {
            Instruction::Nop => KIND_NOP,
            Instruction::Load { dst, fwd } => {
                KIND_LOAD | (dst.as_u32() << 2) | (u32::from(fwd) << 21)
            }
            Instruction::Exec {
                op,
                dst,
                src1,
                src2,
                wb,
                ndf,
            } => {
                KIND_EXEC
                    | (dst.as_u32() << 2)
                    | (src1.as_u32() << 7)
                    | (src2.as_u32() << 12)
                    | (Self::opcode_of(op) << 17)
                    | (u32::from(wb) << 21)
                    | (u32::from(ndf) << 22)
            }
        }
    }

    /// Decodes a 32-bit word back into an instruction.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::InvalidKind`] or [`IsaError::InvalidOpcode`] for
    /// words that do not correspond to a valid instruction.
    pub fn decode(word: u32) -> Result<Self, IsaError> {
        let kind = word & 0b11;
        let dst = RegIndex::new((word >> 2) & 0x1f)?;
        let src1 = RegIndex::new((word >> 7) & 0x1f)?;
        let src2 = RegIndex::new((word >> 12) & 0x1f)?;
        match kind {
            KIND_NOP => Ok(Instruction::Nop),
            KIND_LOAD => Ok(Instruction::Load {
                dst,
                fwd: (word >> 21) & 1 == 1,
            }),
            KIND_EXEC => Ok(Instruction::Exec {
                op: Self::op_from_opcode((word >> 17) & 0xf)?,
                dst,
                src1,
                src2,
                wb: (word >> 21) & 1 == 1,
                ndf: (word >> 22) & 1 == 1,
            }),
            other => Err(IsaError::InvalidKind { kind: other }),
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Nop => f.write_str("NOP"),
            Instruction::Load { dst, fwd } => {
                write!(f, "LOAD {dst}")?;
                if *fwd {
                    f.write_str(" [fwd]")?;
                }
                Ok(())
            }
            Instruction::Exec {
                op,
                dst,
                src1,
                src2,
                wb,
                ndf,
            } => {
                if op.arity() == 1 {
                    write!(f, "{op} {dst}, {src1}")?;
                } else {
                    write!(f, "{op} {dst}, {src1}, {src2}")?;
                }
                if *wb {
                    f.write_str(" [wb]")?;
                }
                if *ndf {
                    f.write_str(" [ndf]")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u32) -> RegIndex {
        RegIndex::new(i).unwrap()
    }

    #[test]
    fn every_op_round_trips_through_encoding() {
        for op in Op::ALL {
            for (wb, ndf) in [(false, false), (true, false), (false, true), (true, true)] {
                let instr = Instruction::exec_flags(op, r(3), r(17), r(31), wb, ndf);
                let decoded = Instruction::decode(instr.encode()).unwrap();
                assert_eq!(decoded, instr);
            }
        }
    }

    #[test]
    fn nop_and_load_round_trip() {
        assert_eq!(
            Instruction::decode(Instruction::Nop.encode()).unwrap(),
            Instruction::Nop
        );
        let load = Instruction::load(r(29));
        assert_eq!(Instruction::decode(load.encode()).unwrap(), load);
    }

    #[test]
    fn nop_encodes_as_zero_word() {
        assert_eq!(Instruction::Nop.encode(), 0);
    }

    #[test]
    fn reserved_kind_is_rejected() {
        assert!(matches!(
            Instruction::decode(0b11),
            Err(IsaError::InvalidKind { kind: 3 })
        ));
    }

    #[test]
    fn invalid_opcode_is_rejected() {
        // kind = EXEC, opcode = 15 (out of the 15-entry table, max valid is 14)
        let word = KIND_EXEC | (15 << 17);
        assert!(matches!(
            Instruction::decode(word),
            Err(IsaError::InvalidOpcode { opcode: 15 })
        ));
    }

    #[test]
    fn display_formats_match_the_schedule_style() {
        let instr = Instruction::exec(Op::Sub, r(5), r(0), r(2));
        assert_eq!(instr.to_string(), "SUB r5, r0, r2");
        let instr = Instruction::exec_flags(Op::Square, r(1), r(1), r(1), true, false);
        assert_eq!(instr.to_string(), "SQR r1, r1 [wb]");
        assert_eq!(Instruction::load(r(4)).to_string(), "LOAD r4");
        assert_eq!(Instruction::Nop.to_string(), "NOP");
    }

    #[test]
    fn flags_live_in_the_spare_inmode_bit_positions() {
        let plain = Instruction::exec(Op::Add, r(0), r(1), r(2)).encode();
        let flagged = Instruction::exec_flags(Op::Add, r(0), r(1), r(2), true, true).encode();
        let difference = plain ^ flagged;
        assert_eq!(difference, (1 << 21) | (1 << 22));
    }

    #[test]
    fn exec_reports_dsp_control() {
        let instr = Instruction::exec(Op::Mul, r(0), r(1), r(2));
        assert!(instr.dsp_control().is_some());
        assert!(Instruction::Nop.dsp_control().is_none());
    }
}
