//! Per-FU programs and whole-overlay kernel configurations.

use std::fmt;

use overlay_dfg::Value;

use crate::error::IsaError;
use crate::instruction::Instruction;
use crate::reg::RegIndex;

/// Default capacity of the LUTRAM instruction memory of one FU, in
/// instructions.
///
/// The paper keeps the instruction storage deliberately small ("the
/// architecture allows us to store just those instructions used by an
/// individual FU"); 256 entries comfortably holds every benchmark in the
/// evaluation while staying within a handful of LUTRAMs.
pub const DEFAULT_IMEM_CAPACITY: usize = 256;

/// The instruction stream (and constant preload) of a single FU.
///
/// A program represents **one initiation interval** of the steady-state
/// schedule: the FU executes it cyclically, once per data block.
///
/// # Example
///
/// ```
/// use overlay_isa::{FuProgram, Instruction, RegIndex};
/// use overlay_dfg::Op;
///
/// # fn main() -> Result<(), overlay_isa::IsaError> {
/// let mut program = FuProgram::new();
/// program.push(Instruction::load(RegIndex::new(0)?));
/// program.push(Instruction::load(RegIndex::new(1)?));
/// program.push(Instruction::exec(Op::Add, RegIndex::new(2)?, RegIndex::new(0)?, RegIndex::new(1)?));
/// assert_eq!(program.num_loads(), 2);
/// assert_eq!(program.num_execs(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FuProgram {
    instructions: Vec<Instruction>,
    constant_init: Vec<(RegIndex, Value)>,
}

impl FuProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        FuProgram::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, instruction: Instruction) {
        self.instructions.push(instruction);
    }

    /// Registers a constant that must be preloaded into the register file as
    /// part of the FU configuration (constants are not streamed).
    pub fn preload_constant(&mut self, reg: RegIndex, value: Value) {
        self.constant_init.push((reg, value));
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// The constants preloaded into the register file at configuration time.
    pub fn constant_init(&self) -> &[(RegIndex, Value)] {
        &self.constant_init
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Number of `LOAD` instructions.
    pub fn num_loads(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_load()).count()
    }

    /// Number of `EXEC` instructions.
    pub fn num_execs(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_exec()).count()
    }

    /// Number of `NOP` instructions.
    pub fn num_nops(&self) -> usize {
        self.instructions.iter().filter(|i| i.is_nop()).count()
    }

    /// Encodes the program into 32-bit instruction words.
    pub fn encode(&self) -> Vec<u32> {
        self.instructions.iter().map(Instruction::encode).collect()
    }

    /// Checks the program fits in an instruction memory of `capacity`
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ProgramTooLong`] if it does not.
    pub fn check_capacity(&self, capacity: usize) -> Result<(), IsaError> {
        if self.len() > capacity {
            Err(IsaError::ProgramTooLong {
                len: self.len(),
                capacity,
            })
        } else {
            Ok(())
        }
    }

    /// Size of this FU's configuration data in bits: 32 bits per instruction
    /// plus 37 bits (5-bit register address + 32-bit value) per preloaded
    /// constant.
    pub fn config_bits(&self) -> usize {
        self.len() * 32 + self.constant_init.len() * 37
    }
}

impl FromIterator<Instruction> for FuProgram {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        FuProgram {
            instructions: iter.into_iter().collect(),
            constant_init: Vec::new(),
        }
    }
}

impl Extend<Instruction> for FuProgram {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        self.instructions.extend(iter);
    }
}

impl fmt::Display for FuProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (reg, value) in &self.constant_init {
            writeln!(f, ".const {reg} = {value}")?;
        }
        for instruction in &self.instructions {
            writeln!(f, "{instruction}")?;
        }
        Ok(())
    }
}

/// The complete configuration of a linear overlay for one kernel: one
/// [`FuProgram`] per functional unit plus stream metadata.
///
/// This is what the host processor writes into the overlay at kernel-switch
/// time; its size drives the hardware-context-switch model of
/// `overlay-arch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlayProgram {
    kernel: String,
    fu_programs: Vec<FuProgram>,
    num_inputs: usize,
    num_outputs: usize,
    ii: usize,
}

impl OverlayProgram {
    /// Assembles an overlay program from per-FU programs.
    ///
    /// `ii` is the steady-state initiation interval in cycles (the length of
    /// the longest per-FU program, including any separator cycles the
    /// scheduler accounts for).
    pub fn new(
        kernel: impl Into<String>,
        fu_programs: Vec<FuProgram>,
        num_inputs: usize,
        num_outputs: usize,
        ii: usize,
    ) -> Self {
        OverlayProgram {
            kernel: kernel.into(),
            fu_programs,
            num_inputs,
            num_outputs,
            ii,
        }
    }

    /// The kernel name this configuration implements.
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Per-FU programs, in pipeline order (FU0 receives the input stream).
    pub fn fu_programs(&self) -> &[FuProgram] {
        &self.fu_programs
    }

    /// Number of FUs used (the overlay depth occupied by the kernel).
    pub fn num_fus(&self) -> usize {
        self.fu_programs.len()
    }

    /// Number of stream inputs per invocation.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of stream outputs per invocation.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Steady-state initiation interval in cycles.
    pub fn ii(&self) -> usize {
        self.ii
    }

    /// Total instruction count across all FUs.
    pub fn total_instructions(&self) -> usize {
        self.fu_programs.iter().map(FuProgram::len).sum()
    }

    /// Total configuration size in bits (what must be transferred on a
    /// hardware context switch).
    pub fn config_bits(&self) -> usize {
        self.fu_programs.iter().map(FuProgram::config_bits).sum()
    }

    /// Total configuration size in bytes, rounded up.
    pub fn config_bytes(&self) -> usize {
        self.config_bits().div_ceil(8)
    }

    /// Checks every FU program fits an instruction memory of `capacity`
    /// entries.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::ProgramTooLong`] for the first FU that does not
    /// fit.
    pub fn check_capacity(&self, capacity: usize) -> Result<(), IsaError> {
        for program in &self.fu_programs {
            program.check_capacity(capacity)?;
        }
        Ok(())
    }
}

impl fmt::Display for OverlayProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "; kernel `{}`: {} FU(s), II = {}, {} in / {} out",
            self.kernel,
            self.fu_programs.len(),
            self.ii,
            self.num_inputs,
            self.num_outputs
        )?;
        for (index, program) in self.fu_programs.iter().enumerate() {
            writeln!(f, "FU{index}:")?;
            for line in program.to_string().lines() {
                writeln!(f, "  {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_dfg::Op;

    fn r(i: u32) -> RegIndex {
        RegIndex::new(i).unwrap()
    }

    fn sample_program() -> FuProgram {
        let mut p = FuProgram::new();
        p.preload_constant(r(31), Value::new(-48));
        p.push(Instruction::load(r(0)));
        p.push(Instruction::load(r(1)));
        p.push(Instruction::exec(Op::Sub, r(2), r(0), r(31)));
        p.push(Instruction::Nop);
        p
    }

    #[test]
    fn instruction_kind_counts() {
        let p = sample_program();
        assert_eq!(p.len(), 4);
        assert_eq!(p.num_loads(), 2);
        assert_eq!(p.num_execs(), 1);
        assert_eq!(p.num_nops(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn config_bits_accounts_for_instructions_and_constants() {
        let p = sample_program();
        assert_eq!(p.config_bits(), 4 * 32 + 37);
    }

    #[test]
    fn capacity_check_flags_oversized_programs() {
        let p = sample_program();
        assert!(p.check_capacity(4).is_ok());
        assert!(matches!(
            p.check_capacity(3),
            Err(IsaError::ProgramTooLong {
                len: 4,
                capacity: 3
            })
        ));
    }

    #[test]
    fn encode_produces_one_word_per_instruction() {
        let p = sample_program();
        let words = p.encode();
        assert_eq!(words.len(), p.len());
        assert_eq!(
            Instruction::decode(words[0]).unwrap(),
            Instruction::load(r(0))
        );
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut p: FuProgram = vec![Instruction::Nop, Instruction::load(r(3))]
            .into_iter()
            .collect();
        p.extend([Instruction::Nop]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.num_nops(), 2);
    }

    #[test]
    fn overlay_program_aggregates_fu_programs() {
        let overlay = OverlayProgram::new(
            "gradient",
            vec![sample_program(), sample_program(), FuProgram::new()],
            5,
            1,
            6,
        );
        assert_eq!(overlay.num_fus(), 3);
        assert_eq!(overlay.total_instructions(), 8);
        assert_eq!(overlay.ii(), 6);
        assert_eq!(overlay.config_bits(), 2 * (4 * 32 + 37));
        assert_eq!(overlay.config_bytes(), overlay.config_bits().div_ceil(8));
        assert!(overlay.check_capacity(8).is_ok());
        assert!(overlay.check_capacity(2).is_err());
    }

    #[test]
    fn display_renders_fu_sections() {
        let overlay = OverlayProgram::new("k", vec![sample_program()], 2, 1, 4);
        let text = overlay.to_string();
        assert!(text.contains("FU0:"));
        assert!(text.contains("LOAD r0"));
        assert!(text.contains(".const r31 = -48"));
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the sizing contract
    fn default_capacity_holds_every_benchmark_sized_program() {
        assert!(DEFAULT_IMEM_CAPACITY >= 64);
    }
}
