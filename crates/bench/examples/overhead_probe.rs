//! Tracing-overhead probe: a focused harness for attributing the host-time
//! cost of request-span tracing, finer-grained than the sweep-level figure
//! `runtime_scalability` reports.
//!
//! Default mode interleaves traced and untraced serves of a saturating
//! 1024-request trace (alternating which side goes first each rep) and
//! reports three estimators: best-of-reps per side, the median of per-rep
//! traced/untraced ratios (drift-robust: adjacent serves share host
//! conditions), and the minimum ratio (a sanity bound — if it goes
//! negative, single-rep noise exceeds the effect being measured).
//!
//! Env knobs:
//! * `CAP=<n>`    — trace ring capacity (default 65536). Shrinking it
//!   isolates capture cost from retention/drain cost.
//! * `REPS=<n>`   — timed reps (default 9; use 40+ on shared hosts).
//! * `MODE=ring`  — micro-mode: raw `record`/`finish` ns/span into a warm
//!   recorder, no serve around it (the mechanistic floor).
//! * `MODE=null`  — control: the "traced" slot is a second untraced
//!   runtime, so the reported overhead is the methodology's noise floor.
//! * `MODE=telemetry` — the instrumented slot runs windowed telemetry
//!   instead of tracing. `WINDOW_US=<w>` sets the window width (default
//!   2.6), `SLO=0` drops the burn-rate objective to isolate the
//!   time-series accumulation from the SLO evaluation epilogue.
use std::time::Instant;
use tm_overlay::{
    DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, SloClass, SloConfig, SloObjective,
    TelemetryConfig, TraceConfig, Workload,
};

fn trace(count: usize, spacing_us: f64) -> Vec<Request> {
    let spec = KernelSpec::from_source(
        "grad",
        "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }",
    );
    (0..count)
        .map(|i| {
            let workload = Workload::random(5, 2, (i % 8) as u64);
            Request::new(i as u64, spec.clone(), workload).at(i as f64 * spacing_us)
        })
        .collect()
}

fn main() {
    let cap: usize = std::env::var("CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65_536);
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    if std::env::var("MODE").as_deref() == Ok("ring") {
        // Raw capture cost: serve-shaped span batches into a warm recorder.
        use tm_overlay::runtime::obs::{SpanKind, TraceEvent, TraceRecorder};
        let mut recorder = TraceRecorder::new(TraceConfig::with_capacity(cap));
        let spans = 6 * 1024;
        let mut best = f64::INFINITY;
        let mut best_fin = f64::INFINITY;
        for rep in 0..=reps {
            let start = Instant::now();
            for i in 0..1024u64 {
                let t = i as f64 * 0.02;
                for (dur, kind) in [
                    (0.0, SpanKind::Submit),
                    (0.0, SpanKind::Admission { admitted: true }),
                    (1.0, SpanKind::QueueWait),
                    (0.1, SpanKind::ContextSwitch),
                    (2.0, SpanKind::Run),
                    (0.0, SpanKind::Commit),
                ] {
                    recorder.record(TraceEvent {
                        time_us: t,
                        dur_us: dur,
                        request_id: Some(i),
                        device: 0,
                        tile: Some((i % 64) as usize),
                        kind,
                    });
                }
            }
            let ns = start.elapsed().as_nanos() as f64;
            let fin = Instant::now();
            let trace = recorder.finish().unwrap();
            let fin_ns = fin.elapsed().as_nanos() as f64;
            assert!(trace.dropped() + trace.events().len() as u64 == spans);
            if rep > 0 {
                best = best.min(ns);
                best_fin = best_fin.min(fin_ns);
            }
        }
        println!(
            "ring capture: {:.1} ns/span over {spans} spans; finish {:.1} ns/span",
            best / spans as f64,
            best_fin / spans as f64
        );
        return;
    }
    if std::env::var("MODE").as_deref() == Ok("stages") {
        // Attribution mode: serve plain and telemetered with the stage
        // profiler on and print where the extra host time books. Whatever
        // the per-stage probes do not cover (the report epilogue — series
        // assembly, SLO evaluation) shows up in the wall-minus-stages line.
        use tm_overlay::runtime::obs::Stage;
        let window_us: f64 = std::env::var("WINDOW_US")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(2.6);
        let requests = trace(1024, 0.02);
        let mut sides = [
            Runtime::new(FuVariant::V4, 64)
                .unwrap()
                .with_policy(DispatchPolicy::KernelAffinity)
                .with_profiling(true),
            Runtime::new(FuVariant::V4, 64)
                .unwrap()
                .with_policy(DispatchPolicy::KernelAffinity)
                .with_profiling(true)
                .with_telemetry(TelemetryConfig::windowed(window_us))
                .with_slo(
                    SloConfig::disabled()
                        .with_objective(SloObjective::new(SloClass::Standard, 0.05)),
                ),
        ];
        let mut stage_best = [[f64::INFINITY; 2]; 6];
        let mut wall_best = [f64::INFINITY; 2];
        for rep in 0..=reps {
            for (slot, runtime) in sides.iter_mut().enumerate() {
                let copy = requests.to_vec();
                let start = Instant::now();
                let report = runtime.serve(copy).unwrap();
                let wall = start.elapsed().as_nanos() as f64;
                if rep == 0 {
                    continue;
                }
                let profile = report.profile().expect("profiling is on");
                let mut covered = 0u64;
                for (row, stage) in Stage::ALL.iter().enumerate() {
                    let ns = profile.nanos(*stage);
                    covered += ns;
                    stage_best[row][slot] = stage_best[row][slot].min(ns as f64);
                }
                stage_best[5][slot] = stage_best[5][slot].min(wall - covered as f64);
                wall_best[slot] = wall_best[slot].min(wall);
            }
        }
        println!(
            "stage attribution at window {window_us} us (best-of-{reps} ns, plain vs telemetered):"
        );
        let labels = [
            "scan",
            "route",
            "sim",
            "memo",
            "bookkeeping",
            "wall-minus-stages",
        ];
        for (row, label) in labels.iter().enumerate() {
            println!(
                "  {label:>18}: {:>9.0} -> {:>9.0}  ({:>+8.0})",
                stage_best[row][0],
                stage_best[row][1],
                stage_best[row][1] - stage_best[row][0]
            );
        }
        println!(
            "  {:>18}: {:>9.0} -> {:>9.0}  ({:>+8.0})",
            "wall",
            wall_best[0],
            wall_best[1],
            wall_best[1] - wall_best[0]
        );
        return;
    }
    let requests = trace(1024, 0.02);
    let mut plain = Runtime::new(FuVariant::V4, 64)
        .unwrap()
        .with_policy(DispatchPolicy::KernelAffinity);
    // MODE=null measures the noise floor: the "traced" slot is a second
    // identical untraced runtime, so any reported overhead is pure
    // environment/methodology noise. MODE=telemetry points the probe at
    // the windowed time-series hooks instead of the trace recorder.
    let mode = std::env::var("MODE").unwrap_or_default();
    let mut traced = Runtime::new(FuVariant::V4, 64)
        .unwrap()
        .with_policy(DispatchPolicy::KernelAffinity);
    traced = match mode.as_str() {
        "null" => traced.with_tracing(TraceConfig::disabled()),
        "telemetry" => {
            let window_us: f64 = std::env::var("WINDOW_US")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(2.6);
            let slo = if std::env::var("SLO").as_deref() == Ok("0") {
                SloConfig::disabled()
            } else {
                SloConfig::disabled().with_objective(SloObjective::new(SloClass::Standard, 0.05))
            };
            traced
                .with_telemetry(TelemetryConfig::windowed(window_us))
                .with_slo(slo)
        }
        _ => traced.with_tracing(TraceConfig::with_capacity(cap)),
    };
    let mut best = [f64::INFINITY; 2];
    let mut ratios = Vec::new();
    for rep in 0..=reps {
        let mut pair = [0.0f64; 2];
        let order: [(usize, &mut Runtime); 2] = if rep % 2 == 0 {
            [(0, &mut plain), (1, &mut traced)]
        } else {
            [(1, &mut traced), (0, &mut plain)]
        };
        for (slot, runtime) in order {
            let copy = requests.to_vec();
            let start = Instant::now();
            let report = runtime.serve(copy).unwrap();
            let ns = start.elapsed().as_nanos() as f64;
            assert_eq!(report.metrics().requests, 1024);
            if rep == 0 && slot == 1 {
                if let Some(t) = report.trace() {
                    eprintln!(
                        "spans/serve: {} (+{} dropped)",
                        t.events().len(),
                        t.dropped()
                    );
                }
            }
            pair[slot] = ns;
            if rep > 0 && ns < best[slot] {
                best[slot] = ns;
            }
        }
        if rep > 0 {
            ratios.push(pair[1] / pair[0]);
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let events = 2048.0;
    println!(
        "cap {cap}: untraced {:.0} ns/event, traced {:.0} ns/event; overhead best-of +{:.1}%, paired median +{:.1}%, paired min +{:.1}%",
        best[0] / events,
        best[1] / events,
        (best[1] / best[0] - 1.0) * 100.0,
        (ratios[ratios.len() / 2] - 1.0) * 100.0,
        (ratios[0] - 1.0) * 100.0
    );
}
