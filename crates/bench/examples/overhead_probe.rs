//! Tracing-overhead probe: a focused harness for attributing the host-time
//! cost of request-span tracing, finer-grained than the sweep-level figure
//! `runtime_scalability` reports.
//!
//! Default mode interleaves traced and untraced serves of a saturating
//! 1024-request trace (alternating which side goes first each rep) and
//! reports three estimators: best-of-reps per side, the median of per-rep
//! traced/untraced ratios (drift-robust: adjacent serves share host
//! conditions), and the minimum ratio (a sanity bound — if it goes
//! negative, single-rep noise exceeds the effect being measured).
//!
//! Env knobs:
//! * `CAP=<n>`    — trace ring capacity (default 65536). Shrinking it
//!   isolates capture cost from retention/drain cost.
//! * `REPS=<n>`   — timed reps (default 9; use 40+ on shared hosts).
//! * `MODE=ring`  — micro-mode: raw `record`/`finish` ns/span into a warm
//!   recorder, no serve around it (the mechanistic floor).
//! * `MODE=null`  — control: the "traced" slot is a second untraced
//!   runtime, so the reported overhead is the methodology's noise floor.
use std::time::Instant;
use tm_overlay::{DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, TraceConfig, Workload};

fn trace(count: usize, spacing_us: f64) -> Vec<Request> {
    let spec = KernelSpec::from_source(
        "grad",
        "kernel grad(a, b, c, d, e) { out g = a * b + c * d + e; }",
    );
    (0..count)
        .map(|i| {
            let workload = Workload::random(5, 2, (i % 8) as u64);
            Request::new(i as u64, spec.clone(), workload).at(i as f64 * spacing_us)
        })
        .collect()
}

fn main() {
    let cap: usize = std::env::var("CAP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(65_536);
    let reps: usize = std::env::var("REPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(9);
    if std::env::var("MODE").as_deref() == Ok("ring") {
        // Raw capture cost: serve-shaped span batches into a warm recorder.
        use tm_overlay::runtime::obs::{SpanKind, TraceEvent, TraceRecorder};
        let mut recorder = TraceRecorder::new(TraceConfig::with_capacity(cap));
        let spans = 6 * 1024;
        let mut best = f64::INFINITY;
        let mut best_fin = f64::INFINITY;
        for rep in 0..=reps {
            let start = Instant::now();
            for i in 0..1024u64 {
                let t = i as f64 * 0.02;
                for (dur, kind) in [
                    (0.0, SpanKind::Submit),
                    (0.0, SpanKind::Admission { admitted: true }),
                    (1.0, SpanKind::QueueWait),
                    (0.1, SpanKind::ContextSwitch),
                    (2.0, SpanKind::Run),
                    (0.0, SpanKind::Commit),
                ] {
                    recorder.record(TraceEvent {
                        time_us: t,
                        dur_us: dur,
                        request_id: Some(i),
                        device: 0,
                        tile: Some((i % 64) as usize),
                        kind,
                    });
                }
            }
            let ns = start.elapsed().as_nanos() as f64;
            let fin = Instant::now();
            let trace = recorder.finish().unwrap();
            let fin_ns = fin.elapsed().as_nanos() as f64;
            assert!(trace.dropped() + trace.events().len() as u64 == spans);
            if rep > 0 {
                best = best.min(ns);
                best_fin = best_fin.min(fin_ns);
            }
        }
        println!(
            "ring capture: {:.1} ns/span over {spans} spans; finish {:.1} ns/span",
            best / spans as f64,
            best_fin / spans as f64
        );
        return;
    }
    let requests = trace(1024, 0.02);
    let mut plain = Runtime::new(FuVariant::V4, 64)
        .unwrap()
        .with_policy(DispatchPolicy::KernelAffinity);
    // MODE=null measures the noise floor: the "traced" slot is a second
    // identical untraced runtime, so any reported overhead is pure
    // environment/methodology noise.
    let mut traced = Runtime::new(FuVariant::V4, 64)
        .unwrap()
        .with_policy(DispatchPolicy::KernelAffinity)
        .with_tracing(if std::env::var("MODE").as_deref() == Ok("null") {
            TraceConfig::disabled()
        } else {
            TraceConfig::with_capacity(cap)
        });
    let mut best = [f64::INFINITY; 2];
    let mut ratios = Vec::new();
    for rep in 0..=reps {
        let mut pair = [0.0f64; 2];
        let order: [(usize, &mut Runtime); 2] = if rep % 2 == 0 {
            [(0, &mut plain), (1, &mut traced)]
        } else {
            [(1, &mut traced), (0, &mut plain)]
        };
        for (slot, runtime) in order {
            let copy = requests.to_vec();
            let start = Instant::now();
            let report = runtime.serve(copy).unwrap();
            let ns = start.elapsed().as_nanos() as f64;
            assert_eq!(report.metrics().requests, 1024);
            if rep == 0 && slot == 1 {
                if let Some(t) = report.trace() {
                    eprintln!(
                        "spans/serve: {} (+{} dropped)",
                        t.events().len(),
                        t.dropped()
                    );
                }
            }
            pair[slot] = ns;
            if rep > 0 && ns < best[slot] {
                best[slot] = ns;
            }
        }
        if rep > 0 {
            ratios.push(pair[1] / pair[0]);
        }
    }
    ratios.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let events = 2048.0;
    println!(
        "cap {cap}: untraced {:.0} ns/event, traced {:.0} ns/event; overhead best-of +{:.1}%, paired median +{:.1}%, paired min +{:.1}%",
        best[0] / events,
        best[1] / events,
        (best[1] / best[0] - 1.0) * 100.0,
        (ratios[ratios.len() / 2] - 1.0) * 100.0,
        (ratios[0] - 1.0) * 100.0
    );
}
