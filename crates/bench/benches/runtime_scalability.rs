//! Tiles × load scalability bench for the online serving runtime — the
//! "fig5-style" sweep for the *host-side* event loop.
//!
//! For every (tiles, load, policy) corner the same trace is served twice:
//!
//! * **indexed** — the current hot path: the trace is served by value
//!   (no ingest channel, no per-request clone), placement answers from the
//!   pool's residency index, queues pop from per-tile ordered structures,
//!   and repeated (kernel, workload) simulations come from the memo;
//! * **linear** — the pre-index runtime, reproduced faithfully: the trace
//!   streams through the bounded ingest channel with one deep `Request`
//!   clone per submission (what the old `serve` shim did),
//!   `ScanMode::LinearReference` restores the O(tiles) placement scan, the
//!   O(depth) queue scan-and-remove and the O(tiles) `total_waiting`
//!   recomputation per event, and the simulation memo is disabled so every
//!   request simulates.
//!
//! Both sides produce identical modeled results (the scan-mode half of that
//! claim is proved by `tests/runtime_equivalence.rs`); what differs is the
//! host nanoseconds per event, which is exactly what this bench records.
//!
//! Output: a human-readable table on stdout and a machine-readable
//! `BENCH_runtime.json` at the repository root (modeled req/s, host ns/event,
//! host events/s, indexed-vs-linear speedup per corner) to seed the
//! performance trajectory across PRs.
//!
//! Environment:
//! * `BENCH_FAST=1` — CI mode: fewer requests and repetitions (same grid).
//! * `BENCH_RUNTIME_OUT=path` — override the JSON output path.

use std::fmt::Write as _;
use std::time::Instant;

use tm_overlay::{
    Benchmark, DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, ScanMode, SloClass,
    SloConfig, SloObjective, TelemetryConfig, TraceConfig, Workload,
};

const TILE_COUNTS: [usize; 4] = [4, 16, 64, 256];
const LOADS: [(&str, f64); 2] = [("light", 0.5), ("overload", 2.0)];
const VARIANT: FuVariant = FuVariant::V4;

struct Corner {
    tiles: usize,
    load: &'static str,
    policy: DispatchPolicy,
    requests: usize,
    events: u64,
    modeled_req_per_sec: f64,
    indexed_ns_per_event: f64,
    linear_ns_per_event: f64,
    /// The indexed hot path rerun with span tracing enabled — the
    /// observability overhead the acceptance bound caps at 5%.
    traced_ns_per_event: f64,
    /// The indexed hot path rerun with windowed telemetry and an SLO
    /// objective enabled — the continuous-telemetry overhead, capped by
    /// the same 5% bound.
    telemetry_ns_per_event: f64,
}

impl Corner {
    fn speedup(&self) -> f64 {
        self.linear_ns_per_event / self.indexed_ns_per_event
    }

    fn indexed_events_per_sec(&self) -> f64 {
        1.0e9 / self.indexed_ns_per_event
    }

    fn linear_events_per_sec(&self) -> f64 {
        1.0e9 / self.linear_ns_per_event
    }
}

/// A multi-tenant deadline-carrying trace: `count` requests cycling through
/// four kernels, each streaming 16 invocation records (the workload size the
/// crate's examples and throughput bench use) drawn from a small per-kernel
/// pool — so the sim memo engages, as a steady-state serving system would
/// see — arriving every `spacing_us`.
fn trace(count: usize, spacing_us: f64, budget_us: f64) -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Qspline,
        Benchmark::Poly5,
    ];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    (0..count)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, 16, (i % 8) as u64);
            let arrival = i as f64 * spacing_us;
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival)
                .with_deadline(arrival + budget_us)
        })
        .collect()
}

/// Serves `requests` `reps` times on one runtime (after a warm-up serve
/// that fills the compile cache — and, on the indexed side, the sim memo),
/// returning the best per-event wall time, the event count and the modeled
/// request rate.
fn measure(
    tiles: usize,
    policy: DispatchPolicy,
    scan: ScanMode,
    requests: &[Request],
    reps: usize,
) -> (f64, u64, f64) {
    let mut runtime = Runtime::new(VARIANT, tiles)
        .unwrap()
        .with_policy(policy)
        .with_scan_mode(scan);
    if scan == ScanMode::LinearReference {
        // The pre-index runtime had no simulation memo.
        runtime = runtime.with_sim_memo_capacity(0);
    }
    let mut best_ns = f64::INFINITY;
    let mut events = 0u64;
    let mut modeled = 0.0f64;
    for rep in 0..=reps {
        let report = match scan {
            // The current hot path: batch serve, trace by value.
            ScanMode::Indexed => {
                let copy = requests.to_vec();
                let start = Instant::now();
                let report = runtime.serve(copy).expect("bench trace serves cleanly");
                let wall_ns = start.elapsed().as_nanos() as f64;
                if rep > 0 {
                    best_ns = best_ns.min(wall_ns);
                }
                report
            }
            // The seed-faithful baseline: stream the trace through the
            // ingest channel, deep-cloning each request on the way in,
            // exactly as the pre-index `serve` shim did.
            ScanMode::LinearReference => {
                let start = Instant::now();
                let report = runtime
                    .serve_stream(|submitter| {
                        for request in requests {
                            if submitter.submit(request.clone()).is_err() {
                                break;
                            }
                        }
                    })
                    .expect("bench trace serves cleanly");
                let wall_ns = start.elapsed().as_nanos() as f64;
                if rep > 0 {
                    best_ns = best_ns.min(wall_ns);
                }
                report
            }
        };
        events = report.metrics().events_fired;
        modeled = report.metrics().requests_per_sec;
    }
    (best_ns / events as f64, events, modeled)
}

/// Measures the indexed hot path plain, traced, and with windowed
/// telemetry + an SLO objective, as two *alternating pairs* per rep: each
/// instrument serves adjacent to its own plain control, swapping which
/// side of the pair goes first every rep. On a shared host, timing the
/// sides in separate sweeps would let clock drift between them swamp a
/// single-digit-percent overhead; adjacent-in-time pairs share host
/// conditions, and alternating the order cancels the residual
/// position-in-group effect (the first serve after a measurement
/// boundary runs colder than the second) to first order — a fixed order
/// folds that offset straight into the overhead estimate. Each overhead
/// is then the *median of per-rep ratios* (each rep's instrumented/plain
/// wall time); taking each side's minimum separately would compare minima
/// from different host moments and drift dominates again. The runtimes
/// are built once and reused across reps so the trace ring's and
/// telemetry lanes' allocations are warm, as they would be in a
/// long-running service. Returns (plain ns/event, traced ns/event,
/// telemetry ns/event, events, modeled req/s) where each instrumented
/// figure is plain × its median ratio, and asserts neither instrument
/// changed the event count.
fn measure_instrumented(
    tiles: usize,
    policy: DispatchPolicy,
    requests: &[Request],
    reps: usize,
    telemetry_window_us: f64,
    sweep_ratios: &mut [Vec<f64>; 2],
) -> (f64, f64, f64, u64, f64) {
    // The median needs a few samples to reject drift outliers, whatever
    // rep count the throughput corners use — and an even count, so the
    // pair alternation covers both orders equally.
    let reps = reps.max(6);
    let mut plain = Runtime::new(VARIANT, tiles).unwrap().with_policy(policy);
    let mut traced = Runtime::new(VARIANT, tiles)
        .unwrap()
        .with_policy(policy)
        .with_tracing(TraceConfig::enabled());
    let mut telemetered = Runtime::new(VARIANT, tiles)
        .unwrap()
        .with_policy(policy)
        .with_telemetry(TelemetryConfig::windowed(telemetry_window_us))
        .with_slo(
            SloConfig::disabled().with_objective(SloObjective::new(SloClass::Standard, 0.05)),
        );
    let mut best = f64::INFINITY;
    let mut traced_ratios = Vec::new();
    let mut telemetry_ratios = Vec::new();
    let mut events = [0u64; 3];
    let mut modeled = 0.0f64;
    for rep in 0..=reps {
        // Each instrument is timed against its own adjacent plain control,
        // with the pair order swapped every rep so the colder-first-serve
        // offset cancels instead of loading onto one side.
        let flip = rep % 2 == 1;
        for (ratios, slot) in [(&mut traced_ratios, 1usize), (&mut telemetry_ratios, 2)] {
            let mut wall = [0.0f64; 2];
            for side in 0..2 {
                let instrumented = (side == 0) == flip;
                let copy = requests.to_vec();
                let start = Instant::now();
                let report = if instrumented {
                    let runtime: &mut Runtime = if slot == 1 {
                        &mut traced
                    } else {
                        &mut telemetered
                    };
                    runtime.serve(copy).expect("bench trace serves cleanly")
                } else {
                    plain.serve(copy).expect("bench trace serves cleanly")
                };
                wall[usize::from(instrumented)] = start.elapsed().as_nanos() as f64;
                events[if instrumented { slot } else { 0 }] = report.metrics().events_fired;
                if !instrumented {
                    modeled = report.metrics().requests_per_sec;
                }
            }
            if rep > 0 {
                best = best.min(wall[0]);
                ratios.push(wall[1] / wall[0]);
            }
        }
    }
    assert_eq!(
        events[0], events[1],
        "tracing must not change the event sequence"
    );
    assert_eq!(
        events[0], events[2],
        "telemetry must not change the event sequence"
    );
    // Feed the raw per-rep ratios into the sweep-wide pools: the per-corner
    // medians below come from only a handful of millisecond-scale serves,
    // so the sweep-level acceptance figure uses the pooled median across
    // every corner's reps instead of averaging these noisy point estimates.
    sweep_ratios[0].extend_from_slice(&traced_ratios);
    sweep_ratios[1].extend_from_slice(&telemetry_ratios);
    let median = |ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        ratios[ratios.len() / 2]
    };
    let traced_ratio = median(&mut traced_ratios);
    let telemetry_ratio = median(&mut telemetry_ratios);
    (
        best / events[0] as f64,
        best * traced_ratio / events[0] as f64,
        best * telemetry_ratio / events[0] as f64,
        events[0],
        modeled,
    )
}

fn main() {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let (count, reps) = if fast { (1024, 2) } else { (4096, 3) };

    // Probe the modeled service time of one request so arrival spacing
    // tracks the timing model: offered load ρ means one arrival every
    // service/(tiles·ρ) microseconds.
    let probe = trace(1, 1.0, 1e9);
    let service_us = Runtime::new(VARIANT, 1)
        .unwrap()
        .serve(probe)
        .unwrap()
        .outcomes()[0]
        .completion_us;

    let mut corners: Vec<Corner> = Vec::new();
    // Per-rep instrumented/plain wall-time ratios pooled across the whole
    // sweep (slot 0: traced, slot 1: telemetered) — the denominators of the
    // sweep-level overhead acceptance figures.
    let mut sweep_ratios: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    println!(
        "runtime_scalability: {count} requests/serve, {reps} reps, service ~{service_us:.2} us \
         ({} mode)",
        if fast { "fast" } else { "full" }
    );
    println!(
        "{:>5} {:>9} {:>15} {:>12} {:>12} {:>9}",
        "tiles", "load", "policy", "indexed", "linear", "speedup"
    );
    for &tiles in &TILE_COUNTS {
        for &(load, rho) in &LOADS {
            let spacing_us = service_us / (tiles as f64 * rho);
            let budget_us = 8.0 * service_us;
            let requests = trace(count, spacing_us, budget_us);
            for policy in DispatchPolicy::ALL {
                // Telemetry windows sized like the serving benches use
                // them: a few service times per window.
                let (indexed_ns, traced_ns, telemetry_ns, events, modeled) = measure_instrumented(
                    tiles,
                    policy,
                    &requests,
                    reps,
                    4.0 * service_us,
                    &mut sweep_ratios,
                );
                let (linear_ns, linear_events, _) =
                    measure(tiles, policy, ScanMode::LinearReference, &requests, reps);
                assert_eq!(
                    events, linear_events,
                    "both modes must fire identical event sequences"
                );
                let corner = Corner {
                    tiles,
                    load,
                    policy,
                    requests: count,
                    events,
                    modeled_req_per_sec: modeled,
                    indexed_ns_per_event: indexed_ns,
                    linear_ns_per_event: linear_ns,
                    traced_ns_per_event: traced_ns,
                    telemetry_ns_per_event: telemetry_ns,
                };
                println!(
                    "{:>5} {:>9} {:>15} {:>9.0} ns {:>9.0} ns {:>8.1}x",
                    tiles,
                    load,
                    policy.to_string(),
                    corner.indexed_ns_per_event,
                    corner.linear_ns_per_event,
                    corner.speedup()
                );
                corners.push(corner);
            }
        }
    }

    // Two acceptance figures at the largest pool:
    //
    // * `min_speedup` — the slowest end-to-end corner ratio over the
    //   earliest-completion policies (everything the serve does, including
    //   costs both modes share);
    // * `scan_speedup` — the *dispatcher-attributable* ratio: round-robin
    //   placement is O(1) under both modes, so its corners measure exactly
    //   the shared machinery. Differencing each scanning policy against the
    //   round-robin control isolates what the linear placement scan cost
    //   per event vs what the residency index costs — the before/after of
    //   the indexed-dispatch change itself.
    let biggest = *TILE_COUNTS.last().unwrap();
    let at_biggest: Vec<&Corner> = corners.iter().filter(|c| c.tiles == biggest).collect();
    let min_speedup = at_biggest
        .iter()
        .filter(|c| c.policy != DispatchPolicy::RoundRobin)
        .map(|c| c.speedup())
        .fold(f64::INFINITY, f64::min);
    let control = |load: &str, pick: fn(&Corner) -> f64| {
        at_biggest
            .iter()
            .find(|c| c.load == load && c.policy == DispatchPolicy::RoundRobin)
            .map(|c| pick(c))
            .expect("round-robin control corner exists")
    };
    let (mut scan_cost_linear, mut scan_cost_indexed, mut samples) = (0.0, 0.0, 0usize);
    for corner in at_biggest
        .iter()
        .filter(|c| c.policy != DispatchPolicy::RoundRobin)
    {
        scan_cost_linear +=
            corner.linear_ns_per_event - control(corner.load, |c| c.linear_ns_per_event);
        scan_cost_indexed +=
            corner.indexed_ns_per_event - control(corner.load, |c| c.indexed_ns_per_event);
        samples += 1;
    }
    scan_cost_linear /= samples as f64;
    // The index's own marginal cost can be below the timer noise floor;
    // clamp so the ratio stays finite and conservative.
    scan_cost_indexed = (scan_cost_indexed / samples as f64).max(1.0);
    let scan_speedup = scan_cost_linear / scan_cost_indexed;
    println!(
        "at {biggest} tiles: min end-to-end speedup {min_speedup:.1}x; \
         linear placement scan costs {scan_cost_linear:.0} ns/event vs \
         {scan_cost_indexed:.0} ns/event indexed -> {scan_speedup:.1}x \
         dispatcher speedup (target >= 5x)"
    );

    // Instrumentation overhead over the whole sweep: the median of every
    // per-rep paired instrumented/plain wall-time ratio across all corners
    // — the ≤5% acceptance bound for always-on-able observability. Pooling
    // the raw ratios (instead of averaging per-corner medians) is what
    // makes the figure stable on a shared host: each corner's serves only
    // last a few milliseconds, so a scheduler hiccup during one corner can
    // swing that corner's median by several percent, but it cannot move
    // the median of a couple hundred pooled ratios.
    let pooled_median = |ratios: &mut Vec<f64>| {
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("wall times are finite"));
        ratios[ratios.len() / 2]
    };
    let [mut traced_pool, mut telemetry_pool] = sweep_ratios;
    let traced_ratio = pooled_median(&mut traced_pool);
    let telemetry_ratio = pooled_median(&mut telemetry_pool);
    let indexed_total_ns: f64 = corners
        .iter()
        .map(|c| c.indexed_ns_per_event * c.events as f64)
        .sum();
    let sweep_events: u64 = corners.iter().map(|c| c.events).sum();
    let plain_ns_per_event = indexed_total_ns / sweep_events as f64;
    let traced_total_ns = indexed_total_ns * traced_ratio;
    let overhead_pct = (traced_ratio - 1.0) * 100.0;
    println!(
        "tracing overhead over the sweep: {:.0} ns/event untraced vs {:.0} ns/event traced \
         -> {overhead_pct:+.1}% (pooled median of {} paired reps, target <= 5%)",
        plain_ns_per_event,
        plain_ns_per_event * traced_ratio,
        traced_pool.len(),
    );

    // Continuous-telemetry overhead, same pooled-median shape: windowed
    // series + SLO tracking enabled vs the plain indexed path.
    let telemetry_total_ns = indexed_total_ns * telemetry_ratio;
    let telemetry_overhead_pct = (telemetry_ratio - 1.0) * 100.0;
    println!(
        "telemetry overhead over the sweep: {:.0} ns/event plain vs {:.0} ns/event with \
         windowed telemetry + SLO -> {telemetry_overhead_pct:+.1}% (pooled median of {} \
         paired reps, target <= 5%)",
        plain_ns_per_event,
        plain_ns_per_event * telemetry_ratio,
        telemetry_pool.len(),
    );

    // Per-stage host-time attribution at the largest pool: one profiled
    // serve per load with the default policy, feeding the `profile` section.
    let mut profiles = Vec::new();
    for &(load, rho) in &LOADS {
        let spacing_us = service_us / (biggest as f64 * rho);
        let requests = trace(count, spacing_us, 8.0 * service_us);
        let mut runtime = Runtime::new(VARIANT, biggest)
            .unwrap()
            .with_policy(DispatchPolicy::KernelAffinity)
            .with_profiling(true);
        runtime.serve(requests.clone()).expect("warm-up serve");
        let report = runtime.serve(requests).expect("profiled serve");
        let events = report.metrics().events_fired;
        let stats = report.profile().expect("profiling was on").clone();
        println!("{load:>9} @ {biggest} tiles: {stats}");
        profiles.push((load, events, stats));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"runtime_scalability\",");
    let _ = writeln!(json, "  \"schema\": {},", overlay_bench::BENCH_JSON_SCHEMA);
    let _ = writeln!(json, "  {},", overlay_bench::provenance_json_fields());
    let _ = writeln!(json, "  \"variant\": \"{VARIANT}\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"requests_per_serve\": {count},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"modeled_service_us\": {service_us:.3},");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, c) in corners.iter().enumerate() {
        let comma = if i + 1 < corners.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tiles\": {}, \"load\": \"{}\", \"policy\": \"{}\", \"requests\": {}, \
             \"events\": {}, \"modeled_req_per_sec\": {:.0}, \
             \"indexed_ns_per_event\": {:.1}, \"linear_ns_per_event\": {:.1}, \
             \"traced_ns_per_event\": {:.1}, \"telemetry_ns_per_event\": {:.1}, \
             \"indexed_events_per_sec\": {:.0}, \"linear_events_per_sec\": {:.0}, \
             \"speedup\": {:.2}}}{}",
            c.tiles,
            c.load,
            c.policy,
            c.requests,
            c.events,
            c.modeled_req_per_sec,
            c.indexed_ns_per_event,
            c.linear_ns_per_event,
            c.traced_ns_per_event,
            c.telemetry_ns_per_event,
            c.indexed_events_per_sec(),
            c.linear_events_per_sec(),
            c.speedup(),
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"tiles\": {biggest}, \"min_end_to_end_speedup\": \
         {min_speedup:.2}, \"scan_ns_per_event_linear\": {scan_cost_linear:.1}, \
         \"scan_ns_per_event_indexed\": {scan_cost_indexed:.1}, \
         \"dispatcher_speedup\": {scan_speedup:.2}, \"target\": 5.0, \"pass\": {}}}",
        scan_speedup >= 5.0
    );
    json.push_str("}\n");

    // The profile section: per-stage host-time attribution plus the
    // tracing-overhead acceptance, spliced alongside the sweep's section.
    let mut profile_json = String::new();
    profile_json.push_str("{\n");
    let _ = writeln!(profile_json, "  \"bench\": \"profile\",");
    let _ = writeln!(
        profile_json,
        "  \"schema\": {},",
        overlay_bench::BENCH_JSON_SCHEMA
    );
    let _ = writeln!(
        profile_json,
        "  {},",
        overlay_bench::provenance_json_fields()
    );
    let _ = writeln!(profile_json, "  \"variant\": \"{VARIANT}\",");
    let _ = writeln!(profile_json, "  \"fast_mode\": {fast},");
    let _ = writeln!(profile_json, "  \"tiles\": {biggest},");
    let _ = writeln!(
        profile_json,
        "  \"tracing_overhead\": {{\"indexed_total_ns\": {indexed_total_ns:.0}, \
         \"traced_total_ns\": {traced_total_ns:.0}, \"overhead_pct\": {overhead_pct:.2}, \
         \"target_pct\": 5.0, \"pass\": {}}},",
        overhead_pct <= 5.0
    );
    let _ = writeln!(
        profile_json,
        "  \"telemetry_overhead\": {{\"indexed_total_ns\": {indexed_total_ns:.0}, \
         \"telemetry_total_ns\": {telemetry_total_ns:.0}, \
         \"overhead_pct\": {telemetry_overhead_pct:.2}, \
         \"target_pct\": 5.0, \"pass\": {}}},",
        telemetry_overhead_pct <= 5.0
    );
    let _ = writeln!(profile_json, "  \"entries\": [");
    for (i, (load, events, stats)) in profiles.iter().enumerate() {
        let total_ns = stats.total_nanos().max(1) as f64;
        let stages: Vec<String> = stats
            .rows()
            .iter()
            .map(|(stage, nanos, probes)| {
                format!(
                    "{{\"stage\": \"{}\", \"total_ns\": {nanos}, \"probes\": {probes}, \
                     \"ns_per_probe\": {:.1}, \"ns_per_event\": {:.1}, \"share_pct\": {:.1}}}",
                    stage.label(),
                    stats.ns_per_probe(*stage),
                    *nanos as f64 / *events as f64,
                    *nanos as f64 / total_ns * 100.0
                )
            })
            .collect();
        let comma = if i + 1 < profiles.len() { "," } else { "" };
        let _ = writeln!(
            profile_json,
            "    {{\"load\": \"{load}\", \"policy\": \"kernel-affinity\", \"events\": {events}, \
             \"stages\": [{}]}}{comma}",
            stages.join(", ")
        );
    }
    profile_json.push_str("  ]\n}\n");

    let path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").into()
    });
    // BENCH_runtime.json holds one section per bench; keep the other
    // sections (if any) while replacing this one and the profile section.
    let existing = std::fs::read_to_string(&path).ok();
    let combined =
        overlay_bench::splice_bench_json(existing.as_deref(), "runtime_scalability", &json)
            .expect("BENCH_runtime.json section stays schema-compatible");
    let combined = overlay_bench::splice_bench_json(Some(&combined), "profile", &profile_json)
        .expect("BENCH_runtime.json profile section stays schema-compatible");
    std::fs::write(&path, combined).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
