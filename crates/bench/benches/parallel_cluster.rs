//! Host-thread sweep for the sharded cluster event loop — the parallel
//! companion to `cluster_scalability`'s single-threaded device sweep.
//!
//! Serves one overload trace (offered load ρ = 2 against the corner's total
//! tile count) on an 8-device cluster under statically-sharded
//! `kernel-hash` routing — the shape where
//! [`tm_overlay::Cluster::with_threads`] engages the per-device-lane loop —
//! at host-thread budgets 1, 2 and 4, and records:
//!
//! * **host ns/event** — wall time of the cluster event loop per fired
//!   event, per thread budget. `threads = 1` takes the serial loop, so its
//!   row doubles as the baseline; the budget-2/4 rows price the sharding
//!   machinery (per-lane queues, trace rings, commit replay);
//! * **modeled ev/s** — asserted *identical* across budgets: the thread
//!   sweep must never change the modeled results, only the host wall time.
//!
//! Acceptance: `threads = 1` must stay within 10% of a default-built
//! (never-`with_threads`) cluster's host ns/event — opting into the
//! parallel API costs nothing when it falls back to the serial loop.
//! **This container is single-core**, so the budget-2/4 rows time-slice
//! one core and only price the sharding bookkeeping; the multi-core
//! target — near-linear host events/s in the thread budget up to the
//! device count — is recorded in the JSON as `multi_core_target` for
//! hosts that can measure it.
//!
//! Output: a table on stdout plus a `parallel_cluster` section spliced into
//! `BENCH_runtime.json`.
//!
//! Environment:
//! * `BENCH_FAST=1` — CI mode: fewer requests and repetitions (same grid).
//! * `BENCH_RUNTIME_OUT=path` — override the JSON output path.

use std::fmt::Write as _;
use std::time::Instant;

use tm_overlay::{
    Benchmark, Cluster, ClusterReport, FuVariant, KernelSpec, Request, RoutePolicy, Runtime,
    Workload,
};

const DEVICES: usize = 8;
const TILES_PER_DEVICE: [usize; 2] = [16, 64];
const THREADS: [usize; 3] = [1, 2, 4];
const VARIANT: FuVariant = FuVariant::V4;
/// Small per-request workloads keep the event loop (not the simulator) the
/// dominant host cost — the regime where sharding overhead is visible.
const BLOCKS: usize = 1;

struct Corner {
    tiles_per_device: usize,
    threads: usize,
    requests: usize,
    events: u64,
    makespan_us: f64,
    host_ns_per_event: f64,
}

impl Corner {
    fn modeled_events_per_sec(&self) -> f64 {
        self.events as f64 * 1.0e6 / self.makespan_us
    }

    fn host_events_per_sec(&self) -> f64 {
        1.0e9 / self.host_ns_per_event
    }
}

/// The overload trace: `count` requests cycling through six kernels (so the
/// kernel-hash shard map spreads work over all eight devices) with
/// workloads drawn from a small per-kernel pool, one arrival every
/// `spacing_us`, deadlines at `budget_us`.
fn trace(count: usize, spacing_us: f64, budget_us: f64) -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Mibench,
        Benchmark::Qspline,
        Benchmark::Poly5,
        Benchmark::Sgfilter,
    ];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    (0..count)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, BLOCKS, (i % 8) as u64);
            let arrival = i as f64 * spacing_us;
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival)
                .with_deadline(arrival + budget_us)
        })
        .collect()
}

/// Serves `requests` `reps + 1` times on a fresh-per-rep cluster (the first
/// rep is a warm-up), returning the best host wall time and the
/// (deterministic) report.
fn measure(
    tiles_per_device: usize,
    threads: Option<usize>,
    requests: &[Request],
    reps: usize,
) -> (f64, ClusterReport) {
    // `threads: None` never calls `with_threads` at all — the acceptance
    // baseline below prices the untouched serial API, not `with_threads(1)`.
    let build = || {
        let cluster = Cluster::new(VARIANT, DEVICES, tiles_per_device)
            .unwrap()
            .with_route_policy(RoutePolicy::KernelHash);
        match threads {
            Some(threads) => cluster.with_threads(threads),
            None => cluster,
        }
    };
    let mut best_ns = f64::INFINITY;
    let mut last = None;
    for rep in 0..=reps {
        let mut cluster = build();
        let warmup: Vec<Request> = requests.iter().take(8).cloned().collect();
        cluster.serve(warmup).unwrap();
        let copy = requests.to_vec();
        let start = Instant::now();
        let report = cluster.serve(copy).expect("bench trace serves cleanly");
        let wall_ns = start.elapsed().as_nanos() as f64;
        if rep > 0 {
            best_ns = best_ns.min(wall_ns);
        }
        last = Some(report);
    }
    let report = last.expect("at least one serve ran");
    (best_ns / report.metrics().events_fired as f64, report)
}

fn main() {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let (count, reps) = if fast { (1024, 2) } else { (4096, 3) };

    // Probe the modeled service time of one request on a single tile so the
    // arrival spacing tracks the timing model (ρ = 2 overload).
    let probe = trace(1, 1.0, 1e9);
    let service_us = Runtime::new(VARIANT, 1)
        .unwrap()
        .serve(probe)
        .unwrap()
        .outcomes()[0]
        .completion_us;

    let mut corners: Vec<Corner> = Vec::new();
    println!(
        "parallel_cluster: {DEVICES} devices, {count} requests/serve, {reps} reps, \
         kernel-hash routing, service ~{service_us:.3} us ({} mode)",
        if fast { "fast" } else { "full" }
    );
    println!(
        "{:>6} {:>8} {:>14} {:>11} {:>12}",
        "tiles", "threads", "modeled ev/s", "host ns/ev", "host ev/s"
    );
    for &tiles_per_device in &TILES_PER_DEVICE {
        let total = DEVICES * tiles_per_device;
        let spacing_us = service_us / (total as f64 * 2.0);
        let budget_us = 8.0 * service_us;
        let requests = trace(count, spacing_us, budget_us);
        let mut baseline_metrics = None;
        for &threads in &THREADS {
            let (host_ns, report) = measure(tiles_per_device, Some(threads), &requests, reps);
            let metrics = report.metrics().clone();
            // The thread budget must never change the modeled results.
            match &baseline_metrics {
                None => baseline_metrics = Some(metrics.clone()),
                Some(baseline) => assert_eq!(
                    baseline, &metrics,
                    "threads={threads} changed the modeled serve at {tiles_per_device} tiles"
                ),
            }
            let corner = Corner {
                tiles_per_device,
                threads,
                requests: count,
                events: metrics.events_fired,
                makespan_us: metrics.makespan_us,
                host_ns_per_event: host_ns,
            };
            println!(
                "{:>6} {:>8} {:>14.0} {:>11.0} {:>12.0}",
                tiles_per_device,
                threads,
                corner.modeled_events_per_sec(),
                corner.host_ns_per_event,
                corner.host_events_per_sec(),
            );
            corners.push(corner);
        }
    }

    // Acceptance: opting into the parallel API at threads=1 must cost
    // nothing — it falls back to the serial loop, so its ns/event must stay
    // within 10% of a cluster that never called `with_threads`. (The
    // budget-2/4 rows are informational on this single-core container;
    // multi-core hosts should see host ev/s scale near-linearly with the
    // budget up to the device count.)
    let accept_tiles = TILES_PER_DEVICE[0];
    let accept_total = DEVICES * accept_tiles;
    let accept_requests = trace(
        count,
        service_us / (accept_total as f64 * 2.0),
        8.0 * service_us,
    );
    // Measured back-to-back (not reusing the sweep's threads=1 row) so the
    // ratio compares like-for-like process state; best-of-reps damps the
    // single-core container's scheduling noise.
    let accept_reps = reps.max(3);
    let (baseline_ns, _) = measure(accept_tiles, None, &accept_requests, accept_reps);
    let (threads_one_ns, _) = measure(accept_tiles, Some(1), &accept_requests, accept_reps);
    let overhead = threads_one_ns / baseline_ns;
    println!(
        "at {DEVICES}x{accept_tiles} tiles: serial {baseline_ns:.0} ns/ev vs threads=1 \
         {threads_one_ns:.0} ns/ev -> {overhead:.2}x opt-in overhead (target <= 1.10)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"parallel_cluster\",");
    let _ = writeln!(json, "  \"schema\": {},", overlay_bench::BENCH_JSON_SCHEMA);
    let _ = writeln!(json, "  {},", overlay_bench::provenance_json_fields());
    let _ = writeln!(json, "  \"variant\": \"{VARIANT}\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"devices\": {DEVICES},");
    let _ = writeln!(json, "  \"route\": \"kernel-hash\",");
    let _ = writeln!(json, "  \"requests_per_serve\": {count},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"workload_blocks\": {BLOCKS},");
    let _ = writeln!(json, "  \"modeled_service_us\": {service_us:.3},");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, c) in corners.iter().enumerate() {
        let comma = if i + 1 < corners.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"tiles_per_device\": {}, \"threads\": {}, \"requests\": {}, \
             \"events\": {}, \"makespan_us\": {:.2}, \
             \"modeled_events_per_sec\": {:.0}, \"host_ns_per_event\": {:.1}, \
             \"host_events_per_sec\": {:.0}}}{}",
            c.tiles_per_device,
            c.threads,
            c.requests,
            c.events,
            c.makespan_us,
            c.modeled_events_per_sec(),
            c.host_ns_per_event,
            c.host_events_per_sec(),
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"tiles_per_device\": {accept_tiles}, \
         \"serial_ns_per_event\": {baseline_ns:.1}, \"threads1_ns_per_event\": {:.1}, \
         \"opt_in_overhead_ratio\": {overhead:.2}, \"target\": 1.10, \
         \"pass\": {}, \
         \"multi_core_target\": \"near-linear host events/s in the thread budget up to {DEVICES} devices\"}}",
        threads_one_ns,
        overhead <= 1.10
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").into()
    });
    let existing = std::fs::read_to_string(&path).ok();
    let combined = overlay_bench::splice_bench_json(existing.as_deref(), "parallel_cluster", &json)
        .expect("BENCH_runtime.json section stays schema-compatible");
    std::fs::write(&path, combined).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
