//! Context-switch bench: the reconfiguration/configuration-load model over
//! the benchmark suite (Sec. V comparison).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::arch::{FuVariant, OverlayConfig, ReconfigModel};
use tm_overlay::frontend::Benchmark;
use tm_overlay::Compiler;

fn bench_context_switch(c: &mut Criterion) {
    let model = ReconfigModel::new();
    let compiled: Vec<_> = Benchmark::TABLE3
        .iter()
        .map(|&b| {
            (
                Compiler::new(FuVariant::V1).compile_benchmark(b).unwrap(),
                Compiler::new(FuVariant::V3).compile_benchmark(b).unwrap(),
            )
        })
        .collect();
    c.bench_function("context_switch/model_all_benchmarks", |b| {
        b.iter(|| {
            for (v1, v3) in &compiled {
                let full = model.full_switch(
                    &OverlayConfig::new(FuVariant::V1, v1.num_fus()).unwrap(),
                    v1.program.config_bits(),
                );
                let reload = model.program_only_switch(FuVariant::V3, v3.program.config_bits());
                black_box(reload.speedup_over(&full));
            }
        })
    });
    c.bench_function("context_switch/render", |b| {
        b.iter(|| black_box(overlay_bench::context_switch()))
    });
}

criterion_group!(benches, bench_context_switch);
criterion_main!(benches);
