//! Table II bench: building the pipelined cycle-by-cycle schedule of the
//! 'gradient' kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::frontend::Benchmark;
use tm_overlay::scheduler::{asap_schedule, schedule_table};

fn bench_table2(c: &mut Criterion) {
    let dfg = Benchmark::Gradient.dfg().unwrap();
    c.bench_function("table2/gradient_asap_schedule", |b| {
        b.iter(|| black_box(asap_schedule(&dfg).unwrap()))
    });
    let schedule = asap_schedule(&dfg).unwrap();
    c.bench_function("table2/gradient_cycle_table_32", |b| {
        b.iter(|| black_box(schedule_table(&dfg, &schedule, 6, 6, 32)))
    });
    c.bench_function("table2/render", |b| {
        b.iter(|| black_box(overlay_bench::table2()))
    });
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
