//! Tool-flow benches: front-end, scheduling and instruction generation
//! throughput (the "fast compilation" motivation of overlays).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::arch::FuVariant;
use tm_overlay::frontend::{compile_kernel, Benchmark};
use tm_overlay::Compiler;

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile/frontend_gradient", |b| {
        let source = Benchmark::Gradient.source().unwrap();
        b.iter(|| black_box(compile_kernel(source).unwrap()))
    });

    let mut group = c.benchmark_group("compile/full_pipeline");
    for benchmark in [Benchmark::Gradient, Benchmark::Qspline, Benchmark::Poly6] {
        for variant in [FuVariant::V1, FuVariant::V3] {
            group.bench_function(format!("{benchmark}/{variant}"), |b| {
                let compiler = Compiler::new(variant);
                b.iter(|| black_box(compiler.compile_benchmark(benchmark).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compile);
criterion_main!(benches);
