//! Fig. 6 bench: compile + simulate every benchmark on every variant and
//! derive throughput/latency.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::arch::FuVariant;
use tm_overlay::compare_variants;
use tm_overlay::frontend::Benchmark;

fn bench_fig6(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    for benchmark in [Benchmark::Chebyshev, Benchmark::Qspline, Benchmark::Poly7] {
        let dfg = benchmark.dfg().unwrap();
        group.bench_function(format!("compare_variants/{benchmark}"), |b| {
            b.iter(|| black_box(compare_variants(&dfg, &FuVariant::EVALUATED, 16, 1).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
