//! Devices × tiles-per-device × routing-policy sweep for the cluster tier —
//! the scale-out companion to `runtime_scalability`'s single-pool sweep.
//!
//! Every corner serves the same overload trace (offered load ρ = 2 against
//! the corner's total tile count) through a [`tm_overlay::Cluster`] and
//! records:
//!
//! * **modeled end-to-end events/s** — events fired per second of *modeled*
//!   serving time (`events / makespan`): the cluster's serving throughput.
//!   Splitting one big row-NoC into several devices shortens every
//!   request's ingress↔tile round trip (a 1×64 torus row costs ~66 cycles
//!   per round trip regardless of tile; 4 separate 1×16 rows cost ~18), so
//!   sharding at fixed total tiles genuinely serves faster end to end —
//!   that is the acceptance figure below;
//! * **host ns/event** — wall time of the (single-threaded) cluster event
//!   loop per fired event, the host-side scalability check across device
//!   counts;
//! * deadline miss rate, context switches and inter-device transfer traffic
//!   per corner, exposing the routing-policy trade-offs at scale.
//!
//! Acceptance: at 256 total tiles under the overload trace, 4 devices × 64
//! tiles must reach ≥ 2× the modeled end-to-end events/s of 1 device × 256
//! tiles (least-loaded routing on both sides, so shard imbalance does not
//! mask the interconnect effect — on one device every routing policy is
//! identical anyway).
//!
//! Output: a table on stdout plus a `cluster_scalability` section spliced
//! into `BENCH_runtime.json` next to the PR 3 `runtime_scalability` sweep.
//!
//! Environment:
//! * `BENCH_FAST=1` — CI mode: fewer requests and repetitions (same grid).
//! * `BENCH_RUNTIME_OUT=path` — override the JSON output path.

use std::fmt::Write as _;
use std::time::Instant;

use tm_overlay::{
    Benchmark, Cluster, ClusterReport, FuVariant, KernelSpec, Request, RoutePolicy, Runtime,
    Workload,
};

const DEVICE_COUNTS: [usize; 4] = [1, 2, 4, 8];
const TILES_PER_DEVICE: [usize; 3] = [16, 64, 256];
const VARIANT: FuVariant = FuVariant::V4;
/// Small per-request workloads keep the NoC round trip a first-order cost,
/// which is exactly the regime where device count matters at fixed tiles.
const BLOCKS: usize = 1;

struct Corner {
    devices: usize,
    tiles_per_device: usize,
    route: RoutePolicy,
    requests: usize,
    events: u64,
    makespan_us: f64,
    host_ns_per_event: f64,
    miss_rate: f64,
    switches: usize,
    transfers: usize,
    transfer_bytes: u64,
}

impl Corner {
    fn total_tiles(&self) -> usize {
        self.devices * self.tiles_per_device
    }

    /// Events fired per second of modeled serving time — the end-to-end
    /// throughput of the modeled cluster.
    fn modeled_events_per_sec(&self) -> f64 {
        self.events as f64 * 1.0e6 / self.makespan_us
    }

    fn host_events_per_sec(&self) -> f64 {
        1.0e9 / self.host_ns_per_event
    }
}

/// The overload trace: `count` requests cycling through the suite's two
/// lightest kernels (so the NoC round trip stays a first-order share of the
/// service time) with workloads drawn from a small per-kernel pool (the sim
/// memo engages), one arrival every `spacing_us`, deadlines at `budget_us`.
fn trace(count: usize, spacing_us: f64, budget_us: f64) -> Vec<Request> {
    let suite = [Benchmark::Gradient, Benchmark::Chebyshev];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    (0..count)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, BLOCKS, (i % 8) as u64);
            let arrival = i as f64 * spacing_us;
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival)
                .with_deadline(arrival + budget_us)
        })
        .collect()
}

/// Serves `requests` `reps + 1` times on a fresh-per-rep cluster (the first
/// serve warms the compile caches of a throwaway instance), returning the
/// best host wall time and the (deterministic) report.
fn measure(
    devices: usize,
    tiles_per_device: usize,
    route: RoutePolicy,
    requests: &[Request],
    reps: usize,
) -> (f64, ClusterReport) {
    let build = || {
        Cluster::new(VARIANT, devices, tiles_per_device)
            .unwrap()
            .with_route_policy(route)
    };
    let mut best_ns = f64::INFINITY;
    let mut last = None;
    for rep in 0..=reps {
        // A fresh cluster per rep: acquisition decisions depend on the
        // kernel stores, so reuse would change the modeled results between
        // reps. Compile time is excluded by serving a tiny warm-up trace
        // first on the same instance.
        let mut cluster = build();
        let warmup: Vec<Request> = requests.iter().take(8).cloned().collect();
        cluster.serve(warmup).unwrap();
        let copy = requests.to_vec();
        let start = Instant::now();
        let report = cluster.serve(copy).expect("bench trace serves cleanly");
        let wall_ns = start.elapsed().as_nanos() as f64;
        if rep > 0 {
            best_ns = best_ns.min(wall_ns);
        }
        last = Some(report);
    }
    let report = last.expect("at least one serve ran");
    (best_ns / report.metrics().events_fired as f64, report)
}

fn main() {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let (count, reps) = if fast { (1024, 1) } else { (4096, 2) };

    // Probe the modeled service time of one request on a single tile so the
    // arrival spacing tracks the timing model: overload means one arrival
    // every service/(total_tiles · 2) microseconds.
    let probe = trace(1, 1.0, 1e9);
    let service_us = Runtime::new(VARIANT, 1)
        .unwrap()
        .serve(probe)
        .unwrap()
        .outcomes()[0]
        .completion_us;

    let mut corners: Vec<Corner> = Vec::new();
    println!(
        "cluster_scalability: {count} requests/serve, {reps} reps, {BLOCKS}-block workloads, \
         service ~{service_us:.3} us ({} mode)",
        if fast { "fast" } else { "full" }
    );
    println!(
        "{:>4} {:>6} {:>6} {:>13} {:>14} {:>11} {:>7} {:>9} {:>9}",
        "dev",
        "tiles",
        "total",
        "routing",
        "modeled ev/s",
        "host ns/ev",
        "miss%",
        "switches",
        "transfers"
    );
    for &tiles_per_device in &TILES_PER_DEVICE {
        for &devices in &DEVICE_COUNTS {
            let total = devices * tiles_per_device;
            let spacing_us = service_us / (total as f64 * 2.0);
            let budget_us = 8.0 * service_us;
            let requests = trace(count, spacing_us, budget_us);
            for route in RoutePolicy::ALL {
                let (host_ns, report) = measure(devices, tiles_per_device, route, &requests, reps);
                let metrics = report.metrics();
                let corner = Corner {
                    devices,
                    tiles_per_device,
                    route,
                    requests: count,
                    events: metrics.events_fired,
                    makespan_us: metrics.makespan_us,
                    host_ns_per_event: host_ns,
                    miss_rate: metrics.deadline_miss_rate(),
                    switches: metrics.switch_count,
                    transfers: report.transfers(),
                    transfer_bytes: report.transfer_bytes(),
                };
                println!(
                    "{:>4} {:>6} {:>6} {:>13} {:>14.0} {:>11.0} {:>6.0}% {:>9} {:>9}",
                    devices,
                    tiles_per_device,
                    total,
                    route.to_string(),
                    corner.modeled_events_per_sec(),
                    corner.host_ns_per_event,
                    corner.miss_rate * 100.0,
                    corner.switches,
                    corner.transfers,
                );
                corners.push(corner);
            }
        }
    }

    // Acceptance: sharding one 256-tile row into 4 × 64-tile devices must
    // at least double the modeled end-to-end event throughput on the same
    // overload trace (least-loaded routing on both sides).
    let pick = |devices: usize, tiles_per_device: usize| {
        corners
            .iter()
            .find(|c| {
                c.devices == devices
                    && c.tiles_per_device == tiles_per_device
                    && c.route == RoutePolicy::LeastLoaded
            })
            .expect("acceptance corner exists")
    };
    let single = pick(1, 256);
    let quad = pick(4, 64);
    assert_eq!(single.total_tiles(), quad.total_tiles());
    let ratio = quad.modeled_events_per_sec() / single.modeled_events_per_sec();
    println!(
        "at 256 total tiles (overload, least-loaded): 1x256 {:.0} ev/s vs 4x64 {:.0} ev/s \
         -> {:.2}x end-to-end (target >= 2x)",
        single.modeled_events_per_sec(),
        quad.modeled_events_per_sec(),
        ratio
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"cluster_scalability\",");
    let _ = writeln!(json, "  \"schema\": {},", overlay_bench::BENCH_JSON_SCHEMA);
    let _ = writeln!(json, "  {},", overlay_bench::provenance_json_fields());
    let _ = writeln!(json, "  \"variant\": \"{VARIANT}\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"requests_per_serve\": {count},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"workload_blocks\": {BLOCKS},");
    let _ = writeln!(json, "  \"modeled_service_us\": {service_us:.3},");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, c) in corners.iter().enumerate() {
        let comma = if i + 1 < corners.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"devices\": {}, \"tiles_per_device\": {}, \"total_tiles\": {}, \
             \"route\": \"{}\", \"requests\": {}, \"events\": {}, \
             \"makespan_us\": {:.2}, \"modeled_events_per_sec\": {:.0}, \
             \"host_ns_per_event\": {:.1}, \"host_events_per_sec\": {:.0}, \
             \"deadline_miss_rate\": {:.4}, \"switches\": {}, \"transfers\": {}, \
             \"transfer_bytes\": {}}}{}",
            c.devices,
            c.tiles_per_device,
            c.total_tiles(),
            c.route,
            c.requests,
            c.events,
            c.makespan_us,
            c.modeled_events_per_sec(),
            c.host_ns_per_event,
            c.host_events_per_sec(),
            c.miss_rate,
            c.switches,
            c.transfers,
            c.transfer_bytes,
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"total_tiles\": 256, \"route\": \"least-loaded\", \
         \"single_device_events_per_sec\": {:.0}, \"four_device_events_per_sec\": {:.0}, \
         \"end_to_end_ratio\": {ratio:.2}, \"target\": 2.0, \"pass\": {}}}",
        single.modeled_events_per_sec(),
        quad.modeled_events_per_sec(),
        ratio >= 2.0
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").into()
    });
    let existing = std::fs::read_to_string(&path).ok();
    let combined =
        overlay_bench::splice_bench_json(existing.as_deref(), "cluster_scalability", &json)
            .expect("BENCH_runtime.json section stays schema-compatible");
    std::fs::write(&path, combined).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
