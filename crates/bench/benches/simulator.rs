//! Simulator benches: invocations per second of the cycle-accurate model.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tm_overlay::arch::FuVariant;
use tm_overlay::frontend::Benchmark;
use tm_overlay::{Compiler, Overlay, Workload};

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    let blocks = 256usize;
    group.throughput(Throughput::Elements(blocks as u64));
    for benchmark in [Benchmark::Gradient, Benchmark::Sgfilter, Benchmark::Poly7] {
        let dfg = benchmark.dfg().unwrap();
        for variant in [FuVariant::V1, FuVariant::V3] {
            let compiled = Compiler::new(variant).compile_benchmark(benchmark).unwrap();
            let overlay = Overlay::for_kernel(variant, &compiled).unwrap();
            let workload = Workload::random(dfg.num_inputs(), blocks, 9);
            group.bench_function(format!("{benchmark}/{variant}/{blocks}_blocks"), |b| {
                b.iter(|| black_box(overlay.execute(&compiled, &workload).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
