//! Table III bench: scheduling every benchmark for every evaluated variant
//! and computing the initiation intervals.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::arch::FuVariant;
use tm_overlay::frontend::Benchmark;
use tm_overlay::scheduler::{ii_for_variant, schedule};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3");
    for benchmark in Benchmark::TABLE3 {
        let dfg = benchmark.dfg().unwrap();
        group.bench_function(format!("schedule_all_variants/{benchmark}"), |b| {
            b.iter(|| {
                for variant in FuVariant::EVALUATED {
                    let stages = schedule(&dfg, variant, Some(8)).unwrap();
                    black_box(ii_for_variant(&stages, variant));
                }
            })
        });
    }
    group.finish();
    c.bench_function("table3/render", |b| {
        b.iter(|| black_box(overlay_bench::table3()))
    });
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
