//! Control-plane sweep: same-kernel batching + rate-driven replication on a
//! skewed-tenant ρ = 2 overload, against the PR 4 baseline (least-loaded
//! routing, no control plane).
//!
//! One hot tenant contributes ~70% of the requests while three cold tenants
//! share the rest, interleaved — so least-loaded routing plus
//! earliest-completion placement leaves every tile draining a *mixed* queue
//! and paying a modeled context switch on nearly every other dispatch. The
//! sweep serves the same trace under three configurations:
//!
//! * **baseline** — the PR 4 cluster exactly (batching and replication off);
//! * **batch** — same-kernel batching on (`max_batch` consecutive runs);
//! * **batch+repl** — batching plus rate-driven replication pushing the hot
//!   kernel's image ahead of demand.
//!
//! Two switch-cost regimes are swept: the V4 write-back tiles (~0.25 µs
//! instruction reload — switches are cheap but frequent) and the V1
//! feed-forward tiles (~ms PCAP reconfiguration — switches dominate the
//! timeline when they happen).
//!
//! Acceptance (per the roadmap): on the V4 corner the full control plane
//! must reach **≥ 1.5× modeled events/s or ≥ 3× fewer context switches**
//! than the baseline.
//!
//! Output: a table on stdout plus a `batching_replication` section spliced
//! into `BENCH_runtime.json` next to the runtime/cluster sweeps.
//!
//! Environment:
//! * `BENCH_FAST=1` — CI mode: fewer requests and repetitions (same grid).
//! * `BENCH_RUNTIME_OUT=path` — override the JSON output path.

use std::fmt::Write as _;
use std::time::Instant;

use tm_overlay::{
    BatchConfig, Benchmark, Cluster, ClusterReport, FuVariant, KernelSpec, ReplicationConfig,
    Request, RoutePolicy, Runtime, Workload,
};

const DEVICES: usize = 4;
const TILES_PER_DEVICE: usize = 4;
const VARIANTS: [FuVariant; 2] = [FuVariant::V4, FuVariant::V1];
const MAX_BATCH: usize = 32;
/// Base block count: per-request workloads cycle 1–3x this, so backlog
/// estimates dominate the (V4) switch cost at placement time and tile
/// queues stay kernel-interleaved — the regime batching exists for.
const BLOCKS: usize = 4;
/// The hot tenant's share of the trace, per mille.
const HOT_SHARE: usize = 700;

#[derive(Clone, Copy, PartialEq)]
enum Config {
    Baseline,
    Batch,
    BatchRepl,
}

impl Config {
    const ALL: [Config; 3] = [Config::Baseline, Config::Batch, Config::BatchRepl];

    fn name(self) -> &'static str {
        match self {
            Config::Baseline => "baseline",
            Config::Batch => "batch",
            Config::BatchRepl => "batch+repl",
        }
    }
}

struct Corner {
    variant: FuVariant,
    config: Config,
    events: u64,
    makespan_us: f64,
    host_ns_per_event: f64,
    switches: usize,
    switch_us: f64,
    batches_formed: usize,
    switches_avoided: usize,
    replicas_pushed: usize,
    replicas_demoted: usize,
    bytes_prefetched: u64,
    transfers: usize,
    miss_rate: f64,
}

impl Corner {
    fn modeled_events_per_sec(&self) -> f64 {
        self.events as f64 * 1.0e6 / self.makespan_us
    }
}

/// The skewed-tenant overload: the hot kernel takes [`HOT_SHARE`]‰ of the
/// requests (after sitting out the first tenth of the trace, so replication
/// has a demand shift to get ahead of), three cold kernels split the rest
/// round-robin, arrivals every `spacing_us` with deadlines at `budget_us`.
/// Per-request block counts cycle 1–3, so per-tile backlog estimates almost
/// never tie exactly and placement degenerates to pure least-backlog —
/// every tile drains a kernel-interleaved queue, the regime batching is
/// for. Workloads come from a small per-(kernel, blocks) pool so the sim
/// memo still engages.
fn trace(count: usize, spacing_us: f64, budget_us: f64) -> Vec<Request> {
    let suite = [
        Benchmark::Gradient, // hot
        Benchmark::Chebyshev,
        Benchmark::Qspline,
        Benchmark::Poly5,
    ];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    let hot_onset = count / 10;
    let mut cold_cursor = 0usize;
    (0..count)
        .map(|i| {
            // Deterministic 70/10/10/10 interleave via a mixed index.
            let roll = (i.wrapping_mul(0x9E37_79B9) >> 4) % 1000;
            let tenant = if i >= hot_onset && roll < HOT_SHARE {
                0
            } else {
                cold_cursor += 1;
                1 + (cold_cursor % 3)
            };
            let (spec, inputs) = &specs[tenant];
            let blocks = BLOCKS * (1 + i % 3);
            let workload = Workload::random(*inputs, blocks, (tenant * 4 + i % 4) as u64);
            let arrival = i as f64 * spacing_us;
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival)
                .with_deadline(arrival + budget_us)
        })
        .collect()
}

fn build(variant: FuVariant, config: Config, window_us: f64) -> Cluster {
    let mut cluster = Cluster::new(variant, DEVICES, TILES_PER_DEVICE)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded);
    if config != Config::Baseline {
        cluster = cluster.with_batching(BatchConfig::with_max_batch(MAX_BATCH));
    }
    if config == Config::BatchRepl {
        cluster = cluster.with_replication(ReplicationConfig::new(
            DEVICES - 1, // push hot images toward every other device
            3.0,         // hot at ~3 decayed arrivals per window
            window_us,
        ));
    }
    cluster
}

/// Serves `requests` `reps + 1` times on a fresh-per-rep cluster (first rep
/// is a warm-up and is not timed), returning the best host wall time per
/// event and the (deterministic) report.
fn measure(
    variant: FuVariant,
    config: Config,
    window_us: f64,
    requests: &[Request],
    reps: usize,
) -> (f64, ClusterReport) {
    let mut best_ns = f64::INFINITY;
    let mut last = None;
    for rep in 0..=reps {
        let mut cluster = build(variant, config, window_us);
        let warmup: Vec<Request> = requests.iter().take(8).cloned().collect();
        cluster.serve(warmup).unwrap();
        let copy = requests.to_vec();
        let start = Instant::now();
        let report = cluster.serve(copy).expect("bench trace serves cleanly");
        let wall_ns = start.elapsed().as_nanos() as f64;
        if rep > 0 {
            best_ns = best_ns.min(wall_ns);
        }
        last = Some(report);
    }
    let report = last.expect("at least one serve ran");
    (best_ns / report.metrics().events_fired as f64, report)
}

fn main() {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let (count, reps) = if fast { (1024, 1) } else { (4096, 2) };
    let total_tiles = DEVICES * TILES_PER_DEVICE;

    println!(
        "batching_replication: {count} requests/serve, {reps} reps, {DEVICES}x{TILES_PER_DEVICE} \
         tiles, hot share {:.0}%, max_batch {MAX_BATCH} ({} mode)",
        HOT_SHARE as f64 / 10.0,
        if fast { "fast" } else { "full" }
    );
    println!(
        "{:>4} {:>11} {:>14} {:>11} {:>9} {:>11} {:>8} {:>8} {:>7} {:>6}",
        "fu",
        "config",
        "modeled ev/s",
        "host ns/ev",
        "switches",
        "switch us",
        "avoided",
        "pushes",
        "xfers",
        "miss%"
    );

    let mut corners: Vec<Corner> = Vec::new();
    for &variant in &VARIANTS {
        // Probe the modeled service time of one hot request on a single
        // tile so the overload tracks each variant's timing model.
        let probe = trace(1, 1.0, 1e9);
        let service_us = Runtime::new(variant, 1)
            .unwrap()
            .serve(probe)
            .unwrap()
            .outcomes()[0]
            .completion_us;
        let spacing_us = service_us / (total_tiles as f64 * 2.0);
        let budget_us = 8.0 * service_us;
        // The EWMA window spans ~64 arrivals, so the hot tenant crosses the
        // threshold early and the cold tenants never do.
        let window_us = 64.0 * spacing_us;
        let requests = trace(count, spacing_us, budget_us);

        for config in Config::ALL {
            let (host_ns, report) = measure(variant, config, window_us, &requests, reps);
            let metrics = report.metrics();
            let replication = report.replication();
            let corner = Corner {
                variant,
                config,
                events: metrics.events_fired,
                makespan_us: metrics.makespan_us,
                host_ns_per_event: host_ns,
                switches: metrics.switch_count,
                switch_us: metrics.total_switch_us,
                batches_formed: metrics.batch.batches_formed,
                switches_avoided: metrics.batch.switches_avoided,
                replicas_pushed: replication.replicas_pushed,
                replicas_demoted: replication.replicas_demoted,
                bytes_prefetched: replication.bytes_prefetched,
                transfers: report.transfers(),
                miss_rate: metrics.deadline_miss_rate(),
            };
            println!(
                "{:>4} {:>11} {:>14.0} {:>11.0} {:>9} {:>11.1} {:>8} {:>8} {:>7} {:>5.0}%",
                variant.to_string(),
                config.name(),
                corner.modeled_events_per_sec(),
                corner.host_ns_per_event,
                corner.switches,
                corner.switch_us,
                corner.switches_avoided,
                corner.replicas_pushed,
                corner.transfers,
                corner.miss_rate * 100.0,
            );
            corners.push(corner);
        }
    }

    // Acceptance: the full control plane vs the PR 4 baseline on the V4
    // corner — ≥ 1.5x modeled events/s or ≥ 3x fewer context switches.
    let pick = |variant: FuVariant, config: Config| {
        corners
            .iter()
            .find(|c| c.variant == variant && c.config == config)
            .expect("acceptance corner exists")
    };
    let baseline = pick(FuVariant::V4, Config::Baseline);
    let controlled = pick(FuVariant::V4, Config::BatchRepl);
    let events_ratio = controlled.modeled_events_per_sec() / baseline.modeled_events_per_sec();
    let switch_ratio = baseline.switches as f64 / (controlled.switches as f64).max(1.0);
    let pass = events_ratio >= 1.5 || switch_ratio >= 3.0;
    println!(
        "V4 skewed overload (control plane vs PR 4 least-loaded): {:.2}x events/s, {:.2}x fewer \
         switches ({} -> {}) -> target >= 1.5x ev/s or >= 3x switches: {}",
        events_ratio,
        switch_ratio,
        baseline.switches,
        controlled.switches,
        if pass { "pass" } else { "FAIL" }
    );
    assert!(
        pass,
        "control plane must reach 1.5x events/s or 3x fewer switches \
         (got {events_ratio:.2}x / {switch_ratio:.2}x)"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"batching_replication\",");
    let _ = writeln!(json, "  \"schema\": {},", overlay_bench::BENCH_JSON_SCHEMA);
    let _ = writeln!(json, "  {},", overlay_bench::provenance_json_fields());
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"requests_per_serve\": {count},");
    let _ = writeln!(json, "  \"reps\": {reps},");
    let _ = writeln!(json, "  \"devices\": {DEVICES},");
    let _ = writeln!(json, "  \"tiles_per_device\": {TILES_PER_DEVICE},");
    let _ = writeln!(json, "  \"hot_share\": {:.2},", HOT_SHARE as f64 / 1000.0);
    let _ = writeln!(json, "  \"max_batch\": {MAX_BATCH},");
    let _ = writeln!(json, "  \"entries\": [");
    for (i, c) in corners.iter().enumerate() {
        let comma = if i + 1 < corners.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"variant\": \"{}\", \"config\": \"{}\", \"events\": {}, \
             \"makespan_us\": {:.2}, \"modeled_events_per_sec\": {:.0}, \
             \"host_ns_per_event\": {:.1}, \"switches\": {}, \"switch_us\": {:.2}, \
             \"batches_formed\": {}, \"switches_avoided\": {}, \"replicas_pushed\": {}, \
             \"replicas_demoted\": {}, \"bytes_prefetched\": {}, \"transfers\": {}, \
             \"deadline_miss_rate\": {:.4}}}{}",
            c.variant,
            c.config.name(),
            c.events,
            c.makespan_us,
            c.modeled_events_per_sec(),
            c.host_ns_per_event,
            c.switches,
            c.switch_us,
            c.batches_formed,
            c.switches_avoided,
            c.replicas_pushed,
            c.replicas_demoted,
            c.bytes_prefetched,
            c.transfers,
            c.miss_rate,
            comma
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"variant\": \"V4\", \"route\": \"least-loaded\", \
         \"baseline_events_per_sec\": {:.0}, \"controlled_events_per_sec\": {:.0}, \
         \"events_ratio\": {events_ratio:.2}, \"baseline_switches\": {}, \
         \"controlled_switches\": {}, \"switch_ratio\": {switch_ratio:.2}, \
         \"target\": \"events >= 1.5x or switches >= 3x\", \"pass\": {pass}}}",
        baseline.modeled_events_per_sec(),
        controlled.modeled_events_per_sec(),
        baseline.switches,
        controlled.switches,
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").into()
    });
    let existing = std::fs::read_to_string(&path).ok();
    let combined =
        overlay_bench::splice_bench_json(existing.as_deref(), "batching_replication", &json)
            .expect("BENCH_runtime.json section stays schema-compatible");
    std::fs::write(&path, combined).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
