//! Session-tier pipeline bench: stage-affinity routing vs affinity-blind
//! serving of 4-stage kernel pipelines, plus a skewed two-class SLO mix.
//!
//! **Part A — affinity A/B.** An 8-device fleet under kernel-hash routing
//! serves a batch of 4-stage chains whose stages cycle through four
//! different kernels. Kernel-hash homes each stage's kernel on a different
//! device, so affinity-blind routing pays an inter-device activation
//! transfer on nearly every stage edge; stage-affinity routing keeps a
//! successor next to its producer whenever the modeled transfer saving
//! beats the queueing penalty. The bench serves the identical batch both
//! ways and reports modeled events/s and the activation-transfer counts.
//!
//! **Part B — SLO mix.** A deliberately skewed two-class mix on a bounded
//! admission queue: a best-effort flood plus a paced latency tier with
//! pipeline deadlines. Weighted-fair admission sheds the flood, not the
//! tier: the bench reports per-class p99 commit latency, rejects and
//! deadline misses.
//!
//! Acceptance: stage affinity must either reach ≥ 1.3× the blind serve's
//! modeled events/s or cut activation transfers by ≥ 2×, **and** the
//! latency tier must hold its p99 within the deadline budget with zero
//! rejects while best effort absorbs the shed load.
//!
//! Output: a table on stdout plus a `dag_pipeline` section spliced into
//! `BENCH_runtime.json`.
//!
//! Environment:
//! * `BENCH_FAST=1` — CI mode: fewer pipelines, same fleet and shapes.
//! * `BENCH_RUNTIME_OUT=path` — override the JSON output path.

use std::fmt::Write as _;

use tm_overlay::{
    Benchmark, Cluster, FuVariant, KernelSpec, PipelineReport, PipelineRequest, PipelineStage,
    RoutePolicy, Runtime, Session, SloClass, Workload,
};

const DEVICES: usize = 8;
const TILES_PER_DEVICE: usize = 4;
const VARIANT: FuVariant = FuVariant::V4;
const STAGES: usize = 4;
/// Activation payload per stage edge — large enough that a cross-device
/// hop visibly costs link time.
const ACTIVATION_BYTES: u64 = 256 * 1024;
/// Deadline budget for the latency tier, in units of the modeled
/// single-stage service time.
const DEADLINE_BUDGETS: f64 = 24.0;

fn stage_kernels() -> Vec<(KernelSpec, usize)> {
    [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Qspline,
        Benchmark::Poly5,
    ]
    .iter()
    .map(|&b| {
        (
            KernelSpec::from_benchmark(b).unwrap(),
            b.dfg().unwrap().num_inputs(),
        )
    })
    .collect()
}

/// `count` 4-stage chains, one arrival every `spacing_us`, stages cycling
/// through the four kernels so consecutive stages always change kernel.
fn chains(count: usize, spacing_us: f64, sessions: u64) -> Vec<PipelineRequest> {
    let specs = stage_kernels();
    (0..count)
        .map(|i| {
            let mut pipeline =
                PipelineRequest::new(i as u64 + 1, i as u64 % sessions).at(i as f64 * spacing_us);
            for stage in 0..STAGES {
                let (spec, inputs) = &specs[(i + stage) % specs.len()];
                let workload = Workload::random(*inputs, 1, (i % 8) as u64 ^ (stage as u64) << 8);
                let mut built = PipelineStage::new(spec.clone(), workload).emits(ACTIVATION_BYTES);
                if stage > 0 {
                    built = built.after(&[stage - 1]);
                }
                pipeline = pipeline.stage(built);
            }
            pipeline
        })
        .collect()
}

fn events_per_sec(report: &PipelineReport) -> f64 {
    let metrics = report.cluster.metrics();
    metrics.events_fired as f64 / (metrics.makespan_us * 1e-6)
}

fn main() {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let count = if fast { 384 } else { 3072 };

    // Probe the modeled single-stage service time so arrival pacing tracks
    // the timing model (one pipeline = STAGES serial stage services).
    let probe = Runtime::new(VARIANT, 1)
        .unwrap()
        .serve(vec![probe_request()])
        .unwrap()
        .outcomes()[0]
        .completion_us;
    let total_tiles = (DEVICES * TILES_PER_DEVICE) as f64;
    // Offered stage load ρ ≈ 0.5 against the fleet.
    let spacing_us = STAGES as f64 * probe / (total_tiles * 0.5);

    // ---------------------------------------------------------- part A: A/B
    let pipelines = chains(count, spacing_us, 4);
    let sessions: Vec<Session> = (0..4).map(Session::new).collect();
    let fleet = || {
        Cluster::new(VARIANT, DEVICES, TILES_PER_DEVICE)
            .unwrap()
            .with_route_policy(RoutePolicy::KernelHash)
    };
    let affine = fleet()
        .serve_pipelines(pipelines.clone(), &sessions)
        .unwrap();
    let blind = fleet()
        .with_stage_affinity(false)
        .serve_pipelines(pipelines.clone(), &sessions)
        .unwrap();
    assert_eq!(affine.completed(), count, "affine serve completes all");
    assert_eq!(blind.completed(), count, "blind serve completes all");

    let affine_eps = events_per_sec(&affine);
    let blind_eps = events_per_sec(&blind);
    let throughput_ratio = affine_eps / blind_eps;
    let affine_transfers = affine.activation_transfers();
    let blind_transfers = blind.activation_transfers();
    let transfer_ratio = blind_transfers as f64 / (affine_transfers.max(1)) as f64;
    let part_a_pass = throughput_ratio >= 1.3 || affine_transfers * 2 <= blind_transfers;

    // -------------------------------------------------------- part B: SLO mix
    // A skewed mix on a bounded queue: a sustained best-effort overload
    // (offered stage load ~1.25x the fleet) against a lightly-paced latency
    // tier (~0.125x) carrying pipeline deadlines. Weighted-fair admission
    // caps the flood's queue share; the paced tier stays under its own.
    let latency_count = count / 8;
    let flood_count = latency_count * 8;
    let budget_us = DEADLINE_BUDGETS * probe;
    // One latency pipeline every 4 stage-spacings, one flood pipeline every
    // third of one — the flood alone oversubscribes the fleet 1.5x.
    let latency_gap_us = 4.0 * spacing_us;
    let flood_gap_us = spacing_us / 3.0;
    let mut mix = Vec::new();
    for i in 0..flood_count as u64 {
        let base = chains(1, 0.0, 1).remove(0);
        let mut flood = PipelineRequest::new(i + 1, 100).at(i as f64 * flood_gap_us);
        for stage in base.stages.into_iter() {
            flood = flood.stage(stage);
        }
        mix.push(flood);
    }
    for i in 0..latency_count as u64 {
        let base = chains(1, 0.0, 1).remove(0);
        let arrival = i as f64 * latency_gap_us;
        let mut paced = PipelineRequest::new(100_000 + i, 200)
            .at(arrival)
            .with_deadline(arrival + budget_us);
        for stage in base.stages.into_iter() {
            paced = paced.stage(stage);
        }
        mix.push(paced);
    }
    mix.sort_by(|a, b| a.arrival_us.total_cmp(&b.arrival_us));
    let latency_submitted = mix.iter().filter(|p| p.session == 200).count();
    let slo_sessions = [
        Session::new(100).with_slo(SloClass::BestEffort),
        Session::new(200).with_slo(SloClass::Latency),
    ];
    // Least-loaded routing for the SLO fleet: the mix is about admission
    // and dispatch, not stage placement, and kernel-hash would idle the
    // devices none of the four stage kernels hash to.
    let slo_report = Cluster::new(VARIANT, DEVICES, TILES_PER_DEVICE)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded)
        .with_policy(tm_overlay::DispatchPolicy::SlackAware)
        .with_admission_limit(DEVICES * TILES_PER_DEVICE)
        .serve_pipelines(mix, &slo_sessions)
        .unwrap();
    let latency_class = slo_report
        .class(SloClass::Latency)
        .expect("latency tier ran")
        .clone();
    let best_effort = slo_report
        .class(SloClass::BestEffort)
        .expect("best effort ran")
        .clone();
    let part_b_pass = latency_class.rejected == 0
        && latency_class.deadline_misses == 0
        && latency_class.p99_latency_us <= budget_us
        && best_effort.rejected > 0;
    let pass = part_a_pass && part_b_pass;

    println!(
        "dag_pipeline: {DEVICES}x{TILES_PER_DEVICE} tiles, {count} pipelines x {STAGES} \
         stages, kernel-hash, service ~{probe:.3} us, {} mode",
        if fast { "fast" } else { "full" }
    );
    println!(
        "affinity {affine_eps:.0} events/s vs blind {blind_eps:.0} ({throughput_ratio:.2}x); \
         activation transfers {affine_transfers} vs {blind_transfers} ({transfer_ratio:.1}x \
         fewer) -> {}",
        if part_a_pass { "pass" } else { "FAIL" }
    );
    println!(
        "slo mix: latency {}/{} served, p99 {:.2} us (budget {budget_us:.2}), {} miss(es), \
         {} reject(s); best-effort {} of {} rejected -> {}",
        latency_class.pipelines - latency_class.rejected,
        latency_submitted,
        latency_class.p99_latency_us,
        latency_class.deadline_misses,
        latency_class.rejected,
        best_effort.rejected,
        best_effort.pipelines,
        if part_b_pass { "pass" } else { "FAIL" }
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"dag_pipeline\",");
    let _ = writeln!(json, "  \"schema\": {},", overlay_bench::BENCH_JSON_SCHEMA);
    let _ = writeln!(json, "  {},", overlay_bench::provenance_json_fields());
    let _ = writeln!(json, "  \"variant\": \"{VARIANT}\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"devices\": {DEVICES},");
    let _ = writeln!(json, "  \"tiles_per_device\": {TILES_PER_DEVICE},");
    let _ = writeln!(json, "  \"route\": \"kernel-hash\",");
    let _ = writeln!(json, "  \"pipelines\": {count},");
    let _ = writeln!(json, "  \"stages_per_pipeline\": {STAGES},");
    let _ = writeln!(json, "  \"activation_bytes\": {ACTIVATION_BYTES},");
    let _ = writeln!(json, "  \"modeled_service_us\": {probe:.3},");
    let _ = writeln!(
        json,
        "  \"affinity\": {{\"events_per_sec\": {affine_eps:.0}, \"transfers\": \
         {affine_transfers}, \"makespan_us\": {:.2}}},",
        affine.cluster.metrics().makespan_us
    );
    let _ = writeln!(
        json,
        "  \"blind\": {{\"events_per_sec\": {blind_eps:.0}, \"transfers\": \
         {blind_transfers}, \"makespan_us\": {:.2}}},",
        blind.cluster.metrics().makespan_us
    );
    let _ = writeln!(
        json,
        "  \"slo_mix\": {{\"deadline_budget_us\": {budget_us:.3}, \"latency\": \
         {{\"pipelines\": {}, \"rejected\": {}, \"p99_latency_us\": {:.2}, \
         \"deadline_misses\": {}}}, \"best_effort\": {{\"pipelines\": {}, \"rejected\": {}, \
         \"p99_latency_us\": {:.2}}}}},",
        latency_class.pipelines,
        latency_class.rejected,
        latency_class.p99_latency_us,
        latency_class.deadline_misses,
        best_effort.pipelines,
        best_effort.rejected,
        best_effort.p99_latency_us,
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"throughput_ratio\": {throughput_ratio:.3}, \
         \"transfer_ratio\": {transfer_ratio:.2}, \"pass\": {pass}}}"
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").into()
    });
    let existing = std::fs::read_to_string(&path).ok();
    let combined = overlay_bench::splice_bench_json(existing.as_deref(), "dag_pipeline", &json)
        .expect("BENCH_runtime.json section stays schema-compatible");
    std::fs::write(&path, combined).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}

/// A single Gradient probe request for the service-time measurement.
fn probe_request() -> tm_overlay::Request {
    let spec = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
    let inputs = Benchmark::Gradient.dfg().unwrap().num_inputs();
    tm_overlay::Request::new(0, spec, Workload::random(inputs, 1, 0))
}
