//! Fig. 5 bench: the overlay scalability sweep (resources and fmax vs size).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::arch::{scalability_sweep, FuVariant};

fn bench_fig5(c: &mut Criterion) {
    let sizes: Vec<usize> = (1..=8).map(|i| i * 2).collect();
    c.bench_function("fig5/sweep_baseline_v1_v2", |b| {
        b.iter(|| {
            for variant in [FuVariant::Baseline, FuVariant::V1, FuVariant::V2] {
                black_box(scalability_sweep(variant, &sizes).unwrap());
            }
        })
    });
    c.bench_function("fig5/render", |b| {
        b.iter(|| black_box(overlay_bench::fig5()))
    });
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
