//! Table I bench: FU resource/frequency model evaluation for every variant.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tm_overlay::arch::FuVariant;

fn bench_table1(c: &mut Criterion) {
    c.bench_function("table1/fu_models_all_variants", |b| {
        b.iter(|| {
            for variant in FuVariant::ALL {
                let resources = variant.fu_resources();
                black_box((resources, variant.fu_fmax_mhz(), variant.iwp()));
            }
        })
    });
    c.bench_function("table1/render", |b| {
        b.iter(|| black_box(overlay_bench::table1()))
    });
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
