//! Serving-runtime benches: requests per second of the multi-tile runtime
//! under kernel-affinity vs naive round-robin dispatch.
//!
//! Host wall time measures the compile-cache + dispatch + parallel-simulation
//! machinery; the *modeled* serving numbers printed before the timings show
//! the hardware-side effect of dispatch policy — on the feed-forward V1 pool
//! every avoidable kernel swap costs ~1 ms of PCAP reconfiguration, while the
//! write-back V3 pool swaps in ~0.25 µs (the paper's ~2900x context-switch
//! advantage, visible end to end).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tm_overlay::{Benchmark, DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, Workload};

const TILES: usize = 4;
const REQUESTS: usize = 64;

/// An interleaved 3-kernel trace, one request every 2 us.
fn trace() -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Qspline,
    ];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    (0..REQUESTS)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, 16, i as u64 ^ 0xACE);
            Request::new(i as u64, spec.clone(), workload).at(i as f64 * 2.0)
        })
        .collect()
}

fn bench_runtime_throughput(c: &mut Criterion) {
    let requests = trace();
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for variant in [FuVariant::V3, FuVariant::V1] {
        for policy in [DispatchPolicy::KernelAffinity, DispatchPolicy::RoundRobin] {
            // Surface the modeled hardware numbers the policy actually moves.
            let mut runtime = Runtime::new(variant, TILES).unwrap().with_policy(policy);
            let report = runtime.serve(&requests).unwrap();
            println!(
                "modeled {variant}/{policy}: {} switches ({:.2} us), makespan {:.2} us, \
                 p99 latency {:.2} us",
                report.metrics().switch_count,
                report.metrics().total_switch_us,
                report.metrics().makespan_us,
                report.metrics().p99_latency_us,
            );
            group.bench_function(format!("{variant}/{policy}/{REQUESTS}_requests"), |b| {
                let mut runtime = Runtime::new(variant, TILES).unwrap().with_policy(policy);
                b.iter(|| black_box(runtime.serve(&requests).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_throughput);
criterion_main!(benches);
