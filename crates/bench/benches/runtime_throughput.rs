//! Serving-runtime benches: requests per second of the multi-tile runtime
//! under kernel-affinity vs naive round-robin dispatch.
//!
//! Host wall time measures the compile-cache + dispatch + parallel-simulation
//! machinery; the *modeled* serving numbers printed before the timings show
//! the hardware-side effect of dispatch policy — on the feed-forward V1 pool
//! every avoidable kernel swap costs ~1 ms of PCAP reconfiguration, while the
//! write-back V3 pool swaps in ~0.25 µs (the paper's ~2900x context-switch
//! advantage, visible end to end).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use tm_overlay::{Benchmark, DispatchPolicy, FuVariant, KernelSpec, Request, Runtime, Workload};

const TILES: usize = 4;
const REQUESTS: usize = 64;

/// An interleaved 3-kernel trace, one request every 2 us.
fn trace() -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Qspline,
    ];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    (0..REQUESTS)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, 16, i as u64 ^ 0xACE);
            Request::new(i as u64, spec.clone(), workload).at(i as f64 * 2.0)
        })
        .collect()
}

/// A single-kernel trace with per-request deadlines: one request every
/// `spacing_us`. Every fifth request is latency-critical (`tight_us`
/// budget); the rest are batch work with a `loose_us` budget — the mix that
/// deadline-aware queue reordering exists for. The stride of 5 is coprime
/// to the 4-tile pool, so the urgent requests spread across every tile's
/// queue instead of segregating onto one.
fn deadline_trace(spacing_us: f64, tight_us: f64, loose_us: f64) -> Vec<Request> {
    let spec = KernelSpec::from_benchmark(Benchmark::Chebyshev).unwrap();
    let inputs = Benchmark::Chebyshev.dfg().unwrap().num_inputs();
    (0..REQUESTS)
        .map(|i| {
            let workload = Workload::random(inputs, 16, i as u64 ^ 0xDEAD);
            let arrival = i as f64 * spacing_us;
            let budget = if i % 5 == 0 { tight_us } else { loose_us };
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival)
                .with_deadline(arrival + budget)
        })
        .collect()
}

/// Deadline-miss rate vs offered load: the same deadline-carrying trace is
/// served at a light and an overloaded arrival rate under FIFO affinity and
/// the two deadline-aware policies. The modeled miss rates printed before
/// the timings are the numbers the policy moves; the benched wall time is
/// the host cost of the online event loop itself.
fn bench_deadline_miss_vs_load(c: &mut Criterion) {
    // Probe the modeled service time so load factors track the timing model.
    let mut probe = Runtime::new(FuVariant::V3, TILES).unwrap();
    let service_us = probe
        .serve(deadline_trace(1_000.0, 1e9, 1e9).into_iter().take(1))
        .unwrap()
        .outcomes()[0]
        .completion_us;

    let mut group = c.benchmark_group("deadline_miss_vs_load");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for (load_name, spacing_us) in [
        ("light", service_us * 2.0 * TILES as f64),
        ("overload", service_us / (2.0 * TILES as f64)),
    ] {
        let requests = deadline_trace(spacing_us, 4.0 * service_us, 40.0 * service_us);
        for policy in [
            DispatchPolicy::KernelAffinity,
            DispatchPolicy::EarliestDeadlineFirst,
            DispatchPolicy::SlackAware,
        ] {
            let mut runtime = Runtime::new(FuVariant::V3, TILES)
                .unwrap()
                .with_policy(policy);
            let report = runtime.serve(requests.clone()).unwrap();
            println!(
                "modeled {load_name}/{policy}: {}/{} deadline misses ({:.0}% miss rate), \
                 peak queue {}, p99 latency {:.2} us",
                report.metrics().deadline_misses,
                report.metrics().deadline_requests,
                report.metrics().deadline_miss_rate() * 100.0,
                report.metrics().peak_queue_depth,
                report.metrics().p99_latency_us,
            );
            group.bench_function(format!("{load_name}/{policy}/{REQUESTS}_requests"), |b| {
                let mut runtime = Runtime::new(FuVariant::V3, TILES)
                    .unwrap()
                    .with_policy(policy);
                b.iter(|| black_box(runtime.serve(requests.clone()).unwrap()))
            });
        }
    }
    group.finish();
}

fn bench_runtime_throughput(c: &mut Criterion) {
    let requests = trace();
    let mut group = c.benchmark_group("runtime");
    group.sample_size(10);
    group.throughput(Throughput::Elements(REQUESTS as u64));
    for variant in [FuVariant::V3, FuVariant::V1] {
        for policy in [DispatchPolicy::KernelAffinity, DispatchPolicy::RoundRobin] {
            // Surface the modeled hardware numbers the policy actually moves.
            let mut runtime = Runtime::new(variant, TILES).unwrap().with_policy(policy);
            let report = runtime.serve(requests.clone()).unwrap();
            println!(
                "modeled {variant}/{policy}: {} switches ({:.2} us), makespan {:.2} us, \
                 p99 latency {:.2} us",
                report.metrics().switch_count,
                report.metrics().total_switch_us,
                report.metrics().makespan_us,
                report.metrics().p99_latency_us,
            );
            group.bench_function(format!("{variant}/{policy}/{REQUESTS}_requests"), |b| {
                let mut runtime = Runtime::new(variant, TILES).unwrap().with_policy(policy);
                b.iter(|| black_box(runtime.serve(requests.clone()).unwrap()))
            });
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_runtime_throughput,
    bench_deadline_miss_vs_load
);
criterion_main!(benches);
