//! Elastic-recovery bench: how fast the cluster's deadline-miss rate
//! returns to steady state after an outage, and how the same outage reads
//! on the continuous-telemetry lens (windowed series + SLO burn alert).
//!
//! Serves a deadline trace at offered load ρ ≈ 0.6 (against the full
//! 8-device fleet) twice: once healthy, once with a mid-trace
//! [`tm_overlay::FaultPlan`] outage that kills two devices — a quarter of
//! the fleet — and revives them later in the trace. The killed devices'
//! queued and in-flight work requeues through least-loaded routing onto
//! the six survivors (ρ ≈ 0.8 — loaded, still stable), so the modeled
//! deadline-miss rate spikes at the kill, settles at the degraded
//! equilibrium, and returns to the healthy rate after the revive. The
//! bench buckets completions into fixed virtual-time windows and reports:
//!
//! * **steady miss rate** — the healthy serve's deadline-miss fraction
//!   over its steady window (past the cold-store warm-up transient, before
//!   arrivals stop);
//! * **degraded miss rate** — the same measure on a reference serve whose
//!   two devices are dead from t = 0: the six-survivor steady state the
//!   outage trends toward while it lasts;
//! * **peak miss rate** — the worst post-kill window (the spike the
//!   requeue storm causes);
//! * **recovery µs** — virtual time from the revive to the first window
//!   after which every later window's (3-window-smoothed) miss rate stays
//!   within 10 points of the healthy steady state: how fast the restored
//!   fleet drains the outage backlog.
//!
//! Windows past the last arrival are excluded from the recovery check: the
//! drain phase's final stragglers are the requests that queued longest, a
//! self-selected near-certain-miss population in both the healthy and the
//! faulty serve, not a load the fleet is recovering under.
//!
//! The faulty serve also runs with windowed telemetry and a Standard-class
//! SLO objective, so the outage traces a burn-alert arc on the virtual
//! timeline: the alert fires within one telemetry window of the kill,
//! stays active while capacity is missing, and clears after the revive.
//!
//! Acceptance: the miss rate must recover within a bounded virtual-time
//! window — a quarter of the faulty serve's makespan — nothing may be
//! lost (completions + rejects = submissions, the suite's zero-loss
//! invariant, re-checked here on the bench trace), and the burn alert
//! must fire within one window of the kill and clear after the revive.
//!
//! Output: window tables (miss-rate curve and burn samples) on stdout plus
//! a `fault_recovery` section spliced into `BENCH_runtime.json`.
//!
//! Environment:
//! * `BENCH_FAST=1` — CI mode: fewer requests, same fleet and windowing.
//! * `BENCH_RUNTIME_OUT=path` — override the JSON output path.

use std::fmt::Write as _;

use tm_overlay::{
    Benchmark, Cluster, ClusterReport, FaultPlan, FuVariant, KernelSpec, Request, RoutePolicy,
    Runtime, SloClass, SloConfig, SloObjective, TelemetryConfig, Workload,
};

const DEVICES: usize = 8;
const TILES_PER_DEVICE: usize = 16;
const VARIANT: FuVariant = FuVariant::V4;
const BLOCKS: usize = 1;
/// Offered load against the full fleet's tile count.
const RHO: f64 = 0.6;
/// Deadline budget in units of the modeled single-request service time.
const DEADLINE_BUDGETS: f64 = 2.0;
/// Completion-time buckets for the miss-rate curve.
const WINDOWS: usize = 64;
/// A post-kill window counts as recovered when its miss rate is within
/// this many points of the steady-state rate.
const TOLERANCE: f64 = 0.10;
/// When the killed devices come back (fraction of the healthy makespan):
/// late enough that the fleet has settled into the six-survivor
/// equilibrium, early enough that arrivals are still flowing when capacity
/// returns.
const REVIVE_FRACTION: f64 = 0.7;
/// Telemetry window width in units of the modeled service time. Sizing the
/// window off the service time (not the makespan) keeps the SLO story
/// mode-invariant: displaced work needs ~2 service times to drain through
/// the survivors, so a 4-service window books the kill's miss spike within
/// one window of the kill in fast and full mode alike, while averaging
/// enough completions (~300) that steady-state noise stays under budget.
const SLO_WINDOW_SERVICES: f64 = 4.0;
/// Standard-class SLO budget: the sustained deadline miss-rate allowed.
/// Deliberately between the healthy steady rate (~0.06, window noise up to
/// ~0.09) and the six-survivor equilibrium (~0.13 and up): the kill fires
/// the burn alert, the alert stays active while a quarter of the capacity
/// is missing, and the revive clears it — the continuous-telemetry arc of
/// the same outage the miss-rate curve charts.
const SLO_TARGET: f64 = 0.105;
/// Fast/slow trailing spans for the burn alert (telemetry windows).
const SLO_FAST_WINDOWS: usize = 1;
const SLO_SLOW_WINDOWS: usize = 2;

/// The deadline trace: `count` requests cycling through six kernels with
/// workloads from a small per-kernel pool, one arrival every `spacing_us`,
/// every request carrying a deadline.
fn trace(count: usize, spacing_us: f64, budget_us: f64) -> Vec<Request> {
    let suite = [
        Benchmark::Gradient,
        Benchmark::Chebyshev,
        Benchmark::Mibench,
        Benchmark::Qspline,
        Benchmark::Poly5,
        Benchmark::Sgfilter,
    ];
    let specs: Vec<(KernelSpec, usize)> = suite
        .iter()
        .map(|&b| {
            (
                KernelSpec::from_benchmark(b).unwrap(),
                b.dfg().unwrap().num_inputs(),
            )
        })
        .collect();
    (0..count)
        .map(|i| {
            let (spec, inputs) = &specs[i % specs.len()];
            let workload = Workload::random(*inputs, BLOCKS, (i % 8) as u64);
            let arrival = i as f64 * spacing_us;
            Request::new(i as u64, spec.clone(), workload)
                .at(arrival)
                .with_deadline(arrival + budget_us)
        })
        .collect()
}

fn fleet() -> Cluster {
    Cluster::new(VARIANT, DEVICES, TILES_PER_DEVICE)
        .unwrap()
        .with_route_policy(RoutePolicy::LeastLoaded)
}

/// Buckets a serve's outcomes by completion time into `WINDOWS` equal
/// windows over `[0, makespan]`, returning each window's deadline-miss
/// rate (`None` for empty windows).
fn miss_curve(report: &ClusterReport, makespan_us: f64) -> Vec<Option<f64>> {
    let width = makespan_us / WINDOWS as f64;
    let mut total = vec![0usize; WINDOWS];
    let mut missed = vec![0usize; WINDOWS];
    for outcome in report.outcomes() {
        let window = ((outcome.completion_us / width) as usize).min(WINDOWS - 1);
        total[window] += 1;
        missed[window] += outcome.missed_deadline as usize;
    }
    total
        .iter()
        .zip(&missed)
        .map(|(&t, &m)| (t > 0).then(|| m as f64 / t as f64))
        .collect()
}

/// The deadline-miss fraction of completions inside `[from_us, to_us)`.
fn miss_rate_in(report: &ClusterReport, from_us: f64, to_us: f64) -> f64 {
    let mut total = 0usize;
    let mut missed = 0usize;
    for outcome in report.outcomes() {
        if outcome.completion_us >= from_us && outcome.completion_us < to_us {
            total += 1;
            missed += outcome.missed_deadline as usize;
        }
    }
    if total == 0 {
        return 0.0;
    }
    missed as f64 / total as f64
}

fn main() {
    let fast = std::env::var("BENCH_FAST").is_ok_and(|v| v != "0" && !v.is_empty());
    let count = if fast { 3072 } else { 12288 };

    // Probe the modeled service time of one request so the arrival spacing
    // tracks the timing model at ρ = RHO against the full fleet.
    let probe = trace(1, 1.0, 1e9);
    let service_us = Runtime::new(VARIANT, 1)
        .unwrap()
        .serve(probe)
        .unwrap()
        .outcomes()[0]
        .completion_us;
    let total_tiles = DEVICES * TILES_PER_DEVICE;
    let spacing_us = service_us / (total_tiles as f64 * RHO);
    let budget_us = DEADLINE_BUDGETS * service_us;
    let requests = trace(count, spacing_us, budget_us);

    // The healthy serve sets the steady-state bar: its miss rate past the
    // cold-store warm-up transient, while arrivals are still flowing.
    let healthy = fleet().serve(requests.clone()).unwrap();
    assert_eq!(
        healthy.outcomes().len(),
        count,
        "healthy serve completes all"
    );
    let last_arrival_us = (count - 1) as f64 * spacing_us;
    let steady_rate = miss_rate_in(
        &healthy,
        healthy.metrics().makespan_us * 0.25,
        last_arrival_us,
    );

    // The degraded reference: the same trace on a fleet whose devices 0
    // and 1 are dead from the start — no displaced backlog, just six
    // devices. Its steady rate is the equilibrium the faulty serve holds
    // while the outage lasts.
    let reference = fleet()
        .with_fault_plan(FaultPlan::new().kill(0.0, 0).kill(0.0, 1))
        .serve(requests.clone())
        .unwrap();
    let degraded_rate = miss_rate_in(
        &reference,
        reference.metrics().makespan_us * 0.25,
        last_arrival_us,
    );

    // Kill two devices 40% into the healthy makespan — deep enough that
    // the fleet is in steady state, early enough that the tail shows
    // recovery — and revive them at REVIVE_FRACTION.
    let kill_at = healthy.metrics().makespan_us * 0.4;
    let revive_at = healthy.metrics().makespan_us * REVIVE_FRACTION;
    // The faulty serve also runs the continuous-telemetry lens: a windowed
    // series (service-time-sized windows) plus a Standard-class burn-rate
    // objective, so the outage shows up as an SLO alert arc on the virtual
    // timeline — fired at the kill, burning through the degraded stretch,
    // cleared once the revive restores the killed pair.
    let telemetry_window_us = SLO_WINDOW_SERVICES * service_us;
    let mut faulty = fleet()
        .with_fault_plan(
            FaultPlan::new()
                .kill(kill_at, 0)
                .kill(kill_at, 1)
                .revive(revive_at, 0)
                .revive(revive_at, 1),
        )
        .with_telemetry(TelemetryConfig::windowed(telemetry_window_us))
        .with_slo(
            SloConfig::disabled().with_objective(
                SloObjective::new(SloClass::Standard, SLO_TARGET)
                    .with_windows(SLO_FAST_WINDOWS, SLO_SLOW_WINDOWS),
            ),
        );
    let report = faulty.serve(requests.clone()).unwrap();

    // Zero loss on the bench trace: everything submitted is accounted for.
    assert_eq!(
        report.outcomes().len() + report.rejected().len(),
        count,
        "the faulty serve lost requests"
    );
    let makespan_us = report.metrics().makespan_us;
    let curve = miss_curve(&report, makespan_us);
    let width_us = makespan_us / WINDOWS as f64;
    let kill_window = ((kill_at / width_us) as usize).min(WINDOWS - 1);
    // Only windows that end before arrivals stop count toward recovery —
    // the drain-phase tail is a straggler artifact, not offered load.
    let loaded_windows = ((last_arrival_us / width_us) as usize).min(WINDOWS);

    // A centered 3-window mean damps single-window sampling noise (~50
    // completions per fast-mode window) without hiding a sustained spike.
    let smoothed: Vec<Option<f64>> = (0..WINDOWS)
        .map(|w| {
            let lo = w.saturating_sub(1);
            let hi = (w + 2).min(WINDOWS);
            let near: Vec<f64> = curve[lo..hi].iter().flatten().copied().collect();
            (!near.is_empty()).then(|| near.iter().sum::<f64>() / near.len() as f64)
        })
        .collect();

    // Recovery: the first at-or-after-revive window after which every
    // later loaded, non-empty window stays within TOLERANCE of the healthy
    // steady rate — how fast the restored fleet drains the outage backlog
    // and returns to its pre-outage equilibrium.
    let revive_window = ((revive_at / width_us) as usize).min(WINDOWS - 1);
    let recovered_window = (revive_window..loaded_windows).find(|&w| {
        smoothed[w..loaded_windows]
            .iter()
            .flatten()
            .all(|&rate| rate <= steady_rate + TOLERANCE)
    });
    let recovery_us = recovered_window
        .map(|w| (w as f64 * width_us - revive_at).max(0.0))
        .unwrap_or(f64::INFINITY);
    let peak_rate = curve[kill_window..loaded_windows]
        .iter()
        .flatten()
        .fold(0.0_f64, |a, &b| a.max(b));
    let bound_us = makespan_us * 0.25;
    let pass = recovery_us <= bound_us;

    // The telemetry lens on the same outage: the burn alert must fire
    // within one telemetry window of the kill and clear only after the
    // revive restores capacity. (The cold-store warm-up transient may fire
    // and clear its own early alert; the outage story is the first alert at
    // or after the kill.)
    let series = report.telemetry().expect("telemetry was enabled");
    let slo = report.slo().expect("an SLO objective was configured");
    let status = slo
        .class(SloClass::Standard)
        .expect("the standard class is tracked");
    let tele_kill_window = (kill_at / series.window_us) as usize;
    let alert = *status
        .alerts
        .iter()
        .find(|alert| alert.fired_us >= kill_at)
        .expect("the kill must burn the error budget");
    assert!(
        alert.fired_window <= tele_kill_window + 1,
        "burn alert fired in window {} but the kill landed in window {tele_kill_window}",
        alert.fired_window
    );
    let cleared_us = alert
        .cleared_us
        .expect("the outage alert never cleared: the revive did not show on the telemetry lens");
    assert!(
        cleared_us > revive_at,
        "the outage alert cleared at {cleared_us:.2} us, before the revive at {revive_at:.2} us"
    );

    println!(
        "fault_recovery: {DEVICES}x{TILES_PER_DEVICE} tiles, {count} requests, rho {RHO}, \
         service ~{service_us:.3} us, deadline {DEADLINE_BUDGETS}x ({} mode)",
        if fast { "fast" } else { "full" }
    );
    println!(
        "steady miss rate {:.4} (healthy) / {:.4} (6 survivors), kill at {kill_at:.1} us \
         (window {kill_window}), peak post-kill {:.4}",
        steady_rate, degraded_rate, peak_rate
    );
    println!(
        "recovered in {recovery_us:.1} us (bound {bound_us:.1} us) -> {}",
        if pass { "pass" } else { "FAIL" }
    );
    println!(
        "requeues {} lost_work {:.1} us availability[0] {:.3}",
        report.requeues(),
        report.lost_work_us(),
        report.availability()[0]
    );
    println!(
        "slo: target {SLO_TARGET}, outage alert fired window {} ({:.1} us), cleared window {} \
         ({:.1} us, revive at {revive_at:.1} us), peak fast burn {:.2}x, budget consumed {:.2}x",
        alert.fired_window,
        alert.fired_us,
        alert.cleared_window.unwrap(),
        cleared_us,
        alert.peak_fast_burn,
        status.budget_consumed
    );
    println!(
        "{:>7} {:>10} {:>10} {:>10} {:>10}",
        "tele-w", "ends us", "miss rate", "fast burn", "alerting"
    );
    for sample in &status.samples {
        println!(
            "{:>7} {:>10.1} {:>10.4} {:>10.2} {:>10}",
            sample.window,
            sample.time_us,
            series.windows[sample.window].miss_rate(),
            sample.fast_burn,
            if sample.alerting { "*" } else { "" }
        );
    }
    println!("{:>7} {:>10} {:>10}", "window", "ends us", "miss rate");
    for (w, rate) in curve.iter().enumerate() {
        if w + 1 >= kill_window && w < kill_window + 12 {
            match rate {
                Some(rate) => {
                    println!(
                        "{:>7} {:>10.1} {:>10.4}",
                        w,
                        (w + 1) as f64 * width_us,
                        rate
                    )
                }
                None => println!("{:>7} {:>10.1} {:>10}", w, (w + 1) as f64 * width_us, "-"),
            }
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"fault_recovery\",");
    let _ = writeln!(json, "  \"schema\": {},", overlay_bench::BENCH_JSON_SCHEMA);
    let _ = writeln!(json, "  {},", overlay_bench::provenance_json_fields());
    let _ = writeln!(json, "  \"variant\": \"{VARIANT}\",");
    let _ = writeln!(json, "  \"fast_mode\": {fast},");
    let _ = writeln!(json, "  \"devices\": {DEVICES},");
    let _ = writeln!(json, "  \"tiles_per_device\": {TILES_PER_DEVICE},");
    let _ = writeln!(json, "  \"route\": \"least-loaded\",");
    let _ = writeln!(json, "  \"requests\": {count},");
    let _ = writeln!(json, "  \"rho\": {RHO},");
    let _ = writeln!(json, "  \"modeled_service_us\": {service_us:.3},");
    let _ = writeln!(json, "  \"deadline_budget_us\": {budget_us:.3},");
    let _ = writeln!(json, "  \"windows\": {WINDOWS},");
    let _ = writeln!(json, "  \"window_us\": {width_us:.2},");
    let _ = writeln!(json, "  \"killed_devices\": [0, 1],");
    let _ = writeln!(json, "  \"kill_at_us\": {kill_at:.2},");
    let _ = writeln!(json, "  \"revive_at_us\": {revive_at:.2},");
    let _ = writeln!(json, "  \"makespan_us\": {makespan_us:.2},");
    let _ = writeln!(json, "  \"steady_miss_rate\": {steady_rate:.4},");
    let _ = writeln!(json, "  \"degraded_steady_miss_rate\": {degraded_rate:.4},");
    let _ = writeln!(json, "  \"peak_miss_rate\": {peak_rate:.4},");
    let _ = writeln!(json, "  \"requeues\": {},", report.requeues());
    let _ = writeln!(json, "  \"lost_work_us\": {:.2},", report.lost_work_us());
    let _ = writeln!(
        json,
        "  \"availability\": [{}],",
        report
            .availability()
            .iter()
            .map(|a| format!("{a:.4}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
    let _ = writeln!(
        json,
        "  \"telemetry\": {{\"window_us\": {:.4}, \"windows\": {}, \"kill_window\": \
         {tele_kill_window}, \"miss_rate_series\": [{}], \"peak_queue_depth_series\": [{}]}},",
        series.window_us,
        series.windows.len(),
        series
            .miss_rates()
            .iter()
            .map(|rate| format!("{rate:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        series
            .windows
            .iter()
            .map(|w| w.peak_queue_depth.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let alerts_json = status
        .alerts
        .iter()
        .map(|a| {
            format!(
                "{{\"fired_window\": {}, \"fired_us\": {:.2}, \"cleared_window\": {}, \
                 \"cleared_us\": {}, \"peak_fast_burn\": {:.3}}}",
                a.fired_window,
                a.fired_us,
                a.cleared_window
                    .map_or("null".to_owned(), |w| w.to_string()),
                a.cleared_us
                    .map_or("null".to_owned(), |t| format!("{t:.2}")),
                a.peak_fast_burn
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(
        json,
        "  \"slo\": {{\"class\": \"standard\", \"target_miss_rate\": {SLO_TARGET}, \
         \"fast_windows\": {SLO_FAST_WINDOWS}, \"slow_windows\": {SLO_SLOW_WINDOWS}, \
         \"budget_consumed\": {:.3}, \"alerts\": [{alerts_json}]}},",
        status.budget_consumed
    );
    let _ = writeln!(
        json,
        "  \"acceptance\": {{\"recovery_us\": {recovery_us:.1}, \
         \"bound_us\": {bound_us:.1}, \"tolerance\": {TOLERANCE}, \"pass\": {pass}}}"
    );
    json.push_str("}\n");

    let path = std::env::var("BENCH_RUNTIME_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_runtime.json").into()
    });
    let existing = std::fs::read_to_string(&path).ok();
    let combined = overlay_bench::splice_bench_json(existing.as_deref(), "fault_recovery", &json)
        .expect("BENCH_runtime.json section stays schema-compatible");
    std::fs::write(&path, combined).expect("write BENCH_runtime.json");
    println!("wrote {path}");
}
