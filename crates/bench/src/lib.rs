//! Reproduction harness: regenerates every table and figure of the paper's
//! evaluation from the models and the cycle-accurate simulator.
//!
//! Each `table*` / `fig*` function returns the formatted text that the
//! `repro` binary prints; the Criterion benches in `benches/` time the
//! underlying computations (scheduling, compilation, simulation) on the same
//! workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Write as _;

use tm_overlay::arch::{scalability_sweep, FuVariant, OverlayConfig, ReconfigModel};
use tm_overlay::frontend::Benchmark;
use tm_overlay::scheduler::{asap_schedule, ii_for_variant, schedule, schedule_table};
use tm_overlay::{compare_variants, Compiler, Overlay};

/// Table I: per-FU resources, frequency and IWP for every variant.
pub fn table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table I: comparison of the FU designs (Zynq XC7Z020)");
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>6} {:>6} {:>10} {:>5}  description",
        "variant", "DSPs", "LUTs", "FFs", "fmax (MHz)", "IWP"
    );
    for variant in FuVariant::ALL {
        let r = variant.fu_resources();
        let iwp = variant
            .iwp()
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".to_owned());
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>6} {:>6} {:>10.0} {:>5}  {}",
            variant.name(),
            r.dsps,
            r.luts,
            r.ffs,
            variant.fu_fmax_mhz(),
            iwp,
            variant.description()
        );
    }
    out
}

/// Table II: the first cycles of the pipelined 'gradient' schedule on the V1
/// overlay (II = 6).
pub fn table2() -> String {
    let dfg = Benchmark::Gradient.dfg().expect("gradient builds");
    let stages = asap_schedule(&dfg).expect("gradient schedules");
    let ii = ii_for_variant(&stages, FuVariant::V1) as usize;
    let table = schedule_table(&dfg, &stages, ii, 6, 32);
    format!(
        "Table II: first 32 cycles of the 'gradient' schedule (II = {ii})\n{}",
        table.to_text()
    )
}

/// Table III: DFG characteristics and the II achieved by each overlay
/// variant across the benchmark suite, with the paper's values alongside.
pub fn table3() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table III: benchmark characteristics and initiation interval (measured | paper)"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>5} {:>6} | {:>11} {:>11} {:>11} {:>11} {:>11}",
        "kernel", "I/O", "#ops", "depth", "[14]", "V1", "V2", "V3", "V4"
    );
    for benchmark in Benchmark::TABLE3 {
        let record = benchmark.paper_record();
        let dfg = benchmark.dfg().expect("benchmark builds");
        let stats = dfg.analysis().stats(&dfg);
        let mut cells = Vec::new();
        for (variant, paper) in [
            (FuVariant::Baseline, record.ii_baseline),
            (FuVariant::V1, record.ii_v1),
            (FuVariant::V2, record.ii_v2),
            (FuVariant::V3, record.ii_v3),
            (FuVariant::V4, record.ii_v4),
        ] {
            let stages = schedule(&dfg, variant, Some(8)).expect("schedules");
            let ii = ii_for_variant(&stages, variant);
            cells.push(format!("{ii:>5.1}|{paper:<5.1}"));
        }
        let _ = writeln!(
            out,
            "{:<10} {:>2}/{:<2} {:>5} {:>6} | {}",
            benchmark.name(),
            stats.inputs,
            stats.outputs,
            stats.ops,
            stats.depth,
            cells.join(" ")
        );
    }
    out
}

/// Fig. 5: overlay scalability — slices, DSPs and fmax against overlay size.
pub fn fig5() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Fig. 5: V1/V2 overlay scalability on the Zynq XC7Z020");
    let _ = writeln!(
        out,
        "{:>5} | {:>11} {:>5} {:>6} | {:>11} {:>5} {:>6} | {:>11} {:>5} {:>6}",
        "FUs",
        "[14] slices",
        "DSPs",
        "fmax",
        "V1 slices",
        "DSPs",
        "fmax",
        "V2 slices",
        "DSPs",
        "fmax"
    );
    let sizes: Vec<usize> = (1..=8).map(|i| i * 2).collect();
    let series: Vec<_> = [FuVariant::Baseline, FuVariant::V1, FuVariant::V2]
        .iter()
        .map(|&v| scalability_sweep(v, &sizes).expect("sweep"))
        .collect();
    for i in 0..sizes.len() {
        let _ = writeln!(
            out,
            "{:>5} | {:>11} {:>5} {:>6.0} | {:>11} {:>5} {:>6.0} | {:>11} {:>5} {:>6.0}",
            sizes[i],
            series[0][i].slices,
            series[0][i].dsps,
            series[0][i].fmax_mhz,
            series[1][i].slices,
            series[1][i].dsps,
            series[1][i].fmax_mhz,
            series[2][i].slices,
            series[2][i].dsps,
            series[2][i].fmax_mhz,
        );
    }
    let _ = writeln!(
        out,
        "fixed depth-8 overlays: V3 {} slices @ {:.0} MHz, V4 {} slices @ {:.0} MHz",
        OverlayConfig::new(FuVariant::V3, 8)
            .unwrap()
            .resource_estimate()
            .slices,
        OverlayConfig::new(FuVariant::V3, 8).unwrap().fmax_mhz(),
        OverlayConfig::new(FuVariant::V4, 8)
            .unwrap()
            .resource_estimate()
            .slices,
        OverlayConfig::new(FuVariant::V4, 8).unwrap().fmax_mhz(),
    );
    out
}

/// Fig. 6: simulated throughput and latency for every benchmark and variant.
pub fn fig6() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Fig. 6: throughput (GOPS) and latency (ns) per benchmark"
    );
    let _ = writeln!(
        out,
        "{:<10} | {:>22} {:>22} {:>22} {:>22} {:>22}",
        "kernel", "[14]", "V1", "V2", "V3", "V4"
    );
    for benchmark in Benchmark::TABLE3 {
        let dfg = benchmark.dfg().expect("benchmark builds");
        let results =
            compare_variants(&dfg, &FuVariant::EVALUATED, 48, 2024).expect("comparison runs");
        let cells: Vec<String> = results
            .iter()
            .map(|r| {
                format!(
                    "{:>8.2} GOPS {:>6.0} ns",
                    r.performance.throughput_gops, r.performance.latency_ns
                )
            })
            .collect();
        let _ = writeln!(out, "{:<10} | {}", benchmark.name(), cells.join(" "));
    }
    out
}

/// Sec. V context-switch comparison: PCAP reconfiguration vs. instruction
/// reload, and the resulting speedup.
pub fn context_switch() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Hardware context switch (largest benchmark per column):"
    );
    let model = ReconfigModel::new();
    let _ = writeln!(
        out,
        "{:<10} {:>14} {:>14} {:>14} {:>12}",
        "kernel", "V1 full (us)", "V2 full (us)", "V3 reload (us)", "speedup"
    );
    for benchmark in Benchmark::TABLE3 {
        let v1 = Compiler::new(FuVariant::V1)
            .compile_benchmark(benchmark)
            .unwrap();
        let v2 = Compiler::new(FuVariant::V2)
            .compile_benchmark(benchmark)
            .unwrap();
        let v3 = Compiler::new(FuVariant::V3)
            .compile_benchmark(benchmark)
            .unwrap();
        let v1_switch = model.full_switch(
            &OverlayConfig::new(FuVariant::V1, v1.num_fus()).unwrap(),
            v1.program.config_bits(),
        );
        let v2_switch = model.full_switch(
            &OverlayConfig::new(FuVariant::V2, v2.num_fus()).unwrap(),
            v2.program.config_bits(),
        );
        let v3_switch = model.program_only_switch(FuVariant::V3, v3.program.config_bits());
        let _ = writeln!(
            out,
            "{:<10} {:>14.2} {:>14.2} {:>14.3} {:>11.0}x",
            benchmark.name(),
            v1_switch.total_us(),
            v2_switch.total_us(),
            v3_switch.total_us(),
            v3_switch.speedup_over(&v1_switch)
        );
    }
    out
}

/// The worked examples of Sections III–IV: gradient and qspline figures.
pub fn worked_examples() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Worked examples (Sec. III-IV):");
    // gradient on V1/V2
    let gradient = Benchmark::Gradient.dfg().unwrap();
    let schedule_g = asap_schedule(&gradient).unwrap();
    let _ = writeln!(
        out,
        "  gradient: II [14] = {}, V1 = {}, V2 = {} (paper: 11 / 6 / 3)",
        ii_for_variant(&schedule_g, FuVariant::Baseline),
        ii_for_variant(&schedule_g, FuVariant::V1),
        ii_for_variant(&schedule_g, FuVariant::V2),
    );
    // qspline on a depth-4 V3/V4 overlay vs the depth-8 V1 overlay
    for (variant, depth) in [(FuVariant::V3, 4), (FuVariant::V4, 4), (FuVariant::V1, 8)] {
        let compiled = Compiler::new(variant)
            .with_fixed_depth(depth)
            .compile_benchmark(Benchmark::Qspline)
            .unwrap();
        let overlay = Overlay::new(variant, depth.max(compiled.num_fus())).unwrap();
        let workload = tm_overlay::Workload::random(7, 48, 5);
        let run = overlay.execute(&compiled, &workload).unwrap();
        let report = overlay.performance(&compiled, &run);
        let _ = writeln!(
            out,
            "  qspline on depth-{depth} {variant}: II {:.1}, {:.2} GOPS, {:.0} ns latency",
            report.measured_ii, report.throughput_gops, report.latency_ns
        );
    }
    out
}

/// Ablation: how the internal write-back path length (IWP 5/4/3 for V3/V4/V5)
/// trades NOP insertion against operating frequency on the deep benchmarks.
pub fn iwp_ablation() -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "IWP ablation on the fixed depth-8 overlay (deep kernels):"
    );
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>8} {:>8} {:>10} {:>10} {:>10}",
        "kernel", "V3 nops", "V4 nops", "V5 nops", "V3 GOPS", "V4 GOPS", "V5 GOPS"
    );
    for benchmark in [Benchmark::Poly6, Benchmark::Poly7, Benchmark::Poly8] {
        let dfg = benchmark.dfg().unwrap();
        let mut nops = Vec::new();
        let mut gops = Vec::new();
        for variant in [FuVariant::V3, FuVariant::V4, FuVariant::V5] {
            let stages = schedule(&dfg, variant, Some(8)).unwrap();
            nops.push(stages.total_nops());
            let ii = ii_for_variant(&stages, variant);
            let fmax = OverlayConfig::new(variant, 8).unwrap().fmax_mhz();
            gops.push(dfg.num_ops() as f64 * fmax / ii / 1_000.0);
        }
        let _ = writeln!(
            out,
            "{:<10} {:>8} {:>8} {:>8} {:>10.2} {:>10.2} {:>10.2}",
            benchmark.name(),
            nops[0],
            nops[1],
            nops[2],
            gops[0],
            gops[1],
            gops[2]
        );
    }
    out
}

/// The known top-level sections of `BENCH_runtime.json`, in emission order.
const BENCH_JSON_SECTIONS: [&str; 7] = [
    "runtime_scalability",
    "cluster_scalability",
    "parallel_cluster",
    "batching_replication",
    "fault_recovery",
    "dag_pipeline",
    "profile",
];

/// Why [`splice_bench_json`] refused to produce a combined document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpliceError {
    /// The requested section is not a known `BENCH_runtime.json` section.
    UnknownSection {
        /// The section name that was requested.
        section: String,
    },
    /// The payload does not carry the `"bench": "<section>"` marker naming
    /// the section it claims to be — a malformed or misrouted payload would
    /// silently overwrite good data.
    MissingMarker {
        /// The section the payload was offered for.
        section: String,
    },
    /// The existing document already holds this section under a *newer*
    /// declared `"schema"` version than the incoming payload (or under a
    /// versioned one where the incoming payload has none) — splicing would
    /// silently downgrade data a different reader expects. Same-version
    /// replacement and upgrades to a newer schema are allowed.
    SchemaMismatch {
        /// The section being spliced.
        section: String,
        /// The schema version declared by the existing section.
        existing: Option<u64>,
        /// The schema version declared by the incoming payload.
        incoming: Option<u64>,
    },
}

impl std::fmt::Display for SpliceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpliceError::UnknownSection { section } => {
                write!(f, "unknown bench section {section}")
            }
            SpliceError::MissingMarker { section } => write!(
                f,
                "payload for section {section} lacks its \"bench\": \"{section}\" marker"
            ),
            SpliceError::SchemaMismatch {
                section,
                existing,
                incoming,
            } => write!(
                f,
                "section {section} schema mismatch: existing {existing:?} vs incoming \
                 {incoming:?} — refusing to overwrite"
            ),
        }
    }
}

impl std::error::Error for SpliceError {}

/// Splices one bench's JSON `payload` (a complete JSON object string) into
/// the combined `BENCH_runtime.json` document under `section`, preserving
/// every other known section of `existing` verbatim.
///
/// The combined document is one object with a top-level key per bench.
/// A legacy document whose *root* is a single bench payload (it carries a
/// root-level `"bench": "runtime_scalability"` marker) is migrated into the
/// sectioned layout on the first splice. Returns the new document text.
///
/// # Errors
///
/// Refuses — instead of silently overwriting the existing section — when
/// the section is unknown, when the payload does not carry its own
/// `"bench": "<section>"` marker, or when the existing section declares a
/// `"schema"` version *newer* than the incoming payload's (or the incoming
/// payload declares none). Same-version replacement and schema upgrades
/// pass; an existing section *without* a schema marker accepts any payload:
/// that is the legacy-to-versioned upgrade path.
pub fn splice_bench_json(
    existing: Option<&str>,
    section: &str,
    payload: &str,
) -> Result<String, SpliceError> {
    if !BENCH_JSON_SECTIONS.contains(&section) {
        return Err(SpliceError::UnknownSection {
            section: section.to_owned(),
        });
    }
    let has_marker = payload.contains(&format!("\"bench\": \"{section}\""))
        || payload.contains(&format!("\"bench\":\"{section}\""));
    if !has_marker {
        return Err(SpliceError::MissingMarker {
            section: section.to_owned(),
        });
    }
    if let Some(kept) = existing.and_then(|doc| extract_json_section(doc, section)) {
        let existing_schema = section_schema(&kept);
        let incoming_schema = section_schema(payload);
        let compatible = match (existing_schema, incoming_schema) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(old), Some(new)) => new >= old,
        };
        if !compatible {
            return Err(SpliceError::SchemaMismatch {
                section: section.to_owned(),
                existing: existing_schema,
                incoming: incoming_schema,
            });
        }
    }
    let mut sections: Vec<(&str, String)> = Vec::new();
    for &name in &BENCH_JSON_SECTIONS {
        if name == section {
            sections.push((name, payload.trim().to_owned()));
        } else if let Some(kept) = existing.and_then(|doc| extract_json_section(doc, name)) {
            sections.push((name, kept));
        }
    }
    let mut out = String::from("{\n");
    for (i, (name, body)) in sections.iter().enumerate() {
        let comma = if i + 1 < sections.len() { "," } else { "" };
        let _ = writeln!(out, "\"{name}\": {body}{comma}");
    }
    out.push_str("}\n");
    Ok(out)
}

/// The schema version every section of `BENCH_runtime.json` emits as of the
/// observability PR: versions ≥ 2 carry the [`provenance_json_fields`]
/// block next to the `"bench"` marker.
pub const BENCH_JSON_SCHEMA: u64 = 2;

/// The provenance fields a schema-2 bench section embeds right after its
/// `"bench"`/`"schema"` markers: the emitting host, the unix timestamp of
/// the run, and the repository revision — so a spliced
/// `BENCH_runtime.json` records where each section's numbers came from.
/// Returns a fragment like
/// `"host": "ci-runner", "timestamp": 1754600000, "git_rev": "abc1234"`
/// (no surrounding braces, no trailing comma); unknown values degrade to
/// `"unknown"` / 0 rather than failing the bench.
pub fn provenance_json_fields() -> String {
    // `/etc/hostname` first — the env fallbacks are login-shell variables
    // CI runners and containers rarely export.
    let host = std::fs::read_to_string("/etc/hostname")
        .ok()
        .map(|name| name.trim().to_owned())
        .filter(|name| !name.is_empty())
        .or_else(|| std::env::var("HOSTNAME").ok())
        .or_else(|| std::env::var("HOST").ok())
        .unwrap_or_else(|| "unknown".to_owned());
    let timestamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|elapsed| elapsed.as_secs())
        .unwrap_or(0);
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    let escape = |s: &str| -> String {
        s.chars()
            .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
            .collect()
    };
    format!(
        "\"host\": \"{}\", \"timestamp\": {timestamp}, \"git_rev\": \"{}\"",
        escape(&host),
        escape(&git_rev)
    )
}

/// The `"schema": N` version a section payload declares at its top level,
/// if any (the first occurrence — section payloads declare it right after
/// their `"bench"` marker).
fn section_schema(payload: &str) -> Option<u64> {
    let marker = "\"schema\":";
    let rest = &payload[payload.find(marker)? + marker.len()..];
    let digits: String = rest
        .trim_start()
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Extracts the balanced-brace object stored under top-level `key` in the
/// combined document — or, for the legacy single-bench layout, the whole
/// root object when its `"bench"` marker names `key`.
fn extract_json_section(doc: &str, key: &str) -> Option<String> {
    let marker = format!("\"{key}\":");
    let body = if let Some(position) = doc.find(&marker) {
        &doc[position + marker.len()..]
    } else if doc.contains(&format!("\"bench\": \"{key}\"")) {
        doc // legacy: the root object *is* this section's payload
    } else {
        return None;
    };
    let start = body.find('{')?;
    let mut depth = 0usize;
    for (offset, ch) in body[start..].char_indices() {
        match ch {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(body[start..start + offset + 1].to_owned());
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_report_renders_nonempty_text() {
        for text in [
            table1(),
            table2(),
            table3(),
            fig5(),
            context_switch(),
            worked_examples(),
            iwp_ablation(),
        ] {
            assert!(text.lines().count() > 3, "report too short:\n{text}");
        }
    }

    #[test]
    fn table3_lists_every_benchmark() {
        let text = table3();
        for benchmark in Benchmark::TABLE3 {
            assert!(text.contains(benchmark.name()));
        }
    }

    #[test]
    fn bench_json_sections_splice_and_preserve_each_other() {
        let runtime = "{\n  \"bench\": \"runtime_scalability\",\n  \"entries\": [{\"a\": 1}]\n}";
        // First write: only the runtime section exists.
        let doc = splice_bench_json(None, "runtime_scalability", runtime).unwrap();
        assert!(doc.contains("\"runtime_scalability\": {"));
        assert!(!doc.contains("cluster_scalability"));
        // Adding the cluster section preserves the runtime payload verbatim.
        let cluster = "{\n  \"bench\": \"cluster_scalability\",\n  \"entries\": []\n}";
        let doc = splice_bench_json(Some(&doc), "cluster_scalability", cluster).unwrap();
        assert!(doc.contains("\"runtime_scalability\": {"));
        assert!(doc.contains("\"cluster_scalability\": {"));
        assert!(doc.contains("\"entries\": [{\"a\": 1}]"));
        // Re-splicing one section leaves the other untouched.
        let updated = "{\n  \"bench\": \"runtime_scalability\",\n  \"entries\": [{\"a\": 2}]\n}";
        let doc = splice_bench_json(Some(&doc), "runtime_scalability", updated).unwrap();
        assert!(doc.contains("[{\"a\": 2}]"));
        assert!(doc.contains("\"cluster_scalability\": {"));
        // The third section rides alongside the first two.
        let batching = "{\n  \"bench\": \"batching_replication\",\n  \"entries\": []\n}";
        let doc = splice_bench_json(Some(&doc), "batching_replication", batching).unwrap();
        assert!(doc.contains("\"runtime_scalability\": {"));
        assert!(doc.contains("\"cluster_scalability\": {"));
        assert!(doc.contains("\"batching_replication\": {"));
    }

    #[test]
    fn bench_json_migrates_the_legacy_single_bench_layout() {
        // The pre-cluster BENCH_runtime.json was the runtime payload at the
        // root; splicing the cluster section must adopt it as a section.
        let legacy = "{\n  \"bench\": \"runtime_scalability\",\n  \"reps\": 3,\n  \
                      \"entries\": [{\"tiles\": 4}]\n}\n";
        let cluster = "{\"bench\": \"cluster_scalability\"}";
        let doc = splice_bench_json(Some(legacy), "cluster_scalability", cluster).unwrap();
        assert!(doc.contains("\"runtime_scalability\": {"));
        assert!(doc.contains("\"entries\": [{\"tiles\": 4}]"));
        assert!(doc.contains("\"cluster_scalability\": {\"bench\": \"cluster_scalability\"}"));
    }

    /// The splice guard: a payload whose schema version or shape does not
    /// match what the combined file already holds is refused instead of
    /// silently overwriting the existing section.
    #[test]
    fn bench_json_refuses_mismatched_sections() {
        // Unknown sections never splice.
        assert_eq!(
            splice_bench_json(None, "nonsense", "{\"bench\": \"nonsense\"}"),
            Err(SpliceError::UnknownSection {
                section: "nonsense".into()
            })
        );
        // A payload without its own bench marker is malformed (or aimed at
        // the wrong section) and must not replace good data.
        let err = splice_bench_json(None, "cluster_scalability", "{\"entries\": []}");
        assert_eq!(
            err,
            Err(SpliceError::MissingMarker {
                section: "cluster_scalability".into()
            })
        );
        let misrouted = "{\"bench\": \"runtime_scalability\", \"entries\": []}";
        assert!(splice_bench_json(None, "cluster_scalability", misrouted).is_err());
        // Compact (no-space) emitters still carry a valid marker.
        let compact = "{\"bench\":\"cluster_scalability\",\"entries\":[]}";
        assert!(splice_bench_json(None, "cluster_scalability", compact).is_ok());

        // A versioned section refuses a payload with an *older* version...
        let v2 = "{\"bench\": \"runtime_scalability\", \"schema\": 2, \"entries\": [{\"a\": 1}]}";
        let doc = splice_bench_json(None, "runtime_scalability", v2).unwrap();
        let v1 = "{\"bench\": \"runtime_scalability\", \"schema\": 1, \"entries\": []}";
        assert_eq!(
            splice_bench_json(Some(&doc), "runtime_scalability", v1),
            Err(SpliceError::SchemaMismatch {
                section: "runtime_scalability".into(),
                existing: Some(2),
                incoming: Some(1),
            })
        );
        // ...and one that dropped the version entirely (a shape regression).
        let unversioned = "{\"bench\": \"runtime_scalability\", \"entries\": []}";
        let refused = splice_bench_json(Some(&doc), "runtime_scalability", unversioned);
        assert!(matches!(
            refused,
            Err(SpliceError::SchemaMismatch { incoming: None, .. })
        ));
        // The refusal left the file buildable: the existing doc still holds
        // the v2 payload and same-version re-splices keep working.
        let v2_again =
            "{\"bench\": \"runtime_scalability\", \"schema\": 2, \"entries\": [{\"a\": 9}]}";
        let doc = splice_bench_json(Some(&doc), "runtime_scalability", v2_again).unwrap();
        assert!(doc.contains("[{\"a\": 9}]"));
        // A legacy (unversioned) existing section accepts a versioned
        // upgrade — that is the migration path.
        let legacy_doc = splice_bench_json(None, "runtime_scalability", unversioned).unwrap();
        assert!(splice_bench_json(Some(&legacy_doc), "runtime_scalability", v1).is_ok());
        // Errors render a readable reason.
        assert!(SpliceError::UnknownSection {
            section: "x".into()
        }
        .to_string()
        .contains("unknown bench section"));
    }

    /// Schema upgrades splice over older sections (a reader of version N
    /// understands N, not N+1 — so upgrading is safe, downgrading is not),
    /// and the schema-2 provenance block carries its three fields.
    #[test]
    fn bench_json_upgrades_schemas_and_stamps_provenance() {
        let v1 = "{\"bench\": \"runtime_scalability\", \"schema\": 1, \"entries\": []}";
        let doc = splice_bench_json(None, "runtime_scalability", v1).unwrap();
        let v2 = format!(
            "{{\"bench\": \"runtime_scalability\", \"schema\": {BENCH_JSON_SCHEMA}, {}, \
             \"entries\": [{{\"a\": 1}}]}}",
            provenance_json_fields()
        );
        let doc = splice_bench_json(Some(&doc), "runtime_scalability", &v2).unwrap();
        assert!(doc.contains("\"schema\": 2"));
        assert!(doc.contains("\"host\":"));
        assert!(doc.contains("\"timestamp\":"));
        assert!(doc.contains("\"git_rev\":"));
        // The new profile section splices alongside the existing ones.
        let profile = "{\"bench\": \"profile\", \"schema\": 2, \"stages\": []}";
        let doc = splice_bench_json(Some(&doc), "profile", profile).unwrap();
        assert!(doc.contains("\"profile\":"));
        assert!(doc.contains("\"runtime_scalability\":"));
    }
}
