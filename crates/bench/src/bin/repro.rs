//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p overlay-bench --bin repro              # everything
//! cargo run -p overlay-bench --bin repro -- table3    # one artefact
//! ```
//!
//! Valid selectors: `table1`, `table2`, `table3`, `fig5`, `fig6`,
//! `context-switch`, `examples`, `ablation`.

use overlay_bench as bench;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let selectors: Vec<&str> = if args.is_empty() {
        vec![
            "table1",
            "table2",
            "table3",
            "fig5",
            "fig6",
            "context-switch",
            "examples",
            "ablation",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };

    for selector in selectors {
        let text = match selector {
            "table1" => bench::table1(),
            "table2" => bench::table2(),
            "table3" => bench::table3(),
            "fig5" => bench::fig5(),
            "fig6" => bench::fig6(),
            "context-switch" => bench::context_switch(),
            "examples" => bench::worked_examples(),
            "ablation" => bench::iwp_ablation(),
            other => {
                eprintln!("unknown selector `{other}`");
                std::process::exit(2);
            }
        };
        println!("{text}");
        println!("{}", "=".repeat(100));
    }
}
