//! Request-span tracing on the virtual timeline.
//!
//! A [`TraceRecorder`] is a bounded, drop-oldest ring buffer of typed
//! [`TraceEvent`]s. The event loops own exactly one recorder each and run on
//! a single thread, so recording is a plain (lock-free) ring push — no
//! atomics, no allocation per span beyond what the span itself carries — and
//! with the default [`TraceConfig::disabled`] every hook is one branch on
//! [`TraceRecorder::enabled`] and otherwise free. That zero-cost-off
//! property is what lets the equivalence proptests pin tracing-off serves
//! bitwise-identical to the pre-observability runtime.
//!
//! Spans cover the full request lifecycle — submit, admission verdict, route
//! choice (with the losing candidate's completion estimate), queue wait,
//! image acquisition/prefetch, context switch, batch membership, run,
//! commit/reject — plus control-plane counters (replica push/demote, memo
//! hit/join). Times are virtual microseconds, the same clock the
//! [`EventQueue`](crate::event) runs on.

/// Whether — and how much — the serve records spans.
///
/// Follows the control-plane idiom ([`BatchConfig::disabled`](crate::BatchConfig::disabled)):
/// the default is off, and off is proptest-pinned bitwise-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    capacity: usize,
}

impl TraceConfig {
    /// Tracing off (the default): every hook short-circuits, no event is
    /// ever stored, and the serve is bitwise-identical to one on a build
    /// without observability.
    pub fn disabled() -> Self {
        TraceConfig { capacity: 0 }
    }

    /// Tracing on with a bounded ring of `capacity` events; once full, the
    /// oldest event is dropped (and counted) per new event. A capacity of 0
    /// is [`disabled`](TraceConfig::disabled).
    pub fn with_capacity(capacity: usize) -> Self {
        TraceConfig { capacity }
    }

    /// Tracing on with the default ring capacity (65 536 events — roughly
    /// ten thousand requests of full lifecycle spans).
    pub fn enabled() -> Self {
        TraceConfig::with_capacity(65_536)
    }

    /// True when spans will be recorded.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig::disabled()
    }
}

/// Which control-plane counter a [`SpanKind::Counter`] event samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterName {
    /// A kernel image was pushed ahead of demand by the replicator.
    ReplicaPushed,
    /// A pushed replica was demoted from a pressured device store.
    ReplicaDemoted,
    /// A request's simulation was answered from the memo.
    MemoHit,
    /// A request joined an identical in-flight simulation.
    MemoJoin,
}

impl CounterName {
    /// The counter's export name.
    pub fn label(&self) -> &'static str {
        match self {
            CounterName::ReplicaPushed => "replicas_pushed",
            CounterName::ReplicaDemoted => "replicas_demoted",
            CounterName::MemoHit => "sim_memo_hits",
            CounterName::MemoJoin => "sim_memo_joins",
        }
    }

    fn index(&self) -> usize {
        match self {
            CounterName::ReplicaPushed => 0,
            CounterName::ReplicaDemoted => 1,
            CounterName::MemoHit => 2,
            CounterName::MemoJoin => 3,
        }
    }
}

/// The cluster router's weighed decision for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteChoice {
    /// The routing policy's export label.
    pub policy: &'static str,
    /// The chosen device.
    pub chosen: usize,
    /// `(device, estimated completion µs)` for each candidate weighed;
    /// empty for policies that never estimate (hash, least-loaded).
    pub candidates: Vec<(usize, f64)>,
}

/// What a span records — one lifecycle stage of a request, or a counter
/// sample from the control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanKind {
    /// The request entered the runtime's in-flight set (instant, at its
    /// arrival timestamp).
    Submit,
    /// The admission verdict at arrival (instant).
    Admission {
        /// False when admission control shed the request.
        admitted: bool,
    },
    /// The cluster router's pick (instant, device-level). Boxed to keep the
    /// common lifecycle spans small in the ring — route choices are one
    /// event per request, the rest are the hot path.
    RouteChoice(Box<RouteChoice>),
    /// From arrival to tile start — the queueing portion of latency.
    QueueWait,
    /// Kernel-image acquisition serialized ahead of this request's context
    /// switch (cluster only: inter-device transfer or host load).
    Acquire {
        /// Where the image came from (`"transfer"` or `"host"`).
        source: &'static str,
        /// Image bytes moved (0 for host loads).
        bytes: u64,
    },
    /// A replication push moving an image ahead of demand (instant,
    /// device-level, off the request critical path).
    Prefetch {
        /// Image bytes prefetched.
        bytes: u64,
    },
    /// The tile's instruction-reload context switch for this request.
    ContextSwitch,
    /// The request was dispatched as part of a same-kernel batch (instant,
    /// at tile start).
    Batch {
        /// Length of the same-kernel run so far, this request included.
        run_len: u32,
    },
    /// Kernel execution on the tile, from switch end to completion.
    Run,
    /// The request completed and its outcome was committed (instant).
    Commit,
    /// The request was rejected by admission control (instant).
    Reject,
    /// A control-plane counter sample: `value` is the running total at this
    /// virtual time.
    Counter {
        /// Which counter.
        name: CounterName,
        /// The counter's cumulative value after this event.
        value: u64,
    },
    /// A device died abruptly (instant, device-level): its queued and
    /// in-flight work requeues and its kernel store is wiped.
    DeviceDown,
    /// A device rejoined the fleet after a death or drain (instant,
    /// device-level).
    DeviceUp,
    /// A graceful-drain phase boundary (instant, device-level).
    DrainPhase {
        /// True when the drain begins (the device stops admitting), false
        /// when it rejoins warm.
        begin: bool,
    },
    /// A request displaced off a dead or draining device re-entered routing
    /// (instant; `device` is the one it left).
    Requeue,
    /// The interconnect's transfer cost was rescaled (instant, fleet-wide;
    /// recorded on device 0).
    LinkDegrade {
        /// The absolute multiplier applied to link costs (1.0 restores).
        multiplier: f64,
    },
    /// A pipeline stage's last input arrived and it became dispatchable
    /// (instant; `device` is the producing device that released it).
    StageReady {
        /// How many producer stages fed this stage.
        deps: u32,
    },
    /// An inter-device activation transfer priced ahead of a stage's run
    /// (instant, at dispatch; `device` is the consumer's device).
    StageTransfer {
        /// The producing device the activations move from.
        from: usize,
        /// Activation bytes moved.
        bytes: u64,
    },
    /// The weighted-fair SLO admission verdict for a stage (instant).
    SloAdmit {
        /// The session's SLO class.
        class: crate::session::SloClass,
        /// False when the session's weighted-fair share was exhausted.
        admitted: bool,
    },
    /// The inter-stage activation transfer charged on this request's start
    /// critical path, between image acquisition and the context switch
    /// (pipeline serves only).
    Activation,
    /// An SLO error-budget burn alert fired: the class's fast- and
    /// slow-window burn rates both crossed the objective's threshold at
    /// this window close (instant, device 0).
    SloBurn {
        /// The alerting SLO class.
        class: crate::session::SloClass,
        /// The telemetry window index the alert fired at.
        window: u64,
    },
    /// A previously fired burn alert cleared: the fast-window burn rate
    /// dropped back under threshold (instant, device 0).
    SloClear {
        /// The recovering SLO class.
        class: crate::session::SloClass,
        /// The telemetry window index the alert cleared at.
        window: u64,
    },
}

impl SpanKind {
    /// The span's export name.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Submit => "submit",
            SpanKind::Admission { .. } => "admission",
            SpanKind::RouteChoice(_) => "route",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::Acquire { .. } => "acquire",
            SpanKind::Prefetch { .. } => "prefetch",
            SpanKind::ContextSwitch => "context-switch",
            SpanKind::Batch { .. } => "batch",
            SpanKind::Run => "run",
            SpanKind::Commit => "commit",
            SpanKind::Reject => "reject",
            SpanKind::Counter { name, .. } => name.label(),
            SpanKind::DeviceDown => "device-down",
            SpanKind::DeviceUp => "device-up",
            SpanKind::DrainPhase { .. } => "drain",
            SpanKind::Requeue => "requeue",
            SpanKind::LinkDegrade { .. } => "link-degrade",
            SpanKind::StageReady { .. } => "stage-ready",
            SpanKind::StageTransfer { .. } => "stage-transfer",
            SpanKind::SloAdmit { .. } => "slo-admit",
            SpanKind::Activation => "activation",
            SpanKind::SloBurn { .. } => "slo-burn",
            SpanKind::SloClear { .. } => "slo-clear",
        }
    }
}

/// One recorded span: a [`SpanKind`] anchored on the virtual timeline.
///
/// `dur_us` is 0 for instants. `device` is 0 for a plain
/// [`Runtime`](crate::Runtime) serve; `tile` is `None` for device-level
/// events (submission, admission, routing, counters).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Span start, virtual microseconds.
    pub time_us: f64,
    /// Span duration, virtual microseconds (0 for instants).
    pub dur_us: f64,
    /// The request this span belongs to (`None` for counters/prefetches).
    pub request_id: Option<u64>,
    /// The device the span happened on.
    pub device: usize,
    /// The tile the span happened on (`None` for device-level events).
    pub tile: Option<usize>,
    /// What happened.
    pub kind: SpanKind,
}

/// The completed trace a serve report hands back when tracing was on.
///
/// Internally this still holds the packed binary records the ring captured;
/// the typed [`TraceEvent`]s are decoded once, lazily, on first access to
/// [`events`](Trace::events). Decoding off the serve's timed path is the
/// other half of the sub-5%-overhead bargain: the serve only pays for the
/// fixed-width capture, and whoever reads the trace pays the (one-time)
/// expansion.
#[derive(Debug)]
pub struct Trace {
    packed: Vec<Packed>,
    routes: Vec<RouteChoice>,
    sources: Vec<&'static str>,
    dropped: u64,
    decoded: std::sync::OnceLock<Vec<TraceEvent>>,
}

impl Clone for Trace {
    fn clone(&self) -> Self {
        Trace {
            packed: self.packed.clone(),
            routes: self.routes.clone(),
            sources: self.sources.clone(),
            dropped: self.dropped,
            decoded: std::sync::OnceLock::new(),
        }
    }
}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.dropped == other.dropped && self.events() == other.events()
    }
}

impl Trace {
    /// Every retained span, in recording order (monotone non-decreasing
    /// `time_us` per device). The first call decodes the packed records;
    /// later calls return the cached expansion.
    pub fn events(&self) -> &[TraceEvent] {
        self.decoded.get_or_init(|| {
            let mut out = Vec::with_capacity(self.packed.len() * 2);
            for p in &self.packed {
                unpack_into(p, &self.routes, &self.sources, &mut out);
            }
            out
        })
    }

    /// How many spans the bounded ring dropped (oldest-first) to stay
    /// within capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained spans of one request, in recording order.
    pub fn spans_for(&self, request_id: u64) -> Vec<&TraceEvent> {
        self.events()
            .iter()
            .filter(|event| event.request_id == Some(request_id))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Packed ring storage.
//
// The ring does not store `TraceEvent`s: at ~88 bytes each (the `SpanKind`
// enum alone is 32), a serve's worth of spans streams half a megabyte of
// writes through the cache and the measured tracing overhead blows the ≤5%
// budget. Instead the hot path packs every span into 40 fixed bytes — two
// timestamps, a request id, a tag|device|tile word and one payload word —
// and `finish()` expands back to the typed public `TraceEvent`s once, off
// the timed path. Route choices (the one variant with real structure) park
// their payload in a side ring indexed by the packed word; acquire-source
// labels are interned. Sub-5%-overhead tracers (Perfetto's SDK, LTTng) use
// exactly this shape: fixed-width binary records now, decode later.
// ---------------------------------------------------------------------------

/// One ring slot: `meta` is `tag | device << 8 | tile << 36` (28 bits each
/// for device and tile, all-ones tile = none), `payload` is tag-specific.
#[derive(Debug, Clone, Copy)]
struct Packed {
    time_us: f64,
    dur_us: f64,
    /// `u64::MAX` encodes "no request".
    request_id: u64,
    meta: u64,
    payload: u64,
}

/// Every packed-record tag, in one exhaustive enum — the single registry a
/// new span type must be added to, so tag bytes cannot collide the way
/// scattered constants could. The discriminant *is* the on-ring byte
/// (low 8 bits of `meta`); [`SpanTag::from_byte`] is its inverse, and the
/// round-trip test pins the two agree on every variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u64)]
pub(crate) enum SpanTag {
    Submit = 0,
    Admission = 1,
    Route = 2,
    QueueWait = 3,
    Acquire = 4,
    Prefetch = 5,
    ContextSwitch = 6,
    Batch = 7,
    Run = 8,
    Commit = 9,
    Reject = 10,
    Counter = 11,
    // Fused lifecycle records — the event loop emits a request's spans in
    // one burst at commit time, and every ring push is an in-situ cache
    // touch, so always-adjacent pairs share one record and split back apart
    // at decode.
    /// Queue wait plus batch membership: the span is the wait, `payload` is
    /// the same-kernel run length (a Batch instant decodes out when ≥ 2).
    QueueBatch = 12,
    /// Run plus the commit instant at its end; `payload` is the exact
    /// `f64::to_bits` of the commit timestamp (`time + dur` can differ from
    /// the modeled completion by an ulp).
    RunCommit = 13,
    // Fault-injection spans — all instants with no side-table payloads, so
    // they pass through lane absorption verbatim.
    DeviceDown = 14,
    DeviceUp = 15,
    /// Payload is 1 at drain begin, 0 when the device rejoins warm.
    Drain = 16,
    Requeue = 17,
    /// Payload is the link multiplier's `f64::to_bits`.
    LinkDegrade = 18,
    // Session-tier spans — instants with no side-table payloads, so they
    // too pass through lane absorption verbatim.
    /// Payload is the number of producer stages that fed this stage.
    StageReady = 19,
    /// Payload is `from_device | bytes << 16` (activation transfer).
    StageTransfer = 20,
    /// Payload is `admitted | class_index << 1`.
    SloAdmit = 21,
    /// A request-level activation-transfer span on the start critical path.
    Activation = 22,
    // Telemetry burn-alert spans — instants with no side-table payloads, so
    // they pass through lane absorption verbatim.
    /// Payload is `class_index | window << 2`.
    SloBurn = 23,
    /// Payload is `class_index | window << 2`.
    SloClear = 24,
}

impl SpanTag {
    /// Every tag, in discriminant order.
    pub(crate) const ALL: [SpanTag; 25] = [
        SpanTag::Submit,
        SpanTag::Admission,
        SpanTag::Route,
        SpanTag::QueueWait,
        SpanTag::Acquire,
        SpanTag::Prefetch,
        SpanTag::ContextSwitch,
        SpanTag::Batch,
        SpanTag::Run,
        SpanTag::Commit,
        SpanTag::Reject,
        SpanTag::Counter,
        SpanTag::QueueBatch,
        SpanTag::RunCommit,
        SpanTag::DeviceDown,
        SpanTag::DeviceUp,
        SpanTag::Drain,
        SpanTag::Requeue,
        SpanTag::LinkDegrade,
        SpanTag::StageReady,
        SpanTag::StageTransfer,
        SpanTag::SloAdmit,
        SpanTag::Activation,
        SpanTag::SloBurn,
        SpanTag::SloClear,
    ];

    /// The inverse of the discriminant cast: the tag whose on-ring byte is
    /// `byte`, or `None` for bytes no variant claims.
    pub(crate) fn from_byte(byte: u64) -> Option<SpanTag> {
        SpanTag::ALL.get(byte as usize).copied()
    }
}

const FIELD_BITS: u64 = 28;
const FIELD_MASK: u64 = (1 << FIELD_BITS) - 1;
const NO_TILE: u64 = FIELD_MASK;

/// Decoded device id meaning "the real id exceeded the 28-bit meta field".
///
/// Ids at or above this value saturate to it at encode (with a debug
/// assertion), so a decoded trace reports "out of range" instead of silently
/// attributing spans to an aliased device.
pub const DEVICE_ID_OUT_OF_RANGE: usize = FIELD_MASK as usize;

/// Decoded tile id meaning "the real id exceeded the 28-bit meta field"
/// (`FIELD_MASK` itself encodes "no tile", so the sentinel sits one below).
pub const TILE_ID_OUT_OF_RANGE: usize = (FIELD_MASK - 1) as usize;

/// Acquire-source label decoded when the interning table overflowed its
/// 16-bit index field — the 65 536th and later distinct source strings all
/// report as this sentinel instead of aliasing an earlier source.
pub const ACQUIRE_SOURCE_OVERFLOW: &str = "source-overflow";

/// Bits of the `Acquire` payload that hold the interned-source index; the
/// remaining 48 hold the byte count.
const ACQUIRE_INDEX_BITS: u64 = 16;
const ACQUIRE_INDEX_MASK: u64 = (1 << ACQUIRE_INDEX_BITS) - 1;
/// Largest byte count the 48-bit `Acquire` payload field can carry; larger
/// counts saturate (with a debug assertion) instead of silently dropping
/// their top bits.
const ACQUIRE_BYTES_MAX: u64 = (1 << (64 - ACQUIRE_INDEX_BITS)) - 1;

/// Bits of the `StageTransfer` payload that hold the producing device; the
/// remaining 48 hold the activation byte count (same split as `Acquire`).
const STAGE_FROM_BITS: u64 = 16;
/// Largest activation byte count the `StageTransfer` payload can carry.
const STAGE_BYTES_MAX: u64 = (1 << (64 - STAGE_FROM_BITS)) - 1;

#[inline]
fn pack_meta(tag: SpanTag, device: usize, tile: Option<usize>) -> u64 {
    let tag = tag as u64;
    debug_assert!(
        (device as u64) < FIELD_MASK,
        "device id {device} exceeds the 28-bit trace meta field"
    );
    let device = (device as u64).min(DEVICE_ID_OUT_OF_RANGE as u64);
    let tile = tile.map_or(NO_TILE, |t| {
        debug_assert!(
            (t as u64) < TILE_ID_OUT_OF_RANGE as u64,
            "tile id {t} exceeds the 28-bit trace meta field"
        );
        (t as u64).min(TILE_ID_OUT_OF_RANGE as u64)
    });
    tag | (device << 8) | (tile << (8 + FIELD_BITS))
}

/// The bounded drop-oldest ring the event loop records into.
///
/// Single-threaded and lock-free by construction: the loop owns it
/// exclusively. All hooks no-op (one branch) when built from
/// [`TraceConfig::disabled`]. Storage is the packed 40-byte-per-span ring
/// described above; [`finish`](TraceRecorder::finish) pays the one-time
/// expansion to [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceRecorder {
    capacity: usize,
    events: std::collections::VecDeque<Packed>,
    /// Side ring of route-choice payloads, same capacity as the event ring
    /// (`payload` holds the slot). A slot is only reused after `capacity`
    /// further route events, by which point the packed event that pointed
    /// at it has itself been dropped from the ring — so live events never
    /// see a recycled slot.
    routes: Vec<RouteChoice>,
    route_seq: usize,
    /// Interned acquire-source labels (`payload` holds the 16-bit `index`
    /// plus `bytes << 16`; the table is capped at the index field with an
    /// [`ACQUIRE_SOURCE_OVERFLOW`] sentinel).
    sources: Vec<&'static str>,
    dropped: u64,
    counters: [u64; 4],
}

impl TraceRecorder {
    /// A recorder for `config` — inert when the config is disabled. The
    /// ring's backing store starts at a modest preallocation and grows
    /// toward `capacity` on demand: preallocating multi-megabyte rings up
    /// front costs fresh page faults per serve, which is exactly the
    /// overhead the packed layout exists to avoid.
    pub fn new(config: TraceConfig) -> Self {
        TraceRecorder {
            capacity: config.capacity(),
            events: std::collections::VecDeque::with_capacity(config.capacity().min(8_192)),
            routes: Vec::new(),
            route_seq: 0,
            sources: Vec::new(),
            dropped: 0,
            counters: [0; 4],
        }
    }

    /// True when spans are being recorded. Call sites guard any span whose
    /// construction allocates (e.g. route candidates) behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The ring capacity this recorder was built with (0 when disabled).
    /// Lets a holder check whether a drained recorder can be reused for a
    /// given [`TraceConfig`] or must be rebuilt.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Interns an acquire-source label, returning its payload index. The
    /// table is capped at the 16-bit index field: the 65 536th and later
    /// distinct sources all map to the [`ACQUIRE_SOURCE_OVERFLOW`] sentinel
    /// index instead of aliasing an earlier entry.
    fn intern_source(&mut self, source: &'static str) -> u64 {
        if let Some(position) = self
            .sources
            .iter()
            .position(|&s| std::ptr::eq(s, source) || s == source)
        {
            return position as u64;
        }
        if self.sources.len() as u64 >= ACQUIRE_INDEX_MASK {
            debug_assert!(
                false,
                "acquire source interning table overflowed its 16-bit index field"
            );
            return ACQUIRE_INDEX_MASK;
        }
        self.sources.push(source);
        (self.sources.len() - 1) as u64
    }

    /// How many packed records the ring currently holds. The sharded
    /// cluster's lanes record into unbounded recorders and log this cursor
    /// after every event so the commit stage can absorb exactly the records
    /// each event produced.
    pub(crate) fn recorded(&self) -> usize {
        self.events.len()
    }

    /// Re-records one packed record out of a lane recorder's drained
    /// [`Trace`] into this (merged) recorder, translating lane-local
    /// side-table references — route slots and interned source indices —
    /// and recomputing the global counter running totals in merge order.
    /// Everything else is pushed verbatim; the bounded ring's drop-oldest
    /// and route-slot recycling then behave exactly as if this recorder had
    /// captured the span live, which is what lets the sharded cluster's
    /// commit stage rebuild the serial loop's trace byte-for-byte.
    pub(crate) fn absorb_lane_record(&mut self, lane: &Trace, index: usize) {
        if self.capacity == 0 {
            return;
        }
        let packed = lane.packed[index];
        match SpanTag::from_byte(packed.meta & 0xff) {
            Some(SpanTag::Route) => {
                let choice = lane.routes[packed.payload as usize].clone();
                let slot = self.route_seq % self.capacity;
                self.route_seq += 1;
                if slot < self.routes.len() {
                    self.routes[slot] = choice;
                } else {
                    self.routes.push(choice);
                }
                self.push(Packed {
                    payload: slot as u64,
                    ..packed
                });
            }
            Some(SpanTag::Acquire) => {
                let source = lane
                    .sources
                    .get((packed.payload & ACQUIRE_INDEX_MASK) as usize)
                    .copied()
                    .unwrap_or(ACQUIRE_SOURCE_OVERFLOW);
                let index = self.intern_source(source);
                let bytes = packed.payload >> ACQUIRE_INDEX_BITS;
                self.push(Packed {
                    payload: index | (bytes << ACQUIRE_INDEX_BITS),
                    ..packed
                });
            }
            Some(SpanTag::Counter) => {
                // `counter()` bumps by exactly one per record, so replaying
                // the bump in merge order rebuilds the serial running total.
                let slot = (packed.payload & 0xff) as usize;
                self.counters[slot] += 1;
                self.push(Packed {
                    payload: (slot as u64) | (self.counters[slot] << 8),
                    ..packed
                });
            }
            _ => self.push(packed),
        }
    }

    #[inline]
    fn push(&mut self, packed: Packed) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(packed);
    }

    /// Records one span, dropping (and counting) the oldest if the ring is
    /// full. No-op when disabled.
    #[inline]
    pub fn record(&mut self, event: TraceEvent) {
        if self.capacity == 0 {
            return;
        }
        let (tag, payload) = match event.kind {
            SpanKind::Submit => (SpanTag::Submit, 0),
            SpanKind::Admission { admitted } => (SpanTag::Admission, admitted as u64),
            SpanKind::RouteChoice(choice) => {
                let slot = self.route_seq % self.capacity;
                self.route_seq += 1;
                if slot < self.routes.len() {
                    self.routes[slot] = *choice;
                } else {
                    self.routes.push(*choice);
                }
                (SpanTag::Route, slot as u64)
            }
            SpanKind::QueueWait => (SpanTag::QueueWait, 0),
            SpanKind::Acquire { source, bytes } => {
                let index = self.intern_source(source);
                debug_assert!(
                    bytes <= ACQUIRE_BYTES_MAX,
                    "acquire byte count {bytes} exceeds the 48-bit trace payload field"
                );
                let bytes = bytes.min(ACQUIRE_BYTES_MAX);
                (SpanTag::Acquire, index | (bytes << ACQUIRE_INDEX_BITS))
            }
            SpanKind::Prefetch { bytes } => (SpanTag::Prefetch, bytes),
            SpanKind::ContextSwitch => (SpanTag::ContextSwitch, 0),
            SpanKind::Batch { run_len } => (SpanTag::Batch, run_len as u64),
            SpanKind::Run => (SpanTag::Run, 0),
            SpanKind::Commit => (SpanTag::Commit, 0),
            SpanKind::Reject => (SpanTag::Reject, 0),
            SpanKind::Counter { name, value } => {
                (SpanTag::Counter, (name.index() as u64) | (value << 8))
            }
            SpanKind::DeviceDown => (SpanTag::DeviceDown, 0),
            SpanKind::DeviceUp => (SpanTag::DeviceUp, 0),
            SpanKind::DrainPhase { begin } => (SpanTag::Drain, begin as u64),
            SpanKind::Requeue => (SpanTag::Requeue, 0),
            SpanKind::LinkDegrade { multiplier } => (SpanTag::LinkDegrade, multiplier.to_bits()),
            SpanKind::StageReady { deps } => (SpanTag::StageReady, deps as u64),
            SpanKind::StageTransfer { from, bytes } => {
                debug_assert!(
                    (from as u64) < (1 << STAGE_FROM_BITS),
                    "producer device {from} exceeds the 16-bit stage-transfer field"
                );
                debug_assert!(
                    bytes <= STAGE_BYTES_MAX,
                    "activation byte count {bytes} exceeds the 48-bit trace payload field"
                );
                let from = (from as u64).min((1 << STAGE_FROM_BITS) - 1);
                let bytes = bytes.min(STAGE_BYTES_MAX);
                (SpanTag::StageTransfer, from | (bytes << STAGE_FROM_BITS))
            }
            SpanKind::SloAdmit { class, admitted } => (
                SpanTag::SloAdmit,
                (admitted as u64) | ((class.index() as u64) << 1),
            ),
            SpanKind::Activation => (SpanTag::Activation, 0),
            SpanKind::SloBurn { class, window } => {
                (SpanTag::SloBurn, (class.index() as u64) | (window << 2))
            }
            SpanKind::SloClear { class, window } => {
                (SpanTag::SloClear, (class.index() as u64) | (window << 2))
            }
        };
        self.push(Packed {
            time_us: event.time_us,
            dur_us: event.dur_us,
            request_id: event.request_id.unwrap_or(u64::MAX),
            meta: pack_meta(tag, event.device, event.tile),
            payload,
        });
    }

    /// Fused capture of a request's queue-wait span plus its batch
    /// membership (`run_len`, a Batch instant at span end when ≥ 2) — one
    /// ring push instead of two for the always-adjacent pair. No-op when
    /// disabled.
    #[inline]
    pub(crate) fn queue_wait_batch(
        &mut self,
        time_us: f64,
        dur_us: f64,
        request_id: u64,
        device: usize,
        tile: usize,
        run_len: u64,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.push(Packed {
            time_us,
            dur_us,
            request_id,
            meta: pack_meta(SpanTag::QueueBatch, device, Some(tile)),
            payload: run_len,
        });
    }

    /// Fused capture of a request's run span plus the commit instant at its
    /// exact modeled completion time. No-op when disabled.
    #[inline]
    pub(crate) fn run_commit(
        &mut self,
        time_us: f64,
        dur_us: f64,
        completion_us: f64,
        request_id: u64,
        device: usize,
        tile: usize,
    ) {
        if self.capacity == 0 {
            return;
        }
        self.push(Packed {
            time_us,
            dur_us,
            request_id,
            meta: pack_meta(SpanTag::RunCommit, device, Some(tile)),
            payload: completion_us.to_bits(),
        });
    }

    /// Bumps a control-plane counter and records the sample. No-op when
    /// disabled (the running totals are part of trace state, so they stay
    /// untouched on the bitwise-pinned path).
    pub fn counter(&mut self, time_us: f64, device: usize, name: CounterName) {
        if self.capacity == 0 {
            return;
        }
        let slot = name.index();
        self.counters[slot] += 1;
        let value = self.counters[slot];
        self.push(Packed {
            time_us,
            dur_us: 0.0,
            request_id: u64::MAX,
            meta: pack_meta(SpanTag::Counter, device, None),
            payload: (slot as u64) | (value << 8),
        });
    }

    /// Drains the recorder into a [`Trace`], or `None` when tracing was
    /// disabled. The packed records move out as a tight copy (the typed
    /// expansion happens lazily, on first [`Trace::events`] access); the
    /// ring's backing allocation is retained for the next serve — a fresh
    /// multi-hundred-kilobyte ring per serve means a fresh `mmap` and a
    /// stream of soft page faults on first touch, which measurement showed
    /// dwarfs the per-span packing cost.
    pub fn finish(&mut self) -> Option<Trace> {
        if self.capacity == 0 {
            return None;
        }
        let packed: Vec<Packed> = self.events.iter().copied().collect();
        self.events.clear();
        self.route_seq = 0;
        self.counters = [0; 4];
        Some(Trace {
            packed,
            routes: std::mem::take(&mut self.routes),
            sources: std::mem::take(&mut self.sources),
            dropped: std::mem::take(&mut self.dropped),
            decoded: std::sync::OnceLock::new(),
        })
    }
}

/// Decodes a 2-bit packed SLO-class index back to the class.
fn unpack_slo_class(index: u64) -> crate::session::SloClass {
    match index {
        0 => crate::session::SloClass::Latency,
        1 => crate::session::SloClass::Standard,
        _ => crate::session::SloClass::BestEffort,
    }
}

/// Decodes one packed ring record back to typed public events — one for
/// plain records, two for the fused lifecycle pairs.
fn unpack_into(
    packed: &Packed,
    routes: &[RouteChoice],
    sources: &[&'static str],
    out: &mut Vec<TraceEvent>,
) {
    let tag = packed.meta & 0xff;
    let device = ((packed.meta >> 8) & FIELD_MASK) as usize;
    let tile_raw = (packed.meta >> (8 + FIELD_BITS)) & FIELD_MASK;
    let tile = (tile_raw != NO_TILE).then_some(tile_raw as usize);
    let request_id = (packed.request_id != u64::MAX).then_some(packed.request_id);
    let payload = packed.payload;
    let part = |time_us: f64, dur_us: f64, kind: SpanKind| TraceEvent {
        time_us,
        dur_us,
        request_id,
        device,
        tile,
        kind,
    };
    match SpanTag::from_byte(tag) {
        Some(SpanTag::QueueBatch) => {
            out.push(part(packed.time_us, packed.dur_us, SpanKind::QueueWait));
            if payload >= 2 {
                out.push(part(
                    packed.time_us + packed.dur_us,
                    0.0,
                    SpanKind::Batch {
                        run_len: payload as u32,
                    },
                ));
            }
            return;
        }
        Some(SpanTag::RunCommit) => {
            out.push(part(packed.time_us, packed.dur_us, SpanKind::Run));
            out.push(part(f64::from_bits(payload), 0.0, SpanKind::Commit));
            return;
        }
        _ => {}
    }
    let kind = match SpanTag::from_byte(tag) {
        Some(SpanTag::Submit) => SpanKind::Submit,
        Some(SpanTag::Admission) => SpanKind::Admission {
            admitted: payload != 0,
        },
        Some(SpanTag::Route) => SpanKind::RouteChoice(Box::new(routes[payload as usize].clone())),
        Some(SpanTag::QueueWait) => SpanKind::QueueWait,
        Some(SpanTag::Acquire) => SpanKind::Acquire {
            source: sources
                .get((payload & ACQUIRE_INDEX_MASK) as usize)
                .copied()
                .unwrap_or(ACQUIRE_SOURCE_OVERFLOW),
            bytes: payload >> ACQUIRE_INDEX_BITS,
        },
        Some(SpanTag::Prefetch) => SpanKind::Prefetch { bytes: payload },
        Some(SpanTag::ContextSwitch) => SpanKind::ContextSwitch,
        Some(SpanTag::Batch) => SpanKind::Batch {
            run_len: payload as u32,
        },
        Some(SpanTag::Run) => SpanKind::Run,
        Some(SpanTag::Commit) => SpanKind::Commit,
        Some(SpanTag::Reject) => SpanKind::Reject,
        Some(SpanTag::DeviceDown) => SpanKind::DeviceDown,
        Some(SpanTag::DeviceUp) => SpanKind::DeviceUp,
        Some(SpanTag::Drain) => SpanKind::DrainPhase {
            begin: payload != 0,
        },
        Some(SpanTag::Requeue) => SpanKind::Requeue,
        Some(SpanTag::LinkDegrade) => SpanKind::LinkDegrade {
            multiplier: f64::from_bits(payload),
        },
        Some(SpanTag::StageReady) => SpanKind::StageReady {
            deps: payload as u32,
        },
        Some(SpanTag::StageTransfer) => SpanKind::StageTransfer {
            from: (payload & ((1 << STAGE_FROM_BITS) - 1)) as usize,
            bytes: payload >> STAGE_FROM_BITS,
        },
        Some(SpanTag::SloAdmit) => SpanKind::SloAdmit {
            class: match payload >> 1 {
                0 => crate::session::SloClass::Latency,
                1 => crate::session::SloClass::Standard,
                _ => crate::session::SloClass::BestEffort,
            },
            admitted: payload & 1 != 0,
        },
        Some(SpanTag::Activation) => SpanKind::Activation,
        Some(SpanTag::SloBurn) => SpanKind::SloBurn {
            class: unpack_slo_class(payload & 0x3),
            window: payload >> 2,
        },
        Some(SpanTag::SloClear) => SpanKind::SloClear {
            class: unpack_slo_class(payload & 0x3),
            window: payload >> 2,
        },
        // QueueBatch/RunCommit returned above; Counter is the remaining
        // claimed byte, and unclaimed bytes (impossible for a ring packed by
        // this module) decode as counters for want of anything better —
        // exactly the pre-enum fallback arm.
        Some(SpanTag::Counter) | Some(SpanTag::QueueBatch) | Some(SpanTag::RunCommit) | None => {
            let name = match payload & 0xff {
                0 => CounterName::ReplicaPushed,
                1 => CounterName::ReplicaDemoted,
                2 => CounterName::MemoHit,
                _ => CounterName::MemoJoin,
            };
            SpanKind::Counter {
                name,
                value: payload >> 8,
            }
        }
    };
    out.push(part(packed.time_us, packed.dur_us, kind));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(time_us: f64, kind: SpanKind) -> TraceEvent {
        TraceEvent {
            time_us,
            dur_us: 0.0,
            request_id: Some(1),
            device: 0,
            tile: None,
            kind,
        }
    }

    #[test]
    fn disabled_recorder_stores_nothing_and_finishes_to_none() {
        let mut recorder = TraceRecorder::new(TraceConfig::disabled());
        assert!(!recorder.enabled());
        recorder.record(instant(1.0, SpanKind::Submit));
        recorder.counter(2.0, 0, CounterName::MemoHit);
        assert!(recorder.finish().is_none());
        assert!(!TraceConfig::default().is_enabled());
    }

    #[test]
    fn the_ring_drops_oldest_and_counts_the_drops() {
        let mut recorder = TraceRecorder::new(TraceConfig::with_capacity(2));
        assert!(recorder.enabled());
        for i in 0..5 {
            recorder.record(instant(i as f64, SpanKind::Submit));
        }
        let trace = recorder.finish().expect("tracing was on");
        assert_eq!(trace.dropped(), 3);
        assert_eq!(trace.events().len(), 2);
        assert_eq!(trace.events()[0].time_us, 3.0);
        assert_eq!(trace.events()[1].time_us, 4.0);
    }

    #[test]
    fn counters_carry_running_totals() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.counter(1.0, 0, CounterName::MemoHit);
        recorder.counter(2.0, 1, CounterName::MemoHit);
        recorder.counter(3.0, 0, CounterName::ReplicaPushed);
        let trace = recorder.finish().unwrap();
        let values: Vec<u64> = trace
            .events()
            .iter()
            .filter_map(|event| match event.kind {
                SpanKind::Counter {
                    name: CounterName::MemoHit,
                    value,
                } => Some(value),
                _ => None,
            })
            .collect();
        assert_eq!(values, vec![1, 2]);
        assert_eq!(trace.spans_for(9).len(), 0);
    }

    #[test]
    fn spans_filter_by_request() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(instant(1.0, SpanKind::Submit));
        recorder.record(TraceEvent {
            request_id: Some(2),
            ..instant(2.0, SpanKind::Commit)
        });
        let trace = recorder.finish().unwrap();
        assert_eq!(trace.spans_for(1).len(), 1);
        assert_eq!(trace.spans_for(1)[0].kind.label(), "submit");
        assert_eq!(trace.spans_for(2)[0].kind.label(), "commit");
    }

    #[test]
    fn fused_lifecycle_records_decode_to_their_span_pairs() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        // A batched request: the wait carries run_len 3, the run carries an
        // exact commit timestamp that `time + dur` would miss by an ulp.
        let completion = 0.1 + 0.2; // 0.30000000000000004
        recorder.queue_wait_batch(0.0, 0.1, 7, 1, 2, 3);
        recorder.run_commit(0.1, completion - 0.1, completion, 7, 1, 2);
        // An unbatched request decodes no Batch instant.
        recorder.queue_wait_batch(5.0, 1.0, 8, 0, 0, 1);
        let trace = recorder.finish().unwrap();

        let batched = trace.spans_for(7);
        let labels: Vec<&str> = batched.iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, vec!["queue-wait", "batch", "run", "commit"]);
        assert_eq!(batched[1].time_us, 0.1);
        assert!(matches!(batched[1].kind, SpanKind::Batch { run_len: 3 }));
        assert_eq!(batched[2].dur_us, completion - 0.1);
        // The commit instant reproduces the modeled completion bitwise.
        assert_eq!(batched[3].time_us.to_bits(), completion.to_bits());
        assert!((batched.iter().map(|e| e.dur_us).sum::<f64>() - completion).abs() < 1e-12);
        assert!(batched.iter().all(|e| e.device == 1 && e.tile == Some(2)));

        let plain = trace.spans_for(8);
        assert_eq!(plain.len(), 1);
        assert_eq!(plain[0].kind.label(), "queue-wait");
    }

    fn acquire(time_us: f64, source: &'static str, bytes: u64) -> TraceEvent {
        TraceEvent {
            time_us,
            dur_us: 1.0,
            request_id: Some(1),
            device: 0,
            tile: Some(0),
            kind: SpanKind::Acquire { source, bytes },
        }
    }

    #[test]
    fn acquire_sources_beyond_256_round_trip_without_aliasing() {
        // The old payload masked the interned index to 8 bits, so the 257th
        // distinct source aliased back onto the first at decode.
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        let labels: Vec<&'static str> = (0..300)
            .map(|i| &*format!("src-{i}").leak() as &'static str)
            .collect();
        for (i, &label) in labels.iter().enumerate() {
            recorder.record(acquire(i as f64, label, i as u64));
        }
        let trace = recorder.finish().unwrap();
        assert_eq!(trace.events().len(), labels.len());
        for (i, event) in trace.events().iter().enumerate() {
            match event.kind {
                SpanKind::Acquire { source, bytes } => {
                    assert_eq!(source, labels[i], "source {i} aliased");
                    assert_eq!(bytes, i as u64);
                }
                ref other => panic!("expected an acquire span, got {other:?}"),
            }
        }
    }

    #[test]
    fn acquire_bytes_round_trip_at_the_48_bit_field_boundary() {
        // The old payload packed `bytes << 8`, silently dropping the top 8
        // bits of counts ≥ 2^56; the boundary value must survive exactly.
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(acquire(0.0, "transfer", ACQUIRE_BYTES_MAX));
        recorder.record(acquire(1.0, "host", 1 << 40));
        let trace = recorder.finish().unwrap();
        match trace.events()[0].kind {
            SpanKind::Acquire { bytes, .. } => assert_eq!(bytes, ACQUIRE_BYTES_MAX),
            ref other => panic!("expected an acquire span, got {other:?}"),
        }
        match trace.events()[1].kind {
            SpanKind::Acquire { bytes, .. } => assert_eq!(bytes, 1 << 40),
            ref other => panic!("expected an acquire span, got {other:?}"),
        }
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the 48-bit trace payload field")]
    fn acquire_bytes_beyond_the_field_assert_in_debug() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(acquire(0.0, "transfer", ACQUIRE_BYTES_MAX + 1));
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn acquire_bytes_beyond_the_field_saturate_in_release() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(acquire(0.0, "transfer", u64::MAX));
        let trace = recorder.finish().unwrap();
        match trace.events()[0].kind {
            SpanKind::Acquire { bytes, .. } => assert_eq!(bytes, ACQUIRE_BYTES_MAX),
            ref other => panic!("expected an acquire span, got {other:?}"),
        }
    }

    #[test]
    fn device_and_tile_ids_round_trip_at_the_28_bit_limit() {
        let device = DEVICE_ID_OUT_OF_RANGE - 1;
        let tile = TILE_ID_OUT_OF_RANGE - 1;
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(TraceEvent {
            time_us: 0.0,
            dur_us: 0.0,
            request_id: Some(1),
            device,
            tile: Some(tile),
            kind: SpanKind::Run,
        });
        let trace = recorder.finish().unwrap();
        assert_eq!(trace.events()[0].device, device);
        assert_eq!(trace.events()[0].tile, Some(tile));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "exceeds the 28-bit trace meta field")]
    fn device_ids_beyond_the_field_assert_in_debug() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(TraceEvent {
            device: DEVICE_ID_OUT_OF_RANGE,
            ..instant(0.0, SpanKind::Run)
        });
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn out_of_range_ids_decode_to_the_sentinels_in_release() {
        // Release builds saturate instead of asserting, so a decoded trace
        // reports "out of range" rather than attributing spans to the
        // aliased device/tile the old truncation produced.
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(TraceEvent {
            time_us: 0.0,
            dur_us: 0.0,
            request_id: Some(1),
            device: usize::MAX,
            tile: Some(usize::MAX),
            kind: SpanKind::Run,
        });
        let trace = recorder.finish().unwrap();
        assert_eq!(trace.events()[0].device, DEVICE_ID_OUT_OF_RANGE);
        assert_eq!(trace.events()[0].tile, Some(TILE_ID_OUT_OF_RANGE));
    }

    #[test]
    fn a_run_of_one_is_not_a_batch() {
        // Pinned as intended: a fused QueueWait+Batch record with
        // `run_len == 1` decodes to the wait span alone — a request that
        // started its own run was not batched with anything, so emitting a
        // Batch instant for it would be noise in every unbatched serve.
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.queue_wait_batch(0.0, 2.0, 3, 0, 1, 1);
        recorder.queue_wait_batch(5.0, 2.0, 4, 0, 1, 2);
        let trace = recorder.finish().unwrap();
        let solo: Vec<&str> = trace.spans_for(3).iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            solo,
            vec!["queue-wait"],
            "run_len == 1 must not decode a batch instant"
        );
        let paired: Vec<&str> = trace.spans_for(4).iter().map(|e| e.kind.label()).collect();
        assert_eq!(paired, vec!["queue-wait", "batch"]);
    }

    #[test]
    fn fault_spans_round_trip_through_the_packed_ring() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        let fleet_event = |time_us: f64, device: usize, kind: SpanKind| TraceEvent {
            time_us,
            dur_us: 0.0,
            request_id: None,
            device,
            tile: None,
            kind,
        };
        recorder.record(fleet_event(1.0, 3, SpanKind::DeviceDown));
        recorder.record(fleet_event(2.0, 3, SpanKind::DrainPhase { begin: true }));
        recorder.record(TraceEvent {
            request_id: Some(42),
            ..fleet_event(2.5, 3, SpanKind::Requeue)
        });
        recorder.record(fleet_event(
            3.0,
            0,
            SpanKind::LinkDegrade { multiplier: 2.5 },
        ));
        recorder.record(fleet_event(4.0, 3, SpanKind::DrainPhase { begin: false }));
        recorder.record(fleet_event(5.0, 3, SpanKind::DeviceUp));
        let trace = recorder.finish().unwrap();

        let labels: Vec<&str> = trace.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(
            labels,
            vec![
                "device-down",
                "drain",
                "requeue",
                "link-degrade",
                "drain",
                "device-up"
            ]
        );
        assert!(matches!(
            trace.events()[1].kind,
            SpanKind::DrainPhase { begin: true }
        ));
        assert_eq!(trace.events()[2].request_id, Some(42));
        match trace.events()[3].kind {
            SpanKind::LinkDegrade { multiplier } => {
                assert_eq!(multiplier.to_bits(), 2.5f64.to_bits());
            }
            ref other => panic!("expected a link-degrade span, got {other:?}"),
        }
        assert!(matches!(
            trace.events()[4].kind,
            SpanKind::DrainPhase { begin: false }
        ));
        assert!(trace.events().iter().all(|e| e.tile.is_none()));
    }

    /// The exhaustive-tag contract: every variant's discriminant is unique,
    /// dense from 0, and survives the byte round trip — so a new span type
    /// added anywhere but this enum cannot silently collide with an
    /// existing tag.
    #[test]
    fn span_tags_are_unique_dense_and_round_trip() {
        for (position, &tag) in SpanTag::ALL.iter().enumerate() {
            assert_eq!(
                tag as u64, position as u64,
                "ALL must list tags in discriminant order with no gaps"
            );
            assert_eq!(SpanTag::from_byte(tag as u64), Some(tag));
        }
        // Bytes past the registry decode to nothing.
        assert_eq!(SpanTag::from_byte(SpanTag::ALL.len() as u64), None);
        assert_eq!(SpanTag::from_byte(0xff), None);
    }

    #[test]
    fn session_spans_round_trip_through_the_packed_ring() {
        use crate::session::SloClass;
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(TraceEvent {
            time_us: 1.0,
            dur_us: 0.0,
            request_id: Some(11),
            device: 2,
            tile: None,
            kind: SpanKind::StageReady { deps: 3 },
        });
        recorder.record(TraceEvent {
            time_us: 2.0,
            dur_us: 0.0,
            request_id: Some(11),
            device: 4,
            tile: None,
            kind: SpanKind::StageTransfer {
                from: 2,
                bytes: 1 << 40,
            },
        });
        for (class, admitted) in [
            (SloClass::Latency, true),
            (SloClass::Standard, true),
            (SloClass::BestEffort, false),
        ] {
            recorder.record(TraceEvent {
                time_us: 3.0,
                dur_us: 0.0,
                request_id: Some(12),
                device: 0,
                tile: None,
                kind: SpanKind::SloAdmit { class, admitted },
            });
        }
        let trace = recorder.finish().unwrap();
        let events = trace.events();
        assert_eq!(events.len(), 5);
        assert_eq!(events[0].kind.label(), "stage-ready");
        assert!(matches!(events[0].kind, SpanKind::StageReady { deps: 3 }));
        assert_eq!(events[0].device, 2);
        assert_eq!(events[1].kind.label(), "stage-transfer");
        match events[1].kind {
            SpanKind::StageTransfer { from, bytes } => {
                assert_eq!(from, 2);
                assert_eq!(bytes, 1 << 40);
            }
            ref other => panic!("expected a stage transfer, got {other:?}"),
        }
        for (event, (class, admitted)) in events[2..].iter().zip([
            (SloClass::Latency, true),
            (SloClass::Standard, true),
            (SloClass::BestEffort, false),
        ]) {
            assert_eq!(event.kind.label(), "slo-admit");
            assert_eq!(
                event.kind,
                SpanKind::SloAdmit { class, admitted },
                "class {class} round trip"
            );
        }
    }

    /// Session spans carry no side-table payloads, so lane absorption must
    /// pass them through verbatim — the property that lets the sharded
    /// cluster's merge stage handle them with no special casing.
    #[test]
    fn session_spans_absorb_verbatim_from_lane_traces() {
        let mut lane = TraceRecorder::new(TraceConfig::with_capacity(usize::MAX));
        lane.record(TraceEvent {
            time_us: 1.0,
            dur_us: 0.0,
            request_id: Some(5),
            device: 1,
            tile: None,
            kind: SpanKind::StageTransfer { from: 0, bytes: 64 },
        });
        lane.record(TraceEvent {
            time_us: 2.0,
            dur_us: 0.0,
            request_id: Some(5),
            device: 1,
            tile: None,
            kind: SpanKind::StageReady { deps: 1 },
        });
        let lane_trace = lane.finish().unwrap();
        let mut merged = TraceRecorder::new(TraceConfig::enabled());
        merged.absorb_lane_record(&lane_trace, 0);
        merged.absorb_lane_record(&lane_trace, 1);
        let trace = merged.finish().unwrap();
        assert_eq!(trace.events(), lane_trace.events());
    }

    /// Telemetry spans (activation, burn alerts) round trip through the
    /// packed ring and, carrying no side-table payloads, absorb verbatim
    /// from lane traces like the fault and session instants do.
    #[test]
    fn telemetry_spans_round_trip_and_absorb_verbatim() {
        use crate::session::SloClass;
        let mut lane = TraceRecorder::new(TraceConfig::with_capacity(usize::MAX));
        lane.record(TraceEvent {
            time_us: 1.0,
            dur_us: 0.5,
            request_id: Some(7),
            device: 1,
            tile: Some(2),
            kind: SpanKind::Activation,
        });
        lane.record(TraceEvent {
            time_us: 3.0,
            dur_us: 0.0,
            request_id: None,
            device: 0,
            tile: None,
            kind: SpanKind::SloBurn {
                class: SloClass::Standard,
                window: 17,
            },
        });
        lane.record(TraceEvent {
            time_us: 5.0,
            dur_us: 0.0,
            request_id: None,
            device: 0,
            tile: None,
            kind: SpanKind::SloClear {
                class: SloClass::BestEffort,
                window: 21,
            },
        });
        let lane_trace = lane.finish().unwrap();
        let events = lane_trace.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind.label(), "activation");
        assert_eq!(events[0].kind, SpanKind::Activation);
        assert_eq!(events[0].dur_us, 0.5);
        assert_eq!(events[1].kind.label(), "slo-burn");
        assert_eq!(
            events[1].kind,
            SpanKind::SloBurn {
                class: SloClass::Standard,
                window: 17,
            }
        );
        assert_eq!(events[2].kind.label(), "slo-clear");
        assert_eq!(
            events[2].kind,
            SpanKind::SloClear {
                class: SloClass::BestEffort,
                window: 21,
            }
        );
        let mut merged = TraceRecorder::new(TraceConfig::enabled());
        merged.absorb_lane_record(&lane_trace, 0);
        merged.absorb_lane_record(&lane_trace, 1);
        merged.absorb_lane_record(&lane_trace, 2);
        let trace = merged.finish().unwrap();
        assert_eq!(trace.events(), lane_trace.events());
    }

    #[test]
    fn absorbing_lane_records_translates_side_tables_and_counters() {
        // Two "lane" recorders capture disjoint streams; absorbing them
        // interleaved must re-intern sources, re-slot route choices, and
        // rebuild counter running totals exactly as a live recorder would.
        let mut lane_a = TraceRecorder::new(TraceConfig::with_capacity(usize::MAX));
        let mut lane_b = TraceRecorder::new(TraceConfig::with_capacity(usize::MAX));
        lane_a.record(acquire(1.0, "host", 10));
        lane_a.counter(2.0, 0, CounterName::MemoHit);
        lane_b.record(acquire(1.5, "transfer", 20));
        lane_b.counter(2.5, 1, CounterName::MemoHit);
        lane_b.record(TraceEvent {
            time_us: 3.0,
            dur_us: 0.0,
            request_id: Some(9),
            device: 1,
            tile: None,
            kind: SpanKind::RouteChoice(Box::new(RouteChoice {
                policy: "kernel-hash",
                chosen: 1,
                candidates: Vec::new(),
            })),
        });
        let trace_a = lane_a.finish().unwrap();
        let trace_b = lane_b.finish().unwrap();

        let mut merged = TraceRecorder::new(TraceConfig::enabled());
        merged.absorb_lane_record(&trace_a, 0);
        merged.absorb_lane_record(&trace_b, 0);
        merged.absorb_lane_record(&trace_b, 1);
        merged.absorb_lane_record(&trace_a, 1);
        merged.absorb_lane_record(&trace_b, 2);
        let trace = merged.finish().unwrap();

        let events = trace.events();
        assert_eq!(events.len(), 5);
        assert!(
            matches!(
                events[0].kind,
                SpanKind::Acquire {
                    source: "host",
                    bytes: 10
                }
            ),
            "got {:?}",
            events[0].kind
        );
        assert!(
            matches!(
                events[1].kind,
                SpanKind::Acquire {
                    source: "transfer",
                    bytes: 20
                }
            ),
            "got {:?}",
            events[1].kind
        );
        // Lane-local counter totals were 1 apiece; the merge order makes
        // them the global running total 1, 2.
        assert!(matches!(
            events[2].kind,
            SpanKind::Counter {
                name: CounterName::MemoHit,
                value: 1
            }
        ));
        assert!(matches!(
            events[3].kind,
            SpanKind::Counter {
                name: CounterName::MemoHit,
                value: 2
            }
        ));
        match &events[4].kind {
            SpanKind::RouteChoice(choice) => assert_eq!(choice.chosen, 1),
            other => panic!("expected a route choice, got {other:?}"),
        }
    }
}
