//! Log-bucketed (HDR-style) histograms recorded online in the event loop.
//!
//! A [`LogHistogram`] trades exactness for constant memory and O(1) inserts:
//! values land in geometrically-spaced buckets — [`SUB_BUCKETS_PER_OCTAVE`]
//! buckets per doubling, so every bucket spans a fixed ≈9 % relative width —
//! and percentiles interpolate between bucket representatives. The promise
//! the parity test pins down: a histogram percentile is within one bucket
//! width of the exact [`percentile_by_selection`](crate::metrics::percentile_by_selection)
//! answer over the same samples.
//!
//! Cluster roll-ups merge per-device histograms by bucket-count addition
//! ([`LogHistogram::merged`] / [`percentile_from_parts`]), mirroring how
//! exact per-device latency runs roll up through
//! [`percentile_from_sorted_parts`](crate::metrics::percentile_from_sorted_parts):
//! the merged histogram is *identical* to one recorded from the union, so a
//! one-device cluster reproduces the single-runtime histogram bit for bit.

/// Buckets per octave (per doubling of the value). 8 sub-buckets make each
/// bucket span a factor of 2^(1/8) ≈ 1.0905 — a ≈9 % relative width, which
/// bounds the percentile error the parity test checks.
pub const SUB_BUCKETS_PER_OCTAVE: usize = 8;

/// Values below this threshold (including zero and negatives, which the
/// runtime never produces but the histogram tolerates) land in the dedicated
/// underflow bucket 0, represented as 0.
const LOWEST_TRACKED: f64 = 1e-3;

/// Hard cap on the bucket vector so a wild value cannot balloon memory:
/// bucket `MAX_BUCKET` starts at `LOWEST_TRACKED · 2^(MAX_BUCKET−1)/8` ≈ 1e21,
/// far beyond any modeled microsecond quantity.
const MAX_BUCKET: usize = 1 + 80 * SUB_BUCKETS_PER_OCTAVE;

/// An online log-bucketed histogram of non-negative `f64` samples
/// (latencies in microseconds, queue depths).
///
/// Recording is O(1) (a log2 and a vector bump, growing the bucket vector on
/// demand); memory is bounded by [`MAX_BUCKET`]. Equality is structural —
/// two histograms are equal exactly when they saw the same multiset of
/// samples at bucket resolution *and* the same floating-point sum, which is
/// what the cluster-vs-runtime equivalence tests compare.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    /// `counts[0]` is the underflow bucket (< [`LOWEST_TRACKED`]); bucket
    /// `i ≥ 1` counts samples in `[lower_bound(i), lower_bound(i+1))`.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: Vec::new(),
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: 0.0,
        }
    }

    /// The bucket index a value lands in.
    fn bucket_of(value: f64) -> usize {
        // NaN and sub-floor values (the comparison is false for NaN) both
        // land in the underflow bucket.
        if value.is_nan() || value < LOWEST_TRACKED {
            return 0;
        }
        let octaves = (value / LOWEST_TRACKED).log2();
        let index = 1 + (octaves * SUB_BUCKETS_PER_OCTAVE as f64).floor() as usize;
        index.min(MAX_BUCKET)
    }

    /// The lower edge of bucket `index` (0 for the underflow bucket).
    fn lower_bound(index: usize) -> f64 {
        if index == 0 {
            0.0
        } else {
            LOWEST_TRACKED * (((index - 1) as f64) / SUB_BUCKETS_PER_OCTAVE as f64).exp2()
        }
    }

    /// The value a bucket stands for when interpolating percentiles: the
    /// geometric midpoint of its edges (0 for the underflow bucket, whose
    /// samples are all "smaller than the tracking floor").
    fn representative(index: usize) -> f64 {
        if index == 0 {
            0.0
        } else {
            Self::lower_bound(index) * (0.5 / SUB_BUCKETS_PER_OCTAVE as f64).exp2()
        }
    }

    /// The width of the bucket a value lands in — the resolution promise:
    /// histogram percentiles sit within one such width of the exact answer.
    pub fn bucket_width_at(value: f64) -> f64 {
        let index = Self::bucket_of(value);
        Self::lower_bound(index + 1) - Self::lower_bound(index)
    }

    /// Records one sample.
    pub fn record(&mut self, value: f64) {
        let index = Self::bucket_of(value);
        if self.counts.len() <= index {
            self.counts.resize(index + 1, 0);
        }
        self.counts[index] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (0 when empty).
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Linear-interpolated percentile (`p` in 0..=1) at bucket resolution —
    /// the same `rank = p·(n−1)` / lerp construction as
    /// [`percentile_by_selection`](crate::metrics::percentile_by_selection),
    /// with order statistics replaced by their bucket representatives.
    /// Returns 0 when empty (matching the exact paths).
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_from_parts(&[self], p)
    }

    /// Iterates the non-empty buckets as `(upper_edge, cumulative_count)`
    /// pairs — the shape a Prometheus `_bucket{le="…"}` exposition wants.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cumulative = 0u64;
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| {
                cumulative += n;
                (Self::lower_bound(index + 1), cumulative)
            })
            .collect()
    }

    /// Merges several histograms by bucket-count addition — the cluster
    /// roll-up path. Merging a single histogram reproduces it exactly, so a
    /// one-device cluster's merged histogram equals the runtime's.
    pub fn merged(parts: &[&LogHistogram]) -> LogHistogram {
        let len = parts.iter().map(|p| p.counts.len()).max().unwrap_or(0);
        let mut counts = vec![0u64; len];
        let mut count = 0u64;
        let mut sum = 0.0;
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for part in parts {
            for (slot, &n) in counts.iter_mut().zip(&part.counts) {
                *slot += n;
            }
            count += part.count;
            sum += part.sum;
            if part.min < min {
                min = part.min;
            }
            if part.max > max {
                max = part.max;
            }
        }
        LogHistogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }
}

/// Percentile (`p` in 0..=1) over several histograms *without materializing
/// the merge* — a cumulative walk over the shared bucket grid, mirroring
/// [`percentile_from_sorted_parts`](crate::metrics::percentile_from_sorted_parts)
/// over exact sorted runs. `percentile_from_parts(&[h], p)` equals
/// `h.percentile(p)`, and the walk over many parts equals
/// `LogHistogram::merged(parts).percentile(p)` by construction (bucket
/// counts add).
pub fn percentile_from_parts(parts: &[&LogHistogram], p: f64) -> f64 {
    let total: u64 = parts.iter().map(|part| part.count).sum();
    if total == 0 {
        return 0.0;
    }
    let rank = p.clamp(0.0, 1.0) * (total - 1) as f64;
    let low = rank.floor() as u64;
    let high = rank.ceil() as u64;
    let weight = rank - low as f64;
    let len = parts
        .iter()
        .map(|part| part.counts.len())
        .max()
        .unwrap_or(0);
    // Every sample sits at or above its part's minimum, and `bucket_of` is
    // monotone, so no part has a count below the smallest minimum's bucket —
    // the walk can start there instead of scanning leading zeros. (A
    // non-finite minimum would mean samples the comparison in `record`
    // never tracked, e.g. NaN in the underflow bucket: start at 0.)
    let start = parts
        .iter()
        .filter(|part| part.count > 0)
        .map(|part| {
            if part.min.is_finite() {
                LogHistogram::bucket_of(part.min)
            } else {
                0
            }
        })
        .min()
        .unwrap_or(0);
    let mut cumulative = 0u64;
    let mut low_value = None;
    for index in start..len {
        let here: u64 = parts
            .iter()
            .map(|part| part.counts.get(index).copied().unwrap_or(0))
            .sum();
        if here == 0 {
            continue;
        }
        cumulative += here;
        // The representative costs an exp2 — only materialize it at the two
        // rank-crossing buckets, not on every bucket the walk passes.
        if low_value.is_none() && cumulative > low {
            low_value = Some(LogHistogram::representative(index));
        }
        if cumulative > high {
            let representative = LogHistogram::representative(index);
            let low_value = low_value.expect("low rank is at or before high rank");
            return low_value * (1.0 - weight) + representative * weight;
        }
    }
    unreachable!("the cumulative walk covers every recorded sample")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{percentile_by_selection, percentile_from_sorted_parts};

    #[test]
    fn empty_and_degenerate_histograms_match_the_exact_paths() {
        let empty = LogHistogram::new();
        assert_eq!(empty.count(), 0);
        assert_eq!(empty.percentile(0.5), 0.0);
        assert_eq!(empty.min(), 0.0);
        assert_eq!(empty.max(), 0.0);
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(percentile_from_parts(&[], 0.5), 0.0);

        let mut single = LogHistogram::new();
        single.record(7.0);
        let exact = percentile_by_selection(&mut [7.0], 0.99);
        let width = LogHistogram::bucket_width_at(7.0);
        assert!((single.percentile(0.99) - exact).abs() <= width);
        assert_eq!(single.count(), 1);
        assert_eq!(single.min(), 7.0);
        assert_eq!(single.max(), 7.0);
    }

    #[test]
    fn all_equal_samples_collapse_to_one_bucket() {
        let mut hist = LogHistogram::new();
        for _ in 0..100 {
            hist.record(42.0);
        }
        let width = LogHistogram::bucket_width_at(42.0);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert!(
                (hist.percentile(p) - 42.0).abs() <= width,
                "p={p}: {} vs 42 ± {width}",
                hist.percentile(p)
            );
        }
        assert_eq!(hist.cumulative_buckets().len(), 1);
    }

    #[test]
    fn percentiles_stay_within_one_bucket_width_of_selection() {
        let mut seed = 0xD1CEu64;
        let values: Vec<f64> = (0..499)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed % 100_000) as f64 * 0.03125
            })
            .collect();
        let mut hist = LogHistogram::new();
        for &value in &values {
            hist.record(value);
        }
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let mut scratch = values.clone();
            let exact = percentile_by_selection(&mut scratch, p);
            let width = LogHistogram::bucket_width_at(exact);
            assert!(
                (hist.percentile(p) - exact).abs() <= width,
                "p={p}: hist {} vs exact {exact} ± {width}",
                hist.percentile(p)
            );
        }
    }

    #[test]
    fn merged_histograms_equal_a_union_recording() {
        let mut seed = 0xFEEDu64;
        let mut parts = vec![LogHistogram::new(); 3];
        let mut union = LogHistogram::new();
        let mut exact_parts: Vec<Vec<f64>> = vec![Vec::new(); 3];
        for _ in 0..300 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let value = (seed % 10_000) as f64 * 0.125;
            let part = (seed % 3) as usize;
            parts[part].record(value);
            union.record(value);
            exact_parts[part].push(value);
        }
        let views: Vec<&LogHistogram> = parts.iter().collect();
        let merged = LogHistogram::merged(&views);
        assert_eq!(merged.counts, union.counts);
        assert_eq!(merged.count, union.count);
        assert_eq!(merged.min, union.min);
        assert_eq!(merged.max, union.max);
        // The walk-without-materializing path agrees with the merge, and
        // both sit within a bucket width of the exact k-way merge.
        for part in &mut exact_parts {
            part.sort_by(f64::total_cmp);
        }
        let exact_views: Vec<&[f64]> = exact_parts.iter().map(Vec::as_slice).collect();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(percentile_from_parts(&views, p), merged.percentile(p));
            let exact = percentile_from_sorted_parts(&exact_views, p);
            let width = LogHistogram::bucket_width_at(exact);
            assert!((merged.percentile(p) - exact).abs() <= width, "p={p}");
        }
    }

    #[test]
    fn merging_one_histogram_is_the_identity() {
        let mut hist = LogHistogram::new();
        for value in [0.0, 0.5, 1.0, 3.75, 1e6] {
            hist.record(value);
        }
        assert_eq!(LogHistogram::merged(&[&hist]), hist);
    }

    #[test]
    fn underflow_and_overflow_stay_bounded() {
        let mut hist = LogHistogram::new();
        hist.record(0.0);
        hist.record(-1.0);
        hist.record(1e30);
        assert_eq!(hist.count(), 3);
        assert!(hist.counts.len() <= MAX_BUCKET + 1);
        assert_eq!(hist.counts[0], 2, "zero and negatives share bucket 0");
    }
}
