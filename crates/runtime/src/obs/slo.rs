//! Per-class SLO objectives with error-budget burn-rate tracking.
//!
//! An [`SloConfig`] states, per [`SloClass`], the deadline miss-rate the
//! class is allowed on a sustained basis (its *error budget*). Against the
//! telemetry [`TimeSeries`] the serve accumulated, [`SloReport`] tracks the
//! classic multi-window burn rate: for every window, the observed miss-rate
//! over a short (*fast*) and a long (*slow*) trailing span of windows, each
//! divided by the budget. A burn of 1.0 spends budget exactly as fast as the
//! objective allows; a kill that spikes the miss-rate shows up as a fast
//! burn of several ×.
//!
//! An **alert** fires at the close of the first window where both burn
//! rates reach the threshold (the two-window conjunction is what keeps a
//! single noisy window from paging) and clears at the close of the first
//! later window where the fast burn drops back below it (the short window
//! is what lets recovery clear promptly). Alerts are surfaced on the report
//! and — with tracing on — emitted as typed [`SloBurn`](SpanKind::SloBurn) /
//! [`SloClear`](SpanKind::SloClear) trace spans on the virtual timeline.
//!
//! Everything here is a pure function of the time-series, so the sharded
//! event loop (whose series is bitwise-identical to the serial one)
//! reproduces the serial burn samples, alerts and spans bitwise.

use crate::obs::timeline::TimeSeries;
use crate::obs::trace::{SpanKind, TraceEvent, TraceRecorder};
use crate::session::SloClass;

/// One class's SLO: the deadline miss-rate budget and the burn-alert
/// windowing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloObjective {
    /// The class this objective covers.
    pub class: SloClass,
    /// The sustained deadline miss-rate the class is allowed (the error
    /// budget a burn rate of 1.0 spends exactly).
    pub target_miss_rate: f64,
    /// Trailing windows the fast burn averages over (≥ 1; the responsive
    /// signal that fires and clears alerts promptly).
    pub fast_windows: usize,
    /// Trailing windows the slow burn averages over (≥ `fast_windows`; the
    /// confirmation that keeps one noisy window from paging).
    pub slow_windows: usize,
    /// Both burns must reach this multiple of the budget to fire an alert.
    pub burn_threshold: f64,
}

impl SloObjective {
    /// An objective for `class` allowing a sustained miss-rate of
    /// `target_miss_rate`, with the default 1-fast/4-slow windowing and a
    /// burn threshold of 1.0.
    pub fn new(class: SloClass, target_miss_rate: f64) -> Self {
        assert!(
            target_miss_rate > 0.0 && target_miss_rate.is_finite(),
            "SLO miss-rate budget must be finite and positive, got {target_miss_rate}"
        );
        SloObjective {
            class,
            target_miss_rate,
            fast_windows: 1,
            slow_windows: 4,
            burn_threshold: 1.0,
        }
    }

    /// Overrides the fast/slow trailing-window spans.
    #[must_use]
    pub fn with_windows(mut self, fast: usize, slow: usize) -> Self {
        assert!(fast >= 1, "the fast burn needs at least one window");
        assert!(slow >= fast, "the slow span must cover the fast span");
        self.fast_windows = fast;
        self.slow_windows = slow;
        self
    }

    /// Overrides the burn threshold both signals must reach to alert.
    #[must_use]
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "burn threshold must be finite and positive, got {threshold}"
        );
        self.burn_threshold = threshold;
        self
    }
}

/// The set of SLO objectives a serve tracks. Off (empty) by default and
/// proptest-pinned bitwise-inert when off; tracking needs the windowed
/// telemetry series, so enable it alongside
/// [`TelemetryConfig::windowed`](crate::TelemetryConfig::windowed).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloConfig {
    objectives: Vec<SloObjective>,
}

impl SloConfig {
    /// No objectives (the default): nothing is tracked, no span is emitted.
    pub fn disabled() -> Self {
        SloConfig::default()
    }

    /// Adds one objective (replacing any earlier one for the same class).
    #[must_use]
    pub fn with_objective(mut self, objective: SloObjective) -> Self {
        self.objectives.retain(|o| o.class != objective.class);
        self.objectives.push(objective);
        self
    }

    /// The configured objectives, in insertion order.
    pub fn objectives(&self) -> &[SloObjective] {
        &self.objectives
    }

    /// True when at least one objective is tracked.
    pub fn is_enabled(&self) -> bool {
        !self.objectives.is_empty()
    }
}

/// One window's burn-rate sample for a class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnSample {
    /// The window's ordinal on the virtual timeline.
    pub window: usize,
    /// The window's close time — when this sample becomes known.
    pub time_us: f64,
    /// Miss-rate over the fast trailing span, over the budget.
    pub fast_burn: f64,
    /// Miss-rate over the slow trailing span, over the budget.
    pub slow_burn: f64,
    /// Whether the alert is active at this window's close.
    pub alerting: bool,
}

/// One fired burn alert: when it fired, when (and whether) it cleared, and
/// how hot the fast burn ran while it was active.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnAlert {
    /// The class whose budget was burning.
    pub class: SloClass,
    /// The window whose close fired the alert.
    pub fired_window: usize,
    /// The virtual time the alert fired (that window's close).
    pub fired_us: f64,
    /// The window whose close cleared it (`None` while still active at the
    /// end of the serve).
    pub cleared_window: Option<usize>,
    /// The virtual time it cleared.
    pub cleared_us: Option<f64>,
    /// The largest fast burn observed while the alert was active.
    pub peak_fast_burn: f64,
}

/// One class's tracked status: every window's burn sample, the alerts, and
/// the whole-serve budget spend.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective this status tracks.
    pub objective: SloObjective,
    /// Per-window burn samples, in window order.
    pub samples: Vec<BurnSample>,
    /// Every alert fired, in fire order.
    pub alerts: Vec<BurnAlert>,
    /// Whole-serve miss-rate over the budget: 1.0 means the serve spent its
    /// budget exactly; above 1.0 the objective was violated overall.
    pub budget_consumed: f64,
}

/// The per-class SLO tracking a serve report hands back when objectives
/// were configured alongside windowed telemetry.
#[derive(Debug, Clone, PartialEq)]
pub struct SloReport {
    /// One status per configured objective, in configuration order.
    pub classes: Vec<SloStatus>,
}

impl SloReport {
    /// The tracked status for `class`, if an objective covered it.
    pub fn class(&self, class: SloClass) -> Option<&SloStatus> {
        self.classes.iter().find(|s| s.objective.class == class)
    }

    /// Every alert across all classes, in (class, fire) order.
    pub fn alerts(&self) -> impl Iterator<Item = &BurnAlert> {
        self.classes.iter().flat_map(|s| s.alerts.iter())
    }
}

/// Miss-rate over the trailing `span` windows ending at `end` (inclusive),
/// as misses-over-served; 0 when nothing completed in the span.
fn trailing_miss_rate(series: &TimeSeries, slot: usize, end: usize, span: usize) -> f64 {
    let start = (end + 1).saturating_sub(span);
    let mut served = 0u64;
    let mut misses = 0u64;
    for window in &series.windows[start..=end] {
        served += window.classes[slot].served;
        misses += window.classes[slot].deadline_misses;
    }
    if served == 0 {
        0.0
    } else {
        misses as f64 / served as f64
    }
}

/// Evaluates the configured objectives against a completed time-series — a
/// pure function, called identically by the serial loop and the sharded
/// commit stage.
pub(crate) fn evaluate_slo(series: &TimeSeries, config: &SloConfig) -> SloReport {
    let mut classes = Vec::with_capacity(config.objectives().len());
    for &objective in config.objectives() {
        let slot = objective.class.index();
        let mut samples = Vec::with_capacity(series.windows.len());
        let mut alerts: Vec<BurnAlert> = Vec::new();
        let mut active: Option<BurnAlert> = None;
        let mut served = 0u64;
        let mut misses = 0u64;
        for (index, window) in series.windows.iter().enumerate() {
            served += window.classes[slot].served;
            misses += window.classes[slot].deadline_misses;
            let fast = trailing_miss_rate(series, slot, index, objective.fast_windows)
                / objective.target_miss_rate;
            let slow = trailing_miss_rate(series, slot, index, objective.slow_windows)
                / objective.target_miss_rate;
            let close_us = window.end_us;
            match active.as_mut() {
                None => {
                    if fast >= objective.burn_threshold && slow >= objective.burn_threshold {
                        active = Some(BurnAlert {
                            class: objective.class,
                            fired_window: index,
                            fired_us: close_us,
                            cleared_window: None,
                            cleared_us: None,
                            peak_fast_burn: fast,
                        });
                    }
                }
                Some(alert) => {
                    alert.peak_fast_burn = alert.peak_fast_burn.max(fast);
                    if fast < objective.burn_threshold {
                        alert.cleared_window = Some(index);
                        alert.cleared_us = Some(close_us);
                        alerts.push(*alert);
                        active = None;
                    }
                }
            }
            samples.push(BurnSample {
                window: index,
                time_us: close_us,
                fast_burn: fast,
                slow_burn: slow,
                alerting: active.is_some(),
            });
        }
        if let Some(alert) = active {
            alerts.push(alert);
        }
        let budget_consumed = if served == 0 {
            0.0
        } else {
            (misses as f64 / served as f64) / objective.target_miss_rate
        };
        classes.push(SloStatus {
            objective,
            samples,
            alerts,
            budget_consumed,
        });
    }
    SloReport { classes }
}

/// Records every alert's fire and clear as typed instants on the trace's
/// virtual timeline (fleet-wide, device 0), in (class, fire) order — called
/// just before the recorder drains, by both event loops, so the spans land
/// identically in the serial and sharded traces.
pub(crate) fn record_burn_spans(recorder: &mut TraceRecorder, report: &SloReport) {
    if !recorder.enabled() {
        return;
    }
    for status in &report.classes {
        for alert in &status.alerts {
            recorder.record(TraceEvent {
                time_us: alert.fired_us,
                dur_us: 0.0,
                request_id: None,
                device: 0,
                tile: None,
                kind: SpanKind::SloBurn {
                    class: alert.class,
                    window: alert.fired_window as u64,
                },
            });
            if let (Some(window), Some(time_us)) = (alert.cleared_window, alert.cleared_us) {
                recorder.record(TraceEvent {
                    time_us,
                    dur_us: 0.0,
                    request_id: None,
                    device: 0,
                    tile: None,
                    kind: SpanKind::SloClear {
                        class: alert.class,
                        window: window as u64,
                    },
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::timeline::{GlobalSeries, LaneSeries, TelemetryConfig, TimeSeries};
    use crate::obs::trace::TraceConfig;

    /// A series with the given per-window (served, missed) Standard-class
    /// counts, 10µs windows.
    fn series_of(counts: &[(u64, u64)]) -> TimeSeries {
        let config = TelemetryConfig::windowed(10.0);
        let mut lane = LaneSeries::new(config);
        for (index, &(served, missed)) in counts.iter().enumerate() {
            let base = index as f64 * 10.0;
            for i in 0..served {
                lane.note_start(
                    SloClass::Standard,
                    base,
                    base + 1.0 + i as f64 * 1e-3,
                    1.0,
                    i < missed,
                    false,
                );
            }
        }
        let global = GlobalSeries::new(config);
        TimeSeries::assemble(config, counts.len() as f64 * 10.0, 1, &global, &[lane])
    }

    #[test]
    fn quiet_series_never_alerts_and_underspends_budget() {
        let series = series_of(&[(10, 0), (10, 1), (10, 0), (10, 0)]);
        let config = SloConfig::disabled()
            .with_objective(SloObjective::new(SloClass::Standard, 0.2).with_windows(1, 2));
        let report = evaluate_slo(&series, &config);
        let status = report.class(SloClass::Standard).unwrap();
        assert!(status.alerts.is_empty());
        assert!(status.samples.iter().all(|s| !s.alerting));
        assert!(status.budget_consumed < 1.0);
        assert_eq!(status.samples.len(), 4);
        // Window 1: fast burn = 0.1 / 0.2.
        assert!((status.samples[1].fast_burn - 0.5).abs() < 1e-12);
    }

    #[test]
    fn a_miss_spike_fires_then_clears_the_alert() {
        let series = series_of(&[(10, 0), (10, 0), (10, 8), (10, 6), (10, 0), (10, 0)]);
        let config = SloConfig::disabled()
            .with_objective(SloObjective::new(SloClass::Standard, 0.1).with_windows(1, 2));
        let report = evaluate_slo(&series, &config);
        let status = report.class(SloClass::Standard).unwrap();
        assert_eq!(status.alerts.len(), 1);
        let alert = status.alerts[0];
        // Fast burn in window 2 is 0.8/0.1 = 8; slow (windows 1-2) is 4.
        assert_eq!(alert.fired_window, 2);
        assert_eq!(alert.fired_us, 30.0);
        assert_eq!(alert.cleared_window, Some(4));
        assert_eq!(alert.cleared_us, Some(50.0));
        assert!((alert.peak_fast_burn - 8.0).abs() < 1e-12);
        assert!(status.samples[2].alerting && status.samples[3].alerting);
        assert!(!status.samples[4].alerting);
        assert!(status.budget_consumed > 1.0);
    }

    #[test]
    fn an_alert_still_active_at_serve_end_reports_no_clear() {
        let series = series_of(&[(10, 0), (10, 9), (10, 9)]);
        let config = SloConfig::disabled()
            .with_objective(SloObjective::new(SloClass::Standard, 0.1).with_windows(1, 1));
        let report = evaluate_slo(&series, &config);
        let alert = report.alerts().next().copied().unwrap();
        assert_eq!(alert.fired_window, 1);
        assert_eq!(alert.cleared_window, None);
        assert_eq!(alert.cleared_us, None);
    }

    #[test]
    fn slow_window_conjunction_suppresses_single_window_noise() {
        // One bad window among quiet ones: fast spikes but the slow span
        // stays below threshold, so no alert fires.
        let series = series_of(&[(10, 0), (10, 0), (10, 0), (10, 3), (10, 0)]);
        let config = SloConfig::disabled()
            .with_objective(SloObjective::new(SloClass::Standard, 0.1).with_windows(1, 4));
        let report = evaluate_slo(&series, &config);
        let status = report.class(SloClass::Standard).unwrap();
        assert!(status.samples[3].fast_burn >= 1.0);
        assert!(status.samples[3].slow_burn < 1.0);
        assert!(status.alerts.is_empty());
    }

    #[test]
    fn burn_spans_record_fires_and_clears_in_order() {
        let series = series_of(&[(10, 0), (10, 8), (10, 0)]);
        let config = SloConfig::disabled()
            .with_objective(SloObjective::new(SloClass::Standard, 0.1).with_windows(1, 2));
        let report = evaluate_slo(&series, &config);
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        record_burn_spans(&mut recorder, &report);
        let trace = recorder.finish().unwrap();
        let labels: Vec<&str> = trace.events().iter().map(|e| e.kind.label()).collect();
        assert_eq!(labels, vec!["slo-burn", "slo-clear"]);
        assert!(matches!(
            trace.events()[0].kind,
            SpanKind::SloBurn {
                class: SloClass::Standard,
                window: 1
            }
        ));
        assert!(matches!(
            trace.events()[1].kind,
            SpanKind::SloClear {
                class: SloClass::Standard,
                window: 2
            }
        ));
        // A disabled recorder stays untouched (the bitwise-off pin).
        let mut off = TraceRecorder::new(TraceConfig::disabled());
        record_burn_spans(&mut off, &report);
        assert!(off.finish().is_none());
    }

    #[test]
    fn replacing_an_objective_keeps_one_per_class() {
        let config = SloConfig::disabled()
            .with_objective(SloObjective::new(SloClass::Latency, 0.1))
            .with_objective(SloObjective::new(SloClass::Latency, 0.2));
        assert_eq!(config.objectives().len(), 1);
        assert!((config.objectives()[0].target_miss_rate - 0.2).abs() < 1e-12);
        assert!(config.is_enabled());
        assert!(!SloConfig::disabled().is_enabled());
    }
}
