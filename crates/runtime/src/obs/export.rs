//! Trace and metrics exporters — and the validator CI runs over them.
//!
//! * [`perfetto_trace_json`] writes the Chrome trace event format (JSON)
//!   that Perfetto / `chrome://tracing` load directly: one process per
//!   device laying its tiles out as tracks on the *virtual* timeline, with
//!   an extra process of host-time profiling lanes when a
//!   [`ProfileStats`] rides along.
//! * [`prometheus_text`] renders a [`RuntimeMetrics`] snapshot in the
//!   Prometheus text exposition format, including the log-bucketed
//!   histograms as cumulative `_bucket{le="…"}` series.
//! * [`validate_chrome_trace`] re-parses an emitted trace with a minimal
//!   hand-rolled JSON reader (the workspace deliberately carries no serde)
//!   and checks the invariants CI enforces: it parses, it has non-empty
//!   tracks, and complete spans nest monotonically per track.

use std::fmt::Write as _;

use crate::metrics::{ClassMetrics, DeviceMetrics, RuntimeMetrics};

use super::profile::ProfileStats;
use super::slo::SloReport;
use super::timeline::TimeSeries;
use super::trace::{SpanKind, Trace, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so the JSON stays finite and parseable. Uses Rust's
/// shortest round-trip rendering: rounding to a fixed decimal count can
/// turn two spans that touch exactly (`a.end == b.start`) into a phantom
/// overlap when the shared boundary rounds differently in each span.
fn num(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "0".into()
    }
}

/// The track (Chrome `tid`) a span renders on: tile tracks are 1-based so
/// track 0 can carry the device-level lane (admission, routing, counters).
fn track_of(event: &TraceEvent) -> usize {
    event.tile.map_or(0, |tile| tile + 1)
}

/// Pushes one complete (`ph:"X"`) span.
fn push_complete(out: &mut String, event: &TraceEvent, pid: usize, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{pid},\"tid\":{},\"ts\":{},\"dur\":{}{args}}}",
        event.kind.label(),
        track_of(event),
        num(event.time_us),
        num(event.dur_us),
    );
}

/// Pushes one instant (`ph:"i"`) event.
fn push_instant(out: &mut String, event: &TraceEvent, pid: usize, args: &str) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"pid\":{pid},\"tid\":{},\"ts\":{}{args}}}",
        event.kind.label(),
        track_of(event),
        num(event.time_us),
    );
}

/// Renders the per-kind `args` object fragment (leading comma included),
/// so every span carries its request id and decision detail.
fn args_of(event: &TraceEvent) -> String {
    let mut fields = Vec::new();
    if let Some(id) = event.request_id {
        fields.push(format!("\"request\":{id}"));
    }
    match &event.kind {
        SpanKind::Admission { admitted } => fields.push(format!("\"admitted\":{admitted}")),
        SpanKind::RouteChoice(choice) => {
            fields.push(format!("\"policy\":\"{}\"", json_escape(choice.policy)));
            fields.push(format!("\"chosen\":{}", choice.chosen));
            if !choice.candidates.is_empty() {
                let list: Vec<String> = choice
                    .candidates
                    .iter()
                    .map(|(device, est)| format!("[{device},{}]", num(*est)))
                    .collect();
                fields.push(format!("\"candidates\":[{}]", list.join(",")));
            }
        }
        SpanKind::Acquire { source, bytes } => {
            fields.push(format!("\"source\":\"{}\"", json_escape(source)));
            fields.push(format!("\"bytes\":{bytes}"));
        }
        SpanKind::Prefetch { bytes } => fields.push(format!("\"bytes\":{bytes}")),
        SpanKind::Batch { run_len } => fields.push(format!("\"run_len\":{run_len}")),
        SpanKind::DrainPhase { begin } => fields.push(format!("\"begin\":{begin}")),
        SpanKind::LinkDegrade { multiplier } => {
            fields.push(format!("\"multiplier\":{}", num(*multiplier)));
        }
        SpanKind::StageReady { deps } => fields.push(format!("\"deps\":{deps}")),
        SpanKind::StageTransfer { from, bytes } => {
            fields.push(format!("\"from\":{from}"));
            fields.push(format!("\"bytes\":{bytes}"));
        }
        SpanKind::SloAdmit { class, admitted } => {
            fields.push(format!("\"slo_class\":\"{}\"", class.label()));
            fields.push(format!("\"admitted\":{admitted}"));
        }
        SpanKind::SloBurn { class, window } | SpanKind::SloClear { class, window } => {
            fields.push(format!("\"slo_class\":\"{}\"", class.label()));
            fields.push(format!("\"window\":{window}"));
        }
        _ => {}
    }
    if fields.is_empty() {
        String::new()
    } else {
        format!(",\"args\":{{{}}}", fields.join(","))
    }
}

/// Writes a [`Trace`] (and optionally the host-time [`ProfileStats`]) as
/// Chrome trace event format JSON, loadable by Perfetto.
///
/// Layout: device *d*'s virtual-time lanes are process `d + 1` (track 0 =
/// device-level decisions, track *t* + 1 = tile *t*); queue waits render as
/// async (`ph:"b"`/`"e"`) spans keyed by request id so overlapping waits
/// stack; control-plane counters render as `ph:"C"` counter series. When
/// `profile` is given, process 0 carries one host-time lane per stage —
/// the ns/event attribution laid out next to the virtual timeline.
pub fn perfetto_trace_json(trace: &Trace, profile: Option<&ProfileStats>, label: &str) -> String {
    perfetto_trace_json_with_telemetry(trace, profile, None, None, label)
}

/// [`perfetto_trace_json`] plus a top-level `"telemetry"` section carrying
/// the windowed [`TimeSeries`] (and, when SLO objectives were tracked, the
/// per-class burn samples and alerts) — the same artifact CI archives, now
/// chartable without re-running the serve. The extra key is ignored by
/// Perfetto and passes [`validate_chrome_trace`] unchanged.
pub fn perfetto_trace_json_with_telemetry(
    trace: &Trace,
    profile: Option<&ProfileStats>,
    telemetry: Option<&TimeSeries>,
    slo: Option<&SloReport>,
    label: &str,
) -> String {
    let mut events: Vec<String> = Vec::new();
    let mut named_processes = std::collections::BTreeSet::new();
    let mut named_tracks = std::collections::BTreeSet::new();

    for event in trace.events() {
        let pid = event.device + 1;
        if named_processes.insert(pid) {
            let mut meta = String::new();
            let _ = write!(
                meta,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\
                 \"device {} (virtual time)\"}}}}",
                event.device
            );
            events.push(meta);
        }
        let track = track_of(event);
        if named_tracks.insert((pid, track)) {
            let track_name = match event.tile {
                Some(tile) => format!("tile {tile}"),
                None => "decisions".into(),
            };
            let mut meta = String::new();
            let _ = write!(
                meta,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{track},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                json_escape(&track_name)
            );
            events.push(meta);
        }

        let args = args_of(event);
        let mut out = String::new();
        match &event.kind {
            SpanKind::QueueWait => {
                // Queue waits of different requests overlap on one track;
                // async begin/end pairs keyed by request id keep them
                // stacked instead of ill-nested.
                let id = event.request_id.unwrap_or(0);
                let _ = write!(
                    out,
                    "{{\"name\":\"queue-wait\",\"cat\":\"queue\",\"ph\":\"b\",\"id\":{id},\
                     \"pid\":{pid},\"tid\":{},\"ts\":{}{args}}}",
                    track_of(event),
                    num(event.time_us),
                );
                events.push(out);
                let mut end = String::new();
                let _ = write!(
                    end,
                    "{{\"name\":\"queue-wait\",\"cat\":\"queue\",\"ph\":\"e\",\"id\":{id},\
                     \"pid\":{pid},\"tid\":{},\"ts\":{}}}",
                    track_of(event),
                    num(event.time_us + event.dur_us),
                );
                events.push(end);
                continue;
            }
            SpanKind::Counter { name, value } => {
                let _ = write!(
                    out,
                    "{{\"name\":\"{}\",\"ph\":\"C\",\"pid\":{pid},\"ts\":{},\
                     \"args\":{{\"value\":{value}}}}}",
                    name.label(),
                    num(event.time_us),
                );
                events.push(out);
                continue;
            }
            _ if event.dur_us > 0.0 => push_complete(&mut out, event, pid, &args),
            _ => push_instant(&mut out, event, pid, &args),
        }
        events.push(out);
    }

    if let Some(profile) = profile {
        let mut meta = String::new();
        let _ = write!(
            meta,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\
             \"args\":{{\"name\":\"host profiler (wall time)\"}}}}"
        );
        events.push(meta);
        for (index, (stage, nanos, probes)) in profile.rows().iter().enumerate() {
            let mut name = String::new();
            let _ = write!(
                name,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{index},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                stage.label()
            );
            events.push(name);
            // One span per stage whose length is its total host time, so
            // the lanes read as a proportional breakdown beside the
            // virtual-time tracks (ts is µs; ns → µs).
            let mut span = String::new();
            let _ = write!(
                span,
                "{{\"name\":\"{} ({probes} probes)\",\"ph\":\"X\",\"pid\":0,\"tid\":{index},\
                 \"ts\":0,\"dur\":{}}}",
                stage.label(),
                num(*nanos as f64 / 1_000.0),
            );
            events.push(span);
        }
    }

    let mut json = String::new();
    json.push_str("{\n  \"traceEvents\": [\n");
    for (index, event) in events.iter().enumerate() {
        let comma = if index + 1 < events.len() { "," } else { "" };
        let _ = writeln!(json, "    {event}{comma}");
    }
    json.push_str("  ],\n");
    if let Some(series) = telemetry {
        let _ = writeln!(json, "  \"telemetry\": {},", telemetry_json(series, slo));
    }
    let _ = writeln!(json, "  \"displayTimeUnit\": \"ms\",");
    let _ = writeln!(
        json,
        "  \"otherData\": {{\"label\": \"{}\", \"dropped_events\": {}}}",
        json_escape(label),
        trace.dropped()
    );
    json.push_str("}\n");
    json
}

/// Renders the windowed time-series (and optional SLO tracking) as the JSON
/// object embedded under the artifact's top-level `"telemetry"` key.
fn telemetry_json(series: &TimeSeries, slo: Option<&SloReport>) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"window_us\":{},\"makespan_us\":{},\"windows\":[",
        num(series.window_us),
        num(series.makespan_us)
    );
    for (index, window) in series.windows.iter().enumerate() {
        if index > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"index\":{},\"start_us\":{},\"end_us\":{},\"served\":{},\
             \"deadline_misses\":{},\"rejects\":{},\"transfers\":{},\
             \"miss_rate\":{},\"throughput_per_sec\":{},\"mean_queue_depth\":{},\
             \"peak_queue_depth\":{},\"utilization\":{},\"classes\":[",
            window.index,
            num(window.start_us),
            num(window.end_us),
            window.served,
            window.deadline_misses,
            window.rejects,
            window.transfers,
            num(window.miss_rate()),
            num(window.throughput_per_sec()),
            num(window.mean_queue_depth),
            window.peak_queue_depth,
            num(window.utilization),
        );
        for (slot, class) in window.classes.iter().enumerate() {
            if slot > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"slo_class\":\"{}\",\"served\":{},\"deadline_misses\":{},\
                 \"rejects\":{},\"p50_latency_us\":{},\"p99_latency_us\":{}}}",
                crate::session::SloClass::ALL[slot].label(),
                class.served,
                class.deadline_misses,
                class.rejects,
                num(class.p50_latency_us),
                num(class.p99_latency_us),
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    if let Some(report) = slo {
        out.push_str(",\"slo\":[");
        for (index, status) in report.classes.iter().enumerate() {
            if index > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"slo_class\":\"{}\",\"target_miss_rate\":{},\"fast_windows\":{},\
                 \"slow_windows\":{},\"burn_threshold\":{},\"budget_consumed\":{},\
                 \"samples\":[",
                status.objective.class.label(),
                num(status.objective.target_miss_rate),
                status.objective.fast_windows,
                status.objective.slow_windows,
                num(status.objective.burn_threshold),
                num(status.budget_consumed),
            );
            for (i, sample) in status.samples.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"window\":{},\"time_us\":{},\"fast_burn\":{},\"slow_burn\":{},\
                     \"alerting\":{}}}",
                    sample.window,
                    num(sample.time_us),
                    num(sample.fast_burn),
                    num(sample.slow_burn),
                    sample.alerting,
                );
            }
            out.push_str("],\"alerts\":[");
            for (i, alert) in status.alerts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let cleared_window = alert
                    .cleared_window
                    .map_or("null".into(), |w| w.to_string());
                let cleared_us = alert.cleared_us.map_or("null".into(), num);
                let _ = write!(
                    out,
                    "{{\"fired_window\":{},\"fired_us\":{},\"cleared_window\":{cleared_window},\
                     \"cleared_us\":{cleared_us},\"peak_fast_burn\":{}}}",
                    alert.fired_window,
                    num(alert.fired_us),
                    num(alert.peak_fast_burn),
                );
            }
            out.push_str("]}");
        }
        out.push(']');
    }
    out.push('}');
    out
}

/// Renders a metrics snapshot in the Prometheus text exposition format.
///
/// Counters and gauges cover the aggregate fields; the log-bucketed latency
/// and queue-depth histograms expose cumulative `_bucket{le="…"}` series
/// with `_sum`/`_count`, ready for a scrape endpoint to serve verbatim.
pub fn prometheus_text(metrics: &RuntimeMetrics) -> String {
    let mut out = String::new();
    let mut scalar = |name: &str, kind: &str, help: &str, value: String| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        let _ = writeln!(out, "{name} {value}");
    };
    scalar(
        "tm_requests_total",
        "counter",
        "Requests served.",
        metrics.requests.to_string(),
    );
    scalar(
        "tm_rejects_total",
        "counter",
        "Requests shed by admission control.",
        metrics.rejects.to_string(),
    );
    scalar(
        "tm_invocations_total",
        "counter",
        "Kernel invocations streamed.",
        metrics.invocations.to_string(),
    );
    scalar(
        "tm_events_fired_total",
        "counter",
        "Discrete events the serve loop fired.",
        metrics.events_fired.to_string(),
    );
    scalar(
        "tm_context_switches_total",
        "counter",
        "Hardware context switches across all tiles.",
        metrics.switch_count.to_string(),
    );
    scalar(
        "tm_deadline_misses_total",
        "counter",
        "Served requests that missed their deadline.",
        metrics.deadline_misses.to_string(),
    );
    scalar(
        "tm_sim_memo_hits_total",
        "counter",
        "Simulations answered from the memo or joined in flight.",
        metrics.sim_memo.hits.to_string(),
    );
    scalar(
        "tm_makespan_microseconds",
        "gauge",
        "Modeled end-to-end makespan.",
        num(metrics.makespan_us),
    );
    scalar(
        "tm_peak_queue_depth",
        "gauge",
        "Highest total waiting count at any instant.",
        metrics.peak_queue_depth.to_string(),
    );

    let mut histogram = |name: &str, help: &str, hist: &crate::obs::LogHistogram| {
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (le, cumulative) in hist.cumulative_buckets() {
            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cumulative}", num(le));
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count());
        let _ = writeln!(out, "{name}_sum {}", num(hist.sum()));
        let _ = writeln!(out, "{name}_count {}", hist.count());
    };
    histogram(
        "tm_request_latency_microseconds",
        "Request latency (completion minus arrival), modeled microseconds.",
        &metrics.latency_hist,
    );
    histogram(
        "tm_queue_depth_samples",
        "Total waiting count sampled at every event-loop step.",
        &metrics.queue_depth_hist,
    );
    out
}

/// [`prometheus_text`] plus the labeled breakdowns a cluster serve carries:
/// per-device series under a `device="…"` label, per-SLO-class series under
/// `slo_class="…"`, and — when SLO objectives were tracked — the burn-rate
/// gauges the alerts fired on.
pub fn prometheus_text_labeled(
    metrics: &RuntimeMetrics,
    devices: &[DeviceMetrics],
    classes: &[ClassMetrics],
    slo: Option<&SloReport>,
) -> String {
    let mut out = prometheus_text(metrics);

    let mut series = |name: &str, kind: &str, help: &str, rows: Vec<(String, String)>| {
        if rows.is_empty() {
            return;
        }
        let _ = writeln!(out, "# HELP {name} {help}");
        let _ = writeln!(out, "# TYPE {name} {kind}");
        for (labels, value) in rows {
            let _ = writeln!(out, "{name}{{{labels}}} {value}");
        }
    };
    let device_rows = |value: &dyn Fn(&DeviceMetrics) -> String| -> Vec<(String, String)> {
        devices
            .iter()
            .map(|d| (format!("device=\"{}\"", d.device), value(d)))
            .collect()
    };
    series(
        "tm_device_requests_total",
        "counter",
        "Requests served per device.",
        device_rows(&|d| d.requests.to_string()),
    );
    series(
        "tm_device_rejects_total",
        "counter",
        "Requests shed by admission control per device.",
        device_rows(&|d| d.rejects.to_string()),
    );
    series(
        "tm_device_deadline_misses_total",
        "counter",
        "Served requests that missed their deadline, per device.",
        device_rows(&|d| d.deadline_misses.to_string()),
    );
    series(
        "tm_device_context_switches_total",
        "counter",
        "Hardware context switches per device.",
        device_rows(&|d| d.switch_count.to_string()),
    );
    series(
        "tm_device_transfers_in_total",
        "counter",
        "Kernel images acquired by inter-device transfer, per device.",
        device_rows(&|d| d.transfers_in.to_string()),
    );
    series(
        "tm_device_utilization",
        "gauge",
        "Mean tile utilization per device (0..=1).",
        device_rows(&|d| num(d.mean_utilization())),
    );
    series(
        "tm_device_peak_queue_depth",
        "gauge",
        "Highest waiting count per device.",
        device_rows(&|d| d.peak_queue_depth.to_string()),
    );
    series(
        "tm_device_availability",
        "gauge",
        "Fraction of the serve the device was alive (fault tier).",
        device_rows(&|d| num(d.availability)),
    );
    series(
        "tm_device_requeues_out_total",
        "counter",
        "Requests displaced off the device by faults or drains.",
        device_rows(&|d| d.requeues_out.to_string()),
    );

    let class_rows = |value: &dyn Fn(&ClassMetrics) -> String| -> Vec<(String, String)> {
        classes
            .iter()
            .map(|c| (format!("slo_class=\"{}\"", c.slo.label()), value(c)))
            .collect()
    };
    series(
        "tm_class_pipelines_total",
        "counter",
        "Pipelines submitted per SLO class.",
        class_rows(&|c| c.pipelines.to_string()),
    );
    series(
        "tm_class_rejected_total",
        "counter",
        "Pipelines that failed admission per SLO class.",
        class_rows(&|c| c.rejected.to_string()),
    );
    series(
        "tm_class_deadline_misses_total",
        "counter",
        "Completed pipelines that committed past deadline, per SLO class.",
        class_rows(&|c| c.deadline_misses.to_string()),
    );
    series(
        "tm_class_p99_latency_microseconds",
        "gauge",
        "99th-percentile commit latency per SLO class.",
        class_rows(&|c| num(c.p99_latency_us)),
    );

    if let Some(report) = slo {
        let status_rows = |value: &dyn Fn(&super::slo::SloStatus) -> String| {
            report
                .classes
                .iter()
                .map(|s| {
                    (
                        format!("slo_class=\"{}\"", s.objective.class.label()),
                        value(s),
                    )
                })
                .collect::<Vec<_>>()
        };
        series(
            "tm_slo_budget_consumed",
            "gauge",
            "Whole-serve deadline miss-rate over the class's error budget.",
            status_rows(&|s| num(s.budget_consumed)),
        );
        series(
            "tm_slo_burn_alerts_total",
            "counter",
            "Burn-rate alerts fired per SLO class.",
            status_rows(&|s| s.alerts.len().to_string()),
        );
        series(
            "tm_slo_peak_fast_burn",
            "gauge",
            "Largest fast-window burn rate observed per SLO class.",
            status_rows(&|s| {
                num(s
                    .samples
                    .iter()
                    .map(|sample| sample.fast_burn)
                    .fold(0.0, f64::max))
            }),
        );
    }
    out
}

// ---------------------------------------------------------------------------
// Minimal JSON reader + Chrome-trace validation (no serde in the workspace).
// ---------------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (read as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields
                .iter()
                .find(|(name, _)| name == key)
                .map(|(_, value)| value),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(value) => Some(*value),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(value) => Some(value),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(values) => Some(values),
            _ => None,
        }
    }
}

struct JsonReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonReader<'a> {
    fn new(text: &'a str) -> Self {
        JsonReader {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: &str) -> String {
        format!("{message} at byte {}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut values = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(values));
        }
        loop {
            values.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(values));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let start = self.pos + 1;
                            let hex = self
                                .bytes
                                .get(start..start + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through whole.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest).map_err(|_| self.error("bad utf-8"))?;
                    let c = text.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.error("bad number"))
    }
}

/// Parses a JSON document with the built-in reader.
///
/// # Errors
///
/// Returns a position-annotated message on malformed input.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let mut reader = JsonReader::new(text);
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err(reader.error("trailing garbage after the document"));
    }
    Ok(value)
}

/// What [`validate_chrome_trace`] measured about a valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceValidation {
    /// Total trace events (spans, instants, counters, metadata).
    pub events: usize,
    /// Distinct `(pid, tid)` tracks carrying at least one event.
    pub tracks: usize,
    /// Complete (`ph:"X"`) spans checked for monotone nesting.
    pub complete_spans: usize,
}

/// Validates an emitted Chrome-trace JSON document: it parses, its
/// `traceEvents` array is non-empty with at least one named track, and on
/// every `(pid, tid)` track the complete spans — taken in their emitted
/// (time-sorted per track) order — are properly nested: each span either
/// starts after every open ancestor ends, or sits entirely inside the
/// innermost open one.
///
/// # Errors
///
/// Returns a message naming the first violated invariant.
pub fn validate_chrome_trace(json: &str) -> Result<TraceValidation, String> {
    let document = parse_json(json)?;
    let events = document
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("traceEvents array missing")?;
    if events.is_empty() {
        return Err("traceEvents is empty".into());
    }

    let mut tracks: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> =
        std::collections::BTreeMap::new();
    let mut occupied = std::collections::BTreeSet::new();
    for event in events {
        let ph = event.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let pid = event.get("pid").and_then(JsonValue::as_num).unwrap_or(0.0) as u64;
        let tid = event.get("tid").and_then(JsonValue::as_num).unwrap_or(0.0) as u64;
        if ph != "M" {
            occupied.insert((pid, tid));
        }
        if ph == "X" {
            let ts = event
                .get("ts")
                .and_then(JsonValue::as_num)
                .ok_or("complete span without ts")?;
            let dur = event
                .get("dur")
                .and_then(JsonValue::as_num)
                .ok_or("complete span without dur")?;
            if dur < 0.0 {
                return Err(format!("negative span duration {dur} at ts {ts}"));
            }
            tracks.entry((pid, tid)).or_default().push((ts, ts + dur));
        }
    }
    if occupied.is_empty() {
        return Err("no track carries any event".into());
    }

    let mut complete_spans = 0usize;
    for ((pid, tid), spans) in &tracks {
        let mut stack: Vec<(f64, f64)> = Vec::new();
        let mut last_start = f64::NEG_INFINITY;
        for &(start, end) in spans {
            if start < last_start {
                return Err(format!(
                    "track ({pid},{tid}): span at ts {start} emitted out of order"
                ));
            }
            last_start = start;
            while let Some(&(_, open_end)) = stack.last() {
                if open_end <= start {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(open_start, open_end)) = stack.last() {
                if end > open_end {
                    return Err(format!(
                        "track ({pid},{tid}): span [{start}, {end}] overlaps \
                         [{open_start}, {open_end}] without nesting"
                    ));
                }
            }
            stack.push((start, end));
            complete_spans += 1;
        }
    }

    Ok(TraceValidation {
        events: events.len(),
        tracks: occupied.len(),
        complete_spans,
    })
}

#[cfg(test)]
mod tests {
    use super::super::trace::{CounterName, TraceConfig, TraceRecorder};
    use super::*;

    fn sample_trace() -> Trace {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(TraceEvent {
            time_us: 0.0,
            dur_us: 0.0,
            request_id: Some(1),
            device: 0,
            tile: None,
            kind: SpanKind::Submit,
        });
        recorder.record(TraceEvent {
            time_us: 0.0,
            dur_us: 2.0,
            request_id: Some(1),
            device: 0,
            tile: Some(0),
            kind: SpanKind::QueueWait,
        });
        recorder.record(TraceEvent {
            time_us: 2.0,
            dur_us: 0.25,
            request_id: Some(1),
            device: 0,
            tile: Some(0),
            kind: SpanKind::ContextSwitch,
        });
        recorder.record(TraceEvent {
            time_us: 2.25,
            dur_us: 5.0,
            request_id: Some(1),
            device: 0,
            tile: Some(0),
            kind: SpanKind::Run,
        });
        recorder.counter(2.25, 0, CounterName::MemoHit);
        recorder.finish().expect("tracing was on")
    }

    #[test]
    fn emitted_traces_validate() {
        let trace = sample_trace();
        let json = perfetto_trace_json(&trace, None, "test \"quoted\" label");
        let validation = validate_chrome_trace(&json).expect("emitted trace is valid");
        assert!(validation.events >= 5);
        assert!(validation.tracks >= 2);
        assert_eq!(validation.complete_spans, 2);
    }

    #[test]
    fn profile_lanes_ride_along() {
        use super::super::profile::{Stage, StageProfiler};
        let mut profiler = StageProfiler::new(true);
        let probe = profiler.begin();
        profiler.end(Stage::Scan, probe);
        let stats = profiler.finish().unwrap();
        let json = perfetto_trace_json(&sample_trace(), Some(&stats), "profiled");
        assert!(json.contains("host profiler (wall time)"));
        let validation = validate_chrome_trace(&json).expect("profiled trace is valid");
        assert_eq!(validation.complete_spans, 2 + crate::obs::STAGE_COUNT);
    }

    #[test]
    fn the_validator_rejects_broken_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\": []}").is_err());
        // Overlapping-but-not-nested spans on one track.
        let bad = "{\"traceEvents\": [\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":0,\"dur\":5},\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":3,\"dur\":5}]}";
        let err = validate_chrome_trace(bad).unwrap_err();
        assert!(err.contains("without nesting"), "{err}");
        // Out-of-order emission.
        let unsorted = "{\"traceEvents\": [\
            {\"name\":\"a\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":9,\"dur\":1},\
            {\"name\":\"b\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\"ts\":3,\"dur\":1}]}";
        assert!(validate_chrome_trace(unsorted)
            .unwrap_err()
            .contains("out of order"));
    }

    #[test]
    fn the_json_reader_round_trips_escapes_and_numbers() {
        let value = parse_json(
            "{\"a\": [1, -2.5, 1e3], \"s\": \"q\\\"\\u0041\\n\", \"t\": true, \"n\": null}",
        )
        .expect("parses");
        assert_eq!(
            value.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(1000.0)
        );
        assert_eq!(value.get("s").unwrap().as_str(), Some("q\"A\n"));
        assert_eq!(value.get("t"), Some(&JsonValue::Bool(true)));
        assert_eq!(value.get("n"), Some(&JsonValue::Null));
        assert!(parse_json("[1, 2").is_err());
        assert!(parse_json("{} extra").is_err());
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
