//! Per-request latency attribution decoded from a serve's trace.
//!
//! The start path records every request's lifecycle as spans that tile the
//! `[arrival, completion]` interval by construction: queue wait, then (when
//! a context switch is paid) image acquisition, inter-stage activation
//! transfer and the instruction-reload switch, then the run. [`explain`]
//! decodes those spans back into one additive [`Attribution`] row per served
//! request, with the invariant the observability tests audit:
//!
//! ```text
//! queue + acquire + activation + switch + run == latency   (± float ulps)
//! ```
//!
//! Fault displacement shows up separately: a request killed mid-run is
//! requeued and restarted, its superseded attempt's acquire/switch/run time
//! is reported as `displaced_us` (work thrown away, overlapping the final
//! queue wait — *not* part of the additive identity), and its `requeues`
//! count the displacements. [`AttributionReport::worst_offenders`] ranks the
//! slowest requests for the "why was this one slow" question the Perfetto
//! dump answers only by hand.

use std::collections::BTreeMap;

use crate::obs::trace::{SpanKind, Trace};

/// The additive latency breakdown of one served request, plus its fault
/// displacement record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Attribution {
    /// The caller-chosen request id.
    pub request_id: u64,
    /// The device the (final) run executed on.
    pub device: usize,
    /// When the request arrived, microseconds.
    pub arrival_us: f64,
    /// When the final run committed, microseconds.
    pub completion_us: f64,
    /// Completion minus arrival — the total the breakdown reconciles to.
    pub latency_us: f64,
    /// Arrival to final tile start: the queueing portion.
    pub queue_us: f64,
    /// Kernel-image acquisition (inter-device transfer or host load)
    /// serialized ahead of the final context switch.
    pub acquire_us: f64,
    /// Inter-stage activation transfer charged ahead of the final switch
    /// (pipeline serves only).
    pub activation_us: f64,
    /// The instruction-reload context switch itself.
    pub switch_us: f64,
    /// Kernel execution on the tile.
    pub run_us: f64,
    /// Acquire/activation/switch/run time of superseded attempts a fault
    /// displaced — discarded work, overlapping the final queue wait and
    /// therefore *not* part of the additive identity.
    pub displaced_us: f64,
    /// How many times a fault displaced the request back into routing.
    pub requeues: u32,
}

impl Attribution {
    /// The additive breakdown's sum: `queue + acquire + activation + switch
    /// + run`.
    pub fn attributed_us(&self) -> f64 {
        self.queue_us + self.acquire_us + self.activation_us + self.switch_us + self.run_us
    }

    /// `latency - attributed`: the float residue of the tiling (ulps on a
    /// complete trace; large when the ring dropped this request's spans).
    pub fn residual_us(&self) -> f64 {
        self.latency_us - self.attributed_us()
    }

    /// Whether the breakdown reconciles with the modeled latency to within
    /// float tolerance.
    pub fn reconciles(&self) -> bool {
        self.residual_us().abs() <= 1e-9 * self.latency_us.abs().max(1.0)
    }
}

/// Every served request's [`Attribution`], decoded from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionReport {
    rows: Vec<Attribution>,
}

impl AttributionReport {
    /// The per-request rows, in request-id order.
    pub fn rows(&self) -> &[Attribution] {
        &self.rows
    }

    /// The row for one request, if its spans were retained.
    pub fn for_request(&self, request_id: u64) -> Option<&Attribution> {
        self.rows
            .binary_search_by_key(&request_id, |row| row.request_id)
            .ok()
            .map(|index| &self.rows[index])
    }

    /// The `n` highest-latency requests, slowest first (ties by request id).
    pub fn worst_offenders(&self, n: usize) -> Vec<&Attribution> {
        let mut ranked: Vec<&Attribution> = self.rows.iter().collect();
        ranked.sort_by(|a, b| {
            b.latency_us
                .total_cmp(&a.latency_us)
                .then(a.request_id.cmp(&b.request_id))
        });
        ranked.truncate(n);
        ranked
    }

    /// Renders the `n` worst offenders as an aligned text table (the shape
    /// the serving example and the README show).
    pub fn worst_offenders_table(&self, n: usize) -> String {
        let mut out = String::new();
        out.push_str(
            "request      latency_us    queue_us  acquire_us   activ_us  switch_us      run_us  displaced  requeues\n",
        );
        for row in self.worst_offenders(n) {
            out.push_str(&format!(
                "{:>7}  {:>13.3}  {:>10.3}  {:>10.3}  {:>9.3}  {:>9.3}  {:>10.3}  {:>9.3}  {:>8}\n",
                row.request_id,
                row.latency_us,
                row.queue_us,
                row.acquire_us,
                row.activation_us,
                row.switch_us,
                row.run_us,
                row.displaced_us,
                row.requeues,
            ));
        }
        out
    }
}

/// Accumulates one request's spans in ring order.
#[derive(Debug, Clone, Copy, Default)]
struct PendingAttribution {
    device: usize,
    arrival_us: f64,
    completion_us: f64,
    queue_us: f64,
    acquire_us: f64,
    activation_us: f64,
    switch_us: f64,
    run_us: f64,
    displaced_us: f64,
    requeues: u32,
    saw_queue: bool,
    saw_run: bool,
}

/// Decodes every request's retained spans into its additive latency
/// breakdown. Requests whose start burst the bounded ring dropped (or that
/// were rejected and never ran) produce no row.
pub fn explain(trace: &Trace) -> AttributionReport {
    let mut pending: BTreeMap<u64, PendingAttribution> = BTreeMap::new();
    for event in trace.events() {
        let Some(request_id) = event.request_id else {
            continue;
        };
        let entry = pending.entry(request_id).or_default();
        match event.kind {
            SpanKind::QueueWait => {
                if entry.saw_run {
                    // A fresh start burst after a completed attempt: the
                    // fault tier displaced the first run. Its paid work is
                    // discarded time; the new wait supersedes the old.
                    entry.displaced_us +=
                        entry.acquire_us + entry.activation_us + entry.switch_us + entry.run_us;
                    entry.acquire_us = 0.0;
                    entry.activation_us = 0.0;
                    entry.switch_us = 0.0;
                    entry.run_us = 0.0;
                    entry.saw_run = false;
                }
                entry.arrival_us = event.time_us;
                entry.queue_us = event.dur_us;
                entry.saw_queue = true;
            }
            SpanKind::Acquire { .. } => entry.acquire_us += event.dur_us,
            SpanKind::Activation => entry.activation_us += event.dur_us,
            SpanKind::ContextSwitch => entry.switch_us += event.dur_us,
            SpanKind::Run => {
                entry.run_us += event.dur_us;
                entry.device = event.device;
                entry.saw_run = true;
            }
            SpanKind::Commit => entry.completion_us = event.time_us,
            SpanKind::Requeue => entry.requeues += 1,
            _ => {}
        }
    }
    let rows = pending
        .into_iter()
        .filter(|(_, entry)| entry.saw_queue && entry.saw_run)
        .map(|(request_id, entry)| Attribution {
            request_id,
            device: entry.device,
            arrival_us: entry.arrival_us,
            completion_us: entry.completion_us,
            latency_us: entry.completion_us - entry.arrival_us,
            queue_us: entry.queue_us,
            acquire_us: entry.acquire_us,
            activation_us: entry.activation_us,
            switch_us: entry.switch_us,
            run_us: entry.run_us,
            displaced_us: entry.displaced_us,
            requeues: entry.requeues,
        })
        .collect();
    AttributionReport { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::obs::trace::{TraceConfig, TraceEvent, TraceRecorder};

    fn span(time_us: f64, dur_us: f64, request_id: u64, kind: SpanKind) -> TraceEvent {
        TraceEvent {
            time_us,
            dur_us,
            request_id: Some(request_id),
            device: 1,
            tile: Some(0),
            kind,
        }
    }

    #[test]
    fn a_full_lifecycle_reconciles_additively() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.queue_wait_batch(0.0, 2.0, 7, 1, 0, 1);
        recorder.record(span(
            2.0,
            0.5,
            7,
            SpanKind::Acquire {
                source: "transfer",
                bytes: 64,
            },
        ));
        recorder.record(span(2.5, 0.25, 7, SpanKind::Activation));
        recorder.record(span(2.75, 0.25, 7, SpanKind::ContextSwitch));
        recorder.run_commit(3.0, 4.0, 7.0, 7, 1, 0);
        let trace = recorder.finish().unwrap();
        let report = explain(&trace);
        assert_eq!(report.rows().len(), 1);
        let row = report.for_request(7).unwrap();
        assert_eq!(row.device, 1);
        assert!((row.latency_us - 7.0).abs() < 1e-12);
        assert!((row.queue_us - 2.0).abs() < 1e-12);
        assert!((row.acquire_us - 0.5).abs() < 1e-12);
        assert!((row.activation_us - 0.25).abs() < 1e-12);
        assert!((row.switch_us - 0.25).abs() < 1e-12);
        assert!((row.run_us - 4.0).abs() < 1e-12);
        assert_eq!(row.requeues, 0);
        assert!(row.reconciles(), "residual {}", row.residual_us());
    }

    #[test]
    fn displaced_attempts_fold_into_the_displacement_column() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        // First attempt: starts at 1, would have run to 6 — killed.
        recorder.queue_wait_batch(0.0, 1.0, 3, 0, 0, 1);
        recorder.record(TraceEvent {
            device: 0,
            ..span(1.0, 0.5, 3, SpanKind::ContextSwitch)
        });
        recorder.run_commit(1.5, 4.5, 6.0, 3, 0, 0);
        // Displacement and the second, surviving attempt on device 1.
        recorder.record(span(6.5, 0.0, 3, SpanKind::Requeue));
        recorder.queue_wait_batch(0.0, 8.0, 3, 1, 0, 1);
        recorder.record(span(8.0, 0.5, 3, SpanKind::ContextSwitch));
        recorder.run_commit(8.5, 3.5, 12.0, 3, 1, 0);
        let trace = recorder.finish().unwrap();
        let report = explain(&trace);
        let row = report.for_request(3).unwrap();
        assert_eq!(row.device, 1);
        assert_eq!(row.requeues, 1);
        // Final attempt tiles [0, 12]: 8 queued + 0.5 switch + 3.5 run.
        assert!((row.latency_us - 12.0).abs() < 1e-12);
        assert!((row.queue_us - 8.0).abs() < 1e-12);
        assert!((row.run_us - 3.5).abs() < 1e-12);
        assert!(row.reconciles(), "residual {}", row.residual_us());
        // The first attempt's paid switch + run is the discarded work.
        assert!((row.displaced_us - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rejected_and_span_dropped_requests_produce_no_row() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        recorder.record(span(0.0, 0.0, 5, SpanKind::Submit));
        recorder.record(span(0.0, 0.0, 5, SpanKind::Reject));
        // A run whose queue-wait span the ring dropped: no row either.
        recorder.run_commit(1.0, 2.0, 3.0, 6, 0, 0);
        let trace = recorder.finish().unwrap();
        let report = explain(&trace);
        assert!(report.rows().is_empty());
        assert!(report.for_request(5).is_none());
    }

    #[test]
    fn worst_offenders_rank_by_latency_and_render() {
        let mut recorder = TraceRecorder::new(TraceConfig::enabled());
        for (id, run_us) in [(1u64, 2.0), (2, 9.0), (3, 5.0)] {
            recorder.queue_wait_batch(0.0, 1.0, id, 0, 0, 1);
            recorder.run_commit(1.0, run_us, 1.0 + run_us, id, 0, 0);
        }
        let trace = recorder.finish().unwrap();
        let report = explain(&trace);
        let worst = report.worst_offenders(2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].request_id, 2);
        assert_eq!(worst[1].request_id, 3);
        let table = report.worst_offenders_table(2);
        assert!(table.starts_with("request"));
        assert_eq!(table.lines().count(), 3);
        assert!(table.contains("10.000"), "table:\n{table}");
    }
}
