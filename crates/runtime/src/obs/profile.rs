//! Host-time hot-path profiling for the event loops.
//!
//! A [`StageProfiler`] attributes the loop's host nanoseconds to five
//! stages — the denominator behind the ns/event figures the benches report.
//! It is gated behind an opt-in flag
//! ([`Runtime::with_profiling`](crate::Runtime::with_profiling)): off (the
//! default) every probe is one branch on a bool and no clock is read, so
//! the bitwise-pinned hot path stays clock-free.
//!
//! Stage attribution:
//!
//! * **scan** — tile-queue operations: enqueue, pop-next scan, start-next
//!   candidate selection;
//! * **route** — placement decisions: [`Dispatcher::place`](crate::dispatch)
//!   and, on a cluster, device routing;
//! * **sim** — collecting finished functional simulations out of the
//!   worker pool;
//! * **memo** — sourcing a request's simulation (memo lookup, in-flight
//!   join, or spawn);
//! * **bookkeeping** — everything charged per event around the above:
//!   outcome recording, queue-depth integration, histogram updates.

use std::fmt;
use std::time::Instant;

/// The profiled stages, in export order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tile-queue scans and pops.
    Scan,
    /// Placement and device-routing decisions.
    Route,
    /// Collecting finished simulations.
    Sim,
    /// Sourcing simulations (memo lookup / join / spawn).
    Memo,
    /// Per-event accounting around the hot path.
    Bookkeeping,
}

/// Number of profiled stages.
pub const STAGE_COUNT: usize = 5;

impl Stage {
    /// All stages, in export order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Scan,
        Stage::Route,
        Stage::Sim,
        Stage::Memo,
        Stage::Bookkeeping,
    ];

    /// The stage's export name.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Scan => "scan",
            Stage::Route => "route",
            Stage::Sim => "sim",
            Stage::Memo => "memo",
            Stage::Bookkeeping => "bookkeeping",
        }
    }

    fn index(&self) -> usize {
        match self {
            Stage::Scan => 0,
            Stage::Route => 1,
            Stage::Sim => 2,
            Stage::Memo => 3,
            Stage::Bookkeeping => 4,
        }
    }
}

/// Accumulates host nanoseconds per stage. Owned by the event loop; inert
/// (no clock reads) unless built enabled.
#[derive(Debug)]
pub struct StageProfiler {
    enabled: bool,
    nanos: [u64; STAGE_COUNT],
    counts: [u64; STAGE_COUNT],
}

impl StageProfiler {
    /// A profiler that reads the host clock only when `enabled`.
    pub fn new(enabled: bool) -> Self {
        StageProfiler {
            enabled,
            nanos: [0; STAGE_COUNT],
            counts: [0; STAGE_COUNT],
        }
    }

    /// Starts a probe: `None` (free) when profiling is off.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a probe started by [`begin`](StageProfiler::begin), attributing
    /// the elapsed host time to `stage`.
    #[inline]
    pub fn end(&mut self, stage: Stage, started: Option<Instant>) {
        if let Some(started) = started {
            let slot = stage.index();
            self.nanos[slot] += started.elapsed().as_nanos() as u64;
            self.counts[slot] += 1;
        }
    }

    /// Consumes the profiler into its [`ProfileStats`], or `None` when
    /// profiling was off.
    pub fn finish(self) -> Option<ProfileStats> {
        if !self.enabled {
            return None;
        }
        Some(ProfileStats {
            nanos: self.nanos,
            counts: self.counts,
        })
    }
}

/// Per-stage host-time attribution for one serve, reported when profiling
/// was on and spliced into `BENCH_runtime.json`'s `profile` section by the
/// scalability bench.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileStats {
    nanos: [u64; STAGE_COUNT],
    counts: [u64; STAGE_COUNT],
}

impl ProfileStats {
    /// Total host nanoseconds attributed to `stage`.
    pub fn nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()]
    }

    /// Number of probes attributed to `stage`.
    pub fn probes(&self, stage: Stage) -> u64 {
        self.counts[stage.index()]
    }

    /// Mean host nanoseconds per probe for `stage` (0 when never probed).
    pub fn ns_per_probe(&self, stage: Stage) -> f64 {
        let slot = stage.index();
        if self.counts[slot] == 0 {
            0.0
        } else {
            self.nanos[slot] as f64 / self.counts[slot] as f64
        }
    }

    /// Total host nanoseconds across every stage.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Adds another profile's attribution into this one. The sharded
    /// cluster merges its per-lane profiles through this: host-time
    /// attribution is additive across lanes (it never feeds the
    /// bitwise-pinned model state, so summing is exact for the counters
    /// and the right roll-up for the nanoseconds).
    pub fn absorb(&mut self, other: &ProfileStats) {
        for slot in 0..STAGE_COUNT {
            self.nanos[slot] += other.nanos[slot];
            self.counts[slot] += other.counts[slot];
        }
    }

    /// `(stage, total ns, probes)` rows in export order.
    pub fn rows(&self) -> [(Stage, u64, u64); STAGE_COUNT] {
        let mut rows = [(Stage::Scan, 0, 0); STAGE_COUNT];
        for (row, stage) in rows.iter_mut().zip(Stage::ALL) {
            *row = (stage, self.nanos(stage), self.probes(stage));
        }
        rows
    }
}

impl fmt::Display for ProfileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_nanos().max(1) as f64;
        write!(f, "host profile:")?;
        for (stage, nanos, probes) in self.rows() {
            write!(
                f,
                " {} {:.0}ns/probe x{} ({:.0}%)",
                stage.label(),
                self.ns_per_probe(stage),
                probes,
                nanos as f64 / total * 100.0
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_disabled_profiler_reads_no_clock_and_finishes_to_none() {
        let mut profiler = StageProfiler::new(false);
        let probe = profiler.begin();
        assert!(probe.is_none());
        profiler.end(Stage::Scan, probe);
        assert!(profiler.finish().is_none());
    }

    #[test]
    fn probes_accumulate_per_stage() {
        let mut profiler = StageProfiler::new(true);
        for _ in 0..3 {
            let probe = profiler.begin();
            assert!(probe.is_some());
            profiler.end(Stage::Route, probe);
        }
        let probe = profiler.begin();
        profiler.end(Stage::Memo, probe);
        let stats = profiler.finish().expect("profiling was on");
        assert_eq!(stats.probes(Stage::Route), 3);
        assert_eq!(stats.probes(Stage::Memo), 1);
        assert_eq!(stats.probes(Stage::Scan), 0);
        assert_eq!(stats.ns_per_probe(Stage::Scan), 0.0);
        assert!(stats.total_nanos() >= stats.nanos(Stage::Route));
        let text = stats.to_string();
        assert!(text.contains("route"));
        assert!(text.contains("bookkeeping"));
        assert_eq!(stats.rows()[0].0, Stage::Scan);
    }
}
