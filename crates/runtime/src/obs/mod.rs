//! Observability for the serving runtime: request-span tracing, log-bucketed
//! histogram metrics, exporters, and host-time hot-path profiling.
//!
//! Everything here is off by default and proptest-pinned free when off —
//! the same idiom as the control plane ([`BatchConfig::disabled`](crate::BatchConfig::disabled)):
//!
//! * [`TraceConfig`] / [`TraceRecorder`] — a bounded drop-oldest ring of
//!   typed [`TraceEvent`] spans on the virtual timeline, recording every
//!   request's lifecycle (submit → admission → route → queue wait →
//!   acquire/switch → run → commit/reject) plus control-plane counters.
//!   Enable with [`Runtime::with_tracing`](crate::Runtime::with_tracing) /
//!   [`Cluster::with_tracing`](crate::Cluster::with_tracing); the completed
//!   [`Trace`] comes back on the serve report.
//! * [`LogHistogram`] — HDR-style log-bucketed latency and queue-depth
//!   histograms, recorded online in
//!   [`RuntimeMetrics`](crate::RuntimeMetrics) (always on; pure function of
//!   the modeled serve), with a cluster merge path
//!   ([`percentile_from_parts`]) mirroring
//!   [`percentile_from_sorted_parts`](crate::metrics::percentile_from_sorted_parts).
//! * [`perfetto_trace_json`] / [`prometheus_text`] — exporters; the former
//!   is validated by [`validate_chrome_trace`] in CI.
//! * [`StageProfiler`] / [`ProfileStats`] — opt-in host-time stage timers
//!   (scan / route / sim / memo / bookkeeping) behind
//!   [`Runtime::with_profiling`](crate::Runtime::with_profiling), feeding
//!   the `profile` section of `BENCH_runtime.json`.
//! * [`TelemetryConfig`] / [`TimeSeries`] — windowed time-series aggregation
//!   on the virtual timeline (throughput, miss-rate, queue depth,
//!   utilization, per-class latency percentiles per window), behind
//!   [`Runtime::with_telemetry`](crate::Runtime::with_telemetry) /
//!   [`Cluster::with_telemetry`](crate::Cluster::with_telemetry).
//! * [`SloConfig`] / [`SloReport`] — per-class SLO objectives with
//!   error-budget burn-rate tracking and multi-window burn alerts emitted
//!   as [`SpanKind::SloBurn`] / [`SpanKind::SloClear`] trace spans.
//! * [`explain`] / [`AttributionReport`] — per-request latency attribution
//!   decoded from the trace: an additive queue / acquire / activation /
//!   switch / run breakdown reconciling with modeled latency, plus
//!   [`worst_offenders`](AttributionReport::worst_offenders).

mod explain;
mod export;
mod hist;
mod profile;
mod slo;
mod timeline;
mod trace;

pub use explain::{explain, Attribution, AttributionReport};
pub use export::{
    parse_json, perfetto_trace_json, perfetto_trace_json_with_telemetry, prometheus_text,
    prometheus_text_labeled, validate_chrome_trace, JsonValue, TraceValidation,
};
pub use hist::{percentile_from_parts, LogHistogram, SUB_BUCKETS_PER_OCTAVE};
pub use profile::{ProfileStats, Stage, StageProfiler, STAGE_COUNT};
pub(crate) use slo::{evaluate_slo, record_burn_spans};
pub use slo::{BurnAlert, BurnSample, SloConfig, SloObjective, SloReport, SloStatus};
pub use timeline::{ClassWindow, TelemetryConfig, TimeSeries, WindowStats};
pub(crate) use timeline::{GlobalSeries, LaneSeries};
pub use trace::{
    CounterName, RouteChoice, SpanKind, Trace, TraceConfig, TraceEvent, TraceRecorder,
    ACQUIRE_SOURCE_OVERFLOW, DEVICE_ID_OUT_OF_RANGE, TILE_ID_OUT_OF_RANGE,
};
