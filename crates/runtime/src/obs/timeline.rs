//! Windowed time-series aggregation on the virtual timeline.
//!
//! A serve configured with [`TelemetryConfig::windowed`] accumulates
//! per-window operational statistics *incrementally*, at the same event-loop
//! commit points the aggregate metrics already touch: the queue-depth
//! bookkeeping at every event, the admission reject path, and the tile-start
//! commit. The result is a [`TimeSeries`] of fixed-width [`WindowStats`] —
//! throughput, deadline miss-rate, rejects, mean/peak queue depth,
//! utilization, transfers, and per-[`SloClass`] latency percentiles (via the
//! same [`LogHistogram`] the aggregate metrics use) — on the report.
//!
//! Determinism discipline: the accumulator is **lane-partitioned**. Request
//! commits land in a per-device [`LaneSeries`]; only the global queue-depth
//! integral (a cross-device quantity) lives in the [`GlobalSeries`] the
//! serial commit order owns. [`TimeSeries::assemble`] then absorbs the lanes
//! in device order. The sharded event loop gives each lane thread its own
//! `LaneSeries` and replays the queue integral in its serial-order commit
//! stage, so a `with_threads` serve reproduces the serial time-series
//! bitwise — the same partition-then-absorb shape that makes the sharded
//! per-device latency histograms exact.
//!
//! Everything is off by default ([`TelemetryConfig::disabled`]) and
//! proptest-pinned bitwise-inert when off.

use crate::obs::hist::{percentile_from_parts, LogHistogram};
use crate::session::SloClass;

/// Caps the number of windows a series will allocate; activity past the cap
/// accumulates into the last window instead of growing without bound. At the
/// default bench window widths this is never approached — the cap exists so
/// a degenerate `window_us` cannot turn one long serve into an allocation
/// storm.
pub const MAX_WINDOWS: usize = 1 << 20;

/// Whether — and at what window width — the serve accumulates a windowed
/// time-series. Follows the control-plane idiom
/// ([`BatchConfig::disabled`](crate::BatchConfig::disabled)): the default is
/// off, and off is proptest-pinned bitwise-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    window_us: f64,
}

impl TelemetryConfig {
    /// Telemetry off (the default): no window is ever accumulated and the
    /// serve is bitwise-identical to one on a build without telemetry.
    pub fn disabled() -> Self {
        TelemetryConfig { window_us: 0.0 }
    }

    /// Telemetry on, aggregating into fixed-width windows of `window_us`
    /// virtual microseconds.
    ///
    /// # Panics
    ///
    /// Panics when `window_us` is not finite and positive.
    pub fn windowed(window_us: f64) -> Self {
        assert!(
            window_us.is_finite() && window_us > 0.0,
            "telemetry window width must be finite and positive, got {window_us}"
        );
        TelemetryConfig { window_us }
    }

    /// True when a time-series will be accumulated.
    pub fn is_enabled(&self) -> bool {
        self.window_us > 0.0
    }

    /// The window width (0 when disabled).
    pub fn window_us(&self) -> f64 {
        self.window_us
    }
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig::disabled()
    }
}

/// The window index a virtual timestamp lands in.
#[inline]
fn window_of(time_us: f64, window_us: f64) -> usize {
    let index = (time_us / window_us).floor();
    if index <= 0.0 {
        0
    } else {
        (index as usize).min(MAX_WINDOWS - 1)
    }
}

/// The lower edge of window `index`.
#[inline]
fn window_start(index: usize, window_us: f64) -> f64 {
    index as f64 * window_us
}

/// Per-window accumulator for one device lane.
#[derive(Debug, Clone, Default)]
pub(crate) struct LaneWindow {
    served: u64,
    deadline_misses: u64,
    rejects: u64,
    transfers: u64,
    busy_us: f64,
    class_served: [u64; SloClass::ALL.len()],
    class_misses: [u64; SloClass::ALL.len()],
    class_rejects: [u64; SloClass::ALL.len()],
    class_latency: [LogHistogram; SloClass::ALL.len()],
}

/// One device's partition of the time-series: every request commit on that
/// device accumulates here, in the device's serial commit order — which is
/// identical between the serial loop and that device's shard lane, the
/// property the bitwise sharded-equivalence tests pin.
#[derive(Debug, Clone)]
pub(crate) struct LaneSeries {
    window_us: f64,
    windows: Vec<LaneWindow>,
    /// Hot-path cache: the window the last commit landed in and its edges.
    /// Request commits cluster far tighter than a telemetry window, so most
    /// commits hit this window again and skip the index arithmetic entirely.
    cursor: usize,
    cursor_start_us: f64,
    cursor_end_us: f64,
}

impl LaneSeries {
    /// A lane accumulator for `config` — inert when disabled.
    pub(crate) fn new(config: TelemetryConfig) -> Self {
        LaneSeries {
            window_us: config.window_us(),
            windows: Vec::new(),
            cursor: 0,
            cursor_start_us: 0.0,
            cursor_end_us: config.window_us(),
        }
    }

    /// True when this lane accumulates (one branch on the off path).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.window_us > 0.0
    }

    #[inline]
    fn window_mut(&mut self, index: usize) -> &mut LaneWindow {
        if self.windows.len() <= index {
            self.windows.resize_with(index + 1, LaneWindow::default);
        }
        &mut self.windows[index]
    }

    /// Points the cursor at `index` so the next commit in the same window
    /// takes the fast path.
    #[inline]
    fn seek_cursor(&mut self, index: usize) {
        self.cursor = index;
        self.cursor_start_us = window_start(index, self.window_us);
        self.cursor_end_us = window_start(index + 1, self.window_us);
    }

    /// Accumulates one started request at its commit: counted in the window
    /// of its *completion* (when its latency becomes part of the served
    /// record), with its busy interval spread across every window it
    /// overlaps for the utilization integral.
    pub(crate) fn note_start(
        &mut self,
        class: SloClass,
        start_us: f64,
        completion_us: f64,
        latency_us: f64,
        missed_deadline: bool,
        transferred: bool,
    ) {
        if !self.enabled() {
            return;
        }
        let slot = class.index();
        // Fast path: the whole [start, completion) run sits inside the
        // cached window, so the commit and the busy segment land together
        // with no index arithmetic. The sums below match the general path's
        // single-segment arithmetic exactly, so the result is bitwise the
        // same either way.
        if start_us >= self.cursor_start_us
            && completion_us < self.cursor_end_us
            && self.cursor < self.windows.len()
        {
            let window = &mut self.windows[self.cursor];
            window.served += 1;
            window.deadline_misses += u64::from(missed_deadline);
            window.transfers += u64::from(transferred);
            window.class_served[slot] += 1;
            window.class_misses[slot] += u64::from(missed_deadline);
            window.class_latency[slot].record(latency_us);
            if start_us < completion_us {
                window.busy_us += completion_us - start_us;
            }
            return;
        }
        let window_us = self.window_us;
        let index = window_of(completion_us, window_us);
        let window = self.window_mut(index);
        window.served += 1;
        window.deadline_misses += u64::from(missed_deadline);
        window.transfers += u64::from(transferred);
        window.class_served[slot] += 1;
        window.class_misses[slot] += u64::from(missed_deadline);
        window.class_latency[slot].record(latency_us);
        // Busy-time integral: the [start, completion) interval, segment by
        // segment across the windows it overlaps.
        let mut segment_start = start_us;
        let mut segment_window = window_of(start_us, window_us);
        while segment_start < completion_us {
            let boundary = window_start(segment_window + 1, window_us);
            let segment_end = if segment_window == MAX_WINDOWS - 1 {
                completion_us
            } else {
                boundary.min(completion_us)
            };
            self.window_mut(segment_window).busy_us += segment_end - segment_start;
            if segment_end >= completion_us {
                break;
            }
            segment_start = segment_end;
            segment_window += 1;
        }
        self.seek_cursor(index);
    }

    /// Accumulates one admission reject at its arrival window.
    pub(crate) fn note_reject(&mut self, class: SloClass, time_us: f64) {
        if !self.enabled() {
            return;
        }
        let index = window_of(time_us, self.window_us);
        let window = self.window_mut(index);
        window.rejects += 1;
        window.class_rejects[class.index()] += 1;
    }
}

/// Per-window accumulator for the global (cross-device) queue integral.
#[derive(Debug, Clone, Copy, Default)]
struct GlobalWindow {
    queue_area_us: f64,
    observed_us: f64,
    peak_queue_depth: usize,
}

/// The serial-commit-order partition of the time-series: the pool-wide
/// waiting count is a cross-device quantity only the serial event order can
/// integrate, so it accumulates here — in the serial loop directly, and in
/// the sharded loop's serial-order commit stage (which replays the same
/// event order bitwise).
#[derive(Debug, Clone)]
pub(crate) struct GlobalSeries {
    window_us: f64,
    windows: Vec<GlobalWindow>,
    /// Hot-path cache: the window the last sample landed in and its edges.
    /// The queue integral samples at every event, and events pack far
    /// tighter than a telemetry window, so almost every sample stays inside
    /// the cached window and skips the index arithmetic.
    cursor: usize,
    cursor_start_us: f64,
    cursor_end_us: f64,
}

impl GlobalSeries {
    /// A global accumulator for `config` — inert when disabled.
    pub(crate) fn new(config: TelemetryConfig) -> Self {
        GlobalSeries {
            window_us: config.window_us(),
            windows: Vec::new(),
            cursor: 0,
            cursor_start_us: 0.0,
            cursor_end_us: config.window_us(),
        }
    }

    /// True when this series accumulates (one branch on the off path).
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.window_us > 0.0
    }

    #[inline]
    fn window_mut(&mut self, index: usize) -> &mut GlobalWindow {
        if self.windows.len() <= index {
            self.windows.resize(index + 1, GlobalWindow::default());
        }
        &mut self.windows[index]
    }

    /// Points the cursor at `index` so the next sample in the same window
    /// takes the fast path.
    #[inline]
    fn seek_cursor(&mut self, index: usize) {
        self.cursor = index;
        self.cursor_start_us = window_start(index, self.window_us);
        self.cursor_end_us = window_start(index + 1, self.window_us);
    }

    /// Integrates the pool-wide waiting count held over `[from_us, to_us)` —
    /// the same sample the event loop's queue-area bookkeeping records —
    /// spreading the area across the windows the interval overlaps.
    pub(crate) fn note_queue(&mut self, from_us: f64, to_us: f64, waiting: usize) {
        if !self.enabled() {
            return;
        }
        // Fast path: the whole sample sits inside the cached window. The
        // sums below match the general path's single-segment arithmetic
        // exactly, so the result is bitwise the same either way.
        if from_us >= self.cursor_start_us
            && to_us < self.cursor_end_us
            && self.cursor < self.windows.len()
        {
            let window = &mut self.windows[self.cursor];
            if to_us > from_us {
                window.queue_area_us += waiting as f64 * (to_us - from_us);
                window.observed_us += to_us - from_us;
            }
            window.peak_queue_depth = window.peak_queue_depth.max(waiting);
            return;
        }
        let window_us = self.window_us;
        let depth = waiting as f64;
        if to_us <= from_us {
            // Zero-width sample (several events at one timestamp): still a
            // peak observation for the window it lands in.
            let index = window_of(from_us, window_us);
            let window = self.window_mut(index);
            window.peak_queue_depth = window.peak_queue_depth.max(waiting);
            self.seek_cursor(index);
            return;
        }
        let mut segment_start = from_us;
        let mut segment_window = window_of(from_us, window_us);
        loop {
            let boundary = window_start(segment_window + 1, window_us);
            let segment_end = if segment_window == MAX_WINDOWS - 1 {
                to_us
            } else {
                boundary.min(to_us)
            };
            let window = self.window_mut(segment_window);
            window.queue_area_us += depth * (segment_end - segment_start);
            window.observed_us += segment_end - segment_start;
            window.peak_queue_depth = window.peak_queue_depth.max(waiting);
            if segment_end >= to_us {
                self.seek_cursor(segment_window);
                break;
            }
            segment_start = segment_end;
            segment_window += 1;
        }
    }
}

/// Per-[`SloClass`] statistics within one window.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassWindow {
    /// Requests of this class completed in the window.
    pub served: u64,
    /// Completed requests of this class that missed their deadline.
    pub deadline_misses: u64,
    /// Requests of this class rejected by admission control in the window.
    pub rejects: u64,
    /// Median modeled latency of the window's completions (µs, histogram
    /// resolution; 0 when none completed).
    pub p50_latency_us: f64,
    /// 99th-percentile modeled latency of the window's completions (µs).
    pub p99_latency_us: f64,
}

impl ClassWindow {
    /// Deadline misses over completions for this class in this window
    /// (0 when nothing completed).
    pub fn miss_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.served as f64
        }
    }
}

/// One fixed-width window of the serve's telemetry time-series.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowStats {
    /// The window's ordinal on the virtual timeline.
    pub index: usize,
    /// The window's lower edge, virtual microseconds.
    pub start_us: f64,
    /// The window's upper edge (clipped to the makespan for the last one).
    pub end_us: f64,
    /// Requests completed in this window.
    pub served: u64,
    /// Completed requests that missed their deadline.
    pub deadline_misses: u64,
    /// Requests rejected by admission control in this window.
    pub rejects: u64,
    /// Started requests whose kernel image arrived by inter-device transfer.
    pub transfers: u64,
    /// Time-weighted mean of the pool-wide waiting count over the window.
    pub mean_queue_depth: f64,
    /// Largest event-sampled pool-wide waiting count in the window.
    pub peak_queue_depth: usize,
    /// Busy tile-time over available tile-time in the window (0..=1).
    pub utilization: f64,
    /// Per-[`SloClass`] breakdown, indexed by [`SloClass::index`].
    pub classes: [ClassWindow; SloClass::ALL.len()],
}

impl WindowStats {
    /// Deadline misses over completions in this window (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.served == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.served as f64
        }
    }

    /// Completions per virtual second in this window.
    pub fn throughput_per_sec(&self) -> f64 {
        let span = self.end_us - self.start_us;
        if span > 0.0 {
            self.served as f64 * 1.0e6 / span
        } else {
            0.0
        }
    }
}

/// The completed windowed time-series a serve report hands back when
/// telemetry was on.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// The configured window width, virtual microseconds.
    pub window_us: f64,
    /// The serve's makespan — the time of its last event.
    pub makespan_us: f64,
    /// The windows, dense from time 0 through the makespan.
    pub windows: Vec<WindowStats>,
}

impl TimeSeries {
    /// Assembles the final series by absorbing the per-device lane
    /// partitions (in device order) over the global queue integral. Both
    /// event loops call exactly this, so the serial and sharded paths agree
    /// bitwise whenever their partitions do.
    pub(crate) fn assemble(
        config: TelemetryConfig,
        makespan_us: f64,
        total_tiles: usize,
        global: &GlobalSeries,
        lanes: &[LaneSeries],
    ) -> TimeSeries {
        let window_us = config.window_us();
        let mut count = global.windows.len();
        for lane in lanes {
            count = count.max(lane.windows.len());
        }
        if makespan_us > 0.0 {
            // A makespan landing exactly on a window boundary closes that
            // window rather than opening an empty one after it.
            let mut last = window_of(makespan_us, window_us);
            if last > 0 && window_start(last, window_us) >= makespan_us {
                last -= 1;
            }
            count = count.max(last + 1);
        }
        let mut windows = Vec::with_capacity(count);
        // Scratch for the per-class lane parts, reused across windows so the
        // assembly loop allocates nothing per window.
        let mut class_parts: [Vec<&LogHistogram>; SloClass::ALL.len()] = Default::default();
        for index in 0..count {
            for parts in &mut class_parts {
                parts.clear();
            }
            let start_us = window_start(index, window_us);
            let end_us = window_start(index + 1, window_us).min(makespan_us.max(start_us));
            let mut stats = WindowStats {
                index,
                start_us,
                end_us,
                served: 0,
                deadline_misses: 0,
                rejects: 0,
                transfers: 0,
                mean_queue_depth: 0.0,
                peak_queue_depth: 0,
                utilization: 0.0,
                classes: Default::default(),
            };
            let mut busy_us = 0.0;
            // Absorb the lane partitions in device order — the fixed merge
            // order both loops share.
            for lane in lanes {
                let Some(window) = lane.windows.get(index) else {
                    continue;
                };
                stats.served += window.served;
                stats.deadline_misses += window.deadline_misses;
                stats.rejects += window.rejects;
                stats.transfers += window.transfers;
                busy_us += window.busy_us;
                for (slot, parts) in class_parts.iter_mut().enumerate() {
                    stats.classes[slot].served += window.class_served[slot];
                    stats.classes[slot].deadline_misses += window.class_misses[slot];
                    stats.classes[slot].rejects += window.class_rejects[slot];
                    if window.class_latency[slot].count() > 0 {
                        parts.push(&window.class_latency[slot]);
                    }
                }
            }
            for (slot, parts) in class_parts.iter().enumerate() {
                if !parts.is_empty() {
                    stats.classes[slot].p50_latency_us = percentile_from_parts(parts, 0.50);
                    stats.classes[slot].p99_latency_us = percentile_from_parts(parts, 0.99);
                }
            }
            if let Some(window) = global.windows.get(index) {
                if window.observed_us > 0.0 {
                    stats.mean_queue_depth = window.queue_area_us / window.observed_us;
                }
                stats.peak_queue_depth = window.peak_queue_depth;
            }
            let span_us = end_us - start_us;
            if span_us > 0.0 && total_tiles > 0 {
                stats.utilization = busy_us / (span_us * total_tiles as f64);
            }
            windows.push(stats);
        }
        TimeSeries {
            window_us,
            makespan_us,
            windows,
        }
    }

    /// Total completions across every window.
    pub fn total_served(&self) -> u64 {
        self.windows.iter().map(|w| w.served).sum()
    }

    /// The per-window deadline miss-rates, in window order — the series the
    /// fault-recovery bench charts through a kill.
    pub fn miss_rates(&self) -> Vec<f64> {
        self.windows.iter().map(WindowStats::miss_rate).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_is_inert() {
        let config = TelemetryConfig::disabled();
        assert!(!config.is_enabled());
        assert!(!TelemetryConfig::default().is_enabled());
        let mut lane = LaneSeries::new(config);
        let mut global = GlobalSeries::new(config);
        lane.note_start(SloClass::Standard, 0.0, 5.0, 5.0, true, true);
        lane.note_reject(SloClass::Standard, 1.0);
        global.note_queue(0.0, 5.0, 3);
        assert!(lane.windows.is_empty());
        assert!(global.windows.is_empty());
    }

    #[test]
    #[should_panic(expected = "finite and positive")]
    fn zero_window_width_is_rejected() {
        TelemetryConfig::windowed(0.0);
    }

    #[test]
    fn starts_bucket_by_completion_and_spread_busy_time() {
        let config = TelemetryConfig::windowed(10.0);
        let mut lane = LaneSeries::new(config);
        // Runs from 5 to 25: busy 5µs in window 0, 10 in window 1, 5 in
        // window 2; counted as served in window 2 (completion 25).
        lane.note_start(SloClass::Latency, 5.0, 25.0, 25.0, true, true);
        let global = GlobalSeries::new(config);
        let series = TimeSeries::assemble(config, 25.0, 1, &global, &[lane]);
        assert_eq!(series.windows.len(), 3);
        assert_eq!(series.windows[0].served, 0);
        assert_eq!(series.windows[2].served, 1);
        assert_eq!(series.windows[2].deadline_misses, 1);
        assert_eq!(series.windows[2].transfers, 1);
        assert_eq!(
            series.windows[2].classes[SloClass::Latency.index()].served,
            1
        );
        assert!((series.windows[0].utilization - 0.5).abs() < 1e-12);
        assert!((series.windows[1].utilization - 1.0).abs() < 1e-12);
        // Last window is clipped to the makespan: 5 busy µs over 5 spanned.
        assert!((series.windows[2].utilization - 1.0).abs() < 1e-12);
        assert!((series.windows[2].miss_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn queue_integral_spreads_area_and_tracks_peaks() {
        let config = TelemetryConfig::windowed(10.0);
        let mut global = GlobalSeries::new(config);
        // Depth 4 held over [5, 15): area 20 in window 0, 20 in window 1.
        global.note_queue(5.0, 15.0, 4);
        // Zero-width burst sample still registers a peak.
        global.note_queue(15.0, 15.0, 9);
        global.note_queue(15.0, 20.0, 2);
        let series = TimeSeries::assemble(config, 20.0, 1, &global, &[]);
        assert_eq!(series.windows.len(), 2);
        assert!((series.windows[0].mean_queue_depth - 4.0).abs() < 1e-12);
        // Window 1 observed [10,15) at depth 4 and [15,20) at depth 2.
        assert!((series.windows[1].mean_queue_depth - 3.0).abs() < 1e-12);
        assert_eq!(series.windows[0].peak_queue_depth, 4);
        assert_eq!(series.windows[1].peak_queue_depth, 9);
    }

    #[test]
    fn lane_absorb_order_is_device_order() {
        let config = TelemetryConfig::windowed(10.0);
        let mut lane_a = LaneSeries::new(config);
        let mut lane_b = LaneSeries::new(config);
        lane_a.note_start(SloClass::Standard, 0.0, 4.0, 4.0, false, false);
        lane_b.note_start(SloClass::Standard, 1.0, 6.0, 5.0, true, false);
        let global = GlobalSeries::new(config);
        let series =
            TimeSeries::assemble(config, 6.0, 2, &global, &[lane_a.clone(), lane_b.clone()]);
        let again = TimeSeries::assemble(config, 6.0, 2, &global, &[lane_a, lane_b]);
        assert_eq!(series, again);
        assert_eq!(series.windows[0].served, 2);
        assert_eq!(series.windows[0].deadline_misses, 1);
        assert!((series.windows[0].miss_rate() - 0.5).abs() < 1e-12);
        assert_eq!(series.total_served(), 2);
        assert!(series.windows[0].classes[SloClass::Standard.index()].p99_latency_us > 0.0);
        // 4 + 5 busy µs over 2 tiles × 6 spanned µs.
        assert!((series.windows[0].utilization - 9.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bucket_by_arrival_window() {
        let config = TelemetryConfig::windowed(10.0);
        let mut lane = LaneSeries::new(config);
        lane.note_reject(SloClass::BestEffort, 12.0);
        let global = GlobalSeries::new(config);
        let series = TimeSeries::assemble(config, 15.0, 1, &global, &[lane]);
        assert_eq!(series.windows[1].rejects, 1);
        assert_eq!(
            series.windows[1].classes[SloClass::BestEffort.index()].rejects,
            1
        );
        assert_eq!(series.miss_rates(), vec![0.0, 0.0]);
    }
}
