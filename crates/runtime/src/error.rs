//! The runtime's unified error type.

use std::fmt;

use overlay_arch::ArchError;
use overlay_dfg::DfgError;
use overlay_frontend::FrontendError;
use overlay_scheduler::ScheduleError;
use overlay_sim::SimError;

/// Any error the serving runtime can produce: configuration problems plus
/// everything the underlying compile/simulate tool flow can raise.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// The tile pool was configured with zero tiles.
    EmptyPool,
    /// The cluster was configured with zero devices.
    EmptyCluster,
    /// The kernel cache was configured with zero capacity.
    ZeroCacheCapacity,
    /// `serve` was called with an empty request trace.
    NoRequests,
    /// A request's arrival time was negative or not finite.
    InvalidArrival {
        /// The offending request id.
        request: u64,
        /// The arrival time supplied.
        arrival_us: f64,
    },
    /// A request was submitted with an arrival time earlier than one already
    /// streamed in — the online loop requires non-decreasing arrivals.
    OutOfOrderArrival {
        /// The offending request id.
        request: u64,
        /// The arrival time supplied.
        arrival_us: f64,
        /// The latest arrival time already accepted.
        horizon_us: f64,
    },
    /// A fault plan failed validation (non-finite time, device out of
    /// range, or a non-positive link multiplier).
    InvalidFaultPlan {
        /// What the validator objected to.
        reason: String,
    },
    /// A pipeline request failed DAG validation (empty, a dependency out of
    /// range / self-loop / duplicate, a cycle, or an id that overflows the
    /// packed per-stage request-id layout).
    InvalidPipeline {
        /// The offending pipeline id.
        pipeline: u64,
        /// What the validator objected to.
        reason: String,
    },
    /// Kernel parsing or lowering failed.
    Frontend(FrontendError),
    /// The kernel graph violated a DFG invariant.
    Dfg(DfgError),
    /// Scheduling or instruction generation failed.
    Schedule(ScheduleError),
    /// The overlay or tile configuration is invalid.
    Arch(ArchError),
    /// Simulation failed.
    Sim(SimError),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::EmptyPool => f.write_str("tile pool has no tiles"),
            RuntimeError::EmptyCluster => f.write_str("cluster has no devices"),
            RuntimeError::ZeroCacheCapacity => f.write_str("kernel cache capacity must be >= 1"),
            RuntimeError::NoRequests => f.write_str("request trace is empty"),
            RuntimeError::InvalidArrival {
                request,
                arrival_us,
            } => write!(
                f,
                "request {request} has invalid arrival time {arrival_us} us"
            ),
            RuntimeError::OutOfOrderArrival {
                request,
                arrival_us,
                horizon_us,
            } => write!(
                f,
                "request {request} arrived at {arrival_us} us, before the already-streamed \
                 horizon {horizon_us} us (submissions must be in non-decreasing arrival order)"
            ),
            RuntimeError::InvalidFaultPlan { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            RuntimeError::InvalidPipeline { pipeline, reason } => {
                write!(f, "invalid pipeline {pipeline}: {reason}")
            }
            RuntimeError::Frontend(err) => write!(f, "front-end error: {err}"),
            RuntimeError::Dfg(err) => write!(f, "kernel graph error: {err}"),
            RuntimeError::Schedule(err) => write!(f, "scheduling error: {err}"),
            RuntimeError::Arch(err) => write!(f, "architecture error: {err}"),
            RuntimeError::Sim(err) => write!(f, "simulation error: {err}"),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Frontend(err) => Some(err),
            RuntimeError::Dfg(err) => Some(err),
            RuntimeError::Schedule(err) => Some(err),
            RuntimeError::Arch(err) => Some(err),
            RuntimeError::Sim(err) => Some(err),
            _ => None,
        }
    }
}

impl From<FrontendError> for RuntimeError {
    fn from(err: FrontendError) -> Self {
        RuntimeError::Frontend(err)
    }
}

impl From<DfgError> for RuntimeError {
    fn from(err: DfgError) -> Self {
        RuntimeError::Dfg(err)
    }
}

impl From<ScheduleError> for RuntimeError {
    fn from(err: ScheduleError) -> Self {
        RuntimeError::Schedule(err)
    }
}

impl From<ArchError> for RuntimeError {
    fn from(err: ArchError) -> Self {
        RuntimeError::Arch(err)
    }
}

impl From<SimError> for RuntimeError {
    fn from(err: SimError) -> Self {
        RuntimeError::Sim(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sub_errors_convert_and_chain() {
        use std::error::Error as _;
        let err: RuntimeError = DfgError::NoOutputs.into();
        assert!(err.source().is_some());
        assert!(err.to_string().contains("kernel graph"));
        assert!(RuntimeError::EmptyPool.source().is_none());
        assert!(RuntimeError::EmptyPool.to_string().contains("no tiles"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + 'static>() {}
        assert_bounds::<RuntimeError>();
    }
}
