//! The virtual-time event queue at the heart of the online runtime.
//!
//! [`serve_stream`](crate::Runtime::serve_stream) is a discrete-event
//! simulation over *modeled* (virtual) time: request arrivals and tile
//! completions are [`Event`]s ordered by their virtual timestamp, and every
//! dispatch decision happens when its event fires — never with knowledge of
//! the future trace. The [`EventQueue`] enforces the two invariants the
//! runtime's correctness arguments lean on:
//!
//! * **monotonicity** — events pop in non-decreasing virtual time, so
//!   completions are observed in timeline order;
//! * **no time travel** — an event can only be scheduled at or after the
//!   current virtual time (`push` asserts this).
//!
//! Ties are broken by insertion order, which keeps the whole loop
//! deterministic for a given submission order.
//!
//! The sharded cluster loop ([`Cluster::with_threads`](crate::Cluster::with_threads))
//! runs one private `EventQueue` per device lane — each lane advances its
//! own virtual clock over the same invariants — and then a commit stage
//! replays the recorded per-lane events through a fresh queue, which
//! reproduces the exact `(time, insertion)` total order the serial loop
//! would have popped. Determinism of the merge is inherited from the same
//! two invariants above, not re-proved.
//!
//! The event pop is also the observability sampling point: both serve loops
//! record the pre-update waiting count into the queue-depth
//! [`LogHistogram`](crate::obs::LogHistogram) and attribute the queue-area
//! bookkeeping to the `Bookkeeping` stage of the opt-in
//! [`StageProfiler`](crate::obs::StageProfiler) at every event head, so one
//! sample lands per fired event in both the [`Runtime`](crate::Runtime) and
//! [`Cluster`](crate::Cluster) loops — identically, which is what keeps the
//! histograms bitwise comparable across the two tiers.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// What a scheduled event does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A submitted request reaches the dispatcher (admission + placement).
    Arrival {
        /// Intake index of the request (submission order).
        index: usize,
    },
    /// A tile finishes its running request and can start its next one.
    TileFree {
        /// The tile that became free.
        tile: usize,
    },
    /// A scheduled fault fires (cluster tier only; never scheduled without
    /// an installed [`FaultPlan`](crate::FaultPlan)).
    Fault {
        /// Index into the validated fault plan's event list.
        fault: usize,
    },
    /// A request displaced off a dead or draining device re-enters routing
    /// (cluster tier only; never scheduled without faults).
    Requeue {
        /// Intake index of the displaced request.
        index: usize,
    },
}

/// One scheduled occurrence on the virtual timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Virtual time at which the event fires, microseconds.
    pub time_us: f64,
    /// Insertion sequence number, the deterministic tie-break.
    pub seq: u64,
    /// What fires.
    pub kind: EventKind,
}

/// Internal heap entry: min-heap by `(time_us, seq)` on top of the std
/// max-heap.
#[derive(Debug)]
struct HeapEntry(Event);

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.time_us.total_cmp(&other.0.time_us) == Ordering::Equal && self.0.seq == other.0.seq
    }
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: the std BinaryHeap is a max-heap, we want the earliest
        // (time, seq) on top.
        other
            .0
            .time_us
            .total_cmp(&self.0.time_us)
            .then(other.0.seq.cmp(&self.0.seq))
    }
}

/// A monotone virtual-time priority queue of [`Event`]s.
///
/// Two lanes share one total order by `(time, seq)`: a binary heap for
/// events scheduled in arbitrary order (tile completions), and a plain FIFO
/// for the *monotone* lane ([`push_monotone`](EventQueue::push_monotone)) —
/// request arrivals enter in non-decreasing time order, so they need no
/// heap sift at all.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<HeapEntry>,
    monotone: VecDeque<Event>,
    next_seq: u64,
    now_us: f64,
    fired: u64,
}

impl EventQueue {
    /// An empty queue with the virtual clock at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual time: the timestamp of the last popped event.
    pub fn now_us(&self) -> f64 {
        self.now_us
    }

    /// Schedules `kind` to fire at `time_us`.
    ///
    /// # Panics
    ///
    /// Panics if `time_us` is NaN or earlier than the current virtual time —
    /// the online runtime never schedules into the past.
    pub fn push(&mut self, time_us: f64, kind: EventKind) {
        assert!(
            time_us >= self.now_us,
            "event at {time_us} us scheduled before virtual now ({} us)",
            self.now_us
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry(Event { time_us, seq, kind }));
    }

    /// Schedules `kind` at `time_us` on the monotone lane: times must be
    /// non-decreasing across `push_monotone` calls, which is exactly the
    /// order submissions arrive in — so the event needs a FIFO append
    /// instead of a heap sift. Ordering relative to [`push`](Self::push)ed
    /// events is identical (one `(time, seq)` order spans both lanes).
    ///
    /// # Panics
    ///
    /// Panics if `time_us` is NaN, earlier than the current virtual time, or
    /// earlier than the last monotone event.
    pub fn push_monotone(&mut self, time_us: f64, kind: EventKind) {
        assert!(
            time_us >= self.now_us,
            "event at {time_us} us scheduled before virtual now ({} us)",
            self.now_us
        );
        if let Some(last) = self.monotone.back() {
            assert!(
                time_us >= last.time_us,
                "monotone event at {time_us} us scheduled before the lane's tail ({} us)",
                last.time_us
            );
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.monotone.push_back(Event { time_us, seq, kind });
    }

    /// Whether the heap lane's head fires before the monotone lane's head.
    fn heap_first(&self) -> bool {
        match (self.heap.peek(), self.monotone.front()) {
            (Some(_), None) => true,
            (None, _) => false,
            (Some(entry), Some(front)) => {
                (entry.0.time_us, entry.0.seq) < (front.time_us, front.seq)
            }
        }
    }

    /// The virtual time of the earliest pending event, if any.
    pub fn peek_time_us(&self) -> Option<f64> {
        if self.heap_first() {
            self.heap.peek().map(|entry| entry.0.time_us)
        } else {
            self.monotone.front().map(|event| event.time_us)
        }
    }

    /// Pops the earliest pending event and advances the virtual clock to it.
    pub fn pop(&mut self) -> Option<Event> {
        let event = if self.heap_first() {
            self.heap.pop()?.0
        } else {
            self.monotone.pop_front()?
        };
        debug_assert!(event.time_us >= self.now_us, "virtual time ran backwards");
        self.now_us = event.time_us;
        self.fired += 1;
        Some(event)
    }

    /// Number of events fired (popped) so far — the host-side event count
    /// throughput benchmarks divide wall time by.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len() + self.monotone.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.monotone.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_virtual_time_order() {
        let mut queue = EventQueue::new();
        queue.push(5.0, EventKind::TileFree { tile: 1 });
        queue.push(1.0, EventKind::Arrival { index: 0 });
        queue.push(3.0, EventKind::Arrival { index: 1 });
        let times: Vec<f64> = std::iter::from_fn(|| queue.pop().map(|e| e.time_us)).collect();
        assert_eq!(times, vec![1.0, 3.0, 5.0]);
        assert_eq!(queue.now_us(), 5.0);
        assert_eq!(queue.fired(), 3);
        assert!(queue.is_empty());
    }

    #[test]
    fn simultaneous_events_fire_in_insertion_order() {
        let mut queue = EventQueue::new();
        queue.push(2.0, EventKind::Arrival { index: 7 });
        queue.push(2.0, EventKind::TileFree { tile: 3 });
        queue.push(2.0, EventKind::Arrival { index: 8 });
        assert_eq!(queue.len(), 3);
        assert_eq!(queue.peek_time_us(), Some(2.0));
        let kinds: Vec<EventKind> = std::iter::from_fn(|| queue.pop().map(|e| e.kind)).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Arrival { index: 7 },
                EventKind::TileFree { tile: 3 },
                EventKind::Arrival { index: 8 },
            ]
        );
    }

    /// The monotone lane and the heap lane share one `(time, seq)` order:
    /// interleaved pushes fire exactly as they would from a single heap.
    #[test]
    fn monotone_and_heap_lanes_interleave_by_time_then_insertion() {
        let mut queue = EventQueue::new();
        queue.push_monotone(1.0, EventKind::Arrival { index: 0 });
        queue.push(3.0, EventKind::TileFree { tile: 0 });
        queue.push_monotone(3.0, EventKind::Arrival { index: 1 });
        queue.push(2.0, EventKind::TileFree { tile: 1 });
        queue.push_monotone(4.0, EventKind::Arrival { index: 2 });
        assert_eq!(queue.len(), 5);
        let fired: Vec<(f64, EventKind)> =
            std::iter::from_fn(|| queue.pop().map(|e| (e.time_us, e.kind))).collect();
        assert_eq!(
            fired,
            vec![
                (1.0, EventKind::Arrival { index: 0 }),
                (2.0, EventKind::TileFree { tile: 1 }),
                // Same timestamp: the tile-free was pushed first, so its
                // lower seq fires first.
                (3.0, EventKind::TileFree { tile: 0 }),
                (3.0, EventKind::Arrival { index: 1 }),
                (4.0, EventKind::Arrival { index: 2 }),
            ]
        );
        assert!(queue.is_empty());
    }

    #[test]
    #[should_panic(expected = "before the lane's tail")]
    fn monotone_lane_rejects_time_regressions() {
        let mut queue = EventQueue::new();
        queue.push_monotone(5.0, EventKind::Arrival { index: 0 });
        queue.push_monotone(4.0, EventKind::Arrival { index: 1 });
    }

    #[test]
    fn the_clock_only_moves_forward() {
        let mut queue = EventQueue::new();
        queue.push(4.0, EventKind::TileFree { tile: 0 });
        queue.pop();
        // Scheduling at the current instant is fine...
        queue.push(4.0, EventKind::TileFree { tile: 0 });
        queue.pop();
        assert_eq!(queue.now_us(), 4.0);
    }

    #[test]
    #[should_panic(expected = "scheduled before virtual now")]
    fn scheduling_into_the_past_panics() {
        let mut queue = EventQueue::new();
        queue.push(10.0, EventKind::TileFree { tile: 0 });
        queue.pop();
        queue.push(9.0, EventKind::TileFree { tile: 0 });
    }
}
