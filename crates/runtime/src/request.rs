//! Serving requests: a kernel, the workload to stream through it, and the
//! arrival/deadline bookkeeping the dispatcher charges against.
//!
//! A [`Request`] is also the unit the session tier lowers onto: every stage
//! of a [`PipelineRequest`](crate::PipelineRequest) becomes one `Request`
//! (id `(pipeline << 16) | stage` for multi-stage pipelines), so the whole
//! DAG machinery of [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines)
//! rides on the single-request event loop unchanged.

use std::fmt;
use std::sync::Arc;

use overlay_dfg::{dot, Dfg};
use overlay_frontend::{compile_kernel_with, Benchmark, LowerOptions};
use overlay_sim::Workload;

use crate::error::RuntimeError;

/// FNV-1a over `bytes`, used to fingerprint kernel definitions.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// How the kernel behind a request is defined.
#[derive(Debug, Clone)]
enum KernelBody {
    /// Kernel-DSL source text.
    Source(Arc<str>),
    /// An already-built data-flow graph.
    Graph(Arc<Dfg>),
}

/// A kernel a client wants served: a name plus its definition (DSL source or
/// a prebuilt DFG). Cloning is cheap (the definition is shared).
///
/// The [`fingerprint`](KernelSpec::fingerprint) identifies the kernel
/// *content* — two specs with identical source hash alike, so the
/// [`KernelCache`](crate::KernelCache) compiles each distinct kernel once.
#[derive(Debug, Clone)]
pub struct KernelSpec {
    name: Arc<str>,
    body: KernelBody,
    fingerprint: u64,
}

impl KernelSpec {
    /// A kernel defined by DSL source text.
    pub fn from_source(name: impl Into<String>, source: impl Into<String>) -> Self {
        let source: Arc<str> = source.into().into();
        let fingerprint = fnv1a(source.as_bytes());
        KernelSpec {
            name: name.into().into(),
            body: KernelBody::Source(source),
            fingerprint,
        }
    }

    /// A kernel defined by an already-built DFG (named after the graph).
    pub fn from_dfg(dfg: Dfg) -> Self {
        // Fingerprint the Graphviz rendering: it is a deterministic,
        // structure-complete serialisation of the graph.
        let fingerprint = fnv1a(dot::to_dot(&dfg).as_bytes());
        KernelSpec {
            name: dfg.name().to_owned().into(),
            body: KernelBody::Graph(Arc::new(dfg)),
            fingerprint,
        }
    }

    /// One of the paper's benchmark kernels.
    ///
    /// # Errors
    ///
    /// Propagates front-end errors for the structurally-built benchmarks
    /// (never happens in practice for the shipped suite).
    pub fn from_benchmark(benchmark: Benchmark) -> Result<Self, RuntimeError> {
        match benchmark.source() {
            Some(source) => Ok(Self::from_source(benchmark.name(), source)),
            None => Ok(Self::from_dfg(benchmark.dfg()?)),
        }
    }

    /// The kernel name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The kernel name as its shared allocation — what the runtime stamps
    /// onto outcomes without per-request string copies.
    pub fn shared_name(&self) -> Arc<str> {
        Arc::clone(&self.name)
    }

    /// Content fingerprint: equal for equal definitions.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Builds (or shares) the kernel's DFG.
    ///
    /// # Errors
    ///
    /// Returns a [`RuntimeError`] if DSL source fails to parse or lower.
    pub fn dfg(&self, options: &LowerOptions) -> Result<Arc<Dfg>, RuntimeError> {
        match &self.body {
            KernelBody::Source(source) => Ok(Arc::new(compile_kernel_with(source, options)?)),
            KernelBody::Graph(dfg) => Ok(Arc::clone(dfg)),
        }
    }
}

impl fmt::Display for KernelSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (#{:016x})", self.name, self.fingerprint)
    }
}

/// One unit of serving work: stream `workload` through `kernel`.
///
/// `arrival_us` places the request on the modeled timeline (requests must be
/// submitted in non-decreasing arrival order); `deadline_us`, when set, is an
/// absolute completion deadline the metrics check each outcome against.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen identifier, echoed in the outcome.
    pub id: u64,
    /// The kernel to run.
    pub kernel: KernelSpec,
    /// The invocation records to stream through the kernel.
    pub workload: Workload,
    /// Arrival time on the modeled timeline, in microseconds.
    pub arrival_us: f64,
    /// Optional absolute completion deadline, in microseconds.
    pub deadline_us: Option<f64>,
}

impl Request {
    /// A request arriving at time zero with no deadline.
    pub fn new(id: u64, kernel: KernelSpec, workload: Workload) -> Self {
        Request {
            id,
            kernel,
            workload,
            arrival_us: 0.0,
            deadline_us: None,
        }
    }

    /// Sets the arrival time (microseconds on the modeled timeline).
    #[must_use]
    pub fn at(mut self, arrival_us: f64) -> Self {
        self.arrival_us = arrival_us;
        self
    }

    /// Sets an absolute completion deadline (microseconds).
    #[must_use]
    pub fn with_deadline(mut self, deadline_us: f64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Content digest of the workload: two independent 64-bit word-wise
    /// mixing lanes over the invocation records (length-prefixed per
    /// record), combined into 128 bits. Together with the compiled-kernel
    /// key it identifies a simulation run, which is what lets the runtime
    /// memoize repeated tenant requests — 128 bits keeps accidental
    /// collisions (which would silently serve another workload's outputs)
    /// out of reach even across billions of distinct workloads. The digest
    /// is not cryptographic; adversarially-constructed collisions are out
    /// of scope. Equal workloads digest alike; the cost is a few
    /// multiply-xor operations per input word at submission time.
    pub fn workload_digest(&self) -> u128 {
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x9e37_79b9_7f4a_7c15;
        let mut mix = |word: u64| {
            a ^= word;
            a = a.wrapping_mul(0x0000_0100_0000_01B3);
            a ^= a >> 29;
            b = b
                .wrapping_add(word ^ 0xd6e8_feb8_6659_fd93)
                .rotate_left(23)
                .wrapping_mul(0x2545_f491_4f6c_dd1d);
        };
        for record in self.workload.records() {
            mix(record.len() as u64);
            for value in record {
                mix(u64::from(value.as_u32()));
            }
        }
        (u128::from(a) << 64) | u128::from(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAXPY: &str = "kernel saxpy(a, x, y) { out r = a * x + y; }";

    #[test]
    fn source_fingerprints_are_content_addressed() {
        let a = KernelSpec::from_source("saxpy", SAXPY);
        let b = KernelSpec::from_source("saxpy_v2", SAXPY);
        let c = KernelSpec::from_source("saxpy", "kernel saxpy(a, x, y) { out r = a * x - y; }");
        assert_eq!(a.fingerprint(), b.fingerprint(), "same source, same print");
        assert_ne!(a.fingerprint(), c.fingerprint(), "different source differs");
        assert!(a.to_string().contains("saxpy"));
    }

    #[test]
    fn benchmark_specs_cover_dsl_and_structural_kernels() {
        let dsl = KernelSpec::from_benchmark(Benchmark::Gradient).unwrap();
        assert_eq!(dsl.name(), "gradient");
        let structural = KernelSpec::from_benchmark(Benchmark::Qspline).unwrap();
        assert_eq!(structural.name(), "qspline");
        assert_ne!(dsl.fingerprint(), structural.fingerprint());
    }

    #[test]
    fn specs_lower_to_the_same_graph_as_the_frontend() {
        let spec = KernelSpec::from_source("saxpy", SAXPY);
        let dfg = spec.dfg(&LowerOptions::default()).unwrap();
        assert_eq!(dfg.num_inputs(), 3);
        assert_eq!(dfg.num_ops(), 2);
    }

    #[test]
    fn request_builder_sets_timing_fields() {
        let spec = KernelSpec::from_source("saxpy", SAXPY);
        let request = Request::new(7, spec, Workload::ramp(3, 4))
            .at(125.0)
            .with_deadline(500.0);
        assert_eq!(request.id, 7);
        assert_eq!(request.arrival_us, 125.0);
        assert_eq!(request.deadline_us, Some(500.0));
        assert_eq!(request.workload.len(), 4);
    }

    #[test]
    fn workload_digests_are_content_addressed() {
        let spec = KernelSpec::from_source("saxpy", SAXPY);
        let a = Request::new(0, spec.clone(), Workload::ramp(3, 4));
        let b = Request::new(99, spec.clone(), Workload::ramp(3, 4)).at(50.0);
        assert_eq!(
            a.workload_digest(),
            b.workload_digest(),
            "identity and timing do not enter the digest"
        );
        let c = Request::new(0, spec.clone(), Workload::ramp(3, 5));
        assert_ne!(a.workload_digest(), c.workload_digest());
        // Record-shape matters, not just the flattened words: 2 records of 3
        // words digest differently from 3 records of 2.
        let flat_23 = Request::new(0, spec.clone(), Workload::ramp(3, 2));
        let flat_32 = Request::new(0, spec, Workload::ramp(2, 3));
        assert_ne!(flat_23.workload_digest(), flat_32.workload_digest());
    }
}
