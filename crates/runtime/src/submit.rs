//! Streaming request submission into a live serve loop.
//!
//! [`Runtime::serve_stream`](crate::Runtime::serve_stream) hands its feeder a
//! [`Submitter`]: a clonable handle over a *bounded* mpsc channel into the
//! event loop. The bound is the ingest buffer — when the loop falls behind,
//! [`Submitter::submit`] blocks (backpressure) and
//! [`Submitter::try_submit`] fails fast with
//! [`SubmitError::Backpressure`]. Dropping every `Submitter` clone marks the
//! end of the trace and lets the loop drain and return.
//!
//! Requests travel the channel as [`Arc<Request>`], so submission never deep-
//! clones a workload: callers hand over ownership (a plain [`Request`]
//! converts on the way in) or share an existing `Arc`.
//!
//! Submission order is the runtime's arrival order: arrival timestamps must
//! be non-decreasing across `submit` calls (the loop rejects the whole serve
//! with [`RuntimeError::OutOfOrderArrival`](crate::RuntimeError::OutOfOrderArrival)
//! otherwise), which is what makes the virtual-time loop deterministic.
//! Submission order is also the commit order of the session tier: within a
//! session, [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines)
//! retires pipelines through a
//! [`ReorderBuffer`](crate::ReorderBuffer) in exactly the order they were
//! submitted, however far out of order their stages complete.
//! Submission order is also the sequence number the sharded cluster loop
//! keys its deterministic merge on — though streaming serves themselves
//! always run the serial loop: [`Cluster::serve_stream`](crate::Cluster::serve_stream)
//! ignores the [`Cluster::with_threads`](crate::Cluster::with_threads)
//! budget, since a live feeder can race the virtual clock.
//!
//! When tracing is on ([`Runtime::with_tracing`](crate::Runtime::with_tracing)
//! with an enabled [`TraceConfig`](crate::obs::TraceConfig)), the loop marks
//! each request's intake with a `Submit` instant at its arrival timestamp —
//! the anchor every later lifecycle span
//! ([`SpanKind`](crate::obs::SpanKind)) of that request hangs off.

use std::fmt;
use std::sync::mpsc::{SyncSender, TrySendError};
use std::sync::Arc;

use crate::request::Request;

/// Why a submission did not enter the ingest queue. The request is handed
/// back so the caller can retry or reroute it.
#[derive(Debug, Clone)]
pub enum SubmitError {
    /// `try_submit` found the bounded ingest channel full.
    Backpressure(Arc<Request>),
    /// The serve loop is gone: it returned (end of serve) or failed.
    Closed(Arc<Request>),
}

impl SubmitError {
    /// The request that was not submitted.
    pub fn request(&self) -> &Request {
        match self {
            SubmitError::Backpressure(request) | SubmitError::Closed(request) => request,
        }
    }

    /// Consumes the error, returning the request for a retry.
    pub fn into_request(self) -> Arc<Request> {
        match self {
            SubmitError::Backpressure(request) | SubmitError::Closed(request) => request,
        }
    }
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::Backpressure(request) => {
                write!(f, "ingest queue full (request {})", request.id)
            }
            SubmitError::Closed(request) => {
                write!(f, "serve loop has shut down (request {})", request.id)
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Streaming handle into a running [`Runtime::serve_stream`](crate::Runtime::serve_stream)
/// call.
///
/// Cloning gives multiple producers over the same bounded ingest queue; the
/// serve ends once every clone is dropped. Arrival timestamps must be
/// non-decreasing in overall submission order — with several producers that
/// ordering is the caller's responsibility.
#[derive(Debug, Clone)]
pub struct Submitter {
    tx: SyncSender<Arc<Request>>,
}

impl Submitter {
    pub(crate) fn new(tx: SyncSender<Arc<Request>>) -> Self {
        Submitter { tx }
    }

    /// Submits a request, blocking while the bounded ingest queue is full.
    /// Accepts a [`Request`] by value or an already-shared `Arc<Request>` —
    /// either way the workload is moved, never cloned.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Closed`] when the serve loop has shut down
    /// (typically because an earlier request failed it).
    pub fn submit(&self, request: impl Into<Arc<Request>>) -> Result<(), SubmitError> {
        self.tx
            .send(request.into())
            .map_err(|err| SubmitError::Closed(err.0))
    }

    /// Submits a request without blocking.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::Backpressure`] when the ingest queue is full
    /// and [`SubmitError::Closed`] when the serve loop has shut down.
    pub fn try_submit(&self, request: impl Into<Arc<Request>>) -> Result<(), SubmitError> {
        self.tx.try_send(request.into()).map_err(|err| match err {
            TrySendError::Full(request) => SubmitError::Backpressure(request),
            TrySendError::Disconnected(request) => SubmitError::Closed(request),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::KernelSpec;
    use overlay_sim::Workload;
    use std::sync::mpsc;

    fn request(id: u64) -> Request {
        let spec = KernelSpec::from_source("saxpy", "kernel saxpy(a, x, y) { out r = a * x + y; }");
        Request::new(id, spec, Workload::ramp(3, 2))
    }

    #[test]
    fn try_submit_reports_backpressure_and_returns_the_request() {
        let (tx, _rx) = mpsc::sync_channel(1);
        let submitter = Submitter::new(tx);
        submitter.submit(request(0)).unwrap();
        let err = submitter.try_submit(request(1)).unwrap_err();
        assert!(matches!(err, SubmitError::Backpressure(_)));
        assert_eq!(err.request().id, 1);
        assert!(err.to_string().contains("full"));
        assert_eq!(err.into_request().id, 1);
    }

    #[test]
    fn submissions_fail_once_the_loop_is_gone() {
        let (tx, rx) = mpsc::sync_channel(4);
        let submitter = Submitter::new(tx);
        drop(rx);
        let err = submitter.submit(request(2)).unwrap_err();
        assert!(matches!(err, SubmitError::Closed(_)));
        assert!(err.to_string().contains("shut down"));
        let err = submitter.try_submit(request(3)).unwrap_err();
        assert!(matches!(err, SubmitError::Closed(_)));
    }

    #[test]
    fn an_arc_request_streams_without_copying() {
        let (tx, rx) = mpsc::sync_channel(1);
        let submitter = Submitter::new(tx);
        let shared = Arc::new(request(7));
        submitter.submit(Arc::clone(&shared)).unwrap();
        let received = rx.recv().unwrap();
        assert!(
            Arc::ptr_eq(&shared, &received),
            "submission moves the Arc, not a deep copy"
        );
    }
}
