//! Aggregate serving metrics over one request trace — and the per-device
//! dimension plus the sorted-run merge path a [`Cluster`](crate::Cluster)
//! rolls its devices up through.

use std::cmp::Ordering;
use std::fmt;

use crate::cache::CacheStats;
use crate::obs::LogHistogram;
use crate::session::SloClass;

/// Aggregate metrics for one [`serve`](crate::Runtime::serve) call, built
/// from the per-request outcomes and the per-tile serving state.
///
/// All times are on the modeled hardware timeline (simulator cycles converted
/// at the overlay's operating frequency, plus modeled context-switch and NoC
/// routing time) — not host wall-clock time. The one exception is
/// [`events_fired`](RuntimeMetrics::events_fired), a host-side counter of
/// how many discrete events the serve processed.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeMetrics {
    /// Number of requests served.
    pub requests: usize,
    /// Total kernel invocations streamed across all requests.
    pub invocations: usize,
    /// End-to-end modeled makespan: latest completion time, microseconds.
    pub makespan_us: f64,
    /// Served requests per modeled second.
    pub requests_per_sec: f64,
    /// Streamed invocations per modeled second.
    pub invocations_per_sec: f64,
    /// Mean request latency (completion − arrival), microseconds.
    pub mean_latency_us: f64,
    /// Median request latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile request latency, microseconds.
    pub p99_latency_us: f64,
    /// Worst request latency, microseconds.
    pub max_latency_us: f64,
    /// Total hardware context switches across all tiles.
    pub switch_count: usize,
    /// Total modeled context-switch time across all tiles, microseconds.
    pub total_switch_us: f64,
    /// Per-tile busy fraction of the makespan (switching + executing).
    pub tile_utilization: Vec<f64>,
    /// Per-tile request counts.
    pub tile_requests: Vec<usize>,
    /// Kernel-cache counters for the serve call.
    pub cache: CacheStats,
    /// Simulation-memo counters for the serve call: hits are requests whose
    /// functional simulation was skipped entirely (answered from the memo or
    /// joined onto an identical in-flight run), misses are simulations
    /// actually executed.
    pub sim_memo: CacheStats,
    /// Discrete events (arrivals + tile-free) the event loop fired — the
    /// host-side denominator for ns/event throughput figures.
    pub events_fired: u64,
    /// Requests whose completion exceeded their deadline.
    pub deadline_misses: usize,
    /// Served requests that carried a deadline (the miss-rate denominator).
    pub deadline_requests: usize,
    /// Same-kernel batching counters for the serve call (all zero while
    /// batching is disabled, the default).
    pub batch: BatchStats,
    /// Requests turned away by admission control (never placed on a tile).
    pub rejects: usize,
    /// Rejected requests that carried a deadline: shed deadline work, which
    /// counts in neither [`deadline_misses`](RuntimeMetrics::deadline_misses)
    /// nor [`deadline_requests`](RuntimeMetrics::deadline_requests) — compare
    /// miss rates across admission limits with this number in view.
    pub rejected_deadlines: usize,
    /// Highest number of requests waiting across all tile queues at any
    /// instant of the serve.
    pub peak_queue_depth: usize,
    /// Time-weighted mean of the total waiting count over the makespan.
    pub mean_queue_depth: f64,
    /// Per-tile high-water marks of queued (waiting) requests.
    pub tile_peak_queue: Vec<usize>,
    /// Log-bucketed request-latency histogram, recorded online as requests
    /// complete. Exact percentiles above come from the sorted samples; this
    /// histogram is the constant-memory view an exporter can stream, within
    /// one bucket width of the exact answer. A cluster rolls per-device
    /// histograms up by bucket-count addition
    /// ([`LogHistogram::merged`](crate::obs::LogHistogram::merged)),
    /// mirroring [`percentile_from_sorted_parts`].
    pub latency_hist: LogHistogram,
    /// Log-bucketed histogram of the total waiting count, sampled at every
    /// event-loop step (event-weighted, unlike the time-weighted
    /// [`mean_queue_depth`](RuntimeMetrics::mean_queue_depth)).
    pub queue_depth_hist: LogHistogram,
}

impl RuntimeMetrics {
    /// Mean tile utilization across the pool.
    pub fn mean_utilization(&self) -> f64 {
        if self.tile_utilization.is_empty() {
            0.0
        } else {
            self.tile_utilization.iter().sum::<f64>() / self.tile_utilization.len() as f64
        }
    }

    /// Fraction of *served* deadline-carrying requests that missed their
    /// deadline (0 when no served request carried one). Deadline work shed
    /// by admission control is excluded; see
    /// [`rejected_deadlines`](RuntimeMetrics::rejected_deadlines).
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.deadline_requests == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.deadline_requests as f64
        }
    }

    /// Fraction of submitted requests rejected by admission control
    /// (0 when nothing was submitted).
    pub fn reject_rate(&self) -> f64 {
        let submitted = self.requests + self.rejects;
        if submitted == 0 {
            0.0
        } else {
            self.rejects as f64 / submitted as f64
        }
    }
}

impl fmt::Display for RuntimeMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} request(s) ({} invocations) in {:.1} us: {:.0} req/s, {:.0} inv/s; {} event(s)",
            self.requests,
            self.invocations,
            self.makespan_us,
            self.requests_per_sec,
            self.invocations_per_sec,
            self.events_fired,
        )?;
        writeln!(
            f,
            "latency us: mean {:.2}, p50 {:.2}, p99 {:.2}, max {:.2}",
            self.mean_latency_us, self.p50_latency_us, self.p99_latency_us, self.max_latency_us,
        )?;
        writeln!(
            f,
            "deadlines: {} miss(es) of {} served ({:.0}% miss rate); rejects: {} ({} with \
             deadlines); queue depth: peak {}, mean {:.2}",
            self.deadline_misses,
            self.deadline_requests,
            self.deadline_miss_rate() * 100.0,
            self.rejects,
            self.rejected_deadlines,
            self.peak_queue_depth,
            self.mean_queue_depth,
        )?;
        writeln!(
            f,
            "switches: {} totalling {:.2} us; batching: {}; cache: {}; sim memo: {}",
            self.switch_count, self.total_switch_us, self.batch, self.cache, self.sim_memo,
        )?;
        writeln!(
            f,
            "latency hist: p50 {:.2}, p99 {:.2} us over {} sample(s); queue hist: p99 {:.1} \
             over {} sample(s)",
            self.latency_hist.percentile(0.5),
            self.latency_hist.percentile(0.99),
            self.latency_hist.count(),
            self.queue_depth_hist.percentile(0.99),
            self.queue_depth_hist.count(),
        )?;
        write!(f, "tile utilization:")?;
        for (tile, utilization) in self.tile_utilization.iter().enumerate() {
            write!(
                f,
                " t{tile} {:.0}% ({} req)",
                utilization * 100.0,
                self.tile_requests.get(tile).copied().unwrap_or(0)
            )?;
        }
        Ok(())
    }
}

/// Counters of the same-kernel batching layer
/// ([`BatchConfig`](crate::BatchConfig)) for one serve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Same-kernel runs that were extended by at least one batched
    /// (policy-overriding) dispatch.
    pub batches_formed: usize,
    /// Requests dispatched by the batcher instead of the policy's choice.
    pub batched_requests: usize,
    /// Context switches avoided: each batched dispatch ran the resident
    /// kernel where the policy's choice would have swapped.
    pub switches_avoided: usize,
    /// Batched dispatches whose request was a pipeline stage — same-kernel
    /// runs extended *within* the session tier. Zero outside
    /// [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines).
    pub stage_batched: usize,
}

impl BatchStats {
    /// Adds another serve's (or, on the sharded cluster, another device
    /// lane's) counters into this one. Batching state is per tile, so the
    /// lane counters partition the serial loop's and summing is exact.
    pub fn absorb(&mut self, other: &BatchStats) {
        self.batches_formed += other.batches_formed;
        self.batched_requests += other.batched_requests;
        self.switches_avoided += other.switches_avoided;
        self.stage_batched += other.stage_batched;
    }
}

impl fmt::Display for BatchStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} batch(es), {} batched request(s), {} switch(es) avoided",
            self.batches_formed, self.batched_requests, self.switches_avoided
        )?;
        if self.stage_batched > 0 {
            write!(f, " ({} pipeline stage(s))", self.stage_batched)?;
        }
        Ok(())
    }
}

/// Latency breakdown for one pipeline stage *depth* (the stage's position
/// in its pipeline's topological order) across a
/// [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines) call:
/// how long stages at that depth took end to end, and what they paid in
/// inter-device activation transfers.
#[derive(Debug, Clone, PartialEq)]
pub struct StageMetrics {
    /// The stage depth (0 = pipeline roots).
    pub depth: usize,
    /// Stages served at this depth.
    pub served: usize,
    /// Mean stage latency (completion − pipeline arrival for roots,
    /// completion − readiness for successors), microseconds.
    pub mean_latency_us: f64,
    /// Median stage latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile stage latency, microseconds.
    pub p99_latency_us: f64,
    /// Inter-device activation transfers paid by stages at this depth.
    pub transfers: usize,
    /// Total modeled activation-transfer time at this depth, microseconds.
    pub transfer_us: f64,
}

impl StageMetrics {
    /// Rolls one depth's stage-latency samples up. `latencies` is scratch
    /// (reordered by selection, not sorted).
    pub fn from_samples(
        depth: usize,
        latencies: &mut [f64],
        transfers: usize,
        transfer_us: f64,
    ) -> Self {
        let served = latencies.len();
        let mean = if served == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / served as f64
        };
        StageMetrics {
            depth,
            served,
            mean_latency_us: mean,
            p50_latency_us: percentile_by_selection(latencies, 0.5),
            p99_latency_us: percentile_by_selection(latencies, 0.99),
            transfers,
            transfer_us,
        }
    }
}

impl fmt::Display for StageMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stage {}: {} served, p50 {:.2} us, p99 {:.2} us, {} transfer(s) ({:.2} us)",
            self.depth,
            self.served,
            self.p50_latency_us,
            self.p99_latency_us,
            self.transfers,
            self.transfer_us
        )
    }
}

/// Pipeline-latency breakdown for one [`SloClass`] across a
/// [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines) call.
/// Latencies are *commit* latencies: in-order commit time minus pipeline
/// arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassMetrics {
    /// The SLO class.
    pub slo: SloClass,
    /// Pipelines submitted under this class.
    pub pipelines: usize,
    /// Pipelines that failed (at least one stage rejected).
    pub rejected: usize,
    /// Mean commit latency of completed pipelines, microseconds.
    pub mean_latency_us: f64,
    /// Median commit latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile commit latency, microseconds.
    pub p99_latency_us: f64,
    /// Completed pipelines that committed past their deadline.
    pub deadline_misses: usize,
    /// Completed pipelines that carried a deadline.
    pub deadline_pipelines: usize,
}

impl ClassMetrics {
    /// Rolls one class's completed-pipeline commit latencies up.
    /// `latencies` is scratch (reordered by selection, not sorted).
    pub fn from_samples(
        slo: SloClass,
        latencies: &mut [f64],
        rejected: usize,
        deadline_misses: usize,
        deadline_pipelines: usize,
    ) -> Self {
        let completed = latencies.len();
        let mean = if completed == 0 {
            0.0
        } else {
            latencies.iter().sum::<f64>() / completed as f64
        };
        ClassMetrics {
            slo,
            pipelines: completed + rejected,
            rejected,
            mean_latency_us: mean,
            p50_latency_us: percentile_by_selection(latencies, 0.5),
            p99_latency_us: percentile_by_selection(latencies, 0.99),
            deadline_misses,
            deadline_pipelines,
        }
    }

    /// Fraction of completed deadline-carrying pipelines that missed.
    pub fn deadline_miss_rate(&self) -> f64 {
        if self.deadline_pipelines == 0 {
            0.0
        } else {
            self.deadline_misses as f64 / self.deadline_pipelines as f64
        }
    }
}

impl fmt::Display for ClassMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} pipeline(s) ({} rejected), p50 {:.2} us, p99 {:.2} us, {} miss(es) of {}",
            self.slo,
            self.pipelines,
            self.rejected,
            self.p50_latency_us,
            self.p99_latency_us,
            self.deadline_misses,
            self.deadline_pipelines
        )
    }
}

/// Counters of the rate-driven replication layer
/// ([`ReplicationConfig`](crate::ReplicationConfig)) for one cluster serve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplicationStats {
    /// Kernel images pushed ahead of demand onto other devices.
    pub replicas_pushed: usize,
    /// Pushed replicas demoted (removed) from a pressured device store
    /// after their kernel went cold.
    pub replicas_demoted: usize,
    /// Bytes of kernel image prefetched by replication pushes.
    pub bytes_prefetched: u64,
    /// Modeled time of the prefetch traffic (cheapest
    /// [`TransferModel`](crate::TransferModel) source per push) — carried by
    /// the otherwise-idle link, off the request critical path.
    pub prefetch_us: f64,
    /// Distinct kernels that crossed the hot threshold during the serve.
    pub hot_kernels: usize,
}

impl fmt::Display for ReplicationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} replica(s) pushed ({} B, {:.2} us prefetch), {} demoted, {} hot kernel(s)",
            self.replicas_pushed,
            self.bytes_prefetched,
            self.prefetch_us,
            self.replicas_demoted,
            self.hot_kernels
        )
    }
}

/// One device's slice of a [`Cluster`](crate::Cluster) serve: the same
/// utilization / queue / cache / deadline figures [`RuntimeMetrics`] reports
/// pool-wide, keyed by device id, plus the cross-device transfer traffic the
/// [`TransferModel`](crate::TransferModel) charged.
///
/// Latency percentiles are per-device; the cluster-wide percentiles in the
/// report's [`RuntimeMetrics`] totals are produced by *merging* the per-
/// device sorted samples through [`percentile_from_sorted_parts`], never by
/// re-sorting the union.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceMetrics {
    /// The device id (index into the cluster).
    pub device: usize,
    /// Requests this device served.
    pub requests: usize,
    /// Mean request latency on this device, microseconds.
    pub mean_latency_us: f64,
    /// Median request latency on this device, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile request latency on this device, microseconds.
    pub p99_latency_us: f64,
    /// Worst request latency on this device, microseconds.
    pub max_latency_us: f64,
    /// Hardware context switches across this device's tiles.
    pub switch_count: usize,
    /// Modeled context-switch time across this device's tiles, microseconds
    /// (includes any kernel-image acquisition delay charged ahead of a
    /// switch).
    pub total_switch_us: f64,
    /// Per-tile busy fraction of the cluster makespan.
    pub tile_utilization: Vec<f64>,
    /// Per-tile request counts.
    pub tile_requests: Vec<usize>,
    /// This device's kernel-store counters (compiles at the home shard,
    /// image adoptions from peers, lookups either way). Replication pushes
    /// adopt through the same store path, so each prefetched image counts
    /// as one store miss here — compare with
    /// [`ReplicationStats::replicas_pushed`] when replication is on.
    pub cache: CacheStats,
    /// Served requests on this device whose completion exceeded their
    /// deadline.
    pub deadline_misses: usize,
    /// Served requests on this device that carried a deadline.
    pub deadline_requests: usize,
    /// Requests routed to this device but shed by admission control.
    pub rejects: usize,
    /// Highest number of requests waiting across this device's tile queues
    /// at any instant.
    pub peak_queue_depth: usize,
    /// Kernel images pulled *into* this device over the inter-device link.
    pub transfers_in: usize,
    /// Bytes of kernel image pulled into this device over the link.
    pub transfer_bytes_in: u64,
    /// Kernel images loaded into this device from the host (the "local cold
    /// load" path the transfer weighs against).
    pub host_loads: usize,
    /// Fraction of the serve's makespan this device was alive and admitting
    /// routed work (1.0 on a fault-free serve).
    pub availability: f64,
    /// Faults (kills + drains) that hit this device during the serve.
    pub faults: usize,
    /// Requests displaced *off* this device (queued or running) by a kill
    /// or drain and requeued through routing.
    pub requeues_out: usize,
    /// Started-but-abandoned execution time a kill destroyed on this
    /// device, in virtual microseconds. The per-request latency samples
    /// record *attempts* (a retried request's final latency spans its whole
    /// life), so this is the device-side cost view of the same churn.
    pub lost_work_us: f64,
}

impl DeviceMetrics {
    /// Mean tile utilization on this device.
    pub fn mean_utilization(&self) -> f64 {
        if self.tile_utilization.is_empty() {
            0.0
        } else {
            self.tile_utilization.iter().sum::<f64>() / self.tile_utilization.len() as f64
        }
    }
}

impl fmt::Display for DeviceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "d{}: {} req, util {:.0}%, p99 {:.2} us, {} switch(es), queue peak {}, \
             cache {:.0}% hit, {} transfer(s) in ({} B), {} host load(s), \
             avail {:.0}%, {} requeue(s) out",
            self.device,
            self.requests,
            self.mean_utilization() * 100.0,
            self.p99_latency_us,
            self.switch_count,
            self.peak_queue_depth,
            self.cache.hit_rate() * 100.0,
            self.transfers_in,
            self.transfer_bytes_in,
            self.host_loads,
            self.availability * 100.0,
            self.requeues_out,
        )
    }
}

/// Linear-interpolated percentile (`p` in 0..=1) over several **pre-sorted**
/// sample runs — the merge path per-device latency populations roll up
/// through without the union ever being concatenated or re-sorted. A lone
/// non-empty run is indexed directly (the per-device case); otherwise the
/// order statistics come from a k-way cursor walk that starts at whichever
/// end of the order is nearer — O(min(rank, len − rank) · runs). The
/// interpolation is identical to [`percentile_by_selection`], so merging
/// one run reproduces the single-pool result bit for bit.
///
/// Runs must each be sorted ascending (by [`f64::total_cmp`]); empty runs
/// are fine. Returns 0 when every run is empty.
pub fn percentile_from_sorted_parts(parts: &[&[f64]], p: f64) -> f64 {
    let len: usize = parts.iter().map(|part| part.len()).sum();
    match len {
        0 => 0.0,
        1 => parts
            .iter()
            .find(|part| !part.is_empty())
            .expect("len is 1")[0],
        len => {
            let rank = p.clamp(0.0, 1.0) * (len - 1) as f64;
            let low = rank.floor() as usize;
            let high = rank.ceil() as usize;
            let weight = rank - low as f64;
            let (low_value, high_value) = order_statistic_pair(parts, len, low, high);
            low_value * (1.0 - weight) + high_value * weight
        }
    }
}

/// The `low`-th and `high`-th order statistics (0-indexed, `low <= high`)
/// across pre-sorted runs of total length `len`: direct indexing for a
/// lone non-empty run, else a k-way cursor walk from the nearer end of the
/// order (the k-th smallest is the (len − 1 − k)-th largest, so high ranks
/// walk descending and come back swapped).
fn order_statistic_pair(parts: &[&[f64]], len: usize, low: usize, high: usize) -> (f64, f64) {
    let mut non_empty = parts.iter().filter(|part| !part.is_empty());
    if let (Some(only), None) = (non_empty.next(), non_empty.next()) {
        return (only[low], only[high]);
    }
    if high <= len - 1 - low {
        merge_walk(parts, low, high, false)
    } else {
        let (high_value, low_value) = merge_walk(parts, len - 1 - high, len - 1 - low, true);
        (low_value, high_value)
    }
}

/// Cursor-walks the runs in ascending (or, with `descending`, descending)
/// order, returning the values at walk ranks `first <= second`.
fn merge_walk(parts: &[&[f64]], first: usize, second: usize, descending: bool) -> (f64, f64) {
    let wins = |value: f64, current: f64| {
        let ordering = value.total_cmp(&current);
        if descending {
            ordering == Ordering::Greater
        } else {
            ordering == Ordering::Less
        }
    };
    let mut taken = vec![0usize; parts.len()];
    let mut first_value = 0.0;
    for rank in 0..=second {
        let mut best: Option<(f64, usize)> = None;
        for (part_index, part) in parts.iter().enumerate() {
            let next = if descending {
                part.len()
                    .checked_sub(taken[part_index] + 1)
                    .map(|i| part[i])
            } else {
                part.get(taken[part_index]).copied()
            };
            if let Some(value) = next {
                if best.is_none_or(|(current, _)| wins(value, current)) {
                    best = Some((value, part_index));
                }
            }
        }
        let (value, part_index) = best.expect("rank stays within the total length");
        taken[part_index] += 1;
        if rank == first {
            first_value = value;
        }
        if rank == second {
            return (first_value, value);
        }
    }
    unreachable!("the walk returns at the second rank")
}

/// Linear-interpolated percentile (`p` in 0..=1) by partial selection:
/// `select_nth_unstable` partitions out the two neighboring order statistics
/// in O(n) expected time instead of an O(n log n) full sort. The slice is
/// reordered, not sorted.
pub fn percentile_by_selection(values: &mut [f64], p: f64) -> f64 {
    match values.len() {
        0 => 0.0,
        1 => values[0],
        len => {
            let rank = p.clamp(0.0, 1.0) * (len - 1) as f64;
            let low = rank.floor() as usize;
            let high = rank.ceil() as usize;
            let weight = rank - low as f64;
            // Partition at `high`: everything left of it is ≤ the pivot, so
            // the `low` statistic is a second selection over that prefix.
            let (left, high_value, _) = values.select_nth_unstable_by(high, f64::total_cmp);
            let high_value = *high_value;
            let low_value = if low == high {
                high_value
            } else {
                *left.select_nth_unstable_by(low, f64::total_cmp).1
            };
            low_value * (1.0 - weight) + high_value * weight
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_interpolate() {
        // Unsorted on purpose: selection does not need sorted input.
        let mut values = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(percentile_by_selection(&mut values, 0.0), 1.0);
        assert_eq!(percentile_by_selection(&mut values, 1.0), 4.0);
        assert_eq!(percentile_by_selection(&mut values, 0.5), 2.5);
        assert_eq!(percentile_by_selection(&mut [], 0.5), 0.0);
        assert_eq!(percentile_by_selection(&mut [7.0], 0.99), 7.0);
    }

    #[test]
    fn selection_matches_the_sorted_reference() {
        // A deterministic pseudo-random latency population, checked against
        // the sort-everything formulation the runtime used to pay for.
        let mut seed = 0x5EEDu64;
        let values: Vec<f64> = (0..257)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                (seed % 10_000) as f64 * 0.125
            })
            .collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let rank = p * (sorted.len() - 1) as f64;
            let (low, high) = (rank.floor() as usize, rank.ceil() as usize);
            let weight = rank - low as f64;
            let expected = sorted[low] * (1.0 - weight) + sorted[high] * weight;
            let mut scratch = values.clone();
            assert_eq!(percentile_by_selection(&mut scratch, p), expected, "p={p}");
        }
    }

    /// The merge path over pre-sorted runs must reproduce the selection
    /// path over the union exactly — that identity is what lets the cluster
    /// roll per-device samples into cluster percentiles without re-sorting.
    #[test]
    fn merged_percentiles_match_selection_over_the_union() {
        let mut seed = 0xC0FFEEu64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        // Uneven split across 4 "devices", device 0 kept empty.
        let mut parts: Vec<Vec<f64>> = vec![Vec::new(); 4];
        for _ in 0..301 {
            let value = (next() % 10_000) as f64 * 0.25;
            let part = (next() % 3) as usize + 1;
            parts[part].push(value);
        }
        let union: Vec<f64> = parts.iter().flatten().copied().collect();
        for part in &mut parts {
            part.sort_by(f64::total_cmp);
        }
        let views: Vec<&[f64]> = parts.iter().map(Vec::as_slice).collect();
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            let mut scratch = union.clone();
            let expected = percentile_by_selection(&mut scratch, p);
            assert_eq!(percentile_from_sorted_parts(&views, p), expected, "p={p}");
        }
        // Degenerate shapes mirror the selection path.
        assert_eq!(percentile_from_sorted_parts(&[], 0.5), 0.0);
        assert_eq!(percentile_from_sorted_parts(&[&[], &[]], 0.5), 0.0);
        assert_eq!(percentile_from_sorted_parts(&[&[], &[7.0]], 0.99), 7.0);
        let single: &[f64] = &[1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile_from_sorted_parts(&[single], 0.5), 2.5);
    }

    /// The merge path's edge cases, each held to the selection path over
    /// the same union: empty runs interleaved among non-empty parts,
    /// single-element runs, all-equal values (total_cmp ties), and the rank
    /// pinned at both extremes of the order.
    #[test]
    fn merged_percentile_edge_cases_match_selection() {
        let check = |parts: &[&[f64]], p: f64| {
            let mut union: Vec<f64> = parts.iter().flat_map(|part| part.iter().copied()).collect();
            let expected = percentile_by_selection(&mut union, p);
            assert_eq!(
                percentile_from_sorted_parts(parts, p),
                expected,
                "parts {parts:?}, p={p}"
            );
        };
        // Empty runs scattered among the parts, including leading/trailing.
        let shapes: &[&[&[f64]]] = &[
            &[&[], &[1.0, 3.0], &[], &[2.0], &[]],
            &[&[], &[], &[5.0]],
            &[&[0.5], &[], &[0.25, 4.0], &[]],
        ];
        // Single-element runs only.
        let singles: &[f64] = &[9.0, 1.0, 4.0];
        let single_parts: Vec<&[f64]> = singles.chunks(1).collect();
        // All-equal values across runs: interpolation between equal order
        // statistics must stay exact.
        let equal: &[&[f64]] = &[&[7.0, 7.0], &[7.0], &[7.0, 7.0, 7.0]];
        for p in [0.0, 0.01, 0.37, 0.5, 0.99, 1.0] {
            for parts in shapes {
                check(parts, p);
            }
            check(&single_parts, p);
            check(equal, p);
            // The lerp between two equal order statistics is 7 up to float
            // rounding of `7(1-w) + 7w` (and exactly 7 whenever w is 0 or 1).
            assert!((percentile_from_sorted_parts(equal, p) - 7.0).abs() < 1e-12);
        }
        // Rank pinned at both extremes: p=0 is the global minimum, p=1 the
        // global maximum, regardless of which run holds it.
        let parts: &[&[f64]] = &[&[2.0, 8.0], &[], &[1.0, 9.0], &[5.0]];
        assert_eq!(percentile_from_sorted_parts(parts, 0.0), 1.0);
        assert_eq!(percentile_from_sorted_parts(parts, 1.0), 9.0);
        // Out-of-range p clamps to the extremes.
        assert_eq!(percentile_from_sorted_parts(parts, -1.0), 1.0);
        assert_eq!(percentile_from_sorted_parts(parts, 2.0), 9.0);
    }

    #[test]
    fn batch_and_replication_stats_display() {
        let batch = BatchStats {
            batches_formed: 2,
            batched_requests: 9,
            switches_avoided: 9,
            ..BatchStats::default()
        };
        assert_eq!(
            batch.to_string(),
            "2 batch(es), 9 batched request(s), 9 switch(es) avoided"
        );
        let staged = BatchStats {
            stage_batched: 4,
            ..batch
        };
        assert_eq!(
            staged.to_string(),
            "2 batch(es), 9 batched request(s), 9 switch(es) avoided (4 pipeline stage(s))"
        );
        let replication = ReplicationStats {
            replicas_pushed: 3,
            replicas_demoted: 1,
            bytes_prefetched: 768,
            prefetch_us: 1.25,
            hot_kernels: 2,
        };
        let text = replication.to_string();
        assert!(text.contains("3 replica(s) pushed (768 B, 1.25 us prefetch)"));
        assert!(text.contains("1 demoted, 2 hot kernel(s)"));
        assert_eq!(BatchStats::default(), BatchStats::default());
        assert_eq!(ReplicationStats::default().replicas_pushed, 0);
    }

    #[test]
    fn stage_and_class_metrics_roll_up_samples() {
        let mut latencies = [30.0, 10.0, 20.0];
        let stage = StageMetrics::from_samples(1, &mut latencies, 2, 5.5);
        assert_eq!(stage.depth, 1);
        assert_eq!(stage.served, 3);
        assert!((stage.mean_latency_us - 20.0).abs() < 1e-12);
        assert_eq!(stage.p50_latency_us, 20.0);
        let text = stage.to_string();
        assert!(text.contains("stage 1: 3 served"));
        assert!(text.contains("2 transfer(s) (5.50 us)"));

        let mut commits = [100.0, 300.0];
        let class = ClassMetrics::from_samples(SloClass::Latency, &mut commits, 1, 1, 2);
        assert_eq!(class.pipelines, 3);
        assert_eq!(class.rejected, 1);
        assert!((class.mean_latency_us - 200.0).abs() < 1e-12);
        assert!((class.deadline_miss_rate() - 0.5).abs() < 1e-12);
        assert!(class
            .to_string()
            .contains("latency: 3 pipeline(s) (1 rejected)"));
        let empty = ClassMetrics::from_samples(SloClass::BestEffort, &mut [], 0, 0, 0);
        assert_eq!(empty.mean_latency_us, 0.0);
        assert_eq!(empty.deadline_miss_rate(), 0.0);
    }

    #[test]
    fn device_metrics_summarise_one_shard() {
        let metrics = DeviceMetrics {
            device: 2,
            requests: 5,
            mean_latency_us: 10.0,
            p50_latency_us: 9.0,
            p99_latency_us: 21.0,
            max_latency_us: 22.0,
            switch_count: 3,
            total_switch_us: 0.75,
            tile_utilization: vec![0.5, 0.7],
            tile_requests: vec![3, 2],
            cache: CacheStats {
                hits: 4,
                misses: 1,
                evictions: 0,
            },
            deadline_misses: 1,
            deadline_requests: 2,
            rejects: 1,
            peak_queue_depth: 3,
            transfers_in: 2,
            transfer_bytes_in: 256,
            host_loads: 1,
            availability: 0.75,
            faults: 1,
            requeues_out: 4,
            lost_work_us: 12.5,
        };
        assert!((metrics.mean_utilization() - 0.6).abs() < 1e-12);
        let text = metrics.to_string();
        assert!(text.contains("d2: 5 req"));
        assert!(text.contains("2 transfer(s) in (256 B)"));
        assert!(text.contains("1 host load(s)"));
        assert!(text.contains("avail 75%"));
        assert!(text.contains("4 requeue(s) out"));
        assert_eq!(
            DeviceMetrics {
                tile_utilization: vec![],
                ..metrics
            }
            .mean_utilization(),
            0.0
        );
    }

    #[test]
    fn display_summarises_the_serve() {
        let metrics = RuntimeMetrics {
            requests: 10,
            invocations: 320,
            makespan_us: 100.0,
            requests_per_sec: 100_000.0,
            invocations_per_sec: 3_200_000.0,
            mean_latency_us: 12.0,
            p50_latency_us: 10.0,
            p99_latency_us: 30.0,
            max_latency_us: 31.0,
            switch_count: 4,
            total_switch_us: 1.0,
            tile_utilization: vec![0.8, 0.6],
            tile_requests: vec![6, 4],
            cache: CacheStats {
                hits: 8,
                misses: 2,
                evictions: 0,
            },
            sim_memo: CacheStats {
                hits: 6,
                misses: 4,
                evictions: 0,
            },
            events_fired: 20,
            deadline_misses: 1,
            deadline_requests: 4,
            batch: BatchStats {
                batches_formed: 1,
                batched_requests: 3,
                switches_avoided: 3,
                ..BatchStats::default()
            },
            rejects: 2,
            rejected_deadlines: 1,
            peak_queue_depth: 5,
            mean_queue_depth: 1.25,
            tile_peak_queue: vec![3, 2],
            latency_hist: {
                let mut hist = LogHistogram::new();
                hist.record(10.0);
                hist
            },
            queue_depth_hist: LogHistogram::new(),
        };
        let text = metrics.to_string();
        assert!(text.contains("10 request(s)"));
        assert!(text.contains("over 1 sample(s)"));
        assert!(text.contains("20 event(s)"));
        assert!(text.contains("p99 30.00"));
        assert!(text.contains("1 miss(es) of 4 served (25% miss rate)"));
        assert!(text.contains("rejects: 2 (1 with deadlines)"));
        assert!(text.contains("queue depth: peak 5, mean 1.25"));
        assert!(text.contains("batching: 1 batch(es), 3 batched request(s), 3 switch(es) avoided"));
        assert!(text.contains("sim memo: 6 hit(s)"));
        assert!(text.contains("t1 60%"));
        assert!((metrics.mean_utilization() - 0.7).abs() < 1e-12);
        assert!((metrics.deadline_miss_rate() - 0.25).abs() < 1e-12);
        assert!((metrics.reject_rate() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn rates_are_zero_when_undefined() {
        let metrics = RuntimeMetrics {
            requests: 0,
            invocations: 0,
            makespan_us: 0.0,
            requests_per_sec: 0.0,
            invocations_per_sec: 0.0,
            mean_latency_us: 0.0,
            p50_latency_us: 0.0,
            p99_latency_us: 0.0,
            max_latency_us: 0.0,
            switch_count: 0,
            total_switch_us: 0.0,
            tile_utilization: vec![],
            tile_requests: vec![],
            cache: CacheStats::default(),
            sim_memo: CacheStats::default(),
            events_fired: 0,
            deadline_misses: 0,
            deadline_requests: 0,
            batch: BatchStats::default(),
            rejects: 0,
            rejected_deadlines: 0,
            peak_queue_depth: 0,
            mean_queue_depth: 0.0,
            tile_peak_queue: vec![],
            latency_hist: LogHistogram::new(),
            queue_depth_hist: LogHistogram::new(),
        };
        assert_eq!(metrics.deadline_miss_rate(), 0.0);
        assert_eq!(metrics.reject_rate(), 0.0);
        assert_eq!(metrics.mean_utilization(), 0.0);
    }
}
