//! The control-plane subsystem: same-kernel batching and rate-driven kernel
//! replication, layered over the data-plane event loops.
//!
//! The serving runtime's dispatch policies *price* a context switch (the
//! modeled bitstream/overlay swap from [`overlay_arch::ReconfigModel`]) but
//! never *avoid* one: a tile draining a mixed queue FIFO- or deadline-order
//! swaps kernels on nearly every dispatch under kernel-interleaved load.
//! This module adds the two classic control-plane levers on top of the
//! existing decision machinery, both disabled by default and both leaving
//! the data plane bitwise unchanged when off:
//!
//! * **[`Batcher`](batcher::Batcher)** ([`BatchConfig`]) — a policy layer
//!   over `Dispatcher::select_next`: when a tile frees, it may run the
//!   oldest *same-kernel* waiter instead of the dispatch policy's choice,
//!   turning N same-kernel dispatches into one switch + N runs. Runs are
//!   capped at `max_batch` and bypassed requests are protected by a
//!   staleness bound and (for deadline carriers) a feasibility check — EDF
//!   deadlines still win when slack runs out. Composes with all four
//!   dispatch policies and both scan modes.
//! * **[`Replicator`](replicator::Replicator)** ([`ReplicationConfig`]) —
//!   driven by a per-kernel request-rate EWMA ([`RateEstimator`]) fed from
//!   the cluster routing tier (which sees every submission): a kernel whose
//!   decayed arrival weight crosses the hot threshold has its compiled
//!   image pushed ahead of demand to the least-loaded devices over the
//!   [`TransferModel`](crate::TransferModel) path, so routing's completion
//!   estimates see warm replicas instead of charging transfers. Cold
//!   replicas are demoted under store pressure.
//!
//! Counters for both levers live in [`BatchStats`](crate::metrics::BatchStats)
//! / [`ReplicationStats`](crate::metrics::ReplicationStats).

pub mod batcher;
pub mod estimate;
pub mod replicator;

pub use batcher::BatchConfig;
pub use estimate::RateEstimator;
pub use replicator::ReplicationConfig;

pub(crate) use batcher::Batcher;
pub(crate) use replicator::Replicator;
