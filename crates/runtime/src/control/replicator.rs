//! Rate-driven kernel replication across the cluster: hot kernel images are
//! pushed to the least-loaded devices *ahead of demand*, so routing's
//! completion estimates find warm replicas instead of charging transfers.
//!
//! The [`Replicator`] is fed from the routing tier (which sees every
//! submission) through a per-kernel [`RateEstimator`]: each arrival bumps
//! the kernel's decayed weight, and a kernel crossing
//! [`hot_threshold`](ReplicationConfig::hot_threshold) has its compiled
//! image pushed — via the same
//! [`KernelCache::get_or_share`](crate::KernelCache::get_or_share) adoption
//! path demand acquisition uses — onto the
//! [`fanout`](ReplicationConfig::fanout) least-loaded devices that do not
//! already hold it. The modeled push cost (the
//! [`TransferModel`](crate::TransferModel)'s cheapest source, exactly what
//! a demand fetch would have charged a request) is accounted in
//! [`ReplicationStats`](crate::metrics::ReplicationStats) as prefetch
//! traffic riding the otherwise-idle link, off the request critical path.
//!
//! Under store pressure (a push targeting a full device store) the
//! replicator first *demotes* one of its own pushed replicas whose kernel
//! has gone cold (weight below
//! [`demote_threshold`](ReplicationConfig::demote_threshold)) instead of
//! letting LRU eviction pick a victim blindly; a home-compiled image is
//! never demoted (only pushed replicas are tracked).

use crate::cache::KernelKey;
use crate::control::estimate::RateEstimator;
use crate::metrics::ReplicationStats;

/// Configuration of the rate-driven replication layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicationConfig {
    /// How many least-loaded devices a hot kernel's image is pushed toward
    /// (devices already holding the image count toward the fanout). `0`
    /// disables replication.
    pub fanout: usize,
    /// Decayed arrival weight (≈ arrivals per window, see
    /// [`RateEstimator`]) at which a kernel counts as hot.
    pub hot_threshold: f64,
    /// Half-life of the per-kernel rate EWMA, microseconds of virtual time.
    pub window_us: f64,
    /// Pushed replicas whose kernel weight has decayed below this are
    /// demotion candidates under store pressure.
    pub demote_threshold: f64,
}

impl ReplicationConfig {
    /// Replication off: no estimator feed, no pushes, no demotions.
    pub const fn disabled() -> Self {
        ReplicationConfig {
            fanout: 0,
            hot_threshold: f64::INFINITY,
            window_us: 1.0,
            demote_threshold: 0.0,
        }
    }

    /// Replication toward `fanout` devices once a kernel sustains roughly
    /// `hot_threshold` arrivals per `window_us`, demoting below a quarter of
    /// the trigger rate.
    pub const fn new(fanout: usize, hot_threshold: f64, window_us: f64) -> Self {
        ReplicationConfig {
            fanout,
            hot_threshold,
            window_us,
            demote_threshold: hot_threshold / 4.0,
        }
    }

    /// Overrides the demotion threshold.
    #[must_use]
    pub const fn with_demote_threshold(mut self, demote_threshold: f64) -> Self {
        self.demote_threshold = demote_threshold;
        self
    }

    /// Whether the replicator can ever push.
    pub fn enabled(&self) -> bool {
        self.fanout > 0
    }
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-serve replication state: the rate estimator, the per-device sets of
/// pushed replicas (in push order, for deterministic demotion) and the
/// replication counters. The cluster event loop drives it at every arrival.
#[derive(Debug)]
pub(crate) struct Replicator {
    config: ReplicationConfig,
    estimator: RateEstimator,
    /// Per device: replicas this replicator pushed, oldest first. Home
    /// compiles and demand adoptions are *not* tracked — demotion only ever
    /// removes what replication added.
    pushed: Vec<Vec<KernelKey>>,
    /// Distinct kernels that ever crossed the hot threshold.
    hot: Vec<KernelKey>,
    stats: ReplicationStats,
}

impl Replicator {
    pub(crate) fn new(config: ReplicationConfig, devices: usize) -> Self {
        // Sanitize the window: the estimator demands finite-positive, but a
        // serve must never panic over a degenerate (or disabled) config.
        let window_us = if config.window_us.is_finite() && config.window_us > 0.0 {
            config.window_us
        } else {
            1.0
        };
        Replicator {
            estimator: RateEstimator::new(window_us),
            config,
            pushed: vec![Vec::new(); devices],
            hot: Vec::new(),
            stats: ReplicationStats::default(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.config.enabled()
    }

    pub(crate) fn config(&self) -> &ReplicationConfig {
        &self.config
    }

    /// Feeds one routed submission into the rate estimate; returns whether
    /// the kernel is (now) hot and should be replicated.
    pub(crate) fn observe(&mut self, key: KernelKey, now_us: f64) -> bool {
        let weight = self.estimator.observe(key, now_us);
        let hot = weight >= self.config.hot_threshold;
        if hot && !self.hot.contains(&key) {
            self.hot.push(key);
            self.stats.hot_kernels += 1;
        }
        hot
    }

    /// The oldest pushed replica on `device` whose kernel has gone cold —
    /// the victim a pressured push demotes instead of trusting LRU.
    pub(crate) fn demotion_candidate(&self, device: usize, now_us: f64) -> Option<KernelKey> {
        self.pushed[device]
            .iter()
            .find(|key| self.estimator.weight(key, now_us) < self.config.demote_threshold)
            .copied()
    }

    /// Records a committed push of `key`'s image (of `bytes`) onto `device`
    /// at modeled prefetch cost `cost_us`.
    pub(crate) fn note_pushed(
        &mut self,
        device: usize,
        key: KernelKey,
        bytes: usize,
        cost_us: f64,
    ) {
        self.pushed[device].push(key);
        self.stats.replicas_pushed += 1;
        self.stats.bytes_prefetched += bytes as u64;
        self.stats.prefetch_us += cost_us;
    }

    /// Records a demotion of `key`'s replica from `device`.
    pub(crate) fn note_demoted(&mut self, device: usize, key: KernelKey) {
        self.pushed[device].retain(|pushed| *pushed != key);
        self.stats.replicas_demoted += 1;
    }

    /// Takes the full list of replicas pushed to `device`, leaving it
    /// empty — used when fault injection kills the device and its pushed
    /// replicas must be re-homed elsewhere.
    pub(crate) fn drain_device(&mut self, device: usize) -> Vec<KernelKey> {
        std::mem::take(&mut self.pushed[device])
    }

    /// Stops tracking a pushed replica that is no longer in the device's
    /// store (demand-path LRU evicted it) — not a demotion.
    pub(crate) fn forget(&mut self, device: usize, key: KernelKey) {
        self.pushed[device].retain(|pushed| *pushed != key);
    }

    /// The accumulated replication counters for this serve.
    pub(crate) fn stats(&self) -> ReplicationStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_arch::FuVariant;

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    #[test]
    fn degenerate_windows_are_sanitized_not_panics() {
        for window_us in [0.0, -5.0, f64::NAN, f64::INFINITY] {
            let config = ReplicationConfig {
                window_us,
                ..ReplicationConfig::disabled()
            };
            let mut replicator = Replicator::new(config, 2);
            assert!(!replicator.observe(key(1), 0.0));
        }
    }

    #[test]
    fn disabled_config_never_reports_hot() {
        let mut replicator = Replicator::new(ReplicationConfig::disabled(), 2);
        assert!(!replicator.enabled());
        for _ in 0..100 {
            assert!(!replicator.observe(key(1), 0.0));
        }
        assert_eq!(replicator.stats(), ReplicationStats::default());
    }

    #[test]
    fn kernels_cross_the_hot_threshold_once() {
        let mut replicator = Replicator::new(ReplicationConfig::new(2, 3.0, 100.0), 2);
        assert!(!replicator.observe(key(1), 0.0));
        assert!(!replicator.observe(key(1), 0.0));
        assert!(
            replicator.observe(key(1), 0.0),
            "third burst arrival is hot"
        );
        assert!(replicator.observe(key(1), 0.0));
        assert_eq!(replicator.stats().hot_kernels, 1, "counted once");
        // A long quiet gap cools the kernel back below the threshold.
        assert!(!replicator.observe(key(1), 10_000.0));
    }

    #[test]
    fn demotion_picks_the_oldest_cold_replica_and_tracks_stats() {
        let config = ReplicationConfig::new(1, 2.0, 100.0);
        let mut replicator = Replicator::new(config, 2);
        // Kernel 1 and 2 pushed onto device 0; kernel 2 stays hot.
        replicator.observe(key(1), 0.0);
        replicator.note_pushed(0, key(1), 64, 1.5);
        replicator.note_pushed(0, key(2), 128, 0.5);
        for i in 0..8 {
            replicator.observe(key(2), 400.0 + i as f64);
        }
        // By t=400 kernel 1's weight decayed to ~0.06 < 0.5; kernel 2 ~8.
        let victim = replicator.demotion_candidate(0, 400.0);
        assert_eq!(victim, Some(key(1)), "cold replica is the victim");
        replicator.note_demoted(0, key(1));
        assert_eq!(replicator.demotion_candidate(0, 400.0), None);
        assert_eq!(replicator.demotion_candidate(1, 400.0), None, "per device");
        let stats = replicator.stats();
        assert_eq!(stats.replicas_pushed, 2);
        assert_eq!(stats.replicas_demoted, 1);
        assert_eq!(stats.bytes_prefetched, 192);
        assert!((stats.prefetch_us - 2.0).abs() < 1e-12);
    }
}
