//! Same-kernel batching: a policy layer over the tile-free queue drain.
//!
//! When a tile frees, the dispatch policy names the request it would run
//! next ([`Dispatcher::select_next`](crate::Dispatcher::select_next) /
//! [`TileQueue::pop_next`](crate::dispatch::TileQueue)). The [`Batcher`]
//! sits on top of that choice: if the freed tile's *resident* kernel still
//! has waiters in the queue, the batcher may run the oldest of them instead
//! — no context switch, one more run of the warm kernel — and defer the
//! policy's (different-kernel) choice. N same-kernel dispatches collapse
//! into one switch + N runs, the classic setup-amortization result from
//! single-machine scheduling with sequence-dependent setup times.
//!
//! Batching never starves the bypassed request:
//!
//! * runs are capped at [`max_batch`](BatchConfig::max_batch) consecutive
//!   same-kernel dispatches per tile (counting natural same-kernel picks);
//! * a policy choice that has already waited longer than
//!   [`max_hold_us`](BatchConfig::max_hold_us) is never bypassed;
//! * a policy choice whose deadline is still feasible (it would be met if
//!   the choice ran right now, by the modeled estimates) is only bypassed
//!   when it stays feasible *after* the batched run — so EDF and slack
//!   urgency win whenever slack has run out, while a deadline that is
//!   already unmeetable either way no longer blocks the batch.
//!
//! With `max_batch = 1` (the default) the batcher never intervenes and the
//! runtime is bitwise identical to the un-batched event loop — pinned by
//! the `tests/runtime_equivalence.rs` proptests.

use crate::cache::KernelKey;
use crate::dispatch::DispatchRequest;
use crate::metrics::BatchStats;

/// Configuration of the same-kernel batching layer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchConfig {
    /// Maximum consecutive same-kernel dispatches on one tile before the
    /// policy's own choice is honored again. `1` disables batching (every
    /// dispatch is the policy's choice).
    pub max_batch: usize,
    /// Staleness bound: a policy choice that has waited longer than this is
    /// never bypassed by a batched run, microseconds.
    pub max_hold_us: f64,
}

impl BatchConfig {
    /// Batching off: the dispatch policy's choice always runs (the exact
    /// pre-control-plane behavior).
    pub const fn disabled() -> Self {
        BatchConfig {
            max_batch: 1,
            max_hold_us: f64::INFINITY,
        }
    }

    /// Batching on with a run cap of `max_batch` and no staleness bound.
    pub const fn with_max_batch(max_batch: usize) -> Self {
        BatchConfig {
            max_batch,
            max_hold_us: f64::INFINITY,
        }
    }

    /// Caps how long a bypassed policy choice may be deferred.
    #[must_use]
    pub const fn with_max_hold_us(mut self, max_hold_us: f64) -> Self {
        self.max_hold_us = max_hold_us;
        self
    }

    /// Whether the batcher can ever intervene.
    pub fn enabled(&self) -> bool {
        self.max_batch > 1
    }
}

impl Default for BatchConfig {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Per-serve batching state: the per-tile same-kernel run lengths and the
/// formed-batch counters. Driven by the event loops at every tile-free
/// drain ([`divert`](Batcher::divert)) and every dispatch commit
/// ([`note_start`](Batcher::note_start)).
#[derive(Debug)]
pub(crate) struct Batcher {
    config: BatchConfig,
    /// Per tile: consecutive dispatches of the currently-resident kernel.
    run_len: Vec<usize>,
    /// Per tile: whether the current run already counted as a formed batch.
    in_batch: Vec<bool>,
    stats: BatchStats,
}

impl Batcher {
    pub(crate) fn new(config: BatchConfig, tiles: usize) -> Self {
        Batcher {
            config,
            run_len: vec![0; tiles],
            in_batch: vec![false; tiles],
            stats: BatchStats::default(),
        }
    }

    /// The batching decision at a tile-free drain of `tile`: given the
    /// dispatch policy's `choice` (its cached dispatch view plus its arrival
    /// time), decide whether to run the oldest waiter of the tile's
    /// `resident` kernel instead. `oldest_same_kernel` resolves that waiter
    /// — its handle (an intake index or a queue position, depending on the
    /// caller's queue representation) and its estimated service time — only
    /// when the cheap guards pass.
    ///
    /// Returns the batched waiter's handle, or `None` to honor the policy's
    /// choice.
    pub(crate) fn divert<T>(
        &mut self,
        tile: usize,
        now_us: f64,
        resident: Option<KernelKey>,
        choice: &DispatchRequest,
        choice_arrival_us: f64,
        oldest_same_kernel: impl FnOnce(KernelKey) -> Option<(T, f64)>,
    ) -> Option<T> {
        if !self.config.enabled() || self.run_len[tile] >= self.config.max_batch {
            return None;
        }
        let key = resident?;
        if choice.key == key {
            // The policy's choice already extends the run; no diversion.
            return None;
        }
        // Staleness: a choice that has waited past the hold bound wins.
        if now_us - choice_arrival_us > self.config.max_hold_us {
            return None;
        }
        let (candidate, candidate_est_us) = oldest_same_kernel(key)?;
        // Deadline feasibility: a choice that would meet its deadline if run
        // right now (switch + service, by the modeled estimates) must not be
        // pushed past it by the batched run — urgency wins when slack runs
        // out. A choice that is already infeasible either way has nothing
        // left to protect and does not block the batch.
        if let Some(deadline_us) = choice.deadline_us {
            let run_now = now_us + choice.switch_us + choice.est_exec_us;
            let resumed = run_now + candidate_est_us;
            if run_now <= deadline_us && resumed > deadline_us {
                return None;
            }
        }
        self.stats.batched_requests += 1;
        self.stats.switches_avoided += 1;
        if !self.in_batch[tile] {
            self.in_batch[tile] = true;
            self.stats.batches_formed += 1;
        }
        Some(candidate)
    }

    /// Records a committed dispatch on `tile`: a kernel switch resets the
    /// same-kernel run, a warm dispatch extends it.
    pub(crate) fn note_start(&mut self, tile: usize, switched: bool) {
        if switched {
            self.run_len[tile] = 1;
            self.in_batch[tile] = false;
        } else {
            self.run_len[tile] += 1;
        }
    }

    /// Counts a diversion that happened during a pipeline serve — the
    /// cross-pipeline stage batching the session tier's report surfaces as
    /// [`BatchStats::stage_batched`]. Called by the cluster loop right
    /// after a successful [`divert`](Batcher::divert), only when a session
    /// driver is active.
    pub(crate) fn note_stage_batched(&mut self) {
        self.stats.stage_batched += 1;
    }

    /// Clears the same-kernel run state on `tile` — used when fault
    /// injection evacuates a tile and its queue no longer matches the run
    /// the batcher was tracking.
    pub(crate) fn reset_tile(&mut self, tile: usize) {
        self.run_len[tile] = 0;
        self.in_batch[tile] = false;
    }

    /// The current same-kernel run length on `tile` (counting the dispatch
    /// just committed via [`note_start`](Batcher::note_start)) — what
    /// tracing reports as batch membership.
    pub(crate) fn run_len(&self, tile: usize) -> usize {
        self.run_len[tile]
    }

    /// The accumulated batching counters for this serve.
    pub(crate) fn stats(&self) -> BatchStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_arch::FuVariant;

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    fn view(fingerprint: u64, deadline_us: Option<f64>) -> DispatchRequest {
        DispatchRequest {
            key: key(fingerprint),
            est_exec_us: 10.0,
            switch_us: 2.0,
            deadline_us,
        }
    }

    #[test]
    fn disabled_batcher_never_diverts() {
        let mut batcher = Batcher::new(BatchConfig::disabled(), 2);
        assert!(!BatchConfig::disabled().enabled());
        let diverted = batcher.divert(0, 5.0, Some(key(1)), &view(2, None), 0.0, |_| {
            Some((99usize, 10.0))
        });
        assert_eq!(diverted, None);
        assert_eq!(batcher.stats(), BatchStats::default());
    }

    #[test]
    fn diversion_needs_a_resident_kernel_with_a_waiter() {
        let mut batcher = Batcher::new(BatchConfig::with_max_batch(4), 1);
        // Cold tile: nothing to batch onto.
        assert_eq!(
            batcher.divert(0, 0.0, None, &view(2, None), 0.0, |_| Some((1usize, 1.0))),
            None
        );
        // Choice already same-kernel: the run extends naturally.
        assert_eq!(
            batcher.divert(0, 0.0, Some(key(2)), &view(2, None), 0.0, |_| Some((
                1usize, 1.0
            ))),
            None
        );
        // No same-kernel waiter in the queue.
        assert_eq!(
            batcher.divert(0, 0.0, Some(key(1)), &view(2, None), 0.0, |_| {
                None::<(usize, f64)>
            }),
            None
        );
        // All three guards pass: the waiter runs.
        assert_eq!(
            batcher.divert(0, 0.0, Some(key(1)), &view(2, None), 0.0, |k| {
                assert_eq!(k, key(1));
                Some((7usize, 1.0))
            }),
            Some(7)
        );
        let stats = batcher.stats();
        assert_eq!(stats.batched_requests, 1);
        assert_eq!(stats.switches_avoided, 1);
        assert_eq!(stats.batches_formed, 1);
    }

    #[test]
    fn run_cap_and_switch_reset_bound_the_batch() {
        let mut batcher = Batcher::new(BatchConfig::with_max_batch(2), 1);
        batcher.note_start(0, true); // cold start: run = 1
        assert!(batcher
            .divert(0, 0.0, Some(key(1)), &view(2, None), 0.0, |_| Some((
                0usize, 1.0
            )))
            .is_some());
        batcher.note_start(0, false); // batched run: run = 2 = cap
        assert_eq!(
            batcher.divert(0, 0.0, Some(key(1)), &view(2, None), 0.0, |_| Some((
                0usize, 1.0
            ))),
            None,
            "the cap forces the policy choice through"
        );
        batcher.note_start(0, true); // the deferred choice switched: reset
        assert!(batcher
            .divert(0, 0.0, Some(key(2)), &view(1, None), 0.0, |_| Some((
                0usize, 1.0
            )))
            .is_some());
        // Two separate capped runs, each with one diversion = two batches.
        assert_eq!(batcher.stats().batches_formed, 2);
    }

    #[test]
    fn stale_and_urgent_choices_are_never_bypassed() {
        let config = BatchConfig::with_max_batch(8).with_max_hold_us(5.0);
        let mut batcher = Batcher::new(config, 1);
        // The choice arrived at t=0 and it is now t=6: past the hold bound.
        assert_eq!(
            batcher.divert(0, 6.0, Some(key(1)), &view(2, None), 0.0, |_| Some((
                0usize, 1.0
            ))),
            None
        );
        // Feasible now (0 + 2 + 10 <= 15) but infeasible after the batched
        // run (12 + 4 > 15): urgency wins, no bypass.
        assert_eq!(
            batcher.divert(0, 0.0, Some(key(1)), &view(2, Some(15.0)), 0.0, |_| Some((
                0usize, 4.0
            ))),
            None
        );
        // Still feasible after the batched run: 12 + 4 <= 16.
        assert!(batcher
            .divert(0, 0.0, Some(key(1)), &view(2, Some(16.0)), 0.0, |_| Some((
                0usize, 4.0
            )))
            .is_some());
        // Already infeasible either way (12 > 5): nothing left to protect,
        // the batch proceeds.
        assert!(batcher
            .divert(0, 0.0, Some(key(1)), &view(2, Some(5.0)), 0.0, |_| Some((
                0usize, 4.0
            )))
            .is_some());
    }
}
