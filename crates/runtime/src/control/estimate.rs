//! Per-kernel request-rate estimation: an exponentially-decayed arrival
//! counter on the virtual timeline.
//!
//! The estimator is fed from the routing tier, which sees every submission.
//! Each kernel carries a *decayed arrival weight*: every observation adds 1
//! and the accumulated weight halves every `window_us` of virtual time, so
//! the weight approximates "arrivals in the last window" without any
//! bucketing — a kernel receiving one request per `window_us` settles near
//! weight 2, and a kernel receiving `n` per window settles near `n / ln 2 ≈
//! 1.44 n` (the half-life integral). Everything is a pure function of the
//! observed `(kernel, time)` sequence, so serves stay deterministic.

use crate::cache::{FnvHashMap, KernelKey};

#[derive(Debug, Clone, Copy)]
struct RateEntry {
    /// Decayed arrival weight as of `last_us`.
    weight: f64,
    /// Virtual time of the last observation, microseconds.
    last_us: f64,
}

/// An exponentially-decayed per-kernel arrival counter (half-life
/// `window_us` of virtual time).
#[derive(Debug, Clone)]
pub struct RateEstimator {
    window_us: f64,
    entries: FnvHashMap<KernelKey, RateEntry>,
}

impl RateEstimator {
    /// An estimator whose arrival weights halve every `window_us` of
    /// virtual time.
    ///
    /// # Panics
    ///
    /// Panics when `window_us` is not finite and positive.
    pub fn new(window_us: f64) -> Self {
        assert!(
            window_us.is_finite() && window_us > 0.0,
            "EWMA window must be finite and positive, got {window_us}"
        );
        RateEstimator {
            window_us,
            entries: FnvHashMap::default(),
        }
    }

    /// The half-life window, microseconds.
    pub fn window_us(&self) -> f64 {
        self.window_us
    }

    /// Records one arrival of `key` at virtual time `now_us` and returns the
    /// updated decayed weight. Observations must be fed in non-decreasing
    /// time order (the event loops guarantee this).
    pub fn observe(&mut self, key: KernelKey, now_us: f64) -> f64 {
        let entry = self.entries.entry(key).or_insert(RateEntry {
            weight: 0.0,
            last_us: now_us,
        });
        let dt = (now_us - entry.last_us).max(0.0);
        entry.weight = entry.weight * (-dt / self.window_us).exp2() + 1.0;
        entry.last_us = now_us;
        entry.weight
    }

    /// The decayed arrival weight of `key` as of `now_us`, without recording
    /// an arrival. 0 for a kernel never observed.
    pub fn weight(&self, key: &KernelKey, now_us: f64) -> f64 {
        match self.entries.get(key) {
            Some(entry) => {
                let dt = (now_us - entry.last_us).max(0.0);
                entry.weight * (-dt / self.window_us).exp2()
            }
            None => 0.0,
        }
    }

    /// Number of kernels with a recorded observation.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no kernel has been observed yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_arch::FuVariant;

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    #[test]
    fn weights_accumulate_and_halve_per_window() {
        let mut estimator = RateEstimator::new(100.0);
        assert!(estimator.is_empty());
        assert_eq!(estimator.weight(&key(1), 0.0), 0.0);
        // A burst at t=0 accumulates without decay.
        for _ in 0..4 {
            estimator.observe(key(1), 0.0);
        }
        assert!((estimator.weight(&key(1), 0.0) - 4.0).abs() < 1e-12);
        // One half-life later, the weight has halved.
        assert!((estimator.weight(&key(1), 100.0) - 2.0).abs() < 1e-12);
        // Two half-lives: quartered.
        assert!((estimator.weight(&key(1), 200.0) - 1.0).abs() < 1e-12);
        // Observing after a half-life decays then adds one.
        let updated = estimator.observe(key(1), 100.0);
        assert!((updated - 3.0).abs() < 1e-12);
        assert_eq!(estimator.len(), 1);
    }

    #[test]
    fn kernels_are_tracked_independently_and_deterministically() {
        let run = || {
            let mut estimator = RateEstimator::new(50.0);
            for i in 0..20u64 {
                let k = if i % 4 == 0 { key(2) } else { key(1) };
                estimator.observe(k, i as f64 * 3.0);
            }
            (
                estimator.weight(&key(1), 60.0),
                estimator.weight(&key(2), 60.0),
            )
        };
        let (hot, cold) = run();
        assert!(hot > cold, "the 3x-hotter kernel must weigh more");
        assert_eq!(run(), (hot, cold), "pure function of the trace");
    }

    #[test]
    fn steady_rate_settles_near_arrivals_per_window() {
        // One arrival every 10 us with a 100 us half-life: the fixed point
        // of w = (w + 1) * 2^(-0.1) is ~14.9, bracketing the "10 arrivals
        // per window" intuition within its ~1.44x (1/ln 2) bias.
        let mut estimator = RateEstimator::new(100.0);
        let mut weight = 0.0;
        for i in 0..2000 {
            weight = estimator.observe(key(7), i as f64 * 10.0);
        }
        assert!((10.0..20.0).contains(&weight), "settled at {weight}");
    }

    #[test]
    #[should_panic(expected = "EWMA window must be finite and positive")]
    fn zero_windows_are_rejected() {
        RateEstimator::new(0.0);
    }
}
