//! Online, context-switch-aware placement of requests onto tiles.
//!
//! The dispatcher is consulted twice per request, both times against *live*
//! per-tile queue state and never with knowledge of the future trace:
//!
//! 1. **at the arrival event** — [`Dispatcher::place`] picks the tile whose
//!    queue the request joins, estimating each tile's completion as its
//!    backlog plus any required context switch. The switch estimate charges
//!    the [`overlay_arch::ReconfigModel`] cost: a ~0.25 µs instruction
//!    reload on the write-back variants (V3–V5), a ~1 ms PCAP partial
//!    reconfiguration on the feed-forward ones — which is exactly why kernel
//!    affinity matters so much more for V1/V2 pools.
//! 2. **at the tile-free event** — the freed tile's queue yields the request
//!    it runs next. The FIFO policies take the oldest;
//!    [`EarliestDeadlineFirst`](DispatchPolicy::EarliestDeadlineFirst)
//!    takes the tightest absolute deadline; and
//!    [`SlackAware`](DispatchPolicy::SlackAware) takes the least *slack* —
//!    time to deadline minus modeled service and the switch cost the tile
//!    would pay — so a request whose kernel is already resident (zero
//!    switch) is correctly seen as less urgent than one that must pay a
//!    reload first.
//!
//! # Indexed vs linear-reference scanning
//!
//! Both decisions have two interchangeable implementations selected by
//! [`ScanMode`]:
//!
//! * [`ScanMode::Indexed`] (the default) answers placement from the
//!   [`TilePool`]'s residency index in O(log n) and drains tile queues
//!   through [`TileQueue`] — a per-policy ordered structure (FIFO deque,
//!   deadline min-heap, or per-kernel slack buckets) that replaces the
//!   per-event O(depth) scan-and-remove;
//! * [`ScanMode::LinearReference`] retains the original O(tiles)-per-arrival
//!   and O(depth)-per-free-event scans as the equivalence oracle for the
//!   property tests and the *before* cost model of the scalability
//!   benchmark. Its costs are the pre-index runtime's; its decisions match
//!   today's semantics — which differ from the pre-index runtime in exactly
//!   one deliberate way: [`SlackAware`](DispatchPolicy::SlackAware) ties on
//!   *exactly* equal adjusted slack now prefer the request needing no
//!   switch over pure FIFO order (both paths compare the same
//!   `(adjusted, base, position)` key, which keeps the scan and the
//!   incremental heaps bit-for-bit agreed without floating-point
//!   re-association hazards).
//!
//! Both modes make identical decisions on every trace; the property suite
//! (`tests/runtime_equivalence.rs`) proves it on randomized traces across
//! all four policies.
//!
//! During a pipeline serve ([`Cluster::serve_pipelines`]) each stage of a
//! [`PipelineRequest`](crate::PipelineRequest) flows through these same two
//! decision points as an ordinary request — the only session-tier additions
//! the dispatcher sees are an activation-transfer charge folded into the
//! stage's switch estimate, and the pipeline deadline carried by sink
//! stages of latency-tier pipelines, which the deadline-aware policies
//! treat exactly like a per-request deadline.
//!
//! [`Cluster::serve_pipelines`]: crate::Cluster::serve_pipelines
//!
//! Both decision points are also instrumented: the opt-in
//! [`StageProfiler`](crate::obs::StageProfiler) bills placement and
//! queue-drain selection to its `Scan` stage (host nanoseconds, zero clock
//! reads when off), and with tracing on the outcome of each decision lands
//! in the request's span timeline — the queue it joined as `QueueWait`, the
//! switch it paid as `ContextSwitch` — so the per-policy cost *and* effect
//! are both visible in one trace. `tests/observability.rs` pins that the
//! instrumentation never perturbs a decision in either scan mode.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

use crate::cache::{FnvHashMap, KernelKey};
use crate::pool::{TilePool, TileState, TimeKey};

/// How the dispatcher places arrivals and orders tile queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Greedy earliest-completion placement that charges the modeled
    /// context-switch cost for every kernel swap; tile queues drain FIFO.
    #[default]
    KernelAffinity,
    /// Naive round-robin placement, blind to resident kernels, switch costs
    /// and deadlines; tile queues drain FIFO.
    RoundRobin,
    /// Earliest-completion placement like
    /// [`KernelAffinity`](DispatchPolicy::KernelAffinity), but each tile
    /// drains its queue in order of absolute deadline (requests without a
    /// deadline go last, FIFO among themselves).
    EarliestDeadlineFirst,
    /// Earliest-completion placement, with tile queues drained in order of
    /// *slack*: deadline − modeled service − modeled switch cost against the
    /// tile's resident kernel. Unlike EDF this sees that a request needing a
    /// ~1 ms PCAP swap is closer to its deadline than its timestamp alone
    /// suggests. Slack ties prefer the request that needs no switch, then
    /// FIFO order.
    SlackAware,
}

impl DispatchPolicy {
    /// Every policy, in documentation order.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::KernelAffinity,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::EarliestDeadlineFirst,
        DispatchPolicy::SlackAware,
    ];

    /// Whether the policy reorders tile queues by deadline urgency.
    pub fn is_deadline_aware(self) -> bool {
        matches!(
            self,
            DispatchPolicy::EarliestDeadlineFirst | DispatchPolicy::SlackAware
        )
    }
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::KernelAffinity => f.write_str("kernel-affinity"),
            DispatchPolicy::RoundRobin => f.write_str("round-robin"),
            DispatchPolicy::EarliestDeadlineFirst => f.write_str("edf"),
            DispatchPolicy::SlackAware => f.write_str("slack-aware"),
        }
    }
}

/// Which implementation answers the dispatcher's per-event queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ScanMode {
    /// Incremental indexes: O(log n) placement against the pool's residency
    /// index, O(log depth) queue pops through [`TileQueue`].
    #[default]
    Indexed,
    /// The retained pre-index implementation: O(tiles) linear scan per
    /// placement, O(depth) queue scan and remove per tile-free event, and
    /// O(tiles) `total_waiting` recomputation per event. Kept as the
    /// equivalence oracle and benchmark baseline.
    LinearReference,
}

impl fmt::Display for ScanMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScanMode::Indexed => f.write_str("indexed"),
            ScanMode::LinearReference => f.write_str("linear"),
        }
    }
}

/// One admitted request as the dispatcher sees it at an event: its kernel
/// identity plus the modeled cost estimates decisions are made from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchRequest {
    /// The compiled-kernel identity the request needs.
    pub key: KernelKey,
    /// Estimated execution (service) time, microseconds.
    pub est_exec_us: f64,
    /// Context-switch cost if a tile must swap to this kernel, microseconds.
    pub switch_us: f64,
    /// Absolute completion deadline, if the request carries one.
    pub deadline_us: Option<f64>,
}

impl DispatchRequest {
    /// The request's slack on `tile` at virtual time `now_us`: time to its
    /// deadline minus the modeled service and the switch cost the tile would
    /// pay. `INFINITY` for requests without a deadline.
    pub fn slack_us(&self, tile: &TileState, now_us: f64) -> f64 {
        match self.deadline_us {
            Some(deadline) => {
                deadline - now_us - self.est_exec_us - tile.switch_cost(self.key, self.switch_us)
            }
            None => f64::INFINITY,
        }
    }

    /// The EDF selection key: the absolute deadline, `INFINITY` when none.
    fn edf_key(&self) -> f64 {
        self.deadline_us.unwrap_or(f64::INFINITY)
    }

    /// The time-independent part of the slack ordering: deadline minus
    /// modeled service. The uniform `now` offset cancels out of any
    /// comparison between queued requests, so selection drops it — which is
    /// what lets the same key live in an incremental heap.
    fn slack_base(&self) -> f64 {
        self.edf_key() - self.est_exec_us
    }

    /// The slack selection key against `resident`: `(adjusted, base)` where
    /// `adjusted` subtracts the switch cost the tile would pay. The `base`
    /// component breaks adjusted ties in favor of the request that needs no
    /// switch (then FIFO order breaks exact ties).
    fn slack_key(&self, resident: Option<KernelKey>) -> (TimeKey, TimeKey) {
        let base = self.slack_base();
        let adjusted = if resident == Some(self.key) {
            base
        } else {
            base - self.switch_us
        };
        (TimeKey(adjusted), TimeKey(base))
    }
}

/// Makes per-event placement and queue-ordering decisions under a
/// [`DispatchPolicy`], via the [`ScanMode`] implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    scan: ScanMode,
    next_tile: usize,
}

impl Dispatcher {
    /// A dispatcher using `policy` with indexed scanning.
    pub fn new(policy: DispatchPolicy) -> Self {
        Dispatcher {
            policy,
            scan: ScanMode::default(),
            next_tile: 0,
        }
    }

    /// Sets the scan mode.
    #[must_use]
    pub fn with_scan_mode(mut self, scan: ScanMode) -> Self {
        self.scan = scan;
        self
    }

    /// The active policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// The active scan mode.
    pub fn scan_mode(&self) -> ScanMode {
        self.scan
    }

    /// Clears per-serve state (the round-robin cursor).
    pub fn reset(&mut self) {
        self.next_tile = 0;
    }

    /// Placement decision at an arrival event: the tile whose queue the
    /// request joins, given the pool's live queue state at virtual time
    /// `now_us`.
    pub fn place(&mut self, request: &DispatchRequest, now_us: f64, pool: &TilePool) -> usize {
        match self.policy {
            DispatchPolicy::RoundRobin => {
                let tile = self.next_tile % pool.num_tiles();
                self.next_tile = self.next_tile.wrapping_add(1);
                tile
            }
            DispatchPolicy::KernelAffinity
            | DispatchPolicy::EarliestDeadlineFirst
            | DispatchPolicy::SlackAware => match self.scan {
                ScanMode::Indexed => pool.place_earliest_indexed(
                    request.key,
                    request.est_exec_us,
                    request.switch_us,
                    now_us,
                ),
                ScanMode::LinearReference => {
                    Self::earliest_completion_linear(request, now_us, pool)
                }
            },
        }
    }

    /// The retained linear-scan reference for earliest-completion placement:
    /// every tile's completion for `request` is estimated as its backlog
    /// (running + queued work) plus any required context switch against the
    /// kernel the tile will be hosting once that backlog drains. Completion
    /// ties are broken by preferring (in order) a tile that needs no switch,
    /// a cold tile over evicting another warm kernel, and the lowest index —
    /// so equal-latency choices never spend switch time or kernel residency
    /// gratuitously, and decisions stay deterministic.
    ///
    /// [`TilePool::place_earliest_indexed`] answers the same query from the
    /// residency index in O(log n); the equivalence property tests hold the
    /// two to identical answers.
    pub(crate) fn earliest_completion_linear(
        request: &DispatchRequest,
        now_us: f64,
        pool: &TilePool,
    ) -> usize {
        let mut best = (f64::INFINITY, true, true, usize::MAX);
        for state in pool.states() {
            let projected = state.projected_resident();
            let needs_switch = projected != Some(request.key);
            let evicts_warm = needs_switch && projected.is_some();
            let start = state.available_us.max(now_us) + state.queued_est_us;
            let switch = if needs_switch { request.switch_us } else { 0.0 };
            let completion = start + switch + request.est_exec_us;
            let candidate = (completion, needs_switch, evicts_warm, state.index);
            if candidate < best {
                best = candidate;
            }
        }
        best.3
    }

    /// The retained linear-scan queue-ordering reference, used by the
    /// [`ScanMode::LinearReference`] event loop: the position in `queue`
    /// (held in submission order) of the request `tile` should run next.
    ///
    /// Returns 0 (FIFO) for the deadline-blind policies and for an empty
    /// queue; EDF picks the tightest deadline, slack-aware the least
    /// [`slack`](DispatchRequest::slack_us) (ties prefer the request whose
    /// kernel is already resident). Exact ties fall back to FIFO.
    /// [`TileQueue`] answers the same query from an incrementally-ordered
    /// structure.
    pub fn select_next(&self, tile: &TileState, queue: &[DispatchRequest]) -> usize {
        match self.policy {
            DispatchPolicy::KernelAffinity | DispatchPolicy::RoundRobin => 0,
            DispatchPolicy::EarliestDeadlineFirst => {
                Self::argmin_by(queue, |request| (TimeKey(request.edf_key()), TimeKey(0.0)))
            }
            DispatchPolicy::SlackAware => {
                Self::argmin_by(queue, |request| request.slack_key(tile.resident))
            }
        }
    }

    /// Position of the minimum of `urgency` over `queue`, first-wins on ties
    /// (FIFO). Returns 0 for an empty queue.
    fn argmin_by(
        queue: &[DispatchRequest],
        urgency: impl Fn(&DispatchRequest) -> (TimeKey, TimeKey),
    ) -> usize {
        let mut best: Option<((TimeKey, TimeKey), usize)> = None;
        for (position, request) in queue.iter().enumerate() {
            let value = urgency(request);
            if best.is_none_or(|(current, _)| value < current) {
                best = Some((value, position));
            }
        }
        best.map_or(0, |(_, position)| position)
    }
}

/// One tile's waiting queue under [`ScanMode::Indexed`]: an
/// insertion-ordered deque (for FIFO draining and the residency-projection
/// tail query) plus a policy-specific ordered structure so the next request
/// pops in O(log depth) instead of an O(depth) scan-and-remove.
///
/// Selection removes entries logically by flagging them in the caller's
/// `taken` bitmap; the deque and heaps drop flagged entries lazily, so every
/// entry is pushed and popped at most once — O(log depth) amortized per
/// event.
#[derive(Debug)]
pub(crate) struct TileQueue {
    /// `(intake index, kernel)` in insertion (FIFO) order. Lazily cleaned
    /// against the `taken` bitmap at both ends.
    order: VecDeque<(usize, KernelKey)>,
    /// Per-kernel FIFO of intake indices, lazily cleaned at the front —
    /// answers the batcher's "oldest waiter of the resident kernel" query
    /// in O(1) amortized. Maintained only while batching is enabled
    /// (`track_kernels`), so the default configuration pays nothing.
    by_kernel: FnvHashMap<KernelKey, VecDeque<usize>>,
    /// Whether `by_kernel` is maintained.
    track_kernels: bool,
    /// Number of live (not yet taken) entries.
    live: usize,
    index: QueueOrder,
}

#[derive(Debug)]
enum QueueOrder {
    /// FIFO policies pop straight off the deque.
    Fifo,
    /// EDF: min-heap by (deadline, intake index).
    Deadline(BinaryHeap<Reverse<(TimeKey, usize)>>),
    /// Slack-aware: per-kernel buckets, each a min-heap by (deadline −
    /// service, intake index). Within a bucket the switch cost is constant
    /// (one compiled artifact per kernel key), so the bucket order *is* the
    /// slack order; across buckets the selection adjusts each bucket's best
    /// by that bucket's switch cost against the resident kernel — O(distinct
    /// queued kernels) per pop, with kernel affinity keeping that count low.
    Slack(FnvHashMap<KernelKey, SlackBucket>),
}

#[derive(Debug)]
struct SlackBucket {
    switch_us: f64,
    heap: BinaryHeap<Reverse<(TimeKey, usize)>>,
}

impl TileQueue {
    /// A queue ordered for `policy`; `track_kernels` additionally maintains
    /// the per-kernel FIFO index the batching layer queries (skip it when
    /// batching is disabled — nothing would ever read it).
    pub(crate) fn new(policy: DispatchPolicy, track_kernels: bool) -> Self {
        let index = match policy {
            DispatchPolicy::KernelAffinity | DispatchPolicy::RoundRobin => QueueOrder::Fifo,
            DispatchPolicy::EarliestDeadlineFirst => QueueOrder::Deadline(BinaryHeap::new()),
            DispatchPolicy::SlackAware => QueueOrder::Slack(FnvHashMap::default()),
        };
        TileQueue {
            order: VecDeque::new(),
            by_kernel: FnvHashMap::default(),
            track_kernels,
            live: 0,
            index,
        }
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.live == 0
    }

    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.live
    }

    /// Appends an arriving request (by intake index, with its cached
    /// dispatch view).
    pub(crate) fn push(&mut self, index: usize, view: &DispatchRequest) {
        self.order.push_back((index, view.key));
        if self.track_kernels {
            self.by_kernel.entry(view.key).or_default().push_back(index);
        }
        self.live += 1;
        match &mut self.index {
            QueueOrder::Fifo => {}
            QueueOrder::Deadline(heap) => {
                heap.push(Reverse((TimeKey(view.edf_key()), index)));
            }
            QueueOrder::Slack(buckets) => {
                let bucket = buckets.entry(view.key).or_insert_with(|| SlackBucket {
                    switch_us: view.switch_us,
                    heap: BinaryHeap::new(),
                });
                bucket
                    .heap
                    .push(Reverse((TimeKey(view.slack_base()), index)));
            }
        }
    }

    /// The intake index the freed tile (hosting `resident`) would run next
    /// under the dispatch policy, without removing it — the choice the
    /// batching layer inspects before committing. Taken entries are lazily
    /// dropped off the ordered structures on the way (they are already
    /// logically removed).
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    pub(crate) fn peek_next(&mut self, resident: Option<KernelKey>, taken: &[bool]) -> usize {
        assert!(self.live > 0, "pop from an empty tile queue");
        match &mut self.index {
            QueueOrder::Fifo => loop {
                let &(index, _) = self.order.front().expect("live entries imply a front");
                if taken[index] {
                    self.order.pop_front();
                } else {
                    break index;
                }
            },
            QueueOrder::Deadline(heap) => loop {
                let &Reverse((_, index)) = heap.peek().expect("live entries imply a heap top");
                if taken[index] {
                    heap.pop();
                } else {
                    break index;
                }
            },
            QueueOrder::Slack(buckets) => {
                let mut best: Option<(TimeKey, TimeKey, usize)> = None;
                let mut drained: Vec<KernelKey> = Vec::new();
                for (&kernel, bucket) in buckets.iter_mut() {
                    // Lazily drop taken entries off this bucket's top.
                    while let Some(&Reverse((_, index))) = bucket.heap.peek() {
                        if taken[index] {
                            bucket.heap.pop();
                        } else {
                            break;
                        }
                    }
                    let Some(&Reverse((base, index))) = bucket.heap.peek() else {
                        drained.push(kernel);
                        continue;
                    };
                    let adjusted = if resident == Some(kernel) {
                        base
                    } else {
                        TimeKey(base.0 - bucket.switch_us)
                    };
                    let candidate = (adjusted, base, index);
                    if best.is_none_or(|current| candidate < current) {
                        best = Some(candidate);
                    }
                }
                for kernel in drained {
                    buckets.remove(&kernel);
                }
                best.expect("live entries imply a candidate").2
            }
        }
    }

    /// Logically removes intake `index` (a live entry of this queue) by
    /// flagging it in `taken`; the ordered structures drop it lazily.
    pub(crate) fn take(&mut self, index: usize, taken: &mut [bool]) {
        debug_assert!(!taken[index], "an entry is taken at most once");
        taken[index] = true;
        self.live -= 1;
    }

    /// Removes and returns the intake index the freed tile (hosting
    /// `resident`) runs next, flagging it in `taken` —
    /// [`peek_next`](Self::peek_next) + [`take`](Self::take). (The event
    /// loops peek and take separately so the batching layer can intervene;
    /// this composition is kept for the selection-equivalence tests.)
    ///
    /// # Panics
    ///
    /// Panics if the queue is empty.
    #[cfg(test)]
    pub(crate) fn pop_next(&mut self, resident: Option<KernelKey>, taken: &mut [bool]) -> usize {
        let index = self.peek_next(resident, taken);
        self.take(index, taken);
        index
    }

    /// The oldest live waiter for `kernel` (FIFO within the kernel), if any
    /// — the batching layer's same-kernel candidate.
    pub(crate) fn oldest_for_kernel(&mut self, kernel: KernelKey, taken: &[bool]) -> Option<usize> {
        debug_assert!(self.track_kernels, "batching queries an untracked queue");
        let deque = self.by_kernel.get_mut(&kernel)?;
        while let Some(&index) = deque.front() {
            if taken[index] {
                deque.pop_front();
            } else {
                return Some(index);
            }
        }
        self.by_kernel.remove(&kernel);
        None
    }

    /// Empties the queue, returning the live intake indices in FIFO
    /// (insertion) order — fault injection's bulk evacuation of a dead or
    /// draining tile. Every ordered structure is fully reset, so stale
    /// entries cannot resurface if an evacuated index is later re-enqueued
    /// here with its `taken` flag cleared. The flags themselves are left
    /// untouched; evacuated requests re-enter routing as displaced work.
    pub(crate) fn drain_live(&mut self, taken: &[bool]) -> Vec<usize> {
        let live: Vec<usize> = self
            .order
            .drain(..)
            .filter_map(|(index, _)| (!taken[index]).then_some(index))
            .collect();
        debug_assert_eq!(live.len(), self.live, "live count matches the deque");
        self.by_kernel.clear();
        self.live = 0;
        match &mut self.index {
            QueueOrder::Fifo => {}
            QueueOrder::Deadline(heap) => heap.clear(),
            QueueOrder::Slack(buckets) => buckets.clear(),
        }
        live
    }

    /// The kernel of the request currently last in the queue (FIFO order),
    /// skipping taken entries — what the pool's residency projection needs
    /// after a mid-queue removal.
    pub(crate) fn tail_key(&mut self, taken: &[bool]) -> Option<KernelKey> {
        while let Some(&(index, _)) = self.order.back() {
            if taken[index] {
                self.order.pop_back();
            } else {
                break;
            }
        }
        self.order.back().map(|&(_, kernel)| kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_arch::{FuVariant, TileComposition};

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    fn request(fingerprint: u64) -> DispatchRequest {
        DispatchRequest {
            key: key(fingerprint),
            est_exec_us: 10.0,
            switch_us: 0.25,
            deadline_us: None,
        }
    }

    fn with_deadline(fingerprint: u64, deadline_us: f64) -> DispatchRequest {
        DispatchRequest {
            deadline_us: Some(deadline_us),
            ..request(fingerprint)
        }
    }

    fn pool(tiles: usize) -> TilePool {
        TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, tiles).unwrap()
    }

    /// Replays a trace through place + charge + release, as the event loop
    /// would with every tile draining instantly (no queueing).
    fn place_all(
        dispatcher: &mut Dispatcher,
        trace: &[(f64, DispatchRequest)],
    ) -> (TilePool, Vec<usize>) {
        let mut p = pool(3);
        let mut tiles = Vec::new();
        for (arrival, req) in trace {
            for tile in 0..p.num_tiles() {
                if p.states()[tile].running && p.states()[tile].available_us <= *arrival {
                    p.release(tile);
                }
            }
            let tile = dispatcher.place(req, *arrival, &p);
            p.charge(tile, req.key, *arrival, req.switch_us, req.est_exec_us);
            tiles.push(tile);
        }
        (p, tiles)
    }

    /// The seed requirement carried over from the batch dispatcher: on a
    /// repeating 2-kernel trace, affinity placement settles into one tile per
    /// kernel while round-robin keeps cycling kernels across tiles and swaps
    /// on every single request (3 tiles, so the stride never aligns with the
    /// kernel period).
    #[test]
    fn affinity_beats_round_robin_on_a_repeating_two_kernel_trace() {
        let trace: Vec<(f64, DispatchRequest)> =
            (0..16u64).map(|i| (0.0, request(i % 2))).collect();

        let (affinity_pool, _) =
            place_all(&mut Dispatcher::new(DispatchPolicy::KernelAffinity), &trace);
        let affinity_switches: usize = affinity_pool.states().iter().map(|s| s.switches).sum();

        let (rr_pool, _) = place_all(&mut Dispatcher::new(DispatchPolicy::RoundRobin), &trace);
        let rr_switches: usize = rr_pool.states().iter().map(|s| s.switches).sum();

        assert_eq!(rr_switches, 16, "round-robin swaps on every request");
        assert!(
            affinity_switches < rr_switches,
            "affinity must switch strictly less: {affinity_switches} vs {rr_switches}"
        );
        assert!(
            affinity_switches <= rr_switches / 2,
            "affinity mostly sticks to resident kernels, got {affinity_switches}"
        );
    }

    /// With arrivals spaced out (no queueing pressure), affinity placement
    /// settles into one tile per kernel and only ever pays the cold-start
    /// switches — under both scan modes.
    #[test]
    fn affinity_pins_kernels_when_tiles_are_not_contended() {
        let trace: Vec<(f64, DispatchRequest)> = (0..16u64)
            .map(|i| (i as f64 * 50.0, request(i % 2)))
            .collect();
        for scan in [ScanMode::Indexed, ScanMode::LinearReference] {
            let mut dispatcher =
                Dispatcher::new(DispatchPolicy::KernelAffinity).with_scan_mode(scan);
            let (p, tiles) = place_all(&mut dispatcher, &trace);
            let switches: usize = p.states().iter().map(|s| s.switches).sum();
            assert_eq!(
                switches, 2,
                "{scan}: one cold start per kernel, then pinned"
            );
            assert_eq!(tiles[0], 0, "{scan}: first kernel takes the lowest index");
        }
    }

    /// Indexed and linear placement agree on every decision of an
    /// interleaved, contended trace.
    #[test]
    fn scan_modes_place_identically() {
        let trace: Vec<(f64, DispatchRequest)> = (0..64u64)
            .map(|i| {
                let mut req = request(i % 5);
                req.est_exec_us = 5.0 + (i % 7) as f64;
                req.switch_us = if i % 3 == 0 { 1000.0 } else { 0.25 };
                (i as f64 * 3.0, req)
            })
            .collect();
        let (_, indexed) = place_all(&mut Dispatcher::new(DispatchPolicy::KernelAffinity), &trace);
        let (_, linear) = place_all(
            &mut Dispatcher::new(DispatchPolicy::KernelAffinity)
                .with_scan_mode(ScanMode::LinearReference),
            &trace,
        );
        assert_eq!(indexed, linear);
    }

    #[test]
    fn affinity_prefers_the_resident_tile_over_an_expensive_swap() {
        // Tile 0 hosts kernel 1 and is busy until t=5; tile 1 is idle but
        // cold. With a 1000 us switch cost, waiting for tile 0 wins.
        let expensive = DispatchRequest {
            key: key(1),
            est_exec_us: 10.0,
            switch_us: 1000.0,
            deadline_us: None,
        };
        for scan in [ScanMode::Indexed, ScanMode::LinearReference] {
            let mut p = pool(2);
            p.charge(0, key(1), 0.0, 0.0, 5.0);
            let tile = Dispatcher::new(DispatchPolicy::KernelAffinity)
                .with_scan_mode(scan)
                .place(&expensive, 0.0, &p);
            assert_eq!(tile, 0, "{scan}");
        }
    }

    #[test]
    fn placement_counts_queued_backlog_and_projected_residency() {
        // Tile 0 hosts kernel 1 but has 3 queued requests (30 us of backlog)
        // with kernel 2 last in line; tile 1 is idle and cold. The queue
        // makes tile 1's cold start the earlier completion, and tile 0's
        // projected resident (kernel 2) means kernel 1 would switch anyway.
        for scan in [ScanMode::Indexed, ScanMode::LinearReference] {
            let mut p = pool(2);
            p.charge(0, key(1), 0.0, 0.0, 1.0);
            for fp in [1, 1, 2] {
                p.enqueue(0, key(fp), 10.0);
            }
            let tile = Dispatcher::new(DispatchPolicy::KernelAffinity)
                .with_scan_mode(scan)
                .place(&request(1), 0.0, &p);
            assert_eq!(tile, 1, "{scan}: queued backlog outweighs residency");
        }
    }

    #[test]
    fn round_robin_cycles_tiles_in_order_and_resets() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::RoundRobin);
        let p = pool(3);
        let tiles: Vec<usize> = (0..6)
            .map(|i| dispatcher.place(&request(i), 0.0, &p))
            .collect();
        assert_eq!(tiles, vec![0, 1, 2, 0, 1, 2]);
        dispatcher.reset();
        assert_eq!(dispatcher.place(&request(9), 0.0, &p), 0);
    }

    #[test]
    fn fifo_policies_always_take_the_oldest_queued_request() {
        let p = pool(1);
        let queue = [with_deadline(1, 5.0), with_deadline(2, 1.0)];
        for policy in [DispatchPolicy::KernelAffinity, DispatchPolicy::RoundRobin] {
            assert_eq!(
                Dispatcher::new(policy).select_next(&p.states()[0], &queue),
                0,
                "{policy} drains FIFO"
            );
            assert!(!policy.is_deadline_aware());
        }
    }

    #[test]
    fn edf_takes_the_tightest_deadline_and_parks_deadline_free_requests() {
        let p = pool(1);
        let dispatcher = Dispatcher::new(DispatchPolicy::EarliestDeadlineFirst);
        let queue = [request(1), with_deadline(2, 90.0), with_deadline(3, 40.0)];
        assert_eq!(dispatcher.select_next(&p.states()[0], &queue), 2);
        // Without any deadlines EDF degenerates to FIFO.
        let queue = [request(1), request(2)];
        assert_eq!(dispatcher.select_next(&p.states()[0], &queue), 0);
        assert!(DispatchPolicy::EarliestDeadlineFirst.is_deadline_aware());
    }

    #[test]
    fn slack_aware_charges_the_switch_cost_against_the_deadline() {
        // Two requests with the same deadline and service time; the tile
        // hosts kernel 1, so kernel 2 must pay a switch and has less slack.
        let mut p = pool(1);
        p.states_mut()[0].resident = Some(key(1));
        let dispatcher = Dispatcher::new(DispatchPolicy::SlackAware);
        let resident = with_deadline(1, 100.0);
        let cold = DispatchRequest {
            switch_us: 20.0,
            ..with_deadline(2, 100.0)
        };
        assert_eq!(
            dispatcher.select_next(&p.states()[0], &[resident, cold]),
            1,
            "the swap eats 20 us of kernel 2's slack"
        );
        // EDF, blind to the switch cost, would have kept FIFO order.
        assert_eq!(
            Dispatcher::new(DispatchPolicy::EarliestDeadlineFirst)
                .select_next(&p.states()[0], &[resident, cold]),
            0
        );
        assert!((resident.slack_us(&p.states()[0], 0.0) - 90.0).abs() < 1e-12);
        assert!((cold.slack_us(&p.states()[0], 0.0) - 70.0).abs() < 1e-12);
        assert_eq!(request(1).slack_us(&p.states()[0], 0.0), f64::INFINITY);
    }

    /// On an exact slack tie, the request whose kernel is already resident
    /// wins (no gratuitous switch); exact full ties fall back to FIFO.
    #[test]
    fn slack_ties_prefer_the_resident_kernel_then_fifo() {
        let mut p = pool(1);
        p.states_mut()[0].resident = Some(key(2));
        let dispatcher = Dispatcher::new(DispatchPolicy::SlackAware);
        // Request 1 (cold, switch 20): adjusted slack 100-10-20 = 70.
        // Request 2 (resident): deadline 80 gives the same 80-10 = 70.
        let cold = DispatchRequest {
            switch_us: 20.0,
            ..with_deadline(1, 100.0)
        };
        let resident = with_deadline(2, 80.0);
        assert_eq!(
            dispatcher.select_next(&p.states()[0], &[cold, resident]),
            1,
            "equal slack resolves to the no-switch request"
        );
        // Identical requests: FIFO.
        assert_eq!(
            dispatcher.select_next(&p.states()[0], &[cold, cold]),
            0,
            "exact ties drain FIFO"
        );
    }

    /// The indexed tile queue pops the same request the linear argmin picks,
    /// across policies, including after mid-queue removals.
    #[test]
    fn tile_queue_matches_the_linear_selection_reference() {
        let mut p = pool(1);
        p.states_mut()[0].resident = Some(key(2));
        let views = [
            with_deadline(1, 90.0),
            request(2),
            with_deadline(2, 95.0),
            with_deadline(3, 40.0),
            request(1),
            with_deadline(2, 40.0),
        ];
        for policy in DispatchPolicy::ALL {
            let dispatcher = Dispatcher::new(policy);
            let mut queue = TileQueue::new(policy, true);
            let mut taken = vec![false; views.len()];
            for (index, view) in views.iter().enumerate() {
                queue.push(index, view);
            }
            assert_eq!(queue.len(), views.len());
            // Mirror of the linear queue: (intake index, view), FIFO order.
            let mut linear: Vec<(usize, DispatchRequest)> =
                views.iter().copied().enumerate().collect();
            while !queue.is_empty() {
                let linear_views: Vec<DispatchRequest> =
                    linear.iter().map(|&(_, view)| view).collect();
                let position = dispatcher.select_next(&p.states()[0], &linear_views);
                let (expected, _) = linear.remove(position);
                let got = queue.pop_next(p.states()[0].resident, &mut taken);
                assert_eq!(got, expected, "{policy} diverged");
                assert_eq!(
                    queue.tail_key(&taken),
                    linear.last().map(|&(_, view)| view.key),
                    "{policy} tail projection diverged"
                );
            }
        }
    }

    #[test]
    fn policies_display_and_default() {
        assert_eq!(DispatchPolicy::default(), DispatchPolicy::KernelAffinity);
        let names: Vec<String> = DispatchPolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            vec!["kernel-affinity", "round-robin", "edf", "slack-aware"]
        );
        assert_eq!(
            Dispatcher::default().policy(),
            DispatchPolicy::KernelAffinity
        );
        assert_eq!(Dispatcher::default().scan_mode(), ScanMode::Indexed);
        assert_eq!(ScanMode::Indexed.to_string(), "indexed");
        assert_eq!(ScanMode::LinearReference.to_string(), "linear");
    }
}
