//! Context-switch-aware placement of requests onto tiles.
//!
//! The dispatcher mirrors the reservation-station → free-execution-unit
//! structure of dynamic multi-unit schedulers: each request is placed on the
//! tile that can *complete* it earliest, where the completion estimate
//! charges the [`overlay_arch::ReconfigModel`] context-switch cost whenever
//! the tile would have to swap its resident kernel. On the write-back
//! variants that cost is a ~0.25 µs instruction reload; on the feed-forward
//! variants it is a ~1 ms PCAP partial reconfiguration — which is exactly why
//! kernel affinity matters so much more for V1/V2 pools.

use std::fmt;

use crate::cache::KernelKey;
use crate::pool::TilePool;

/// How the dispatcher picks a tile for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Greedy earliest-completion placement that charges the modeled
    /// context-switch cost for every kernel swap, so requests stick to tiles
    /// already hosting their kernel whenever that wins.
    #[default]
    KernelAffinity,
    /// Naive round-robin: request `i` goes to tile `i % N`, blind to resident
    /// kernels and switch costs.
    RoundRobin,
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::KernelAffinity => f.write_str("kernel-affinity"),
            DispatchPolicy::RoundRobin => f.write_str("round-robin"),
        }
    }
}

/// One request as the dispatcher sees it: its kernel identity plus the cost
/// estimates placement decisions are made from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanItem {
    /// The compiled-kernel identity the request needs.
    pub key: KernelKey,
    /// Arrival time on the modeled timeline, microseconds.
    pub arrival_us: f64,
    /// Estimated execution time, microseconds.
    pub est_exec_us: f64,
    /// Context-switch cost if a tile must swap to this kernel, microseconds.
    pub switch_us: f64,
}

/// The dispatcher's output: one tile index per request, in request order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `assignments[i]` is the tile serving request `i`.
    pub assignments: Vec<usize>,
    /// The policy that produced the placement.
    pub policy: DispatchPolicy,
}

impl Placement {
    /// Number of placed requests.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// Whether no requests were placed.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }
}

/// Places a trace of requests onto a tile pool under a [`DispatchPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Dispatcher {
    policy: DispatchPolicy,
}

impl Dispatcher {
    /// A dispatcher using `policy`.
    pub fn new(policy: DispatchPolicy) -> Self {
        Dispatcher { policy }
    }

    /// The active policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Assigns each item (in trace order) to a tile, advancing the pool's
    /// modeled timelines as it goes. The pool is left holding the planned
    /// end-state; callers wanting a fresh replay reset it afterwards.
    pub fn plan(&self, items: &[PlanItem], pool: &mut TilePool) -> Placement {
        let mut assignments = Vec::with_capacity(items.len());
        for (index, item) in items.iter().enumerate() {
            let tile = match self.policy {
                DispatchPolicy::RoundRobin => index % pool.num_tiles(),
                DispatchPolicy::KernelAffinity => Self::earliest_completion(item, pool),
            };
            pool.states_mut()[tile].charge(
                item.key,
                item.arrival_us,
                item.switch_us,
                item.est_exec_us,
            );
            assignments.push(tile);
        }
        Placement {
            assignments,
            policy: self.policy,
        }
    }

    /// The tile with the earliest estimated completion for `item`, counting
    /// queueing delay and any required context switch. Completion ties are
    /// broken by preferring (in order) a tile that needs no switch, a cold
    /// tile over evicting another warm kernel, and the lowest index — so
    /// equal-latency choices never spend switch time or kernel residency
    /// gratuitously, and plans stay deterministic.
    fn earliest_completion(item: &PlanItem, pool: &TilePool) -> usize {
        let mut best = (f64::INFINITY, true, true, usize::MAX);
        for state in pool.states() {
            let needs_switch = state.resident != Some(item.key);
            let evicts_warm = needs_switch && state.resident.is_some();
            let start = state.available_us.max(item.arrival_us);
            let switch = if needs_switch { item.switch_us } else { 0.0 };
            let completion = start + switch + item.est_exec_us;
            let candidate = (completion, needs_switch, evicts_warm, state.index);
            if candidate < best {
                best = candidate;
            }
        }
        best.3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_arch::{FuVariant, TileComposition};

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    fn item(fingerprint: u64) -> PlanItem {
        PlanItem {
            key: key(fingerprint),
            arrival_us: 0.0,
            est_exec_us: 10.0,
            switch_us: 0.25,
        }
    }

    fn pool(tiles: usize) -> TilePool {
        TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, tiles).unwrap()
    }

    /// The satellite requirement: on a repeating 2-kernel trace, affinity
    /// dispatch settles into one tile per kernel while round-robin keeps
    /// cycling kernels across tiles and swaps on every single request. The
    /// pool deliberately has 3 tiles so the round-robin stride (3) never
    /// aligns with the kernel period (2).
    #[test]
    fn affinity_beats_round_robin_on_a_repeating_two_kernel_trace() {
        let trace: Vec<PlanItem> = (0..16u64).map(|i| item(i % 2)).collect();

        let mut affinity_pool = pool(3);
        Dispatcher::new(DispatchPolicy::KernelAffinity).plan(&trace, &mut affinity_pool);
        let affinity_switches: usize = affinity_pool.states().iter().map(|s| s.switches).sum();

        let mut rr_pool = pool(3);
        Dispatcher::new(DispatchPolicy::RoundRobin).plan(&trace, &mut rr_pool);
        let rr_switches: usize = rr_pool.states().iter().map(|s| s.switches).sum();

        assert_eq!(rr_switches, 16, "round-robin swaps on every request");
        assert!(
            affinity_switches < rr_switches,
            "affinity must switch strictly less: {affinity_switches} vs {rr_switches}"
        );
        assert!(
            affinity_switches <= rr_switches / 2,
            "affinity mostly sticks to resident kernels, got {affinity_switches}"
        );
    }

    /// With arrivals spaced out (no queueing pressure), affinity dispatch
    /// settles into one tile per kernel and only ever pays the cold-start
    /// switches.
    #[test]
    fn affinity_pins_kernels_when_tiles_are_not_contended() {
        let trace: Vec<PlanItem> = (0..16u64)
            .map(|i| PlanItem {
                arrival_us: i as f64 * 50.0,
                ..item(i % 2)
            })
            .collect();
        let mut p = pool(3);
        Dispatcher::new(DispatchPolicy::KernelAffinity).plan(&trace, &mut p);
        let switches: usize = p.states().iter().map(|s| s.switches).sum();
        assert_eq!(switches, 2, "one cold start per kernel, then pinned");
    }

    #[test]
    fn affinity_still_spreads_a_single_hot_kernel_across_tiles() {
        let trace: Vec<PlanItem> = (0..8).map(|_| item(1)).collect();
        let mut p = pool(4);
        let placement = Dispatcher::new(DispatchPolicy::KernelAffinity).plan(&trace, &mut p);
        // With identical kernels the switch cost is a cold-start constant per
        // tile; queueing dominates, so all four tiles end up used.
        let used: std::collections::HashSet<_> = placement.assignments.iter().copied().collect();
        assert_eq!(used.len(), 4, "queueing pressure spreads work");
        assert_eq!(placement.len(), 8);
        assert!(!placement.is_empty());
    }

    #[test]
    fn affinity_prefers_the_resident_tile_over_an_expensive_swap() {
        // Tile 0 hosts kernel 1 and is busy until t=5; tile 1 is idle but
        // cold. With a 1000 us switch cost, waiting for tile 0 wins.
        let mut p = pool(2);
        let expensive = PlanItem {
            key: key(1),
            arrival_us: 0.0,
            est_exec_us: 10.0,
            switch_us: 1000.0,
        };
        p.states_mut()[0].resident = Some(key(1));
        p.states_mut()[0].available_us = 5.0;
        let placement = Dispatcher::new(DispatchPolicy::KernelAffinity)
            .plan(std::slice::from_ref(&expensive), &mut p);
        assert_eq!(placement.assignments, vec![0]);
    }

    #[test]
    fn round_robin_cycles_tiles_in_order() {
        let trace: Vec<PlanItem> = (0..6).map(item).collect();
        let mut p = pool(3);
        let placement = Dispatcher::new(DispatchPolicy::RoundRobin).plan(&trace, &mut p);
        assert_eq!(placement.assignments, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(placement.policy, DispatchPolicy::RoundRobin);
    }

    #[test]
    fn policies_display_and_default() {
        assert_eq!(DispatchPolicy::default(), DispatchPolicy::KernelAffinity);
        assert_eq!(
            DispatchPolicy::KernelAffinity.to_string(),
            "kernel-affinity"
        );
        assert_eq!(DispatchPolicy::RoundRobin.to_string(), "round-robin");
        assert_eq!(
            Dispatcher::default().policy(),
            DispatchPolicy::KernelAffinity
        );
    }
}
