//! Online, context-switch-aware placement of requests onto tiles.
//!
//! The dispatcher is consulted twice per request, both times against *live*
//! per-tile queue state and never with knowledge of the future trace:
//!
//! 1. **at the arrival event** — [`Dispatcher::place`] picks the tile whose
//!    queue the request joins, estimating each tile's completion as its
//!    backlog plus any required context switch. The switch estimate charges
//!    the [`overlay_arch::ReconfigModel`] cost: a ~0.25 µs instruction
//!    reload on the write-back variants (V3–V5), a ~1 ms PCAP partial
//!    reconfiguration on the feed-forward ones — which is exactly why kernel
//!    affinity matters so much more for V1/V2 pools.
//! 2. **at the tile-free event** — [`Dispatcher::select_next`] picks which
//!    queued request the freed tile runs next. The FIFO policies take the
//!    oldest; [`EarliestDeadlineFirst`](DispatchPolicy::EarliestDeadlineFirst)
//!    takes the tightest absolute deadline; and
//!    [`SlackAware`](DispatchPolicy::SlackAware) takes the least *slack* —
//!    `deadline − now − modeled service − modeled switch cost` — so a
//!    request whose kernel is already resident (zero switch) is correctly
//!    seen as less urgent than one that must pay a reload first.

use std::fmt;

use crate::cache::KernelKey;
use crate::pool::{TilePool, TileState};

/// How the dispatcher places arrivals and orders tile queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DispatchPolicy {
    /// Greedy earliest-completion placement that charges the modeled
    /// context-switch cost for every kernel swap; tile queues drain FIFO.
    #[default]
    KernelAffinity,
    /// Naive round-robin placement, blind to resident kernels, switch costs
    /// and deadlines; tile queues drain FIFO.
    RoundRobin,
    /// Earliest-completion placement like
    /// [`KernelAffinity`](DispatchPolicy::KernelAffinity), but each tile
    /// drains its queue in order of absolute deadline (requests without a
    /// deadline go last, FIFO among themselves).
    EarliestDeadlineFirst,
    /// Earliest-completion placement, with tile queues drained in order of
    /// *slack*: deadline − now − modeled service − modeled switch cost
    /// against the tile's resident kernel. Unlike EDF this sees that a
    /// request needing a ~1 ms PCAP swap is closer to its deadline than its
    /// timestamp alone suggests.
    SlackAware,
}

impl DispatchPolicy {
    /// Every policy, in documentation order.
    pub const ALL: [DispatchPolicy; 4] = [
        DispatchPolicy::KernelAffinity,
        DispatchPolicy::RoundRobin,
        DispatchPolicy::EarliestDeadlineFirst,
        DispatchPolicy::SlackAware,
    ];

    /// Whether the policy reorders tile queues by deadline urgency.
    pub fn is_deadline_aware(self) -> bool {
        matches!(
            self,
            DispatchPolicy::EarliestDeadlineFirst | DispatchPolicy::SlackAware
        )
    }
}

impl fmt::Display for DispatchPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchPolicy::KernelAffinity => f.write_str("kernel-affinity"),
            DispatchPolicy::RoundRobin => f.write_str("round-robin"),
            DispatchPolicy::EarliestDeadlineFirst => f.write_str("edf"),
            DispatchPolicy::SlackAware => f.write_str("slack-aware"),
        }
    }
}

/// One admitted request as the dispatcher sees it at an event: its kernel
/// identity plus the modeled cost estimates decisions are made from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchRequest {
    /// The compiled-kernel identity the request needs.
    pub key: KernelKey,
    /// Estimated execution (service) time, microseconds.
    pub est_exec_us: f64,
    /// Context-switch cost if a tile must swap to this kernel, microseconds.
    pub switch_us: f64,
    /// Absolute completion deadline, if the request carries one.
    pub deadline_us: Option<f64>,
}

impl DispatchRequest {
    /// The request's slack on `tile` at virtual time `now_us`: time to its
    /// deadline minus the modeled service and the switch cost the tile would
    /// pay. `INFINITY` for requests without a deadline.
    pub fn slack_us(&self, tile: &TileState, now_us: f64) -> f64 {
        match self.deadline_us {
            Some(deadline) => {
                deadline - now_us - self.est_exec_us - tile.switch_cost(self.key, self.switch_us)
            }
            None => f64::INFINITY,
        }
    }
}

/// Makes per-event placement and queue-ordering decisions under a
/// [`DispatchPolicy`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Dispatcher {
    policy: DispatchPolicy,
    next_tile: usize,
}

impl Dispatcher {
    /// A dispatcher using `policy`.
    pub fn new(policy: DispatchPolicy) -> Self {
        Dispatcher {
            policy,
            next_tile: 0,
        }
    }

    /// The active policy.
    pub fn policy(&self) -> DispatchPolicy {
        self.policy
    }

    /// Clears per-serve state (the round-robin cursor).
    pub fn reset(&mut self) {
        self.next_tile = 0;
    }

    /// Placement decision at an arrival event: the tile whose queue the
    /// request joins, given the pool's live queue state at virtual time
    /// `now_us`.
    pub fn place(&mut self, request: &DispatchRequest, now_us: f64, pool: &TilePool) -> usize {
        match self.policy {
            DispatchPolicy::RoundRobin => {
                let tile = self.next_tile % pool.num_tiles();
                self.next_tile = self.next_tile.wrapping_add(1);
                tile
            }
            DispatchPolicy::KernelAffinity
            | DispatchPolicy::EarliestDeadlineFirst
            | DispatchPolicy::SlackAware => Self::earliest_completion(request, now_us, pool),
        }
    }

    /// The tile with the earliest estimated completion for `request`,
    /// counting its backlog (running + queued work) and any required context
    /// switch against the kernel the tile will be hosting once that backlog
    /// drains. Completion ties are broken by preferring (in order) a tile
    /// that needs no switch, a cold tile over evicting another warm kernel,
    /// and the lowest index — so equal-latency choices never spend switch
    /// time or kernel residency gratuitously, and decisions stay
    /// deterministic.
    fn earliest_completion(request: &DispatchRequest, now_us: f64, pool: &TilePool) -> usize {
        let mut best = (f64::INFINITY, true, true, usize::MAX);
        for state in pool.states() {
            let projected = state.projected_resident();
            let needs_switch = projected != Some(request.key);
            let evicts_warm = needs_switch && projected.is_some();
            let start = state.available_us.max(now_us) + state.queued_est_us;
            let switch = if needs_switch { request.switch_us } else { 0.0 };
            let completion = start + switch + request.est_exec_us;
            let candidate = (completion, needs_switch, evicts_warm, state.index);
            if candidate < best {
                best = candidate;
            }
        }
        best.3
    }

    /// Queue-ordering decision at a tile-free event: the position in `queue`
    /// (held in submission order) of the request `tile` should run next.
    ///
    /// Returns 0 (FIFO) for the deadline-blind policies and for an empty
    /// queue; EDF picks the tightest deadline, slack-aware the least
    /// [`slack`](DispatchRequest::slack_us). All ties fall back to FIFO.
    pub fn select_next(&self, tile: &TileState, queue: &[DispatchRequest], now_us: f64) -> usize {
        match self.policy {
            DispatchPolicy::KernelAffinity | DispatchPolicy::RoundRobin => 0,
            DispatchPolicy::EarliestDeadlineFirst => Self::argmin_by(queue, |request| {
                request.deadline_us.unwrap_or(f64::INFINITY)
            }),
            DispatchPolicy::SlackAware => {
                Self::argmin_by(queue, |request| request.slack_us(tile, now_us))
            }
        }
    }

    /// Position of the minimum of `urgency` over `queue`, first-wins on ties
    /// (FIFO). Returns 0 for an empty queue.
    fn argmin_by(queue: &[DispatchRequest], urgency: impl Fn(&DispatchRequest) -> f64) -> usize {
        let mut best = (f64::INFINITY, 0);
        for (position, request) in queue.iter().enumerate() {
            let value = urgency(request);
            if value < best.0 {
                best = (value, position);
            }
        }
        best.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_arch::{FuVariant, TileComposition};

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V4,
            depth: 8,
        }
    }

    fn request(fingerprint: u64) -> DispatchRequest {
        DispatchRequest {
            key: key(fingerprint),
            est_exec_us: 10.0,
            switch_us: 0.25,
            deadline_us: None,
        }
    }

    fn with_deadline(fingerprint: u64, deadline_us: f64) -> DispatchRequest {
        DispatchRequest {
            deadline_us: Some(deadline_us),
            ..request(fingerprint)
        }
    }

    fn pool(tiles: usize) -> TilePool {
        TilePool::with_tiles(FuVariant::V4, TileComposition::Parallel, tiles).unwrap()
    }

    /// Replays a trace through place + charge, as the event loop would with
    /// every tile draining instantly (no queueing).
    fn place_all(
        dispatcher: &mut Dispatcher,
        trace: &[(f64, DispatchRequest)],
    ) -> (TilePool, Vec<usize>) {
        let mut p = pool(3);
        let mut tiles = Vec::new();
        for (arrival, req) in trace {
            let tile = dispatcher.place(req, *arrival, &p);
            p.states_mut()[tile].charge(req.key, *arrival, req.switch_us, req.est_exec_us);
            tiles.push(tile);
        }
        (p, tiles)
    }

    /// The seed requirement carried over from the batch dispatcher: on a
    /// repeating 2-kernel trace, affinity placement settles into one tile per
    /// kernel while round-robin keeps cycling kernels across tiles and swaps
    /// on every single request (3 tiles, so the stride never aligns with the
    /// kernel period).
    #[test]
    fn affinity_beats_round_robin_on_a_repeating_two_kernel_trace() {
        let trace: Vec<(f64, DispatchRequest)> =
            (0..16u64).map(|i| (0.0, request(i % 2))).collect();

        let (affinity_pool, _) =
            place_all(&mut Dispatcher::new(DispatchPolicy::KernelAffinity), &trace);
        let affinity_switches: usize = affinity_pool.states().iter().map(|s| s.switches).sum();

        let (rr_pool, _) = place_all(&mut Dispatcher::new(DispatchPolicy::RoundRobin), &trace);
        let rr_switches: usize = rr_pool.states().iter().map(|s| s.switches).sum();

        assert_eq!(rr_switches, 16, "round-robin swaps on every request");
        assert!(
            affinity_switches < rr_switches,
            "affinity must switch strictly less: {affinity_switches} vs {rr_switches}"
        );
        assert!(
            affinity_switches <= rr_switches / 2,
            "affinity mostly sticks to resident kernels, got {affinity_switches}"
        );
    }

    /// With arrivals spaced out (no queueing pressure), affinity placement
    /// settles into one tile per kernel and only ever pays the cold-start
    /// switches.
    #[test]
    fn affinity_pins_kernels_when_tiles_are_not_contended() {
        let trace: Vec<(f64, DispatchRequest)> = (0..16u64)
            .map(|i| (i as f64 * 50.0, request(i % 2)))
            .collect();
        let (p, _) = place_all(&mut Dispatcher::new(DispatchPolicy::KernelAffinity), &trace);
        let switches: usize = p.states().iter().map(|s| s.switches).sum();
        assert_eq!(switches, 2, "one cold start per kernel, then pinned");
    }

    #[test]
    fn affinity_prefers_the_resident_tile_over_an_expensive_swap() {
        // Tile 0 hosts kernel 1 and is busy until t=5; tile 1 is idle but
        // cold. With a 1000 us switch cost, waiting for tile 0 wins.
        let mut p = pool(2);
        let expensive = DispatchRequest {
            key: key(1),
            est_exec_us: 10.0,
            switch_us: 1000.0,
            deadline_us: None,
        };
        p.states_mut()[0].resident = Some(key(1));
        p.states_mut()[0].available_us = 5.0;
        let tile = Dispatcher::new(DispatchPolicy::KernelAffinity).place(&expensive, 0.0, &p);
        assert_eq!(tile, 0);
    }

    #[test]
    fn placement_counts_queued_backlog_and_projected_residency() {
        // Tile 0 hosts kernel 1 but has 3 queued requests (30 us of backlog)
        // with kernel 2 last in line; tile 1 is idle and cold. The queue
        // makes tile 1's cold start the earlier completion, and tile 0's
        // projected resident (kernel 2) means kernel 1 would switch anyway.
        let mut p = pool(2);
        p.states_mut()[0].resident = Some(key(1));
        for fp in [1, 1, 2] {
            p.states_mut()[0].enqueue(key(fp), 10.0);
        }
        let tile = Dispatcher::new(DispatchPolicy::KernelAffinity).place(&request(1), 0.0, &p);
        assert_eq!(tile, 1, "queued backlog outweighs residency");
    }

    #[test]
    fn round_robin_cycles_tiles_in_order_and_resets() {
        let mut dispatcher = Dispatcher::new(DispatchPolicy::RoundRobin);
        let p = pool(3);
        let tiles: Vec<usize> = (0..6)
            .map(|i| dispatcher.place(&request(i), 0.0, &p))
            .collect();
        assert_eq!(tiles, vec![0, 1, 2, 0, 1, 2]);
        dispatcher.reset();
        assert_eq!(dispatcher.place(&request(9), 0.0, &p), 0);
    }

    #[test]
    fn fifo_policies_always_take_the_oldest_queued_request() {
        let p = pool(1);
        let queue = [with_deadline(1, 5.0), with_deadline(2, 1.0)];
        for policy in [DispatchPolicy::KernelAffinity, DispatchPolicy::RoundRobin] {
            assert_eq!(
                Dispatcher::new(policy).select_next(&p.states()[0], &queue, 0.0),
                0,
                "{policy} drains FIFO"
            );
            assert!(!policy.is_deadline_aware());
        }
    }

    #[test]
    fn edf_takes_the_tightest_deadline_and_parks_deadline_free_requests() {
        let p = pool(1);
        let dispatcher = Dispatcher::new(DispatchPolicy::EarliestDeadlineFirst);
        let queue = [request(1), with_deadline(2, 90.0), with_deadline(3, 40.0)];
        assert_eq!(dispatcher.select_next(&p.states()[0], &queue, 0.0), 2);
        // Without any deadlines EDF degenerates to FIFO.
        let queue = [request(1), request(2)];
        assert_eq!(dispatcher.select_next(&p.states()[0], &queue, 0.0), 0);
        assert!(DispatchPolicy::EarliestDeadlineFirst.is_deadline_aware());
    }

    #[test]
    fn slack_aware_charges_the_switch_cost_against_the_deadline() {
        // Two requests with the same deadline and service time; the tile
        // hosts kernel 1, so kernel 2 must pay a switch and has less slack.
        let mut p = pool(1);
        p.states_mut()[0].resident = Some(key(1));
        let dispatcher = Dispatcher::new(DispatchPolicy::SlackAware);
        let resident = with_deadline(1, 100.0);
        let cold = DispatchRequest {
            switch_us: 20.0,
            ..with_deadline(2, 100.0)
        };
        assert_eq!(
            dispatcher.select_next(&p.states()[0], &[resident, cold], 0.0),
            1,
            "the swap eats 20 us of kernel 2's slack"
        );
        // EDF, blind to the switch cost, would have kept FIFO order.
        assert_eq!(
            Dispatcher::new(DispatchPolicy::EarliestDeadlineFirst).select_next(
                &p.states()[0],
                &[resident, cold],
                0.0
            ),
            0
        );
        assert!((resident.slack_us(&p.states()[0], 0.0) - 90.0).abs() < 1e-12);
        assert!((cold.slack_us(&p.states()[0], 0.0) - 70.0).abs() < 1e-12);
        assert_eq!(request(1).slack_us(&p.states()[0], 0.0), f64::INFINITY);
    }

    #[test]
    fn policies_display_and_default() {
        assert_eq!(DispatchPolicy::default(), DispatchPolicy::KernelAffinity);
        let names: Vec<String> = DispatchPolicy::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(
            names,
            vec!["kernel-affinity", "round-robin", "edf", "slack-aware"]
        );
        assert_eq!(
            Dispatcher::default().policy(),
            DispatchPolicy::KernelAffinity
        );
    }
}
