//! LRU caches over the expensive per-request work: compiled kernels (so each
//! distinct kernel is compiled once no matter how many requests reference
//! it) and functional simulation runs (so repeated tenant requests — same
//! kernel, same workload — skip the cycle-accurate simulation entirely).

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use overlay_arch::FuVariant;
use overlay_scheduler::CompiledKernel;
use overlay_sim::SimRun;

use crate::error::RuntimeError;

/// A minimal FNV-1a [`Hasher`] for the runtime's hot-path maps: the keys are
/// small fixed-size identifiers (kernel fingerprints, sim keys, intake
/// indices), where SipHash's per-lookup setup cost is pure overhead and DoS
/// resistance buys nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvHasher(u64);

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut hash = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &byte in bytes {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        self.0 = hash;
    }

    fn write_u64(&mut self, value: u64) {
        let mut hash = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        hash ^= value;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        hash ^= hash >> 29;
        self.0 = hash;
    }

    fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    fn write_u128(&mut self, value: u128) {
        self.write_u64(value as u64);
        self.write_u64((value >> 64) as u64);
    }

    fn write_u8(&mut self, value: u8) {
        self.write_u64(u64::from(value));
    }
}

/// [`HashMap`] keyed through [`FnvHasher`] — the runtime's hot-path map type.
pub type FnvHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FnvHasher>>;

/// Identity of one compiled artifact: kernel content hash + overlay variant +
/// mapped depth (0 when the depth follows the kernel, as it does for the
/// feed-forward variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    /// Content fingerprint from [`KernelSpec::fingerprint`](crate::KernelSpec::fingerprint).
    pub fingerprint: u64,
    /// The overlay variant the kernel was compiled for.
    pub variant: FuVariant,
    /// The fixed overlay depth for the write-back variants, 0 when the depth
    /// follows the kernel.
    pub depth: usize,
}

impl fmt::Display for KernelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:016x}@{}/d{}",
            self.fingerprint, self.variant, self.depth
        )
    }
}

/// Hit/miss/eviction counters for one cache lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to compile.
    pub misses: usize,
    /// Entries evicted to make room.
    pub evictions: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} eviction(s), {:.0}% hit rate",
            self.hits,
            self.misses,
            self.evictions,
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Debug)]
struct Entry {
    kernel: Arc<CompiledKernel>,
    last_used: u64,
}

/// An LRU cache mapping [`KernelKey`]s to compiled kernels.
///
/// Compiled kernels are shared as [`Arc`]s, so a cached kernel stays valid on
/// the tiles executing it even if it is evicted mid-trace.
#[derive(Debug)]
pub struct KernelCache {
    capacity: usize,
    clock: u64,
    entries: FnvHashMap<KernelKey, Entry>,
    stats: CacheStats,
}

impl KernelCache {
    /// A cache holding at most `capacity` compiled kernels.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroCacheCapacity`] when `capacity` is 0.
    pub fn new(capacity: usize) -> Result<Self, RuntimeError> {
        if capacity == 0 {
            return Err(RuntimeError::ZeroCacheCapacity);
        }
        Ok(KernelCache {
            capacity,
            clock: 0,
            entries: FnvHashMap::default(),
            stats: CacheStats::default(),
        })
    }

    /// Returns the cached kernel for `key`, or compiles it via `compile`,
    /// caching the result (evicting the least-recently-used entry if full).
    ///
    /// # Errors
    ///
    /// Propagates whatever `compile` returns.
    pub fn get_or_compile<F>(
        &mut self,
        key: KernelKey,
        compile: F,
    ) -> Result<Arc<CompiledKernel>, RuntimeError>
    where
        F: FnOnce() -> Result<CompiledKernel, RuntimeError>,
    {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return Ok(Arc::clone(&entry.kernel));
        }
        self.stats.misses += 1;
        let kernel = Arc::new(compile()?);
        self.insert_evicting(key, Arc::clone(&kernel));
        Ok(kernel)
    }

    /// Returns the cached kernel for `key`, or adopts `artifact` (sharing
    /// the `Arc`, evicting the least-recently-used entry if full) and
    /// counts a miss. This is how a cluster device acquires a kernel image
    /// compiled on another device's store: the artifact is shared, never
    /// recompiled — only the modeled transfer is charged by the caller.
    pub fn get_or_share(&mut self, key: KernelKey, artifact: &Arc<CompiledKernel>) -> bool {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        self.insert_evicting(key, Arc::clone(artifact));
        false
    }

    /// Inserts `kernel` under `key`, evicting the least-recently-used entry
    /// when the cache is full.
    fn insert_evicting(&mut self, key: KernelKey, kernel: Arc<CompiledKernel>) {
        if self.entries.len() >= self.capacity {
            // O(n) LRU scan: the cache holds at most a few dozen kernels.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                kernel,
                last_used: self.clock,
            },
        );
    }

    /// Whether `key` is currently resident (does not touch LRU order).
    pub fn contains(&self, key: &KernelKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Returns the cached artifact for `key` without touching the LRU
    /// order or the hit/miss counters — the replication layer's way to
    /// read a surviving holder's store when re-homing replicas off a dead
    /// device.
    pub fn peek(&self, key: &KernelKey) -> Option<Arc<CompiledKernel>> {
        self.entries.get(key).map(|entry| Arc::clone(&entry.kernel))
    }

    /// Drops every entry but preserves the accumulated counters — a device
    /// kill wipes the store mid-serve, and the hits and misses recorded so
    /// far still happened.
    pub fn wipe(&mut self) {
        self.entries.clear();
    }

    /// Removes `key`'s entry, if resident. This is a *policy* removal (the
    /// replication layer demoting a cold replica), not a capacity eviction —
    /// it does not count in [`CacheStats::evictions`]. Shared `Arc`s held
    /// elsewhere stay valid.
    pub fn remove(&mut self, key: &KernelKey) -> bool {
        self.entries.remove(key).is_some()
    }

    /// Number of resident compiled kernels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of resident kernels.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }
}

/// Identity of one memoizable simulation: the compiled kernel it ran through
/// plus a content digest of the workload streamed into it.
///
/// Functional simulation is placement-independent — the same kernel over the
/// same input records produces the same outputs and cycle counts on every
/// tile — so this pair fully determines a [`SimRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimKey {
    /// The compiled-kernel identity.
    pub kernel: KernelKey,
    /// 128-bit content digest of the workload records
    /// (see [`Request::workload_digest`](crate::Request::workload_digest)).
    pub workload: u128,
}

impl fmt::Display for SimKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+w{:032x}", self.kernel, self.workload)
    }
}

#[derive(Debug)]
struct MemoEntry {
    run: Arc<SimRun>,
    last_used: u64,
}

/// An LRU memo of completed simulation runs keyed by [`SimKey`], so a
/// repeated tenant request (same kernel, same workload) is answered without
/// re-running the functional simulator.
///
/// Runs are shared as [`Arc`]s: a memo hit costs one clone of the pointer,
/// and an evicted run stays valid wherever it is still referenced. A
/// capacity of 0 disables memoization entirely (every lookup misses and
/// nothing is stored).
#[derive(Debug)]
pub struct SimMemo {
    capacity: usize,
    clock: u64,
    entries: FnvHashMap<SimKey, MemoEntry>,
    stats: CacheStats,
}

impl SimMemo {
    /// A memo holding at most `capacity` simulation runs (0 disables it).
    pub fn new(capacity: usize) -> Self {
        SimMemo {
            capacity,
            clock: 0,
            entries: FnvHashMap::default(),
            stats: CacheStats::default(),
        }
    }

    /// Returns the memoized run for `key`, counting a hit when found.
    ///
    /// A `None` is *not* yet a miss: the event loop may still join the
    /// request onto an identical in-flight simulation
    /// ([`note_shared_hit`](Self::note_shared_hit)) — only an actually
    /// spawned simulation is a [`note_miss`](Self::note_miss). The invariant
    /// is `hits + misses == admitted requests`.
    pub fn get(&mut self, key: &SimKey) -> Option<Arc<SimRun>> {
        self.clock += 1;
        let entry = self.entries.get_mut(key)?;
        entry.last_used = self.clock;
        self.stats.hits += 1;
        Some(Arc::clone(&entry.run))
    }

    /// Counts a hit that skipped a simulation without a lookup — the event
    /// loop joins an arrival onto an identical already-in-flight simulation.
    pub fn note_shared_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Counts a simulation actually spawned (a memo miss).
    pub fn note_miss(&mut self) {
        self.stats.misses += 1;
    }

    /// Stores a completed run, evicting the least-recently-used entry when
    /// full. A no-op when the memo is disabled (capacity 0).
    pub fn insert(&mut self, key: SimKey, run: Arc<SimRun>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            // O(n) LRU scan, same trade-off as the kernel cache: the memo
            // holds at most a few thousand entries and insertions are rare
            // next to lookups.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            MemoEntry {
                run,
                last_used: self.clock,
            },
        );
    }

    /// Splits the memo into per-lane partitions for the sharded cluster:
    /// the entry for key `K` moves to partition `home(&K)`. Every partition
    /// keeps the full capacity and the *relative* recency order of its
    /// entries (reinserted in ascending `last_used`, each under a fresh
    /// lane clock); partition stats start at zero so the lanes' deltas can
    /// be summed back by [`merge_from_lanes`](Self::merge_from_lanes). The
    /// shared memo keeps its cumulative stats and is left empty.
    ///
    /// Kernel-hash routing sends every request for a kernel to that
    /// kernel's home device, and a [`SimKey`] embeds the kernel identity,
    /// so this partition is exact: no two lanes can ever look up the same
    /// key.
    pub(crate) fn split_by_home<F>(&mut self, lanes: usize, home: F) -> Vec<SimMemo>
    where
        F: Fn(&SimKey) -> usize,
    {
        let mut parts: Vec<SimMemo> = (0..lanes).map(|_| SimMemo::new(self.capacity)).collect();
        let mut entries: Vec<(SimKey, MemoEntry)> = self.entries.drain().collect();
        // FnvHashMap iteration order is meaningless; the LRU order lives in
        // `last_used`.
        entries.sort_by_key(|(_, entry)| entry.last_used);
        for (key, entry) in entries {
            let part = &mut parts[home(&key)];
            part.clock += 1;
            part.entries.insert(
                key,
                MemoEntry {
                    run: entry.run,
                    last_used: part.clock,
                },
            );
        }
        self.clock = 0;
        parts
    }

    /// Re-adopts the per-lane partitions after a sharded serve: each lane's
    /// entries come back in that lane's recency order and the lanes'
    /// hit/miss/eviction deltas are added to the shared cumulative stats.
    /// When the union exceeds capacity the normal LRU insert path evicts —
    /// a behavior (and stats) divergence from a serial serve that is only
    /// reachable when the working set overflows the memo, which the
    /// equivalence suites keep well clear of.
    pub(crate) fn merge_from_lanes(&mut self, lanes: Vec<SimMemo>) {
        for lane in lanes {
            self.stats.hits += lane.stats.hits;
            self.stats.misses += lane.stats.misses;
            self.stats.evictions += lane.stats.evictions;
            let mut entries: Vec<(SimKey, MemoEntry)> = lane.entries.into_iter().collect();
            entries.sort_by_key(|(_, entry)| entry.last_used);
            for (key, entry) in entries {
                self.insert(key, entry.run);
            }
        }
    }

    /// Whether `key` is currently memoized (does not touch LRU order).
    pub fn contains(&self, key: &SimKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of memoized runs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the memo is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of memoized runs (0 = disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_frontend::compile_kernel;
    use overlay_scheduler::{generate_program, schedule};

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V3,
            depth: 8,
        }
    }

    fn compile_saxpy() -> Result<CompiledKernel, RuntimeError> {
        let dfg = compile_kernel("kernel saxpy(a, x, y) { out r = a * x + y; }")?;
        let stages = schedule(&dfg, FuVariant::V3, Some(8))?;
        Ok(generate_program(&dfg, &stages, FuVariant::V3)?)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_artifact() {
        let mut cache = KernelCache::new(4).unwrap();
        let first = cache.get_or_compile(key(1), compile_saxpy).unwrap();
        let second = cache
            .get_or_compile(key(1), || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_removes_the_stalest_key() {
        let mut cache = KernelCache::new(2).unwrap();
        cache.get_or_compile(key(1), compile_saxpy).unwrap();
        cache.get_or_compile(key(2), compile_saxpy).unwrap();
        // Touch key 1 so key 2 is the LRU victim.
        cache.get_or_compile(key(1), || panic!("hit")).unwrap();
        cache.get_or_compile(key(3), compile_saxpy).unwrap();
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    /// The online runtime's sim workers hold compiled kernels as `Arc`s
    /// while the event loop keeps compiling new arrivals through the cache:
    /// an eviction must never invalidate a kernel a tile is still executing.
    #[test]
    fn eviction_under_concurrent_pin_keeps_the_artifact_alive() {
        let mut cache = KernelCache::new(1).unwrap();
        let pinned = cache.get_or_compile(key(1), compile_saxpy).unwrap();
        let worker = std::thread::spawn({
            let pinned = Arc::clone(&pinned);
            move || {
                // A tile "executing" the kernel while the cache churns.
                for _ in 0..100 {
                    assert!(pinned.ii > 0.0);
                    assert!(pinned.num_fus() > 0);
                }
                Arc::strong_count(&pinned)
            }
        });
        // Churn the 1-entry cache so key 1 is evicted and recompiled while
        // the worker still holds the original artifact.
        for fingerprint in 2..10 {
            cache
                .get_or_compile(key(fingerprint), compile_saxpy)
                .unwrap();
        }
        assert!(!cache.contains(&key(1)));
        assert_eq!(cache.stats().evictions, 8);
        assert!(worker.join().unwrap() >= 1);
        // The evicted pin still works and a fresh lookup recompiles rather
        // than resurrecting the dropped entry.
        assert!(pinned.ii > 0.0);
        let recompiled = cache.get_or_compile(key(1), compile_saxpy).unwrap();
        assert!(
            !Arc::ptr_eq(&pinned, &recompiled),
            "eviction dropped the cache's reference; the pin kept its own"
        );
    }

    /// A device acquiring a peer-compiled image adopts the shared `Arc`
    /// (miss counted, no recompilation); the next lookup is a hit, and the
    /// adoption path still evicts LRU entries when full.
    #[test]
    fn get_or_share_adopts_the_artifact_without_recompiling() {
        let mut home = KernelCache::new(2).unwrap();
        let artifact = home.get_or_compile(key(1), compile_saxpy).unwrap();
        let mut peer = KernelCache::new(1).unwrap();
        assert!(!peer.get_or_share(key(1), &artifact), "first sight misses");
        assert_eq!(peer.stats().misses, 1);
        assert!(peer.get_or_share(key(1), &artifact), "now resident");
        assert_eq!(peer.stats().hits, 1);
        let shared = peer
            .get_or_compile(key(1), || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&artifact, &shared), "the Arc is shared");
        // Adoption respects capacity: a second key evicts the first.
        let other = home.get_or_compile(key(2), compile_saxpy).unwrap();
        assert!(!peer.get_or_share(key(2), &other));
        assert_eq!(peer.stats().evictions, 1);
        assert!(!peer.contains(&key(1)));
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(matches!(
            KernelCache::new(0),
            Err(RuntimeError::ZeroCacheCapacity)
        ));
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut cache = KernelCache::new(2).unwrap();
        cache.get_or_compile(key(1), compile_saxpy).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(key(0xAB).to_string().contains("V3"));
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!(stats.to_string().contains("75% hit rate"));
        let sim_key = SimKey {
            kernel: key(0xAB),
            workload: 0xFEED,
        };
        assert!(sim_key
            .to_string()
            .contains("w0000000000000000000000000000feed"));
    }

    fn sim_run() -> Arc<SimRun> {
        let compiled = compile_saxpy().unwrap();
        let workload = overlay_sim::Workload::ramp(3, 2);
        let run = overlay_sim::OverlaySimulator::new(FuVariant::V3)
            .run(&compiled, &workload)
            .unwrap();
        Arc::new(run)
    }

    fn sim_key(workload: u128) -> SimKey {
        SimKey {
            kernel: key(1),
            workload,
        }
    }

    #[test]
    fn sim_memo_shares_runs_and_counts_hits() {
        let mut memo = SimMemo::new(4);
        assert!(memo.is_empty());
        assert!(memo.get(&sim_key(1)).is_none(), "cold lookup finds nothing");
        memo.note_miss();
        let run = sim_run();
        memo.insert(sim_key(1), Arc::clone(&run));
        let hit = memo.get(&sim_key(1)).expect("memoized run");
        assert!(Arc::ptr_eq(&hit, &run), "hits share the run, not a copy");
        memo.note_shared_hit();
        let stats = memo.stats();
        assert_eq!(stats.hits, 2, "one lookup hit + one in-flight join");
        assert_eq!(stats.misses, 1, "only the spawned simulation is a miss");
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn sim_memo_evicts_least_recently_used() {
        let mut memo = SimMemo::new(2);
        let run = sim_run();
        memo.insert(sim_key(1), Arc::clone(&run));
        memo.insert(sim_key(2), Arc::clone(&run));
        // Touch key 1 so key 2 is the LRU victim.
        assert!(memo.get(&sim_key(1)).is_some());
        memo.insert(sim_key(3), Arc::clone(&run));
        assert!(memo.contains(&sim_key(1)));
        assert!(!memo.contains(&sim_key(2)));
        assert!(memo.contains(&sim_key(3)));
        assert_eq!(memo.stats().evictions, 1);
        // The evicted run stays valid through its other references.
        assert!(!run.outputs().is_empty());
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.stats(), CacheStats::default());
        assert_eq!(memo.capacity(), 2);
    }

    #[test]
    fn zero_capacity_disables_the_sim_memo() {
        let mut memo = SimMemo::new(0);
        memo.insert(sim_key(1), sim_run());
        assert!(memo.is_empty(), "a disabled memo stores nothing");
        assert!(memo.get(&sim_key(1)).is_none());
    }
}
