//! LRU cache of compiled kernels, so each distinct kernel is compiled once
//! no matter how many requests reference it.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use overlay_arch::FuVariant;
use overlay_scheduler::CompiledKernel;

use crate::error::RuntimeError;

/// Identity of one compiled artifact: kernel content hash + overlay variant +
/// mapped depth (0 when the depth follows the kernel, as it does for the
/// feed-forward variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelKey {
    /// Content fingerprint from [`KernelSpec::fingerprint`](crate::KernelSpec::fingerprint).
    pub fingerprint: u64,
    /// The overlay variant the kernel was compiled for.
    pub variant: FuVariant,
    /// The fixed overlay depth for the write-back variants, 0 when the depth
    /// follows the kernel.
    pub depth: usize,
}

impl fmt::Display for KernelKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{:016x}@{}/d{}",
            self.fingerprint, self.variant, self.depth
        )
    }
}

/// Hit/miss/eviction counters for one cache lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to compile.
    pub misses: usize,
    /// Entries evicted to make room.
    pub evictions: usize,
}

impl CacheStats {
    /// Fraction of lookups answered from the cache (0 when never used).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s), {} miss(es), {} eviction(s), {:.0}% hit rate",
            self.hits,
            self.misses,
            self.evictions,
            self.hit_rate() * 100.0
        )
    }
}

#[derive(Debug)]
struct Entry {
    kernel: Arc<CompiledKernel>,
    last_used: u64,
}

/// An LRU cache mapping [`KernelKey`]s to compiled kernels.
///
/// Compiled kernels are shared as [`Arc`]s, so a cached kernel stays valid on
/// the tiles executing it even if it is evicted mid-trace.
#[derive(Debug)]
pub struct KernelCache {
    capacity: usize,
    clock: u64,
    entries: HashMap<KernelKey, Entry>,
    stats: CacheStats,
}

impl KernelCache {
    /// A cache holding at most `capacity` compiled kernels.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::ZeroCacheCapacity`] when `capacity` is 0.
    pub fn new(capacity: usize) -> Result<Self, RuntimeError> {
        if capacity == 0 {
            return Err(RuntimeError::ZeroCacheCapacity);
        }
        Ok(KernelCache {
            capacity,
            clock: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        })
    }

    /// Returns the cached kernel for `key`, or compiles it via `compile`,
    /// caching the result (evicting the least-recently-used entry if full).
    ///
    /// # Errors
    ///
    /// Propagates whatever `compile` returns.
    pub fn get_or_compile<F>(
        &mut self,
        key: KernelKey,
        compile: F,
    ) -> Result<Arc<CompiledKernel>, RuntimeError>
    where
        F: FnOnce() -> Result<CompiledKernel, RuntimeError>,
    {
        self.clock += 1;
        if let Some(entry) = self.entries.get_mut(&key) {
            entry.last_used = self.clock;
            self.stats.hits += 1;
            return Ok(Arc::clone(&entry.kernel));
        }
        self.stats.misses += 1;
        let kernel = Arc::new(compile()?);
        if self.entries.len() >= self.capacity {
            // O(n) LRU scan: the cache holds at most a few dozen kernels.
            if let Some(&victim) = self
                .entries
                .iter()
                .min_by_key(|(_, entry)| entry.last_used)
                .map(|(key, _)| key)
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            key,
            Entry {
                kernel: Arc::clone(&kernel),
                last_used: self.clock,
            },
        );
        Ok(kernel)
    }

    /// Whether `key` is currently resident (does not touch LRU order).
    pub fn contains(&self, key: &KernelKey) -> bool {
        self.entries.contains_key(key)
    }

    /// Number of resident compiled kernels.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of resident kernels.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The accumulated hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry and resets the counters.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.stats = CacheStats::default();
        self.clock = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use overlay_frontend::compile_kernel;
    use overlay_scheduler::{generate_program, schedule};

    fn key(fingerprint: u64) -> KernelKey {
        KernelKey {
            fingerprint,
            variant: FuVariant::V3,
            depth: 8,
        }
    }

    fn compile_saxpy() -> Result<CompiledKernel, RuntimeError> {
        let dfg = compile_kernel("kernel saxpy(a, x, y) { out r = a * x + y; }")?;
        let stages = schedule(&dfg, FuVariant::V3, Some(8))?;
        Ok(generate_program(&dfg, &stages, FuVariant::V3)?)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_artifact() {
        let mut cache = KernelCache::new(4).unwrap();
        let first = cache.get_or_compile(key(1), compile_saxpy).unwrap();
        let second = cache
            .get_or_compile(key(1), || panic!("must not recompile"))
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().misses, 1);
        assert_eq!(cache.stats().hit_rate(), 0.5);
    }

    #[test]
    fn lru_eviction_removes_the_stalest_key() {
        let mut cache = KernelCache::new(2).unwrap();
        cache.get_or_compile(key(1), compile_saxpy).unwrap();
        cache.get_or_compile(key(2), compile_saxpy).unwrap();
        // Touch key 1 so key 2 is the LRU victim.
        cache.get_or_compile(key(1), || panic!("hit")).unwrap();
        cache.get_or_compile(key(3), compile_saxpy).unwrap();
        assert!(cache.contains(&key(1)));
        assert!(!cache.contains(&key(2)));
        assert!(cache.contains(&key(3)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.len(), 2);
    }

    /// The online runtime's sim workers hold compiled kernels as `Arc`s
    /// while the event loop keeps compiling new arrivals through the cache:
    /// an eviction must never invalidate a kernel a tile is still executing.
    #[test]
    fn eviction_under_concurrent_pin_keeps_the_artifact_alive() {
        let mut cache = KernelCache::new(1).unwrap();
        let pinned = cache.get_or_compile(key(1), compile_saxpy).unwrap();
        let worker = std::thread::spawn({
            let pinned = Arc::clone(&pinned);
            move || {
                // A tile "executing" the kernel while the cache churns.
                for _ in 0..100 {
                    assert!(pinned.ii > 0.0);
                    assert!(pinned.num_fus() > 0);
                }
                Arc::strong_count(&pinned)
            }
        });
        // Churn the 1-entry cache so key 1 is evicted and recompiled while
        // the worker still holds the original artifact.
        for fingerprint in 2..10 {
            cache
                .get_or_compile(key(fingerprint), compile_saxpy)
                .unwrap();
        }
        assert!(!cache.contains(&key(1)));
        assert_eq!(cache.stats().evictions, 8);
        assert!(worker.join().unwrap() >= 1);
        // The evicted pin still works and a fresh lookup recompiles rather
        // than resurrecting the dropped entry.
        assert!(pinned.ii > 0.0);
        let recompiled = cache.get_or_compile(key(1), compile_saxpy).unwrap();
        assert!(
            !Arc::ptr_eq(&pinned, &recompiled),
            "eviction dropped the cache's reference; the pin kept its own"
        );
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(matches!(
            KernelCache::new(0),
            Err(RuntimeError::ZeroCacheCapacity)
        ));
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let mut cache = KernelCache::new(2).unwrap();
        cache.get_or_compile(key(1), compile_saxpy).unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
        assert_eq!(cache.capacity(), 2);
    }

    #[test]
    fn displays_are_descriptive() {
        assert!(key(0xAB).to_string().contains("V3"));
        let stats = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        assert!(stats.to_string().contains("75% hit rate"));
    }
}
