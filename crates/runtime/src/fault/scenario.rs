//! Deterministic scenario workload generation: diurnal load curves, flash
//! crowds, and tenant churn on the virtual timeline — the traffic side of
//! fault-tolerance testing, pairing with [`FaultPlan`](crate::FaultPlan)'s
//! coordinated fault scripts.
//!
//! Everything here is a pure function of the [`ScenarioConfig`] (no host
//! clock, no host RNG): arrivals are emitted by integrating the modeled
//! rate curve — credit accumulates at `rate(t)` and each unit crossing
//! emits one arrival — and tenant picks hash the arrival index through
//! SplitMix64 against time-varying tenant weights. Re-running a scenario
//! reproduces the identical schedule, which is what lets the
//! fault-tolerance suite and the `fault_recovery` bench compare serves
//! bitwise across configurations.
//!
//! The rate curve is a product of three factors:
//!
//! * a **diurnal** triangle wave — rate swings ±`diurnal_amplitude` around
//!   the base over each `diurnal_period_us` (a triangle, not a sinusoid,
//!   so the curve is exactly reproducible arithmetic);
//! * **flash crowds** — each [`FlashCrowd`] multiplies the rate over its
//!   window (stacking multiplicatively when windows overlap);
//! * **tenant churn** — the hot tenant (weighted
//!   `hot_tenant_weight`-to-1 over the rest) rotates every
//!   `churn_period_us`, so kernel popularity shifts mid-serve the way a
//!   tenant mix does across a day.

use crate::route::splitmix64;

/// The shape of a generated workload. All fields are virtual-time or
/// dimensionless; degenerate values are sanitized by [`Scenario::new`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Base arrival rate, requests per millisecond of virtual time.
    pub base_rate_per_ms: f64,
    /// Length of the generated schedule, microseconds.
    pub duration_us: f64,
    /// Diurnal swing as a fraction of the base rate, clamped to [0, 1).
    pub diurnal_amplitude: f64,
    /// Period of the diurnal wave, microseconds (≤ 0 disables it).
    pub diurnal_period_us: f64,
    /// Number of tenants arrivals are attributed to (min 1).
    pub tenants: usize,
    /// Weight of the currently-hot tenant relative to each other tenant's
    /// weight of 1 (≤ 1 makes every tenant equal).
    pub hot_tenant_weight: f64,
    /// How often the hot tenant rotates, microseconds (≤ 0 pins tenant 0).
    pub churn_period_us: f64,
    /// Maximum pipeline depth an arrival expands to when the scenario feeds
    /// [`Cluster::serve_pipelines`](crate::Cluster::serve_pipelines) (min
    /// 1). Depth 1 keeps every arrival a plain single-stage request; deeper
    /// values let [`Scenario::pipeline_depth_at`] fan arrivals out into
    /// deterministic per-arrival chain lengths in `1..=pipeline_depth`.
    pub pipeline_depth: usize,
    /// Seed for the deterministic tenant-pick hash.
    pub seed: u64,
}

impl ScenarioConfig {
    /// A flat, single-tenant arrival stream: `rate` requests per
    /// millisecond for `duration_us` — the steady-state baseline the
    /// fancier curves perturb.
    pub fn steady(rate_per_ms: f64, duration_us: f64) -> Self {
        ScenarioConfig {
            base_rate_per_ms: rate_per_ms,
            duration_us,
            diurnal_amplitude: 0.0,
            diurnal_period_us: 0.0,
            tenants: 1,
            hot_tenant_weight: 1.0,
            churn_period_us: 0.0,
            pipeline_depth: 1,
            seed: 0x5EED,
        }
    }
}

/// A bounded rate spike: the arrival rate is multiplied by `multiplier`
/// for `duration_us` starting at `start_us`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// When the crowd arrives, microseconds.
    pub start_us: f64,
    /// How long it stays, microseconds.
    pub duration_us: f64,
    /// Rate multiplier while it lasts.
    pub multiplier: f64,
}

/// One generated arrival: when, and which tenant it belongs to. The caller
/// maps tenants onto kernels (each tenant's traffic is one kernel in the
/// serving example and the fault bench, which is what makes churn move the
/// hot kernel around the fleet).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioArrival {
    /// Arrival time, microseconds of virtual time (non-decreasing across
    /// the generated schedule).
    pub arrival_us: f64,
    /// The tenant this arrival belongs to, `< config.tenants`.
    pub tenant: usize,
}

/// A deterministic workload generator over a [`ScenarioConfig`] plus any
/// number of [`FlashCrowd`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    config: ScenarioConfig,
    crowds: Vec<FlashCrowd>,
}

impl Scenario {
    /// A generator over `config`, with degenerate fields sanitized (at
    /// least one tenant, non-negative rate and duration, amplitude in
    /// [0, 1)).
    pub fn new(mut config: ScenarioConfig) -> Self {
        config.base_rate_per_ms = config.base_rate_per_ms.max(0.0);
        config.duration_us = if config.duration_us.is_finite() {
            config.duration_us.max(0.0)
        } else {
            0.0
        };
        config.diurnal_amplitude = config.diurnal_amplitude.clamp(0.0, 0.999);
        config.tenants = config.tenants.max(1);
        config.hot_tenant_weight = config.hot_tenant_weight.max(1.0);
        config.pipeline_depth = config.pipeline_depth.max(1);
        Scenario {
            config,
            crowds: Vec::new(),
        }
    }

    /// Adds a flash crowd (overlapping crowds stack multiplicatively).
    #[must_use]
    pub fn with_flash_crowd(mut self, crowd: FlashCrowd) -> Self {
        self.crowds.push(crowd);
        self
    }

    /// The configuration after sanitization.
    pub fn config(&self) -> &ScenarioConfig {
        &self.config
    }

    /// The modeled arrival rate at virtual time `t_us`, requests per
    /// microsecond.
    pub fn rate_at(&self, t_us: f64) -> f64 {
        let config = &self.config;
        let mut rate = config.base_rate_per_ms / 1000.0;
        if config.diurnal_amplitude > 0.0 && config.diurnal_period_us > 0.0 {
            // Triangle wave in [-1, 1]: exact arithmetic, no libm.
            let phase = (t_us / config.diurnal_period_us).rem_euclid(1.0);
            let tri = if phase < 0.5 {
                4.0 * phase - 1.0
            } else {
                3.0 - 4.0 * phase
            };
            rate *= 1.0 + config.diurnal_amplitude * tri;
        }
        for crowd in &self.crowds {
            if t_us >= crowd.start_us && t_us < crowd.start_us + crowd.duration_us {
                rate *= crowd.multiplier.max(0.0);
            }
        }
        rate
    }

    /// The tenant currently hot at `t_us` (rotating with the churn period).
    pub fn hot_tenant_at(&self, t_us: f64) -> usize {
        let config = &self.config;
        if config.churn_period_us > 0.0 {
            (t_us / config.churn_period_us) as usize % config.tenants
        } else {
            0
        }
    }

    /// Generates the full arrival schedule: non-decreasing times within
    /// `[0, duration_us)`, each attributed to a tenant. Pure — every call
    /// returns the identical schedule.
    pub fn arrivals(&self) -> Vec<ScenarioArrival> {
        let config = &self.config;
        if config.base_rate_per_ms <= 0.0 || config.duration_us <= 0.0 {
            return Vec::new();
        }
        // Integrate the rate curve with a step sized so that even the peak
        // rate accrues well under one arrival per step (bounded below so a
        // degenerate config cannot spin forever).
        let peak_multiplier: f64 = self
            .crowds
            .iter()
            .map(|crowd| crowd.multiplier.max(1.0))
            .product();
        let peak_rate =
            (config.base_rate_per_ms / 1000.0) * (1.0 + config.diurnal_amplitude) * peak_multiplier;
        let step_us = (0.25 / peak_rate).max(config.duration_us / 4.0e6);
        let mut arrivals = Vec::new();
        let mut credit = 0.0;
        let mut t_us = 0.0;
        while t_us < config.duration_us {
            let step = step_us.min(config.duration_us - t_us);
            credit += self.rate_at(t_us) * step;
            t_us += step;
            while credit >= 1.0 {
                credit -= 1.0;
                let index = arrivals.len() as u64;
                let tenant = self.pick_tenant(index, t_us);
                arrivals.push(ScenarioArrival {
                    arrival_us: t_us,
                    tenant,
                });
            }
        }
        arrivals
    }

    /// The pipeline depth arrival `index` expands to: a deterministic draw
    /// in `1..=pipeline_depth`, hashed from the seed like the tenant pick —
    /// a pure function of the config, no host RNG. With the default depth
    /// of 1 every arrival stays a plain single-stage request, which is what
    /// keeps scenario-driven pipeline serves equivalence-pinned to the
    /// plain serve.
    pub fn pipeline_depth_at(&self, index: u64) -> usize {
        let depth = self.config.pipeline_depth;
        if depth <= 1 {
            return 1;
        }
        let hash = splitmix64(self.config.seed ^ splitmix64(index ^ 0xD9A6));
        1 + (hash % depth as u64) as usize
    }

    /// The deterministic weighted tenant pick for arrival `index` at time
    /// `t_us`: the hot tenant carries `hot_tenant_weight`, the rest 1.
    fn pick_tenant(&self, index: u64, t_us: f64) -> usize {
        let config = &self.config;
        if config.tenants == 1 {
            return 0;
        }
        let hot = self.hot_tenant_at(t_us);
        let total = config.tenants as f64 - 1.0 + config.hot_tenant_weight;
        let hash = splitmix64(config.seed ^ splitmix64(index));
        let draw = (hash >> 11) as f64 / (1u64 << 53) as f64 * total;
        if draw < config.hot_tenant_weight {
            return hot;
        }
        let rest = (draw - config.hot_tenant_weight) as usize;
        // Map the remainder onto the non-hot tenants in id order.
        let tenant = if rest < hot { rest } else { rest + 1 };
        tenant.min(config.tenants - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_and_ordered() {
        let scenario = Scenario::new(ScenarioConfig {
            base_rate_per_ms: 4.0,
            duration_us: 10_000.0,
            diurnal_amplitude: 0.5,
            diurnal_period_us: 4_000.0,
            tenants: 4,
            hot_tenant_weight: 4.0,
            churn_period_us: 2_500.0,
            pipeline_depth: 3,
            seed: 7,
        })
        .with_flash_crowd(FlashCrowd {
            start_us: 3_000.0,
            duration_us: 1_000.0,
            multiplier: 3.0,
        });
        let first = scenario.arrivals();
        let second = scenario.arrivals();
        assert_eq!(first, second, "pure function of the config");
        assert!(!first.is_empty());
        for pair in first.windows(2) {
            assert!(pair[0].arrival_us <= pair[1].arrival_us, "non-decreasing");
        }
        for arrival in &first {
            assert!(arrival.arrival_us >= 0.0 && arrival.arrival_us <= 10_000.0);
            assert!(arrival.tenant < 4);
        }
    }

    #[test]
    fn steady_scenarios_hit_the_configured_rate() {
        let scenario = Scenario::new(ScenarioConfig::steady(2.0, 50_000.0));
        let arrivals = scenario.arrivals();
        // 2 / ms over 50 ms ≈ 100 arrivals; integration is near-exact.
        assert!(
            (arrivals.len() as f64 - 100.0).abs() <= 2.0,
            "got {}",
            arrivals.len()
        );
        assert!(arrivals.iter().all(|a| a.tenant == 0), "single tenant");
        assert_eq!(scenario.rate_at(0.0), scenario.rate_at(25_000.0));
    }

    #[test]
    fn flash_crowds_concentrate_arrivals() {
        let base = Scenario::new(ScenarioConfig::steady(1.0, 20_000.0));
        let crowded = base.clone().with_flash_crowd(FlashCrowd {
            start_us: 5_000.0,
            duration_us: 5_000.0,
            multiplier: 4.0,
        });
        let count_in = |arrivals: &[ScenarioArrival], lo: f64, hi: f64| {
            arrivals
                .iter()
                .filter(|a| a.arrival_us >= lo && a.arrival_us < hi)
                .count()
        };
        let plain = base.arrivals();
        let burst = crowded.arrivals();
        assert!(burst.len() > plain.len());
        let window = count_in(&burst, 5_000.0, 10_000.0);
        let outside = count_in(&burst, 0.0, 5_000.0);
        assert!(
            window > 3 * outside,
            "crowd window {window} vs steady {outside}"
        );
        assert_eq!(crowded.rate_at(7_000.0), 4.0 * crowded.rate_at(1_000.0));
    }

    #[test]
    fn diurnal_wave_moves_the_rate_and_stays_positive() {
        let scenario = Scenario::new(ScenarioConfig {
            diurnal_amplitude: 0.8,
            diurnal_period_us: 8_000.0,
            ..ScenarioConfig::steady(2.0, 8_000.0)
        });
        // Triangle: trough at phase 0, peak at phase 0.5.
        let trough = scenario.rate_at(0.0);
        let peak = scenario.rate_at(4_000.0);
        assert!(peak > trough);
        assert!((peak - 2.0e-3 * 1.8).abs() < 1e-12);
        assert!((trough - 2.0e-3 * 0.2).abs() < 1e-12);
        // The wave is periodic.
        assert_eq!(scenario.rate_at(1_000.0), scenario.rate_at(9_000.0));
    }

    #[test]
    fn tenant_churn_rotates_the_hot_tenant() {
        let scenario = Scenario::new(ScenarioConfig {
            tenants: 3,
            hot_tenant_weight: 30.0,
            churn_period_us: 10_000.0,
            ..ScenarioConfig::steady(4.0, 30_000.0)
        });
        assert_eq!(scenario.hot_tenant_at(0.0), 0);
        assert_eq!(scenario.hot_tenant_at(15_000.0), 1);
        assert_eq!(scenario.hot_tenant_at(25_000.0), 2);
        let arrivals = scenario.arrivals();
        let dominant = |lo: f64, hi: f64| {
            let mut counts = [0usize; 3];
            for arrival in arrivals
                .iter()
                .filter(|a| a.arrival_us >= lo && a.arrival_us < hi)
            {
                counts[arrival.tenant] += 1;
            }
            (0..3).max_by_key(|&t| counts[t]).unwrap()
        };
        assert_eq!(dominant(0.0, 10_000.0), 0);
        assert_eq!(dominant(10_000.0, 20_000.0), 1);
        assert_eq!(dominant(20_000.0, 30_000.0), 2);
    }

    #[test]
    fn pipeline_depths_are_deterministic_and_bounded() {
        let flat = Scenario::new(ScenarioConfig::steady(2.0, 10_000.0));
        assert_eq!(flat.config().pipeline_depth, 1, "steady is single-stage");
        assert!((0..64).all(|i| flat.pipeline_depth_at(i) == 1));
        let deep = Scenario::new(ScenarioConfig {
            pipeline_depth: 4,
            ..ScenarioConfig::steady(2.0, 10_000.0)
        });
        let depths: Vec<usize> = (0..256).map(|i| deep.pipeline_depth_at(i)).collect();
        assert!(depths.iter().all(|&d| (1..=4).contains(&d)));
        // Every depth in the range shows up, and re-draws are identical.
        for want in 1..=4 {
            assert!(depths.contains(&want), "depth {want} never drawn");
        }
        let again: Vec<usize> = (0..256).map(|i| deep.pipeline_depth_at(i)).collect();
        assert_eq!(depths, again, "pure function of the config");
    }

    #[test]
    fn degenerate_configs_are_sanitized_not_loops() {
        let empty = Scenario::new(ScenarioConfig::steady(0.0, 1_000.0));
        assert!(empty.arrivals().is_empty());
        let none = Scenario::new(ScenarioConfig::steady(5.0, 0.0));
        assert!(none.arrivals().is_empty());
        let weird = Scenario::new(ScenarioConfig {
            tenants: 0,
            diurnal_amplitude: 9.0,
            hot_tenant_weight: -3.0,
            duration_us: f64::INFINITY,
            pipeline_depth: 0,
            ..ScenarioConfig::steady(1.0, 1_000.0)
        });
        assert_eq!(weird.config().tenants, 1);
        assert_eq!(weird.config().pipeline_depth, 1);
        assert_eq!(weird.pipeline_depth_at(9), 1);
        assert!(weird.config().diurnal_amplitude < 1.0);
        assert_eq!(weird.config().hot_tenant_weight, 1.0);
        assert_eq!(weird.config().duration_us, 0.0);
        assert!(weird.arrivals().is_empty());
    }
}
